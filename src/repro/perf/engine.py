"""A small discrete-event simulator: tasks, resources, dependencies.

Tasks occupy one resource each for a fixed duration and may depend on
other tasks. Resources process one task at a time (a GPU's compute
stream, a node's NVSwitch fabric, the IB NICs). The engine performs
greedy list scheduling: among ready tasks, always start the one that
can begin earliest — which models in-order streams and FIFO hardware
queues well enough for kernel-granularity simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import CoCoNetError


@dataclass
class Task:
    """One unit of work on one resource."""

    name: str
    resource: str
    duration: float
    deps: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise CoCoNetError(f"task {self.name}: negative duration")


@dataclass
class Timeline:
    """Start/end times of every scheduled task."""

    spans: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        if not self.spans:
            return 0.0
        return max(end for _, end in self.spans.values())

    def start(self, name: str) -> float:
        return self.spans[name][0]

    def end(self, name: str) -> float:
        return self.spans[name][1]

    def busy_time(self, resource_prefix: str, tasks: Sequence[Task]) -> float:
        """Total occupied time of resources whose name has the prefix."""
        return sum(
            self.spans[t.name][1] - self.spans[t.name][0]
            for t in tasks
            if t.resource.startswith(resource_prefix) and t.name in self.spans
        )

    def describe(self, limit: Optional[int] = None) -> str:
        items = sorted(self.spans.items(), key=lambda kv: kv[1][0])
        if limit is not None:
            items = items[:limit]
        return "\n".join(
            f"{s * 1e6:10.1f} .. {e * 1e6:10.1f} us  {name}"
            for name, (s, e) in items
        )


class Engine:
    """Greedy list scheduler over dependent tasks."""

    def run(self, tasks: Sequence[Task]) -> Timeline:
        by_name = {t.name: t for t in tasks}
        if len(by_name) != len(tasks):
            raise CoCoNetError("duplicate task names")
        for t in tasks:
            for d in t.deps:
                if d not in by_name:
                    raise CoCoNetError(
                        f"task {t.name} depends on unknown task {d!r}"
                    )
        timeline = Timeline()
        resource_free: Dict[str, float] = {}
        pending: List[Task] = list(tasks)
        scheduled: set = set()
        while pending:
            best_idx = -1
            best_start = float("inf")
            for i, t in enumerate(pending):
                if any(d not in scheduled for d in t.deps):
                    continue
                ready = max(
                    (timeline.end(d) for d in t.deps), default=0.0
                )
                start = max(ready, resource_free.get(t.resource, 0.0))
                if start < best_start:
                    best_start, best_idx = start, i
            if best_idx < 0:
                names = [t.name for t in pending]
                raise CoCoNetError(
                    f"dependency cycle among tasks: {names[:5]}..."
                )
            t = pending.pop(best_idx)
            end = best_start + t.duration
            timeline.spans[t.name] = (best_start, end)
            resource_free[t.resource] = end
            scheduled.add(t.name)
        return timeline
