"""A small discrete-event simulator: tasks, resources, dependencies.

Tasks occupy one resource each for a fixed duration and may depend on
other tasks. Resources process one task at a time (a GPU's compute
stream, a node's NVSwitch fabric, the IB NICs). The engine performs
greedy list scheduling: among ready tasks, always start the one that
can begin earliest — which models in-order streams and FIFO hardware
queues well enough for kernel-granularity simulation.

Two implementations share those semantics:

* :meth:`Engine.run` — an event-driven heap scheduler. Tasks enter a
  priority queue keyed by ``(earliest start, submission order)`` as
  their dependency counts reach zero; stale keys (a task whose resource
  got busier since it was pushed) are lazily re-pushed. O(n log n + E).
* :meth:`Engine._reference_run` — the original O(n²) ready-scan list
  scheduler, kept as the executable specification the heap scheduler is
  property-tested against.

Both produce bit-identical :class:`Timeline` spans: the heap key's
second component reproduces the reference scheduler's first-in-input-
order tie-breaking exactly.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import CoCoNetError


@dataclass
class Task:
    """One unit of work on one resource."""

    name: str
    resource: str
    duration: float
    deps: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise CoCoNetError(f"task {self.name}: negative duration")


@dataclass
class Timeline:
    """Start/end times (and resources) of every scheduled task."""

    spans: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    #: resource each task ran on, filled in by the engine — lets
    #: utilization be computed from the timeline alone
    resources: Dict[str, str] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        if not self.spans:
            return 0.0
        return max(end for _, end in self.spans.values())

    def start(self, name: str) -> float:
        return self.spans[name][0]

    def end(self, name: str) -> float:
        return self.spans[name][1]

    def busy_time(self, resource_prefix: str, tasks: Sequence[Task]) -> float:
        """Total occupied time of resources whose name has the prefix.

        Tasks absent from ``spans`` (e.g. from a different run, or not
        yet scheduled) are skipped before any subscripting.
        """
        total = 0.0
        for t in tasks:
            if t.name not in self.spans:
                continue
            if not t.resource.startswith(resource_prefix):
                continue
            start, end = self.spans[t.name]
            total += end - start
        return total

    def utilization(self, resource: str) -> float:
        """Busy fraction of the makespan for one resource (or family).

        Uses the engine-recorded :attr:`resources` map, so no task list
        is needed. Matches the exact resource name, or — when the query
        ends with the ``":"`` separator — a whole family (``"gpu:"``
        covers every GPU stream), reporting the *mean* busy fraction
        over the matching resources so the result is always in [0, 1].
        A bare partial name never prefix-matches, so
        ``utilization("gpu:1")`` does not absorb ``gpu:10``..``gpu:15``.
        """
        makespan = self.makespan
        if makespan <= 0:
            return 0.0
        family = resource.endswith(":")
        busy: Dict[str, float] = {}
        for name, res in self.resources.items():
            if res == resource or (family and res.startswith(resource)):
                start, end = self.spans[name]
                busy[res] = busy.get(res, 0.0) + (end - start)
        if not busy:
            return 0.0
        return sum(busy.values()) / (makespan * len(busy))

    def describe(self, limit: Optional[int] = None) -> str:
        items = sorted(self.spans.items(), key=lambda kv: kv[1][0])
        if limit is not None:
            items = items[:limit]
        return "\n".join(
            f"{s * 1e6:10.1f} .. {e * 1e6:10.1f} us  {name}"
            for name, (s, e) in items
        )

    def to_events(
        self, tasks: Optional[Sequence[Task]] = None, pid: str = "predicted"
    ) -> List[object]:
        """The predicted schedule in the measured-trace event schema.

        Every scheduled task becomes a
        :class:`repro.observe.SpanEvent` with category ``"predicted"``
        on the track of the resource it occupied, so exporters and the
        predicted-vs-measured aligner consume DES output exactly like a
        real trace. ``tasks``, when given, supplies the dependency edges
        carried in each span's args.
        """
        from repro.observe.events import SpanEvent

        deps = {t.name: list(t.deps) for t in tasks} if tasks else {}
        events: List[object] = []
        for name, (start, end) in sorted(
            self.spans.items(), key=lambda kv: kv[1][0]
        ):
            args: Dict[str, object] = {}
            if name in deps:
                args["deps"] = deps[name]
            events.append(
                SpanEvent(
                    name, "predicted", start, end - start, pid,
                    self.resources.get(name, "sim"), args,
                )
            )
        return events


class Engine:
    """Greedy list scheduler over dependent tasks.

    ``Engine(reference=True)`` routes :meth:`run` through the O(n²)
    ready-scan implementation — the pre-optimization behavior, used by
    the autotuner's baseline mode and the equivalence property tests.

    ``slowdown`` maps resource names to duration multipliers — the
    straggler/contention model. A key matches a resource exactly, or,
    when it ends with the ``":"`` separator, a whole family (``"gpu:"``
    stretches every GPU stream) — the same convention as
    :meth:`Timeline.utilization`. Matching factors multiply, and both
    scheduler implementations apply them identically, so the
    bit-identity property holds under slowdowns too
    (:meth:`repro.runtime.faults.FaultPlan.resource_slowdowns` produces
    this mapping from injected straggler events).
    """

    def __init__(
        self,
        reference: bool = False,
        slowdown: Optional[Dict[str, float]] = None,
    ) -> None:
        self.reference = reference
        self.slowdown = dict(slowdown) if slowdown else {}
        for key, factor in self.slowdown.items():
            if factor <= 0:
                raise CoCoNetError(
                    f"slowdown factor for {key!r} must be > 0, got {factor}"
                )

    def _duration(self, task: Task) -> float:
        """The task's duration under the slowdown mapping."""
        if not self.slowdown:
            return task.duration
        d = task.duration
        for key, factor in self.slowdown.items():
            if task.resource == key or (
                key.endswith(":") and task.resource.startswith(key)
            ):
                d *= factor
        return d

    @staticmethod
    def _validate(tasks: Sequence[Task]) -> Dict[str, Task]:
        by_name = {t.name: t for t in tasks}
        if len(by_name) != len(tasks):
            raise CoCoNetError("duplicate task names")
        for t in tasks:
            for d in t.deps:
                if d not in by_name:
                    raise CoCoNetError(
                        f"task {t.name} depends on unknown task {d!r}"
                    )
        return by_name

    def run(self, tasks: Sequence[Task]) -> Timeline:
        """Event-driven heap scheduling; same semantics as the reference.

        A task enters the ready heap once all dependencies are
        scheduled, keyed by its earliest start under the resource
        availability known at push time. Resource availability only
        grows, so a stale key underestimates — on pop the key is
        recomputed and the entry re-pushed if it changed; an accurate
        popped key is the global minimum, i.e. exactly the task the
        O(n²) ready-scan would have picked.
        """
        if self.reference:
            return self._reference_run(tasks)
        by_name = self._validate(tasks)
        timeline = Timeline()
        resource_free: Dict[str, float] = {}
        order: Dict[str, int] = {t.name: i for i, t in enumerate(tasks)}
        users: Dict[str, List[str]] = {t.name: [] for t in tasks}
        missing: Dict[str, int] = {}
        ready_at: Dict[str, float] = {}
        for t in tasks:
            unique_deps = set(t.deps)
            missing[t.name] = len(unique_deps)
            for d in unique_deps:
                users[d].append(t.name)

        heap: List[Tuple[float, int, str]] = []
        for t in tasks:
            if missing[t.name] == 0:
                ready_at[t.name] = 0.0
                heapq.heappush(heap, (0.0, order[t.name], t.name))

        scheduled = 0
        while heap:
            pushed_start, idx, name = heapq.heappop(heap)
            t = by_name[name]
            start = max(ready_at[name], resource_free.get(t.resource, 0.0))
            if start > pushed_start:
                heapq.heappush(heap, (start, idx, name))
                continue
            end = start + self._duration(t)
            timeline.spans[name] = (start, end)
            timeline.resources[name] = t.resource
            resource_free[t.resource] = end
            scheduled += 1
            for u in users[name]:
                ready_at[u] = max(ready_at.get(u, 0.0), end)
                missing[u] -= 1
                if missing[u] == 0:
                    u_task = by_name[u]
                    u_start = max(
                        ready_at[u],
                        resource_free.get(u_task.resource, 0.0),
                    )
                    heapq.heappush(heap, (u_start, order[u], u))
        if scheduled != len(tasks):
            names = [t.name for t in tasks if t.name not in timeline.spans]
            raise CoCoNetError(
                f"dependency cycle among tasks: {names[:5]}..."
            )
        return timeline

    def _reference_run(self, tasks: Sequence[Task]) -> Timeline:
        """The original O(n²) ready-scan list scheduler (specification)."""
        self._validate(tasks)
        timeline = Timeline()
        resource_free: Dict[str, float] = {}
        pending: List[Task] = list(tasks)
        scheduled: set = set()
        while pending:
            best_idx = -1
            best_start = float("inf")
            for i, t in enumerate(pending):
                if any(d not in scheduled for d in t.deps):
                    continue
                ready = max(
                    (timeline.end(d) for d in t.deps), default=0.0
                )
                start = max(ready, resource_free.get(t.resource, 0.0))
                if start < best_start:
                    best_start, best_idx = start, i
            if best_idx < 0:
                names = [t.name for t in pending]
                raise CoCoNetError(
                    f"dependency cycle among tasks: {names[:5]}..."
                )
            t = pending.pop(best_idx)
            end = best_start + self._duration(t)
            timeline.spans[t.name] = (best_start, end)
            timeline.resources[t.name] = t.resource
            resource_free[t.resource] = end
            scheduled.add(t.name)
        return timeline
