"""Program-level cost model: lowered instruction stream → simulated time.

Turns a scheduled program into a task graph over simulated resources
and runs the discrete-event engine. The task structure comes from the
shared lowering (:mod:`repro.core.lower`) — the same instruction stream
the numeric executor interprets and the code generator emits:

* every launch becomes one task (GPU stream, node fabric, or IB NICs);
* launches outside chunk loops are serialized per stream, as a single
  CUDA stream would;
* chunk loops expand into chunk tasks with the producer-consumer chunk
  dependencies of Figure 9 — chunk *c* of the consumer waits for chunk
  *c* of the producer, each kernel is launched once, and a per-chunk
  spin-lock synchronization cost is charged;
* fused collectives additionally pay the §5.4 scattered-tensor bucket
  table (12 · ⌈N / 2^10⌉ bytes) as HBM traffic.

This model is the autotuner's objective function and the basis of every
benchmark figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.cluster.gpu import GPU, TESLA_V100
from repro.cluster.topology import Cluster
from repro.core import ops
from repro.core.lower import (
    ChunkLoop,
    LoweredProgram,
    PackScattered,
    fabric_of,
    fused_pack_info,
    lower,
    stream_of,
)
from repro.core.program import Program
from repro.core.tensor import Const, Expr
from repro.core.transforms.plan import Kernel, KernelKind
from repro.core.transforms.schedule import Schedule
from repro.errors import CoCoNetError
from repro.nccl.config import CHANNEL_CHOICES, choose_config
from repro.nccl.cost_model import Algorithm, collective_time, p2p_time
from repro.nccl.protocol import ALL_PROTOCOLS, Protocol
from repro.nccl.ring import build_ring
from repro.perf import kernel_cost
from repro.perf.engine import Engine, Task, Timeline

#: Cost of one fine-grained spin-lock wake between overlapped kernels
#: ("an efficient fine-grained spin-lock on a memory buffer", §5.3).
SPINLOCK_SYNC_OVERHEAD = 1.2e-6


@dataclass
class KernelCost:
    """Cost decomposition of one kernel."""

    duration: float          # total, including launch and latency
    resource: str
    head: float              # non-divisible part (launch + latency + setup)

    @property
    def stream_part(self) -> float:
        return max(0.0, self.duration - self.head)


@dataclass
class CostEvaluation:
    """Result of :meth:`ProgramCostModel.evaluate`.

    When ``pruned`` is true, ``time`` is a *lower bound* on the true
    makespan, already known to be no better than the caller's cutoff —
    the full discrete-event simulation was skipped.
    """

    time: float
    pruned: bool = False


class ProgramCostModel:
    """Estimate execution time of scheduled programs on a cluster.

    With ``memoize`` on (the default), the protocol × channel × algorithm
    sweep behind every collective is cached per
    ``(collective kind, bytes, group, node_size)`` — the protocols and
    channel sets are fixed per model instance, so the key pins the whole
    search space of the sweep. The autotuner constructs one model per
    tune, paying each distinct collective configuration once instead of
    once per candidate schedule.
    """

    def __init__(
        self,
        cluster: Cluster,
        gpu: Optional[GPU] = None,
        protocols: Sequence[Protocol] = ALL_PROTOCOLS,
        channels: Sequence[int] = CHANNEL_CHOICES,
        elementwise_params: kernel_cost.CostParams = kernel_cost.DEFAULT,
        fused_compute_params: kernel_cost.CostParams = (
            kernel_cost.FUSED_REGISTER_PRESSURE
        ),
        gemm_efficiency: float = 0.72,
        overlap_chunks: Optional[int] = None,
        memoize: bool = True,
        engine: Optional[Engine] = None,
        scattered_metadata: bool = True,
    ) -> None:
        self.cluster = cluster
        self.gpu = gpu or cluster.node.gpu
        self.protocols = tuple(protocols)
        self.channels = tuple(channels)
        self.elementwise_params = elementwise_params
        self.fused_compute_params = fused_compute_params
        self.gemm_efficiency = gemm_efficiency
        self.overlap_chunks = overlap_chunks
        self.memoize = memoize
        #: charge the §5.4 bucket-table metadata of fused collectives
        self.scattered_metadata = scattered_metadata
        self.engine = engine or Engine()
        self._collective_memo: Dict[tuple, Tuple[float, float]] = {}
        self._ring_sweep_memo: Dict[tuple, float] = {}
        self._latency_memo: Dict[tuple, float] = {}
        self._ring_memo: Dict[tuple, object] = {}
        # keyed by member-expression identity; the value keeps the
        # expression tuple alive so ids cannot be recycled under the key
        self._kernel_memo: Dict[tuple, Tuple[KernelCost, tuple]] = {}
        self._memo_hits = 0
        self._memo_misses = 0

    # -- public API -----------------------------------------------------

    def time(self, scheduled: Union[Schedule, Program]) -> float:
        """Simulated makespan of one invocation."""
        timeline, _ = self.timeline(scheduled)
        return timeline.makespan

    def evaluate(
        self,
        scheduled: Union[Schedule, Program],
        cutoff: Optional[float] = None,
    ) -> CostEvaluation:
        """Makespan, with an optional best-so-far lower-bound prune.

        ``cutoff`` is the fastest time seen so far. Each resource
        executes its kernels serially, so the largest per-resource sum
        of (un-overlapped) kernel durations lower-bounds the makespan;
        if that bound already reaches the cutoff the candidate cannot
        win and the discrete-event run is skipped.
        """
        lowered = self._lowered_of(scheduled)
        costs = {
            k.name: self._kernel_cost_cached(k)
            for k in lowered.plan.kernels
        }
        if cutoff is not None:
            busy: Dict[str, float] = {}
            for c in costs.values():
                busy[c.resource] = busy.get(c.resource, 0.0) + c.duration
            bound = max(busy.values(), default=0.0)
            if bound >= cutoff:
                return CostEvaluation(bound, pruned=True)
        tasks = self._build_tasks(lowered, costs)
        return CostEvaluation(self.engine.run(tasks).makespan)

    def timeline(
        self, scheduled: Union[Schedule, Program]
    ) -> Tuple[Timeline, List[Task]]:
        """Full task timeline (for breakdowns and inspection)."""
        lowered = self._lowered_of(scheduled)
        tasks = self._build_tasks(lowered)
        return self.engine.run(tasks), tasks

    def kernel_breakdown(
        self, scheduled: Union[Schedule, Program]
    ) -> Dict[str, float]:
        """Per-kernel cost (unoverlapped durations) for bar charts."""
        lowered = self._lowered_of(scheduled)
        return {
            k.name: self._kernel_cost_cached(k).duration
            for k in lowered.plan.kernels
        }

    def memo_stats(self) -> Dict[str, float]:
        """Aggregate memo hit/miss counters across every cache."""
        total = self._memo_hits + self._memo_misses
        return {
            "memo_hits": float(self._memo_hits),
            "memo_misses": float(self._memo_misses),
            "memo_hit_rate": self._memo_hits / total if total else 0.0,
        }

    # -- internals ------------------------------------------------------

    def _lowered_of(
        self, scheduled: Union[Schedule, Program, LoweredProgram]
    ) -> LoweredProgram:
        """The shared lowered instruction stream of a scheduled program.

        Schedules cache their lowering per version; plain programs are
        lowered on the fly (they have no transformation state to key a
        cache on). A deserialized :class:`repro.core.artifact.Artifact`
        prices identically to the live lowering it was saved from — the
        DES tasks are built from the reconstructed instruction stream.
        """
        from repro.core.artifact import Artifact

        if isinstance(scheduled, Artifact):
            return scheduled.lowered()
        if isinstance(scheduled, Schedule):
            return scheduled.lowered(
                cluster=self.cluster, overlap_chunks=self.overlap_chunks
            )
        if isinstance(scheduled, LoweredProgram):
            return scheduled
        return lower(
            scheduled,
            cluster=self.cluster,
            overlap_chunks=self.overlap_chunks,
        )

    def _stream_of(self, kernel: Kernel) -> str:
        return stream_of(kernel)

    def _kernel_cost_cached(self, kernel: Kernel) -> KernelCost:
        """Kernel cost memoized by member-expression identity.

        Expressions are immutable and shared across forked schedules,
        so a kernel over the same member objects always costs the same;
        the same collective or GEMM reappearing in many candidate plans
        is priced once per tune.
        """
        if not self.memoize:
            return self._kernel_cost(kernel)
        key = (kernel.kind, tuple(id(e) for e in kernel.exprs))
        hit = self._kernel_memo.get(key)
        if hit is not None:
            self._memo_hits += 1
            return hit[0]
        self._memo_misses += 1
        cost = self._kernel_cost(kernel)
        self._kernel_memo[key] = (cost, kernel.exprs)
        return cost

    def _kernel_cost(self, kernel: Kernel) -> KernelCost:
        kind = kernel.kind
        out = kernel.output
        launch = self.gpu.kernel_launch_overhead
        if kind is KernelKind.GEMM:
            mm = kernel.exprs[0]
            bytes_touched = sum(
                i.per_rank_bytes() for i in mm.inputs
            ) + mm.per_rank_bytes()
            d = kernel_cost.gemm_time(
                mm.flops(),
                bytes_touched,
                self.gpu,
                itemsize=mm.dtype.itemsize,
                efficiency=self.gemm_efficiency,
            )
            return KernelCost(d, self._stream_of(kernel), launch)
        if kind is KernelKind.CONV:
            conv = kernel.exprs[0]
            n, k, ho, wo = conv.shape
            _, c, r, s = conv.inputs[1].shape
            flops = 2 * n * k * c * r * s * ho * wo
            bytes_touched = sum(
                i.per_rank_bytes() for i in conv.inputs
            ) + conv.per_rank_bytes()
            d = kernel_cost.gemm_time(
                flops, bytes_touched, self.gpu,
                itemsize=conv.dtype.itemsize,
                efficiency=self.gemm_efficiency,
            )
            return KernelCost(d, self._stream_of(kernel), launch)
        if kind is KernelKind.ELEMENTWISE:
            e = kernel.exprs[0]
            if isinstance(e, ops.Slice):
                return KernelCost(0.0, self._stream_of(kernel), 0.0)
            traffic = self._compute_traffic([e])
            d = kernel_cost.pointwise_time(
                traffic, self.gpu, self.elementwise_params
            )
            d += self._cross_rank_reduction_cost([e])
            return KernelCost(d, self._stream_of(kernel), launch)
        if kind is KernelKind.FUSED_ELEMENTWISE:
            traffic = self._compute_traffic(kernel.exprs)
            d = kernel_cost.pointwise_time(
                traffic, self.gpu, self.fused_compute_params
            )
            d += self._cross_rank_reduction_cost(kernel.exprs)
            return KernelCost(d, self._stream_of(kernel), launch)
        if kind is KernelKind.COLLECTIVE:
            comm = kernel.exprs[0]
            t, head = self._collective_cost(comm)
            return KernelCost(
                t + launch, self._fabric_of(comm), head + launch
            )
        if kind is KernelKind.FUSED_COLLECTIVE:
            return self._fused_collective_cost(kernel)
        if kind in (KernelKind.P2P, KernelKind.FUSED_P2P):
            return self._p2p_cost(kernel)
        raise CoCoNetError(f"no cost rule for kernel kind {kind}")

    def _compute_traffic(self, exprs: Sequence[Expr]) -> float:
        """HBM bytes moved by a (possibly fused) compute region."""
        members = set(exprs)
        read = 0.0
        seen: set = set()
        for e in exprs:
            for i in e.inputs:
                if i in members or isinstance(i, Const) or id(i) in seen:
                    continue
                seen.add(id(i))
                read += i.per_rank_bytes()
        written = 0.0
        for e in exprs:
            externally_used = isinstance(e, ops.Update) or e is exprs[-1]
            if externally_used:
                written += e.per_rank_bytes()
        return read + written

    def _extra_operand_traffic(
        self, comp_ops: Sequence[Expr], anchor: Expr
    ) -> float:
        """HBM bytes a fused exchange adds beyond its own data path.

        The exchange streams one buffer in and one out; the largest
        external operand rides that stream, every other distinct
        external operand is an extra read.
        """
        path = set(comp_ops) | {anchor, anchor.inputs[0]}
        seen: set = set()
        external: List[int] = []
        for e in comp_ops:
            for i in e.inputs:
                if i in path or isinstance(i, Const) or id(i) in seen:
                    continue
                seen.add(id(i))
                external.append(i.per_rank_bytes())
        if not external:
            return 0.0
        return float(sum(external) - max(external))

    def _cross_rank_reduction_cost(self, exprs: Sequence[Expr]) -> float:
        """Extra AllReduce latency for Norm/ReduceTensor on sliced data."""
        extra = 0.0
        for e in exprs:
            if isinstance(e, (ops.Norm, ops.ReduceTensor)) and e.crosses_ranks:
                key = ("xrank", e.group.start, e.group.size)
                cached = self._latency_memo.get(key)
                if cached is None:
                    cached = collective_time(
                        "allreduce", 8, self.cluster, self._ring(e.group),
                        self.protocols[0], 2, Algorithm.TREE,
                        include_setup=False,
                    )
                    if self.memoize:
                        self._latency_memo[key] = cached
                extra += cached
            elif isinstance(e, (ops.Norm, ops.ReduceTensor)):
                # a full reduction is an extra pass over the data
                extra += e.inputs[0].per_rank_bytes() / self.gpu.hbm_bandwidth
        return extra

    def _fabric_of(self, comm: Expr) -> str:
        # single-sourced with the lowering's resource assignment
        return fabric_of(comm, self.cluster.node.gpus_per_node)

    # -- memoized collective sweeps -------------------------------------

    def _ring(self, group):
        """Per-group ring topology, built once per model instance."""
        key = (group.start, group.size)
        ring = self._ring_memo.get(key)
        if ring is None:
            self._memo_misses += 1
            ring = build_ring(self.cluster, group)
            if self.memoize:
                self._ring_memo[key] = ring
        else:
            self._memo_hits += 1
        return ring

    def _ring_min_time(
        self, kind: str, nbytes: int, group, node_size
    ) -> float:
        """Cheapest ring-algorithm time over all protocols × channels."""
        key = (kind, nbytes, group.start, group.size, node_size)
        cached = self._ring_sweep_memo.get(key)
        if cached is not None:
            self._memo_hits += 1
            return cached
        self._memo_misses += 1
        ring = self._ring(group)
        best = min(
            collective_time(
                kind, nbytes, self.cluster, ring, p, c, Algorithm.RING,
                node_size=node_size,
            )
            for p in self.protocols
            for c in self.channels
        )
        if self.memoize:
            self._ring_sweep_memo[key] = best
        return best

    def _collective_latency(self, kind: str, group, node_size) -> float:
        """Latency + setup of the cheapest same-kind near-zero-size call."""
        key = (kind, group.start, group.size, node_size)
        cached = self._latency_memo.get(key)
        if cached is not None:
            self._memo_hits += 1
            return cached
        self._memo_misses += 1
        ring = self._ring(group)
        lat = min(
            collective_time(
                kind, 1, self.cluster, ring, p, c, Algorithm.RING,
                include_setup=True, node_size=node_size,
            )
            for p in self.protocols
            for c in self.channels
        )
        if self.memoize:
            self._latency_memo[key] = lat
        return lat

    def _collective_cost(
        self, comm: Expr, ring_only: bool = False
    ) -> Tuple[float, float]:
        """(time, head) of a collective; head = latency + setup part."""
        kind = comm.comm_kind
        nbytes = max(
            comm.inputs[0].per_rank_bytes(), comm.per_rank_bytes()
        )
        group = comm.group
        node_size = getattr(comm, "node_size", None)
        if group.size <= 1:
            return 0.0, 0.0
        key = (kind, nbytes, group.start, group.size, node_size, ring_only)
        cached = self._collective_memo.get(key)
        if cached is not None:
            self._memo_hits += 1
            return cached
        self._memo_misses += 1
        cfg, t = choose_config(
            kind, nbytes, self.cluster, group,
            protocols=self.protocols, channels=self.channels,
            node_size=node_size,
        )
        if ring_only and cfg.algorithm is not Algorithm.RING:
            t = self._ring_min_time(kind, nbytes, group, node_size)
        # The head (non-chunkable part) is the latency + setup of the
        # cheapest same-kind call at near-zero size.
        lat = self._collective_latency(kind, group, node_size)
        head = max(0.0, min(lat, t))
        if self.memoize:
            self._collective_memo[key] = (t, head)
        return t, head

    def _fused_collective_cost(self, kernel: Kernel) -> KernelCost:
        comm_ops = [e for e in kernel.exprs if isinstance(e, ops.CommOp)]
        comp_ops = [e for e in kernel.exprs if not isinstance(e, ops.CommOp)]
        # The communication structure is an AllReduce-equivalent ring
        # (RS..AG) or a plain AR; fused collectives are ring-only.
        scatters = [e for e in comm_ops if isinstance(e, ops.ReduceScatter)]
        if scatters:
            anchor = scatters[0]
            kind = "allreduce"
            gathers = [e for e in comm_ops if isinstance(e, ops.AllGather)]
            if not gathers:
                kind = "reducescatter"
        else:
            anchor = comm_ops[0]
            kind = anchor.comm_kind
        nbytes = max(
            anchor.inputs[0].per_rank_bytes(), anchor.per_rank_bytes()
        )
        group = anchor.group
        node_size = getattr(anchor, "node_size", None)
        comm_time = self._ring_min_time(kind, nbytes, group, node_size)
        if kind.startswith("alltoall"):
            # A fused AllToAll applies the pointwise ops to each chunk
            # as the exchange stages it — "directly passing the output
            # of communication to following computations through
            # registers" (§2.3) — so the comm stream's own loads/stores
            # already cover the data path; only *extra* operands (a
            # bias tensor, say) add HBM traffic.
            traffic = self._extra_operand_traffic(comp_ops, anchor)
        else:
            traffic = self._compute_traffic(comp_ops) if comp_ops else 0.0
        if self.scattered_metadata:
            # §5.4: the fused kernel addresses scattered tensors through
            # a bucket table of 12 · ⌈N / 2^10⌉ bytes, read during the
            # exchange — extra HBM traffic on the compute side
            pack = fused_pack_info(kernel)
            if pack is not None:
                traffic += pack.metadata_bytes
        compute_time = kernel_cost.pointwise_time(
            traffic, self.gpu, self.fused_compute_params,
            include_launch=False,
        ) if traffic else 0.0
        compute_time += self._cross_rank_reduction_cost(comp_ops)
        launch = self.gpu.kernel_launch_overhead
        duration = max(comm_time, compute_time) + launch
        lat = self._collective_latency(kind, group, node_size)
        head = min(duration, lat + launch)
        return KernelCost(duration, self._fabric_of(anchor), head)

    def _p2p_cost(self, kernel: Kernel) -> KernelCost:
        send = next(e for e in kernel.exprs if isinstance(e, ops.Send))
        src_group = send.inputs[0].group
        dst_group = send.group
        node = self.cluster.node
        intra = (
            src_group.start // node.gpus_per_node
            == dst_group.start // node.gpus_per_node
        )
        pairs = min(src_group.size, node.gpus_per_node)
        nbytes = send.inputs[0].per_rank_bytes()
        t = p2p_time(nbytes, self.cluster, pairs, intra)
        comp_ops = [
            e for e in kernel.exprs if not isinstance(e, ops.CommOp)
        ]
        launch = self.gpu.kernel_launch_overhead
        if comp_ops:
            traffic = self._compute_traffic(comp_ops)
            ct = kernel_cost.pointwise_time(
                traffic, self.gpu, self.fused_compute_params,
                include_launch=False,
            )
            t = max(t, ct)
        lat = (node.nvlink if intra else node.nic).latency
        resource = (
            f"fabric:node{src_group.start // node.gpus_per_node}"
            if intra
            else f"ib:node{src_group.start // node.gpus_per_node}"
        )
        return KernelCost(t + launch, resource, lat + launch)

    # -- task graph construction ------------------------------------------

    def _build_tasks(
        self,
        lowered: LoweredProgram,
        costs: Optional[Dict[str, KernelCost]] = None,
    ) -> List[Task]:
        """Map the lowered instruction stream onto discrete-event tasks.

        A 1:1 translation: launches become tasks serialized per issue
        stream, chunk loops expand via :meth:`_emit_chunk_tasks`, and
        bucket-table preparations are free (built once on the CPU; their
        read traffic is already folded into the fused kernel's cost).
        All structure — dependencies, streams, chunk counts, member
        chains — comes from the lowering; nothing is re-derived here.
        """
        if costs is None:
            costs = {
                k.name: self._kernel_cost_cached(k)
                for k in lowered.plan.kernels
            }
        tasks: List[Task] = []
        completion: Dict[str, str] = {}
        prev_on_stream: Dict[str, Optional[str]] = {}
        for instr in lowered.instructions:
            if isinstance(instr, PackScattered):
                continue
            if isinstance(instr, ChunkLoop):
                self._emit_chunk_tasks(
                    instr, costs, completion, prev_on_stream, tasks
                )
                continue
            c = costs[instr.name]
            deps = [
                completion[d] for d in instr.deps if d in completion
            ]
            prev = prev_on_stream.get(instr.stream)
            if prev and prev not in deps:
                deps.append(prev)
            tasks.append(
                Task(instr.name, c.resource, c.duration, tuple(deps))
            )
            completion[instr.name] = instr.name
            prev_on_stream[instr.stream] = instr.name
        return tasks

    def _emit_chunk_tasks(
        self, loop: ChunkLoop, costs, completion, prev_on_stream, tasks
    ) -> None:
        """Expand one lowered chunk loop into per-chunk tasks (Figure 9)."""
        member_names = set(loop.member_names)
        nchunks = loop.num_chunks
        for entry in loop.entries:
            c = costs[entry.name]
            ext_deps = [
                completion[d]
                for d in entry.external_deps
                if d in completion
            ]
            stream = entry.instr.stream
            prev = prev_on_stream.get(stream)
            # Members of the group share the rank's stream conceptually
            # but are launched together and synchronize via chunk flags,
            # so don't serialize them against each other.
            prev_is_member = (
                prev is not None and prev.split("#")[0] in member_names
            )
            if prev and not prev_is_member and prev not in ext_deps:
                ext_deps.append(prev)
            chunk_dur = c.stream_part / nchunks
            last_name = None
            for ci in range(nchunks):
                name = f"{entry.name}#c{ci}"
                dur = chunk_dur + SPINLOCK_SYNC_OVERHEAD
                if ci == 0:
                    dur += c.head
                deps = []
                if ci == 0:
                    deps.extend(ext_deps)
                else:
                    deps.append(f"{entry.name}#c{ci - 1}")
                if entry.upstream is not None:
                    deps.append(f"{entry.upstream}#c{ci}")
                tasks.append(Task(name, c.resource, dur, tuple(deps)))
                last_name = name
            completion[entry.name] = last_name
            prev_on_stream[stream] = last_name
