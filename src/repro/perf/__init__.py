"""Discrete-event performance model.

Maps a scheduled program's execution plan onto simulated hardware
resources (GPU compute, NVSwitch fabrics, InfiniBand) and computes the
makespan. Overlap groups execute at chunk granularity with
producer-consumer dependencies between chunks — the fine-grained
synchronization of Section 5.3 / Figure 9.
"""

from repro.perf.engine import Engine, Task, Timeline
from repro.perf.kernel_cost import CostParams, pointwise_time
from repro.perf.program_cost import ProgramCostModel

__all__ = [
    "Engine",
    "Task",
    "Timeline",
    "CostParams",
    "pointwise_time",
    "ProgramCostModel",
]
