"""ASCII timeline rendering for simulated executions.

Turns a :class:`~repro.perf.engine.Timeline` into a per-resource Gantt
chart, the tool used to inspect *why* an overlapped schedule wins —
e.g. Figure 9's picture of MatMul chunks feeding AllReduce chunks, or
Figure 7b's tiles flowing across NVLink and InfiniBand.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.perf.engine import Task, Timeline


def render_gantt(
    timeline: Timeline,
    tasks: Sequence[Task],
    width: int = 72,
    max_rows: Optional[int] = None,
) -> str:
    """Render one row per resource; each task paints its span.

    Tasks are painted with successive letters per resource so adjacent
    chunks are distinguishable; idle time shows as dots.
    """
    if not timeline.spans:
        return "(empty timeline)"
    makespan = timeline.makespan or 1.0
    by_resource: Dict[str, List[Task]] = {}
    for t in tasks:
        if t.name in timeline.spans:
            by_resource.setdefault(t.resource, []).append(t)
    rows = []
    name_width = max(len(r) for r in by_resource)
    for resource in sorted(by_resource):
        chart = ["."] * width
        members = sorted(
            by_resource[resource], key=lambda t: timeline.start(t.name)
        )
        for i, t in enumerate(members):
            start, end = timeline.spans[t.name]
            a = int(start / makespan * (width - 1))
            b = max(a + 1, int(end / makespan * (width - 1)) + 1)
            glyph = chr(ord("A") + i % 26)
            for x in range(a, min(b, width)):
                chart[x] = glyph
        rows.append(f"{resource:<{name_width}} |{''.join(chart)}|")
        if max_rows is not None and len(rows) >= max_rows:
            break
    header = (
        f"makespan: {makespan * 1e6:.1f} us "
        f"({len(timeline.spans)} tasks, {len(by_resource)} resources)"
    )
    return "\n".join([header] + rows)


def resource_utilization(
    timeline: Timeline, tasks: Sequence[Task]
) -> Dict[str, float]:
    """Fraction of the makespan each resource spends busy.

    The overlap transformation's goal in one number: "utilize multiple
    resources of hardware simultaneously" (§3.4) means several
    resources with high utilization at once.
    """
    makespan = timeline.makespan
    if makespan <= 0:
        return {}
    busy: Dict[str, float] = {}
    for t in tasks:
        if t.name in timeline.spans:
            start, end = timeline.spans[t.name]
            busy[t.resource] = busy.get(t.resource, 0.0) + (end - start)
    return {r: b / makespan for r, b in busy.items()}


def critical_path(
    timeline: Timeline, tasks: Sequence[Task]
) -> List[str]:
    """One chain of tasks whose spans cover the makespan end to end.

    Walks back from the task finishing last through the dependency (or
    same-resource predecessor) that determined its start time.
    """
    if not timeline.spans:
        return []
    by_name = {t.name: t for t in tasks}
    current = max(timeline.spans, key=lambda n: timeline.spans[n][1])
    path = [current]
    while True:
        task = by_name[current]
        start = timeline.start(current)
        if start <= 0.0:
            break
        blocker: Optional[str] = None
        # a dependency that finishes exactly when we start
        for d in task.deps:
            if abs(timeline.end(d) - start) < 1e-12:
                blocker = d
                break
        if blocker is None:
            # otherwise the previous occupant of our resource
            candidates = [
                t.name
                for t in tasks
                if t.resource == task.resource
                and t.name in timeline.spans
                and abs(timeline.end(t.name) - start) < 1e-12
                and t.name != current
            ]
            blocker = candidates[0] if candidates else None
        if blocker is None:
            break
        path.append(blocker)
        current = blocker
    path.reverse()
    return path
