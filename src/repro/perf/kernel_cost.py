"""Cost model for GPU computation kernels.

Pointwise kernels are memory-bandwidth bound; their achieved bandwidth
ramps with size (a kernel needs millions of elements in flight to
saturate HBM). Fused kernels carrying many live values pay register
pressure: "the fused kernels have a higher register usage, thereby
restricting the thread-level parallelism" (§6.1.1) — modelled as a
larger ramp and a lower peak fraction, which is why fusion loses at
small sizes and wins at large ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.gpu import GPU, TESLA_V100


@dataclass(frozen=True)
class CostParams:
    """Knobs of the pointwise-kernel cost model."""

    #: bytes at which a kernel reaches half its peak bandwidth
    ramp_bytes: float = 1.0 * 1024 * 1024
    #: achievable fraction of HBM bandwidth at saturation
    peak_fraction: float = 1.0
    #: fixed pre-kernel work (e.g. Apex FusedAdam's preprocessing that
    #: "optimizes the amount of thread-parallelism and ILP")
    setup: float = 0.0


#: Plain generated elementwise kernel.
DEFAULT = CostParams()

#: Fused kernel with heavy register usage (FusedAllReduce compute, big
#: fused optimizer blocks): one thread block per SM, slower ramp.
FUSED_REGISTER_PRESSURE = CostParams(
    ramp_bytes=4.0 * 1024 * 1024, peak_fraction=0.92
)

#: NVIDIA Apex FusedAdam/FusedLAMB: preprocessing cost up front, best
#: steady-state throughput (ILP-optimized) at large sizes.
APEX_FUSED_OPTIMIZER = CostParams(
    ramp_bytes=1.0 * 1024 * 1024, peak_fraction=1.0, setup=25e-6
)

#: CoCoNet's generated AR-Opt kernel: no preprocessing, slightly lower
#: steady-state throughput than Apex's hand-tuned ILP.
GENERATED_OPTIMIZER = CostParams(
    ramp_bytes=1.0 * 1024 * 1024, peak_fraction=0.88
)


def pointwise_time(
    bytes_touched: float,
    gpu: GPU = TESLA_V100,
    params: CostParams = DEFAULT,
    include_launch: bool = True,
) -> float:
    """Time of a memory-bound kernel touching ``bytes_touched`` of HBM."""
    if bytes_touched <= 0:
        return gpu.kernel_launch_overhead if include_launch else 0.0
    effective_bw = (
        gpu.hbm_bandwidth
        * params.peak_fraction
        * bytes_touched
        / (bytes_touched + params.ramp_bytes)
    )
    t = params.setup + bytes_touched / effective_bw
    if include_launch:
        t += gpu.kernel_launch_overhead
    return t


def gemm_time(
    flops: int,
    bytes_touched: int,
    gpu: GPU = TESLA_V100,
    itemsize: int = 2,
    efficiency: float = 0.72,
    include_launch: bool = True,
) -> float:
    """Roofline GEMM cost (library kernel: cuBLAS / CUTLASS)."""
    from repro.core.dtypes import FP16, FP32

    dtype = FP16 if itemsize <= 2 else FP32
    t = gpu.matmul_time(flops, bytes_touched, dtype, efficiency)
    if include_launch:
        t += gpu.kernel_launch_overhead
    return t
