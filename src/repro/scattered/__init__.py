"""Scattered-tensor support (Section 5.4).

Machine-learning frameworks allocate each layer's parameters and
gradients in separate buffers; CoCoNet generates single kernels that
operate on all of them without the copy-to-contiguous-buffer dance.
"""

from repro.scattered.bucketing import (
    BUCKET_ELEMENTS,
    Bucket,
    ScatteredTensorSet,
    bucket_memory_overhead,
)

__all__ = [
    "Bucket",
    "ScatteredTensorSet",
    "BUCKET_ELEMENTS",
    "bucket_memory_overhead",
]
