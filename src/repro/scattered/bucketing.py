"""Bucketing of scattered (non-contiguous) tensors (Section 5.4).

"CoCoNet solves this problem by first dividing each tensor into buckets
of size at most 2^10 elements and then assigning buckets to warps in a
round-robin manner. This mechanism allows each thread to quickly find
the offset in a tensor, since a warp can directly index in its assigned
bucket. ... Each bucket is represented by a pair of 64-bit tensor
address and a 32-bit offset into the associated tensor, leading to
12 · ⌈N / 2^10⌉ bytes of extra memory for a tensor with N elements."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.errors import CoCoNetError

#: Maximum bucket size: 2^10 elements.
BUCKET_ELEMENTS = 1024

#: Bytes of metadata per bucket: 64-bit tensor address + 32-bit offset.
BUCKET_METADATA_BYTES = 12

#: CUDA warp size; buckets are assigned to warps round-robin.
WARP_SIZE = 32


@dataclass(frozen=True)
class Bucket:
    """One bucket: a (tensor, offset, length) triple."""

    tensor_index: int
    offset: int
    length: int

    def __post_init__(self) -> None:
        if not 0 < self.length <= BUCKET_ELEMENTS:
            raise CoCoNetError(
                f"bucket length {self.length} outside (0, {BUCKET_ELEMENTS}]"
            )


def bucket_memory_overhead(num_elements: int) -> int:
    """Extra bytes of bucket metadata for a tensor of ``num_elements``.

    The paper's 12 · ⌈N / 2^10⌉ formula; e.g. BERT's 334M elements cost
    ~0.6% extra (§5.4).
    """
    if num_elements < 0:
        raise CoCoNetError("negative element count")
    return BUCKET_METADATA_BYTES * -(-num_elements // BUCKET_ELEMENTS)


class ScatteredTensorSet:
    """A set of non-contiguous tensors addressed through buckets.

    Provides (i) the bucket table a generated kernel indexes, (ii) warp
    assignment round-robin, (iii) flat gather/scatter used by the
    copy-based baselines, and (iv) the one-time CPU bucketing whose cost
    the paper amortizes over training ("this bucketing is done only once
    on the CPU and training tasks run for thousands of iterations").
    """

    def __init__(self, tensors: Sequence[np.ndarray]) -> None:
        if not tensors:
            raise CoCoNetError("ScatteredTensorSet needs at least one tensor")
        self.tensors: List[np.ndarray] = [np.asarray(t) for t in tensors]
        self.buckets: List[Bucket] = []
        for ti, t in enumerate(self.tensors):
            n = t.size
            off = 0
            while off < n:
                length = min(BUCKET_ELEMENTS, n - off)
                self.buckets.append(Bucket(ti, off, length))
                off += length

    @property
    def total_elements(self) -> int:
        return sum(t.size for t in self.tensors)

    @property
    def metadata_bytes(self) -> int:
        """Total bucket-table bytes (pre-computed once on the CPU)."""
        return BUCKET_METADATA_BYTES * len(self.buckets)

    def metadata_fraction(self) -> float:
        """Metadata overhead relative to the data itself."""
        data_bytes = sum(t.nbytes for t in self.tensors)
        return self.metadata_bytes / data_bytes

    def warp_of_bucket(self, bucket_index: int, num_warps: int) -> int:
        """Round-robin warp assignment (§5.4)."""
        return bucket_index % num_warps

    def buckets_of_warp(self, warp: int, num_warps: int) -> List[Bucket]:
        return [
            b
            for i, b in enumerate(self.buckets)
            if i % num_warps == warp
        ]

    # -- flat <-> scattered movement ------------------------------------

    def gather_flat(self) -> np.ndarray:
        """Copy all tensors into one contiguous buffer (baseline path)."""
        return np.concatenate([t.reshape(-1) for t in self.tensors])

    def scatter_flat(self, flat: np.ndarray) -> None:
        """Copy a contiguous buffer back into the scattered tensors."""
        if flat.size != self.total_elements:
            raise CoCoNetError(
                f"flat buffer has {flat.size} elements, expected "
                f"{self.total_elements}"
            )
        off = 0
        for t in self.tensors:
            t.reshape(-1)[:] = flat[off : off + t.size].astype(t.dtype)
            off += t.size

    def iter_bucket_views(self) -> Iterator[Tuple[Bucket, np.ndarray]]:
        """Direct per-bucket views — what the scattered kernel indexes."""
        for b in self.buckets:
            flat = self.tensors[b.tensor_index].reshape(-1)
            yield b, flat[b.offset : b.offset + b.length]

    def element_view(self) -> np.ndarray:
        """Read all elements through the bucket table (for testing)."""
        return np.concatenate([v for _, v in self.iter_bucket_views()])

    def apply_elementwise(self, fn) -> None:
        """Apply ``fn`` in place through bucket views (single 'kernel')."""
        for _, view in self.iter_bucket_views():
            view[:] = fn(view).astype(view.dtype)
