"""End-to-end data-parallel training strategies (Table 4).

Each strategy models one implementation's per-iteration time and memory
plan for BERT training on the simulated cluster:

* **NV BERT** — copies every gradient tensor into a contiguous buffer,
  AllReduces it, copies back, then calls Apex's fused optimizer;
* **PyTorch DDP** — AllReduces 25 MB gradient buckets overlapped with
  the backward pass, then calls the fused optimizer;
* **ZeRO** — contiguous copy, ReduceScatter, partitioned Adam update,
  AllGather; LAMB state cannot be partitioned (§6.1.2);
* **CoCoNet** — the scattered-tensor fuse(RS-Opt-AG) schedule: no
  copies, communication and update in one kernel, state sliced.

The forward+backward time uses a batch-dependent GEMM efficiency, so a
strategy whose memory plan allows a larger micro-batch gains
throughput — the paper's main lever on the 1.2B/3.9B models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.baselines.apex import FUSED_ADAM, FUSED_LAMB, FusedOptimizerModel
from repro.cluster.topology import Cluster
from repro.core.process_group import world
from repro.nccl.config import choose_config
from repro.perf import kernel_cost
from repro.scattered.bucketing import BUCKET_ELEMENTS
from repro.workloads.models import (
    COCONET_PLAN,
    NV_BERT_PLAN,
    PYTORCH_DDP_PLAN,
    ZERO_ADAM_PLAN,
    ZERO_LAMB_PLAN,
    ModelConfig,
    TrainingMemoryPlan,
    max_micro_batch,
)

#: Peak fraction of tensor-core throughput reached at large batch.
_PEAK_TRAINING_EFFICIENCY = 0.52
#: Micro-batch at which GEMM efficiency reaches half its peak.
_BATCH_HALF_SATURATION = 6.0
#: DDP gradient bucket size (§6.1.2: "buckets of 25MB").
DDP_BUCKET_BYTES = 25 * 1024 * 1024
#: Fraction of the backward pass DDP can hide communication under.
_DDP_OVERLAP_WINDOW = 0.55
#: Measured scattered-tensor overhead (Table 2: ~1-2%).
SCATTERED_OVERHEAD = 0.015


@dataclass
class IterationBreakdown:
    """Per-iteration time decomposition of one strategy."""

    micro_batch: int
    forward_backward: float
    gradient_copies: float
    communication: float
    optimizer: float

    @property
    def total(self) -> float:
        return (
            self.forward_backward
            + self.gradient_copies
            + self.communication
            + self.optimizer
        )

    @property
    def samples_per_second(self) -> float:
        return self.micro_batch / self.total


def _fwd_bwd_time(
    config: ModelConfig, micro_batch: int, cluster: Cluster
) -> float:
    """Forward+backward with batch-dependent GEMM efficiency."""
    gpu = cluster.node.gpu
    eff = _PEAK_TRAINING_EFFICIENCY * (
        micro_batch / (micro_batch + _BATCH_HALF_SATURATION)
    )
    flops = config.flops_per_sample() * micro_batch
    # per-layer kernel launches, forward and backward
    launches = 6 * config.num_layers * gpu.kernel_launch_overhead
    return flops / (gpu.fp16_tflops * 1e12 * eff) + launches


def _copy_time(nbytes: int, num_tensors: int, cluster: Cluster) -> float:
    """Copy scattered tensors to/from a contiguous buffer."""
    gpu = cluster.node.gpu
    per_tensor = nbytes / max(1, num_tensors)
    one = kernel_cost.pointwise_time(
        2 * per_tensor, gpu, kernel_cost.DEFAULT
    )
    return num_tensors * one


class TrainingStrategy:
    """Base class: memory plan + iteration-time decomposition."""

    name: str = "base"

    def __init__(self, optimizer: FusedOptimizerModel) -> None:
        self.optimizer = optimizer

    # -- memory ----------------------------------------------------------

    def memory_plan(self) -> TrainingMemoryPlan:
        raise NotImplementedError

    def max_micro_batch(
        self,
        config: ModelConfig,
        cluster: Cluster,
        cap: Optional[int] = None,
    ) -> Optional[int]:
        return max_micro_batch(
            config, self.memory_plan(), cluster.num_ranks,
            cluster.node.gpu, cap,
        )

    # -- time --------------------------------------------------------------

    def _comm_time(
        self, kind: str, nbytes: int, cluster: Cluster
    ) -> float:
        _, t = choose_config(
            kind, nbytes, cluster, world(cluster.num_ranks)
        )
        return t + cluster.node.gpu.kernel_launch_overhead

    def iteration(
        self, config: ModelConfig, micro_batch: int, cluster: Cluster
    ) -> IterationBreakdown:
        raise NotImplementedError

    def throughput(
        self,
        config: ModelConfig,
        cluster: Cluster,
        cap: Optional[int] = None,
    ) -> Optional[float]:
        """Samples/second at the strategy's best micro-batch, or None."""
        batch = self.max_micro_batch(config, cluster, cap)
        if batch is None:
            return None
        return self.iteration(config, batch, cluster).samples_per_second


class NVBertStrategy(TrainingStrategy):
    name = "NV BERT"

    def memory_plan(self) -> TrainingMemoryPlan:
        return NV_BERT_PLAN

    def iteration(self, config, micro_batch, cluster) -> IterationBreakdown:
        grad_bytes = config.param_bytes_fp16
        copies = 2 * _copy_time(grad_bytes, config.num_tensors, cluster)
        comm = self._comm_time("allreduce", grad_bytes, cluster)
        opt = self.optimizer.kernel_time(config.num_params, cluster.node.gpu)
        return IterationBreakdown(
            micro_batch,
            _fwd_bwd_time(config, micro_batch, cluster),
            copies, comm, opt,
        )


class PyTorchDDPStrategy(TrainingStrategy):
    name = "PyTorch DDP"

    def memory_plan(self) -> TrainingMemoryPlan:
        return PYTORCH_DDP_PLAN

    def iteration(self, config, micro_batch, cluster) -> IterationBreakdown:
        grad_bytes = config.param_bytes_fp16
        num_buckets = max(1, -(-grad_bytes // DDP_BUCKET_BYTES))
        per_bucket = self._comm_time(
            "allreduce", min(grad_bytes, DDP_BUCKET_BYTES), cluster
        )
        comm_total = num_buckets * per_bucket
        fwd_bwd = _fwd_bwd_time(config, micro_batch, cluster)
        hidden = min(comm_total, _DDP_OVERLAP_WINDOW * fwd_bwd)
        opt = self.optimizer.kernel_time(config.num_params, cluster.node.gpu)
        return IterationBreakdown(
            micro_batch, fwd_bwd, 0.0, comm_total - hidden, opt
        )


class ZeROStrategy(TrainingStrategy):
    name = "ZeRO"

    def memory_plan(self) -> TrainingMemoryPlan:
        if self.optimizer is FUSED_LAMB:
            return ZERO_LAMB_PLAN
        return ZERO_ADAM_PLAN

    def iteration(self, config, micro_batch, cluster) -> IterationBreakdown:
        grad_bytes = config.param_bytes_fp16
        copies = 2 * _copy_time(grad_bytes, config.num_tensors, cluster)
        if self.optimizer is FUSED_LAMB:
            # no state partitioning: plain AllReduce + full update
            comm = self._comm_time("allreduce", grad_bytes, cluster)
            opt = self.optimizer.kernel_time(
                config.num_params, cluster.node.gpu
            )
        else:
            comm = self._comm_time(
                "reducescatter", grad_bytes, cluster
            ) + self._comm_time("allgather", grad_bytes, cluster)
            opt = self.optimizer.kernel_time(
                config.num_params // cluster.num_ranks, cluster.node.gpu
            )
        return IterationBreakdown(
            micro_batch,
            _fwd_bwd_time(config, micro_batch, cluster),
            copies, comm, opt,
        )


class CoCoNetStrategy(TrainingStrategy):
    name = "CoCoNet"

    def memory_plan(self) -> TrainingMemoryPlan:
        return COCONET_PLAN

    def iteration(self, config, micro_batch, cluster) -> IterationBreakdown:
        grad_bytes = config.param_bytes_fp16
        gpu = cluster.node.gpu
        # fuse(RS-Opt-AG) over scattered tensors: one kernel, no copies;
        # the distributed update hides under the communication stream.
        comm = self._comm_time(
            "reducescatter", grad_bytes, cluster,
        ) + self._comm_time("allgather", grad_bytes, cluster, ) \
            - gpu.kernel_launch_overhead  # single fused launch
        update_traffic = kernel_cost.pointwise_time(
            (config.num_params // cluster.num_ranks)
            * self.optimizer.bytes_per_param,
            gpu, kernel_cost.FUSED_REGISTER_PRESSURE,
            include_launch=False,
        )
        comm = max(comm, update_traffic)
        comm *= 1.0 + SCATTERED_OVERHEAD
        return IterationBreakdown(
            micro_batch,
            _fwd_bwd_time(config, micro_batch, cluster),
            0.0, comm, 0.0,
        )


def ALL_STRATEGIES(optimizer: FusedOptimizerModel) -> List[TrainingStrategy]:
    """The Table 4 strategy lineup for one optimizer."""
    return [
        NVBertStrategy(optimizer),
        PyTorchDDPStrategy(optimizer),
        ZeROStrategy(optimizer),
        CoCoNetStrategy(optimizer),
    ]
