"""NVIDIA Apex FusedAdam / FusedLAMB cost behaviour.

"The baseline implementations perform additional preprocessing to
optimize the amount of thread-parallelism and instruction-level
parallelism per invocation. While this preprocessing cost hurts smaller
tensors, its benefit shows up for larger tensors where AR-Opt performs
worse." (§6.1.1)

The model: a fixed preprocessing ``setup`` cost plus memory-bound
traffic at the best achievable HBM fraction. Per-parameter traffic in
mixed precision counts every state array the optimizer touches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.gpu import GPU, TESLA_V100
from repro.perf import kernel_cost


@dataclass(frozen=True)
class FusedOptimizerModel:
    """Cost model of one Apex fused optimizer."""

    name: str
    #: HBM bytes touched per parameter in mixed precision: fp16 grad
    #: read, fp32 m/v read+write, fp32 master read+write, fp16 param
    #: write (+ extra norm passes for LAMB).
    bytes_per_param: float
    #: preprocessing before the kernel proper
    setup_seconds: float

    def kernel_time(
        self,
        num_params: int,
        gpu: GPU = TESLA_V100,
        include_launch: bool = True,
    ) -> float:
        params = kernel_cost.CostParams(
            ramp_bytes=kernel_cost.APEX_FUSED_OPTIMIZER.ramp_bytes,
            peak_fraction=kernel_cost.APEX_FUSED_OPTIMIZER.peak_fraction,
            setup=self.setup_seconds,
        )
        return kernel_cost.pointwise_time(
            num_params * self.bytes_per_param, gpu, params,
            include_launch=include_launch,
        )


#: g16(2) + m(4+4) + v(4+4) + master(4+4) + p16(2) = 28 B/param.
FUSED_ADAM = FusedOptimizerModel(
    name="FusedAdam", bytes_per_param=28.0, setup_seconds=25e-6
)

#: Adam traffic + re-reading params and the update for the two norms
#: (+4 +4 B/param), slightly larger setup for the multi-phase kernel.
FUSED_LAMB = FusedOptimizerModel(
    name="FusedLAMB", bytes_per_param=36.0, setup_seconds=32e-6
)
