"""Baseline implementations the paper compares against.

For the standalone experiments the baselines *are* schedules of the
same DSL programs (Megatron-LM's unfused execution, GShard-equivalent
split execution) and live with the workloads. This package adds:

* :mod:`repro.baselines.apex` — NVIDIA Apex FusedAdam / FusedLAMB cost
  behaviour (preprocessing overhead, best steady-state throughput);
* :mod:`repro.baselines.training` — end-to-end data-parallel training
  strategies for Table 4: NV BERT (contiguous copy + AllReduce),
  PyTorch DDP (25 MB bucket overlap), ZeRO (partitioned Adam state,
  unpartitioned LAMB), and CoCoNet's scattered fused schedule.
"""

from repro.baselines.apex import FusedOptimizerModel, FUSED_ADAM, FUSED_LAMB
from repro.baselines.training import (
    ALL_STRATEGIES,
    CoCoNetStrategy,
    IterationBreakdown,
    NVBertStrategy,
    PyTorchDDPStrategy,
    TrainingStrategy,
    ZeROStrategy,
)

__all__ = [
    "FusedOptimizerModel",
    "FUSED_ADAM",
    "FUSED_LAMB",
    "TrainingStrategy",
    "NVBertStrategy",
    "PyTorchDDPStrategy",
    "ZeROStrategy",
    "CoCoNetStrategy",
    "ALL_STRATEGIES",
    "IterationBreakdown",
]
