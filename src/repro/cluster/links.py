"""Interconnect links: NVLink (intra-node) and InfiniBand (inter-node)."""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Link:
    """A point-to-point link with bandwidth and per-hop latency.

    ``slowdown`` models a degraded or contended link (a straggler NIC,
    a cable running below spec, fair-shared flows): the nominal
    ``bandwidth`` stays on the datasheet value while
    :attr:`effective_bandwidth` divides it by the factor, so cost
    models can charge degraded wire time without forgetting what the
    healthy link looks like.
    """

    name: str
    bandwidth: float  # bytes/second, one direction (nominal)
    latency: float    # seconds per hop (message injection to delivery)
    slowdown: float = 1.0  # >= 1; see degraded()/contended()

    def __post_init__(self) -> None:
        if self.slowdown < 1.0:
            raise ValueError(
                f"link slowdown must be >= 1, got {self.slowdown}"
            )

    @property
    def effective_bandwidth(self) -> float:
        """Deliverable bandwidth under the current slowdown."""
        return self.bandwidth / self.slowdown

    def transfer_time(self, nbytes: int) -> float:
        """Latency plus serialization time at the effective bandwidth."""
        return self.latency + nbytes / self.effective_bandwidth

    def degraded(self, factor: float) -> "Link":
        """This link running ``factor`` times slower (factors compose)."""
        if factor < 1.0:
            raise ValueError(f"degradation factor must be >= 1, got {factor}")
        return replace(self, slowdown=self.slowdown * factor)

    def contended(self, flows: int) -> "Link":
        """This link fair-shared by ``flows`` concurrent flows."""
        if flows < 1:
            raise ValueError(f"flow count must be >= 1, got {flows}")
        return self.degraded(float(flows))


#: One V100 NVLink lane: 25 GB/s per direction; each GPU has six, all
#: routed through NVSwitch, so a GPU can inject 150 GB/s into the fabric.
NVLINK_V100 = Link(name="NVLink2", bandwidth=25e9, latency=0.7e-6)

#: EDR InfiniBand: 100 Gb/s = 12.5 GB/s per NIC; a DGX-2 has eight.
IB_EDR = Link(name="IB-EDR", bandwidth=12.5e9, latency=1.8e-6)
