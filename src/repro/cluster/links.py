"""Interconnect links: NVLink (intra-node) and InfiniBand (inter-node)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Link:
    """A point-to-point link with bandwidth and per-hop latency."""

    name: str
    bandwidth: float  # bytes/second, one direction
    latency: float    # seconds per hop (message injection to delivery)


#: One V100 NVLink lane: 25 GB/s per direction; each GPU has six, all
#: routed through NVSwitch, so a GPU can inject 150 GB/s into the fabric.
NVLINK_V100 = Link(name="NVLink2", bandwidth=25e9, latency=0.7e-6)

#: EDR InfiniBand: 100 Gb/s = 12.5 GB/s per NIC; a DGX-2 has eight.
IB_EDR = Link(name="IB-EDR", bandwidth=12.5e9, latency=1.8e-6)
