"""GPU device model.

Captures the V100 parameters the cost model needs: peak tensor-core and
FP32 throughput, HBM bandwidth, SM/occupancy structure (register
pressure of fused kernels reduces thread-level parallelism — the
paper's explanation for fusion losing at small sizes), kernel launch
overhead, and device memory capacity (Table 4's OOM boundary).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dtypes import DType, FP16


@dataclass(frozen=True)
class GPU:
    """A GPU model used by the performance simulator."""

    name: str
    fp16_tflops: float        # peak tensor-core FP16 TFLOP/s
    fp32_tflops: float        # peak FP32 TFLOP/s
    hbm_bandwidth: float      # bytes/second
    memory_bytes: int         # device memory capacity
    num_sms: int
    max_threads_per_sm: int
    registers_per_sm: int
    kernel_launch_overhead: float  # seconds per kernel launch

    def peak_flops(self, dtype: DType) -> float:
        """Peak FLOP/s for matrix math in the given precision."""
        if dtype.itemsize <= FP16.itemsize:
            return self.fp16_tflops * 1e12
        return self.fp32_tflops * 1e12

    def matmul_time(self, flops: int, bytes_touched: int, dtype: DType,
                    efficiency: float = 0.72) -> float:
        """Roofline GEMM time: max of math-bound and memory-bound terms.

        ``efficiency`` models achievable fraction of peak for realistic
        cuBLAS/CUTLASS kernels on transformer shapes.
        """
        math_time = flops / (self.peak_flops(dtype) * efficiency)
        mem_time = bytes_touched / self.hbm_bandwidth
        return max(math_time, mem_time)


#: The paper's evaluation GPU: NVIDIA Tesla V100 (32 GB SXM3).
TESLA_V100 = GPU(
    name="Tesla V100-SXM3-32GB",
    fp16_tflops=112.0,
    fp32_tflops=15.7,
    hbm_bandwidth=900e9,
    memory_bytes=32 * 1024**3,
    num_sms=80,
    max_threads_per_sm=2048,
    registers_per_sm=65536,
    kernel_launch_overhead=4e-6,
)
