"""Parametric hardware model of the paper's evaluation platform.

"Our experiments are performed on a cluster of 16 NVIDIA DGX-2 nodes
where each node contains dual 24-core Intel Xeon CPUs and 16 NVIDIA
Tesla V100 (32GB) GPUs. Each GPU within a node is connected to six
NVSwitches with six NVLinks (25 GBps per NVLink). Nodes are connected
with 8 non-blocking EDR InfiniBand (100 Gbps) network." (Section 6)
"""

from repro.cluster.gpu import GPU, TESLA_V100
from repro.cluster.links import IB_EDR, NVLINK_V100, Link
from repro.cluster.node import DGX2, NodeSpec
from repro.cluster.topology import Cluster

__all__ = [
    "GPU",
    "TESLA_V100",
    "Link",
    "NVLINK_V100",
    "IB_EDR",
    "NodeSpec",
    "DGX2",
    "Cluster",
]
