"""Node model: the NVIDIA DGX-2."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.gpu import GPU, TESLA_V100
from repro.cluster.links import IB_EDR, NVLINK_V100, Link


@dataclass(frozen=True)
class NodeSpec:
    """A multi-GPU server."""

    name: str
    gpu: GPU
    gpus_per_node: int
    nvlinks_per_gpu: int
    nvlink: Link
    nics_per_node: int
    nic: Link

    @property
    def gpu_fabric_bandwidth(self) -> float:
        """Per-GPU injection bandwidth into the NVSwitch fabric."""
        return self.nvlinks_per_gpu * self.nvlink.bandwidth

    @property
    def node_network_bandwidth(self) -> float:
        """Aggregate inter-node bandwidth of one node (all NICs)."""
        return self.nics_per_node * self.nic.bandwidth


#: The paper's node: 16 V100s, 6 NVLinks/GPU via NVSwitch, 8 EDR NICs.
DGX2 = NodeSpec(
    name="DGX-2",
    gpu=TESLA_V100,
    gpus_per_node=16,
    nvlinks_per_gpu=6,
    nvlink=NVLINK_V100,
    nics_per_node=8,
    nic=IB_EDR,
)
