"""Cluster topology: nodes of GPUs joined by an InfiniBand network.

Provides the queries the NCCL simulator needs: which ranks share a node,
the bandwidth/latency of the edge between two ranks, and aggregate
bandwidth limits (per-GPU NVSwitch injection, per-node NIC capacity).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.node import DGX2, NodeSpec
from repro.errors import CoCoNetError


@dataclass(frozen=True)
class Cluster:
    """``num_nodes`` identical nodes; global ranks are dense GPU indices."""

    num_nodes: int
    node: NodeSpec = DGX2

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise CoCoNetError("cluster needs at least one node")

    @property
    def num_ranks(self) -> int:
        return self.num_nodes * self.node.gpus_per_node

    def node_of(self, rank: int) -> int:
        if not 0 <= rank < self.num_ranks:
            raise CoCoNetError(
                f"rank {rank} out of range for {self.num_ranks}-GPU cluster"
            )
        return rank // self.node.gpus_per_node

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)

    def edge_latency(self, a: int, b: int) -> float:
        """Per-hop latency between two ranks."""
        if self.same_node(a, b):
            return self.node.nvlink.latency
        return self.node.nic.latency

    def edge_bandwidth(self, a: int, b: int) -> float:
        """Single-stream bandwidth of the direct edge between two ranks.

        Intra-node traffic can use the full per-GPU NVSwitch injection
        bandwidth; a single inter-node stream is limited to one NIC.
        """
        if self.same_node(a, b):
            return self.node.gpu_fabric_bandwidth
        return self.node.nic.bandwidth

    def spans_nodes(self) -> bool:
        return self.num_nodes > 1

    def signature(self) -> str:
        """Canonical topology identity, stable across processes.

        A tuned schedule is only valid for the topology it was tuned on
        (node width decides hierarchical splits, link speeds decide the
        protocol/channel sweep), so the persistent schedule cache
        (:mod:`repro.serve`) keys every record by this string alongside
        the program's structural hash.

        >>> Cluster(2).signature()
        'DGX-2x16/nodes2'
        """
        return f"{self.node.name}x{self.node.gpus_per_node}/nodes{self.num_nodes}"

    def describe(self) -> str:
        n = self.node
        return (
            f"{self.num_nodes}x {n.name} "
            f"({n.gpus_per_node}x {n.gpu.name}/node, "
            f"{n.gpu_fabric_bandwidth / 1e9:.0f} GB/s NVSwitch per GPU, "
            f"{n.node_network_bandwidth / 1e9:.0f} GB/s IB per node)"
        )


#: The paper's testbed: 16 DGX-2 nodes = 256 V100s.
def paper_testbed() -> Cluster:
    return Cluster(num_nodes=16)
