"""repro — a reproduction of CoCoNet (ASPLOS 2022).

CoCoNet breaks the abstraction barrier between computation and
communication in distributed machine-learning workloads with (i) a DSL
expressing both as first-class operations over distributed tensors,
(ii) four semantics-preserving transformations (split / reorder / fuse /
overlap), and (iii) a compiler generating jointly optimized kernels.

Subpackages:

* :mod:`repro.core` — the DSL, transformations, autotuner, code generator.
* :mod:`repro.cluster` — parametric hardware model (V100 / DGX-2 / IB).
* :mod:`repro.nccl` — simulated NCCL: protocols, channels, ring algorithms.
* :mod:`repro.perf` — discrete-event performance model.
* :mod:`repro.runtime` — numeric multi-rank executor (correctness oracle).
* :mod:`repro.scattered` — scattered-tensor bucketing.
* :mod:`repro.workloads` — Adam/LAMB, model- and pipeline-parallel programs.
* :mod:`repro.baselines` — NV-BERT / PyTorch-DDP / ZeRO / Megatron / GShard.
"""

__version__ = "1.0.0"
