"""Unified tracing & metrics: measured timelines, predicted-schedule
events, Perfetto export, and predicted-vs-measured validation.

One event vocabulary across every layer of the stack:

* :class:`Tracer` + typed events (:mod:`repro.observe.events`) — the
  measured side, recorded by ``Executor.run_lowered`` and merged from
  the SPMD backend's per-rank ring buffers.
* :class:`TraceRing` / :func:`merge_rank_traces`
  (:mod:`repro.observe.ring`) — file-backed per-rank buffers that
  survive process boundaries and faulty-rank teardown.
* :mod:`repro.observe.compare` — joins a DES-predicted ``Timeline``
  with measured spans into a per-op latency-ratio table.
* :mod:`repro.observe.perfetto` — Chrome/Perfetto ``trace_event``
  JSON export (open at https://ui.perfetto.dev).
"""

from repro.observe.compare import (
    OpComparison,
    TimelineComparison,
    compare_timelines,
)
from repro.observe.events import (
    CounterEvent,
    InstantEvent,
    SpanEvent,
    Tracer,
    describe_events,
)
from repro.observe.metrics import MetricsRegistry
from repro.observe.perfetto import export, to_trace_events, validate, write_trace
from repro.observe.record import LoweredRunRecorder
from repro.observe.ring import TraceRing, merge_rank_traces

__all__ = [
    "Tracer",
    "SpanEvent",
    "InstantEvent",
    "CounterEvent",
    "describe_events",
    "MetricsRegistry",
    "LoweredRunRecorder",
    "TraceRing",
    "merge_rank_traces",
    "OpComparison",
    "TimelineComparison",
    "compare_timelines",
    "to_trace_events",
    "export",
    "validate",
    "write_trace",
]
