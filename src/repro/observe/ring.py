"""File-backed per-rank trace ring buffers for the SPMD backend.

Each SPMD rank process appends fixed-size records into its own
memory-mapped file; the parent merges every rank's file after the run.
The design constraints come straight from the failure-handling story of
:mod:`repro.runtime.spmd`:

* **Survives faulty teardown.** Records live in a plain file mapped
  ``MAP_SHARED`` — the page cache keeps every record written before a
  worker dies (even on ``terminate()``), so the parent can still
  harvest the timeline of a failing rank. A record only becomes
  visible when the header count is bumped *after* the record write, so
  a torn in-flight record is never read.
* **No ``/dev/shm`` footprint.** Rings are ordinary files in a caller
  owned directory (the executor uses a temp dir it removes), so the
  backend's no-leaked-segments guarantee is untouched.
* **Low overhead.** One record is a single structured-dtype row write
  into the mmap (~112 B); no locks, since each rank owns its file.
  Names and site keys are fixed-width bytes (truncated if longer) so
  no string table needs to survive the process.

Timestamps are ``time.monotonic_ns()`` — ``CLOCK_MONOTONIC`` is
system-wide on Linux, so spans from different rank processes are
directly comparable; the merge rebases them onto the earliest record.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

import numpy as np

from repro.observe.events import CounterEvent, InstantEvent, SpanEvent
from repro.observe.metrics import MetricsRegistry

__all__ = [
    "TraceRing",
    "KIND_PUBLISH",
    "KIND_WAIT",
    "KIND_REDUCE",
    "KIND_KERNEL",
    "KIND_STALL",
    "KIND_FAULT",
    "KIND_COMPILE",
    "KIND_NAMES",
    "merge_rank_traces",
]

#: record kinds (the communicator's phases plus generated-kernel spans)
KIND_PUBLISH = 1
KIND_WAIT = 2
KIND_REDUCE = 3
KIND_KERNEL = 4
#: point markers: a soft-deadline escalation inside a wait, and an
#: injected/observed fault (stall_publish, drop_chunk, die, stream-leak)
KIND_STALL = 5
KIND_FAULT = 6
#: native kernel-cache outcome (``compile:<key>`` / ``hit:<key>`` /
#: ``recompile:<key>``); ``dur`` carries the elapsed nanoseconds
KIND_COMPILE = 7

KIND_NAMES = {
    KIND_PUBLISH: "publish",
    KIND_WAIT: "wait",
    KIND_REDUCE: "reduce",
    KIND_KERNEL: "kernel",
    KIND_STALL: "stall",
    KIND_FAULT: "fault",
    KIND_COMPILE: "compile",
}

#: kinds merged as point markers rather than spans
_INSTANT_KINDS = (KIND_STALL, KIND_FAULT, KIND_COMPILE)

_MAGIC = 0x54524143  # "TRAC"

HEADER_DTYPE = np.dtype(
    [("magic", "i8"), ("capacity", "i8"), ("count", "i8"), ("_pad", "i8")]
)

RECORD_DTYPE = np.dtype(
    [
        ("kind", "i8"),
        ("ts", "i8"),      # monotonic_ns at span start
        ("dur", "i8"),     # span duration, ns
        ("nbytes", "i8"),  # payload bytes moved (publish records)
        ("seq", "i8"),     # site sequence number / chunk index
        ("site", "S24"),   # communication-site key, truncated
        ("name", "S48"),   # kernel / op name, truncated
    ]
)

DEFAULT_CAPACITY = 32768


class TraceRing:
    """A fixed-capacity ring of trace records over one mapped file.

    ``count`` in the header is the *total* number of appends; once it
    exceeds the capacity the ring wraps and the oldest records are
    overwritten (``dropped`` = ``count - capacity``). The writer bumps
    the count only after the record row is fully written, so a reader
    in another process never observes a half-written record.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._mm: Optional[np.memmap] = np.memmap(path, dtype=np.uint8,
                                                  mode="r+")
        if self._mm.size < HEADER_DTYPE.itemsize:
            self.close()
            raise ValueError(f"{path!r} is not a trace ring (truncated)")
        self._header = np.ndarray(
            (), dtype=HEADER_DTYPE, buffer=self._mm
        )
        if int(self._header["magic"]) != _MAGIC:
            self.close()
            raise ValueError(f"{path!r} is not a trace ring")
        self.capacity = int(self._header["capacity"])
        body = self._mm.size - HEADER_DTYPE.itemsize
        if self.capacity < 1 or body < self.capacity * RECORD_DTYPE.itemsize:
            self.close()
            raise ValueError(
                f"{path!r} is not a trace ring (corrupt capacity)"
            )
        self._records = np.ndarray(
            (self.capacity,), dtype=RECORD_DTYPE, buffer=self._mm,
            offset=HEADER_DTYPE.itemsize,
        )

    @classmethod
    def create(cls, path: str, capacity: int = DEFAULT_CAPACITY) -> "TraceRing":
        """Preallocate and zero-initialize a ring file."""
        capacity = max(1, int(capacity))
        size = HEADER_DTYPE.itemsize + capacity * RECORD_DTYPE.itemsize
        with open(path, "wb") as f:
            f.truncate(size)
        mm = np.memmap(path, dtype=np.uint8, mode="r+")
        header = np.ndarray((), dtype=HEADER_DTYPE, buffer=mm)
        header["capacity"] = capacity
        header["magic"] = _MAGIC
        del header
        mm.flush()
        del mm
        return cls(path)

    # -- writer side ----------------------------------------------------

    def append(
        self,
        kind: int,
        ts: int,
        dur: int,
        nbytes: int = 0,
        seq: int = 0,
        site: str = "",
        name: str = "",
    ) -> None:
        count = int(self._header["count"])
        rec = self._records[count % self.capacity]
        rec["kind"] = kind
        rec["ts"] = ts
        rec["dur"] = dur
        rec["nbytes"] = nbytes
        rec["seq"] = seq
        rec["site"] = site.encode("ascii", "replace")[:24]
        rec["name"] = name.encode("ascii", "replace")[:48]
        # publish the record: the count bump makes it reader-visible
        self._header["count"] = count + 1

    # -- reader side ----------------------------------------------------

    @property
    def count(self) -> int:
        return int(self._header["count"])

    @property
    def dropped(self) -> int:
        return max(0, self.count - self.capacity)

    def records(self) -> np.ndarray:
        """A copy of the valid records, oldest first."""
        count = self.count
        if count <= self.capacity:
            return self._records[:count].copy()
        cut = count % self.capacity
        return np.concatenate(
            [self._records[cut:], self._records[:cut]]
        )

    def close(self) -> None:
        self._records = None
        self._header = None
        if self._mm is not None:
            self._mm.flush()
            del self._mm
            self._mm = None


def _rank_of(filename: str) -> Optional[int]:
    stem = os.path.splitext(filename)[0]
    if stem.startswith("rank") and stem[4:].isdigit():
        return int(stem[4:])
    return None


def merge_rank_traces(
    trace_dir: str,
    base: float = 0.0,
    metrics: Optional[MetricsRegistry] = None,
) -> List[object]:
    """Merge every ``rank<N>.ring`` file of a run into one event list.

    Timestamps are rebased so the earliest record across all ranks maps
    to ``base`` seconds (typically the parent tracer's clock reading at
    launch time). Publish/wait/reduce records land on each rank's
    ``comm`` track, generated-kernel spans on its ``kernels`` track; a
    per-rank bytes-moved counter series is emitted alongside, and
    ``metrics`` (when given) receives ``spmd.rank<N>.bytes_published``,
    per-rank event counts, and any dropped-record count.

    Every rank's ring health is *tagged*, never silently dropped: a
    rank whose ring file is unreadable gets a ``ring-corrupt`` instant
    marker (and ``spmd.rank<N>.ring_corrupt`` metric), a wrapped ring
    that lost its oldest records gets ``ring-truncated``, and a valid
    ring with zero records gets ``ring-empty`` — so a post-mortem can
    tell "rank died mid-run" (records up to the fault, or a truncated
    tail) from "rank never traced" (empty/corrupt from the start) while
    still harvesting every healthy rank.
    """
    per_rank: Dict[int, np.ndarray] = {}
    statuses: Dict[int, str] = {}
    dropped_total = 0
    try:
        names = sorted(os.listdir(trace_dir))
    except OSError:
        names = []
    for fn in names:
        rank = _rank_of(fn)
        if rank is None:
            continue
        try:
            ring = TraceRing(os.path.join(trace_dir, fn))
        except (OSError, ValueError):
            per_rank[rank] = np.empty((0,), dtype=RECORD_DTYPE)
            statuses[rank] = "corrupt"
            continue
        try:
            per_rank[rank] = ring.records()
            dropped_total += ring.dropped
            if ring.dropped:
                statuses[rank] = "truncated"
            elif ring.count == 0:
                statuses[rank] = "empty"
            else:
                statuses[rank] = "ok"
        finally:
            ring.close()

    t0 = min(
        (int(recs["ts"].min()) for recs in per_rank.values() if len(recs)),
        default=0,
    )
    events: List[object] = []
    for rank, recs in sorted(per_rank.items()):
        pid = f"rank{rank}"
        bytes_published = 0
        for rec in recs:
            kind = int(rec["kind"])
            cat = KIND_NAMES.get(kind, f"kind{kind}")
            name = rec["name"].decode("ascii", "replace") or cat
            site = rec["site"].decode("ascii", "replace")
            ts = base + (int(rec["ts"]) - t0) / 1e9
            dur = int(rec["dur"]) / 1e9
            args: Dict[str, object] = {"seq": int(rec["seq"])}
            if site:
                args["site"] = site
            nbytes = int(rec["nbytes"])
            if nbytes:
                args["bytes"] = nbytes
            if kind in _INSTANT_KINDS:
                if kind == KIND_COMPILE:
                    # cache outcome next to the kernels it delayed; the
                    # record's dur carries the compile/load seconds
                    args["seconds"] = dur
                    events.append(
                        InstantEvent(name, cat, ts, pid, "kernels", args)
                    )
                    if metrics is not None:
                        if name.startswith(("compile:", "recompile:")):
                            metrics.inc(f"spmd.{pid}.kernel_compiles")
                            metrics.inc(
                                f"spmd.{pid}.compile_seconds", dur
                            )
                        elif name.startswith("hit:"):
                            metrics.inc(f"spmd.{pid}.kernel_cache_hits")
                    continue
                events.append(
                    InstantEvent(name, cat, ts, pid, "faults", args)
                )
                continue
            tid = "kernels" if kind == KIND_KERNEL else "comm"
            events.append(SpanEvent(name, cat, ts, dur, pid, tid, args))
            if kind == KIND_PUBLISH:
                bytes_published += nbytes
                events.append(
                    CounterEvent(
                        "bytes_published", ts + dur, bytes_published, pid
                    )
                )
        status = statuses.get(rank, "ok")
        if status != "ok":
            events.append(
                InstantEvent(
                    f"ring-{status}", "fault", base, pid, "faults",
                    {"rank": rank, "records": int(len(recs))},
                )
            )
            if metrics is not None:
                metrics.set(f"spmd.{pid}.ring_{status}", 1)
        if metrics is not None:
            metrics.set(f"spmd.{pid}.bytes_published", bytes_published)
            metrics.set(f"spmd.{pid}.events", int(len(recs)))
    if metrics is not None and dropped_total:
        metrics.inc("spmd.events_dropped", dropped_total)
    events.sort(key=lambda e: e.ts)
    return events
