"""Chrome/Perfetto ``trace_event`` JSON export.

Converts the typed event lists of :mod:`repro.observe.events` into the
`trace-event format`__ that ``chrome://tracing`` and ``ui.perfetto.dev``
open directly: each (pid, tid) pair becomes a named track, spans become
complete ("X") events with microsecond timestamps, instants become "i"
events and counters become "C" series. Our string pids/tids ("main",
"rank0", an issue-stream name) map onto the integer ids the format
requires, with "M" metadata events carrying the human names.

__ https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from repro.observe.events import CounterEvent, InstantEvent, SpanEvent

__all__ = ["to_trace_events", "export", "write_trace", "validate"]

_PHASES = {"X", "i", "C", "M"}


def to_trace_events(events: Iterable[object]) -> List[dict]:
    """Lower typed events to ``trace_event`` dicts (ts/dur in µs)."""
    pids: Dict[str, int] = {}
    tids: Dict[tuple, int] = {}
    out: List[dict] = []

    def pid_of(name: str) -> int:
        if name not in pids:
            pids[name] = len(pids) + 1
            out.append(
                {
                    "name": "process_name", "ph": "M", "pid": pids[name],
                    "tid": 0, "args": {"name": name},
                }
            )
        return pids[name]

    def tid_of(pid_name: str, tid_name: str) -> int:
        key = (pid_name, tid_name)
        if key not in tids:
            tids[key] = len(tids) + 1
            out.append(
                {
                    "name": "thread_name", "ph": "M",
                    "pid": pid_of(pid_name), "tid": tids[key],
                    "args": {"name": tid_name},
                }
            )
        return tids[key]

    for ev in events:
        if isinstance(ev, SpanEvent):
            out.append(
                {
                    "name": ev.name, "cat": ev.cat or "span", "ph": "X",
                    "ts": ev.ts * 1e6, "dur": ev.dur * 1e6,
                    "pid": pid_of(ev.pid), "tid": tid_of(ev.pid, ev.tid),
                    "args": dict(ev.args),
                }
            )
        elif isinstance(ev, InstantEvent):
            out.append(
                {
                    "name": ev.name, "cat": ev.cat or "instant", "ph": "i",
                    "ts": ev.ts * 1e6, "s": "t",
                    "pid": pid_of(ev.pid), "tid": tid_of(ev.pid, ev.tid),
                    "args": dict(ev.args),
                }
            )
        elif isinstance(ev, CounterEvent):
            out.append(
                {
                    "name": ev.name, "ph": "C", "ts": ev.ts * 1e6,
                    "pid": pid_of(ev.pid), "tid": tid_of(ev.pid, ev.tid),
                    "args": {"value": ev.value},
                }
            )
    return out


def export(events: Iterable[object]) -> dict:
    """The full JSON-object form Perfetto opens."""
    return {
        "traceEvents": to_trace_events(events),
        "displayTimeUnit": "ms",
    }


def write_trace(events: Iterable[object], path: str) -> dict:
    """Export ``events`` and write the JSON document to ``path``."""
    doc = export(events)
    with open(path, "w") as f:
        json.dump(doc, f)
    return doc


def validate(doc: dict) -> List[str]:
    """Schema-check an exported document; returns problems (empty = ok).

    Covers the invariants the viewers actually rely on: a traceEvents
    list, known phases, integer pid/tid, finite non-negative ts/dur,
    JSON-serializable args, and "M" name metadata for every (pid, tid)
    referenced by a timed event.
    """
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    named_pids, named_tids = set(), set()
    used_pids, used_tids = set(), set()
    for i, ev in enumerate(events):
        where = f"event {i}"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            problems.append(f"{where}: missing name")
        pid, tid = ev.get("pid"), ev.get("tid")
        if not isinstance(pid, int) or not isinstance(tid, int):
            problems.append(f"{where}: pid/tid must be ints")
            continue
        if ph == "M":
            if ev["name"] == "process_name":
                named_pids.add(pid)
            elif ev["name"] == "thread_name":
                named_tids.add((pid, tid))
            continue
        used_pids.add(pid)
        if ph != "C":
            used_tids.add((pid, tid))
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts != ts or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur != dur or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        if ph == "i" and ev.get("s") not in (None, "g", "p", "t"):
            problems.append(f"{where}: bad instant scope {ev.get('s')!r}")
        try:
            json.dumps(ev.get("args", {}))
        except (TypeError, ValueError):
            problems.append(f"{where}: args not JSON-serializable")
    for pid in sorted(used_pids - named_pids):
        problems.append(f"pid {pid} has no process_name metadata")
    for pid, tid in sorted(used_tids - named_tids):
        problems.append(f"(pid {pid}, tid {tid}) has no thread_name metadata")
    return problems
