"""Align a predicted DES :class:`Timeline` against measured trace events.

The autotuner ranks schedules purely by the alpha-beta cost model; this
module is the empirical check on that trust. Both sides speak the same
vocabulary — the DES emits task names like ``mm`` and ``mm#c3`` (chunk
*c3* of kernel ``mm``), and the measured recorders name their spans
identically — so alignment is a join on the base kernel name, with
chunk spans folded into their kernel's total.

The result is a per-op table of predicted vs measured duration, the
measured/predicted latency ratio, and the top-k mispredictions by
log-ratio magnitude (a 2x underestimate and a 2x overestimate are
equally wrong).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.observe.events import SpanEvent

__all__ = ["OpComparison", "TimelineComparison", "compare_timelines"]

#: measured span categories that correspond to predicted kernel tasks
MEASURED_CATS = ("launch", "whole", "chunk", "kernel")


def _base_name(name: str) -> str:
    return name.split("#", 1)[0]


@dataclass
class OpComparison:
    """One kernel's predicted vs measured totals (seconds)."""

    name: str
    predicted: float
    measured: float
    spans: int  # measured span count folded into ``measured``

    @property
    def ratio(self) -> float:
        """measured / predicted; inf when the prediction was zero."""
        if self.predicted <= 0:
            return math.inf
        return self.measured / self.predicted

    @property
    def log_error(self) -> float:
        """|log2 ratio| — symmetric misprediction magnitude."""
        r = self.ratio
        if r <= 0 or math.isinf(r):
            return math.inf
        return abs(math.log2(r))


@dataclass
class TimelineComparison:
    """The aligned per-op table plus the unmatched remainders."""

    rows: List[OpComparison]
    only_predicted: List[str]
    only_measured: List[str]

    def row(self, name: str) -> Optional[OpComparison]:
        for r in self.rows:
            if r.name == name:
                return r
        return None

    def top_mispredictions(self, k: int = 5) -> List[OpComparison]:
        return sorted(
            self.rows, key=lambda r: r.log_error, reverse=True
        )[:k]

    def describe(self) -> str:
        """Aligned text table, worst mispredictions last-column flagged."""
        if not self.rows:
            return "(no aligned ops)"
        width = max(len(r.name) for r in self.rows)
        width = max(width, len("op"))
        lines = [
            f"{'op':<{width}}  {'predicted':>12}  {'measured':>12}  "
            f"{'ratio':>8}"
        ]
        worst = {id(r) for r in self.top_mispredictions(3)}
        for r in sorted(self.rows, key=lambda r: r.name):
            ratio = "inf" if math.isinf(r.ratio) else f"{r.ratio:8.2f}"
            flag = "  <-- misprediction" if id(r) in worst and \
                r.log_error > 1.0 else ""
            lines.append(
                f"{r.name:<{width}}  {r.predicted * 1e6:10.1f} us  "
                f"{r.measured * 1e6:10.1f} us  {ratio}{flag}"
            )
        if self.only_predicted:
            lines.append(
                "only predicted: " + ", ".join(sorted(self.only_predicted))
            )
        if self.only_measured:
            lines.append(
                "only measured: " + ", ".join(sorted(self.only_measured))
            )
        return "\n".join(lines)


def compare_timelines(
    timeline,
    events: Iterable[object],
    cats: Tuple[str, ...] = MEASURED_CATS,
) -> TimelineComparison:
    """Join a DES ``Timeline`` with measured events on base kernel name.

    ``timeline`` is a :class:`repro.perf.engine.Timeline` (anything with
    a ``spans`` mapping of name → (start, end) works). Measured spans
    whose category is not in ``cats`` (chunk-loop envelopes, comm
    phases) are ignored — they have no per-kernel prediction to join.
    """
    predicted: Dict[str, float] = {}
    for name, (start, end) in timeline.spans.items():
        base = _base_name(name)
        predicted[base] = predicted.get(base, 0.0) + (end - start)

    measured: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for ev in events:
        if not isinstance(ev, SpanEvent) or ev.cat not in cats:
            continue
        base = _base_name(ev.name)
        measured[base] = measured.get(base, 0.0) + ev.dur
        counts[base] = counts.get(base, 0) + 1

    rows = [
        OpComparison(name, predicted[name], measured[name], counts[name])
        for name in predicted
        if name in measured
    ]
    rows.sort(key=lambda r: r.name)
    return TimelineComparison(
        rows=rows,
        only_predicted=sorted(set(predicted) - set(measured)),
        only_measured=sorted(set(measured) - set(predicted)),
    )
