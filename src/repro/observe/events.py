"""Typed trace events and the low-overhead :class:`Tracer`.

The unified event schema of the observability layer: every producer —
the lowered-stream interpreter, the SPMD communicator rings, the DES
cost model's predicted timeline — emits the same three event types, so
exporters (:mod:`repro.observe.perfetto`) and the predicted-vs-measured
aligner (:mod:`repro.observe.compare`) need exactly one vocabulary.

* :class:`SpanEvent` — a named interval on a (pid, tid) track. ``pid``
  identifies the *process-level* track ("main", "rank0".."rankN",
  "predicted"); ``tid`` the stream/resource within it (an issue stream,
  ``gpu:0``, ``fabric:node0``, "comm").
* :class:`InstantEvent` — a point marker (bucket-table packs).
* :class:`CounterEvent` — a sampled numeric series (bytes moved).

Timestamps are float *seconds* relative to a tracer's epoch (the DES
timeline natively speaks seconds; measured events subtract the epoch of
the owning tracer). The tracer clock is ``time.perf_counter`` — the
highest-resolution monotonic clock Python exposes — and recording one
span costs two clock reads plus one dataclass allocation, cheap enough
to leave enabled around every lowered instruction.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.observe.metrics import MetricsRegistry

__all__ = [
    "SpanEvent",
    "InstantEvent",
    "CounterEvent",
    "Tracer",
    "describe_events",
]


@dataclass
class SpanEvent:
    """A named interval on a (pid, tid) track."""

    name: str
    cat: str
    ts: float
    dur: float
    pid: str
    tid: str
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.ts + self.dur


@dataclass
class InstantEvent:
    """A point marker on a (pid, tid) track."""

    name: str
    cat: str
    ts: float
    pid: str
    tid: str
    args: Dict[str, object] = field(default_factory=dict)


@dataclass
class CounterEvent:
    """One sample of a numeric series."""

    name: str
    ts: float
    value: float
    pid: str
    tid: str = "counters"


class Tracer:
    """Collects typed events against one monotonic epoch.

    The tracer owns an event list, a :class:`MetricsRegistry` for
    scalar counters that do not need a time series, and the epoch all
    measured timestamps are relative to. It is deliberately not
    thread-safe beyond CPython list-append atomicity — each producer
    (process, stream thread) records into its own buffer and buffers
    are merged afterwards (see :func:`repro.observe.ring.merge_rank_traces`).
    """

    def __init__(self, pid: str = "main") -> None:
        self.pid = pid
        self.events: List[object] = []
        self.metrics = MetricsRegistry()
        self._epoch = time.perf_counter()

    # -- clock ----------------------------------------------------------

    def now(self) -> float:
        """Seconds since this tracer's epoch."""
        return time.perf_counter() - self._epoch

    # -- recording ------------------------------------------------------

    @contextmanager
    def span(self, name: str, cat: str = "", tid: str = "main", **args):
        """Record the enclosed block as one :class:`SpanEvent`."""
        t0 = self.now()
        try:
            yield
        finally:
            self.events.append(
                SpanEvent(name, cat, t0, self.now() - t0, self.pid, tid, args)
            )

    def complete(
        self,
        name: str,
        ts: float,
        dur: float,
        cat: str = "",
        tid: str = "main",
        pid: Optional[str] = None,
        args: Optional[Dict[str, object]] = None,
    ) -> SpanEvent:
        """Record an externally timed span (caller supplies ts/dur)."""
        ev = SpanEvent(
            name, cat, ts, dur, pid or self.pid, tid, args or {}
        )
        self.events.append(ev)
        return ev

    def instant(
        self,
        name: str,
        cat: str = "",
        tid: str = "main",
        args: Optional[Dict[str, object]] = None,
        ts: Optional[float] = None,
    ) -> InstantEvent:
        ev = InstantEvent(
            name, cat, self.now() if ts is None else ts, self.pid, tid,
            args or {},
        )
        self.events.append(ev)
        return ev

    def counter(
        self,
        name: str,
        value: float,
        tid: str = "counters",
        pid: Optional[str] = None,
        ts: Optional[float] = None,
    ) -> CounterEvent:
        ev = CounterEvent(
            name, self.now() if ts is None else ts, float(value),
            pid or self.pid, tid,
        )
        self.events.append(ev)
        return ev

    # -- access ---------------------------------------------------------

    def extend(self, events: Iterable[object]) -> None:
        self.events.extend(events)

    def spans(self, cat: Optional[str] = None) -> List[SpanEvent]:
        out = [e for e in self.events if isinstance(e, SpanEvent)]
        if cat is not None:
            out = [e for e in out if e.cat == cat]
        return out


def describe_events(events: Iterable[object], limit: Optional[int] = None) -> str:
    """Plain-text timeline report, one line per span in start order.

    The measured-trace sibling of ``Timeline.describe`` — same
    microsecond column layout, plus the (pid, tid) track of each span.
    """
    spans = sorted(
        (e for e in events if isinstance(e, SpanEvent)),
        key=lambda e: (e.ts, e.pid, e.tid),
    )
    if limit is not None:
        spans = spans[:limit]
    return "\n".join(
        f"{e.ts * 1e6:10.1f} .. {e.end * 1e6:10.1f} us  "
        f"[{e.pid}/{e.tid}] {e.name}"
        for e in spans
    )
