"""A flat named-scalar metrics registry.

One registry per tracer (or per autotuner run) holds counters and
gauges under dotted names — ``tuner.candidates``, ``tuner.dedup_hits``,
``cost_model.memo_hit_rate``, ``spmd.rank0.bytes_published`` — so every
layer surfaces its statistics through the same object the exporters
read. Counters are plain Python floats behind a dict; ``inc`` on a hot
path costs one dict lookup.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["MetricsRegistry"]


class MetricsRegistry:
    """Named counters and gauges.

    >>> m = MetricsRegistry()
    >>> m.inc("tuner.candidates")
    1
    >>> m.inc("tuner.candidates", 4)
    5
    >>> m.set("cost_model.memo_hit_rate", 0.75)
    >>> m.get("cost_model.memo_hit_rate")
    0.75
    >>> m.get("never.touched")
    0
    >>> sorted(m.snapshot())
    ['cost_model.memo_hit_rate', 'tuner.candidates']
    >>> other = MetricsRegistry()
    >>> _ = other.inc("tuner.candidates", 10)
    >>> m.merge(other)
    >>> m.get("tuner.candidates")
    15
    >>> "tuner.candidates" in m, len(m)
    (True, 2)
    """

    def __init__(self) -> None:
        self._values: Dict[str, float] = {}

    def inc(self, name: str, n: float = 1) -> float:
        """Add ``n`` to counter ``name`` (created at 0); returns it."""
        v = self._values.get(name, 0) + n
        self._values[name] = v
        return v

    def set(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value``."""
        self._values[name] = value

    def get(self, name: str, default: float = 0) -> float:
        return self._values.get(name, default)

    def snapshot(self) -> Dict[str, float]:
        return dict(self._values)

    def merge(self, other: "MetricsRegistry") -> None:
        """Accumulate another registry's counters into this one."""
        for name, value in other.snapshot().items():
            self.inc(name, value)

    def describe(self) -> str:
        if not self._values:
            return "(no metrics)"
        width = max(len(k) for k in self._values)
        lines = []
        for name in sorted(self._values):
            v = self._values[name]
            shown = f"{v:.4f}".rstrip("0").rstrip(".") if isinstance(
                v, float
            ) else str(v)
            lines.append(f"{name:<{width}}  {shown}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, name: str) -> bool:
        return name in self._values
