"""Recorder bridging the lowered-stream interpreter to trace events.

``Executor.run_lowered`` historically appended bare tuples —
``("launch", name, stream)``, ``("chunk", member, step, c)`` — into a
caller-supplied list. :class:`LoweredRunRecorder` keeps that protocol
alive verbatim (tests and tools that pattern-match the tuples keep
working) while simultaneously emitting typed, *timed*
:class:`~repro.observe.events.SpanEvent` objects into a
:class:`~repro.observe.events.Tracer`. Either side may be absent: pass
only ``legacy`` for the old behaviour at the old cost, only ``tracer``
for structured tracing, or both during migration.

Chunk spans are named ``{member}#c{chunk}`` to match the task names the
DES cost model emits (``ProgramCostModel._emit_chunk_tasks``), so the
predicted-vs-measured aligner joins them without a translation table.
"""

from __future__ import annotations

from typing import List, Optional

from repro.observe.events import Tracer

__all__ = ["LoweredRunRecorder"]


class LoweredRunRecorder:
    """Per-run recording facade handed down into ``_run_chunk_loop``."""

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        legacy: Optional[List[tuple]] = None,
    ) -> None:
        self.tracer = tracer
        self.legacy = legacy

    def now(self) -> float:
        return self.tracer.now() if self.tracer is not None else 0.0

    def pack(self, instr) -> None:
        if self.legacy is not None:
            self.legacy.append(
                ("pack", instr.name, instr.num_buckets, instr.metadata_bytes)
            )
        if self.tracer is not None:
            self.tracer.instant(
                instr.name,
                cat="pack",
                tid=instr.stream,
                args={
                    "num_buckets": instr.num_buckets,
                    "metadata_bytes": instr.metadata_bytes,
                },
            )

    def launch(self, instr, t0: float) -> None:
        if self.legacy is not None:
            self.legacy.append(("launch", instr.name, instr.stream))
        if self.tracer is not None:
            self.tracer.complete(
                instr.name,
                t0,
                self.tracer.now() - t0,
                cat="launch",
                tid=instr.stream,
                args={"deps": list(instr.deps)},
            )

    def chunkloop_begin(self, loop) -> float:
        if self.legacy is not None:
            self.legacy.append(
                ("chunkloop", loop.name, loop.num_chunks, loop.ring)
            )
        return self.now()

    def chunkloop_end(self, loop, t0: float) -> None:
        if self.tracer is not None:
            self.tracer.complete(
                loop.name,
                t0,
                self.tracer.now() - t0,
                cat="chunkloop",
                tid="overlap",
                args={"num_chunks": loop.num_chunks, "ring": loop.ring},
            )

    def whole(self, entry, step: int, t0: float) -> None:
        if self.legacy is not None:
            self.legacy.append(("whole", entry.name, step))
        if self.tracer is not None:
            self.tracer.complete(
                entry.name,
                t0,
                self.tracer.now() - t0,
                cat="whole",
                tid=entry.instr.stream,
                args={"step": step},
            )

    def chunk(self, entry, step: int, c: int, t0: float) -> None:
        if self.legacy is not None:
            self.legacy.append(("chunk", entry.name, step, c))
        if self.tracer is not None:
            self.tracer.complete(
                f"{entry.name}#c{c}",
                t0,
                self.tracer.now() - t0,
                cat="chunk",
                tid=entry.instr.stream,
                args={
                    "step": step,
                    "chunk": c,
                    "member": entry.name,
                    "upstream": entry.upstream,
                },
            )
