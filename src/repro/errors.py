"""Exception hierarchy for the CoCoNet reproduction.

Every user-facing error in the library derives from :class:`CoCoNetError`
so applications can catch one type. Sub-classes mirror the phases of the
system: DSL construction, type/layout inference, transformation validity,
code generation, and simulated execution.
"""

from __future__ import annotations


class CoCoNetError(Exception):
    """Base class for all errors raised by the library."""


class ShapeError(CoCoNetError):
    """Raised when operand shapes are incompatible for an operation."""


class LayoutError(CoCoNetError):
    """Raised when operand distribution layouts are incompatible.

    The paper performs static type checking of layouts (Section 7:
    "The layout information enables CoCoNet to perform static type
    checking of each operation"). This error is the reproduction of a
    failed check.
    """


class DTypeError(CoCoNetError):
    """Raised for invalid or incompatible element datatypes."""


class GroupError(CoCoNetError):
    """Raised for invalid process-group constructions or mismatches."""


class TransformError(CoCoNetError):
    """Raised when a schedule transformation is invalid.

    Section 3 of the paper: "CoCoNet automatically checks the validity of
    each transformation based on these rules and throws an error for an
    invalid transformation."
    """


class CodegenError(CoCoNetError):
    """Raised when code generation cannot handle a program construct."""


class ExecutionError(CoCoNetError):
    """Raised by the simulated runtime when a program cannot be executed."""


class OutOfMemoryError(ExecutionError):
    """Raised by the simulated device allocator when a rank exceeds HBM.

    Mirrors the "OOM" entries in Table 4 of the paper.
    """


class AutotunerError(CoCoNetError):
    """Raised when the autotuner cannot produce any valid schedule."""
