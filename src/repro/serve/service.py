"""Tuning-as-a-service: an ``asyncio`` front end over the schedule cache.

Production traffic (the ROADMAP north star) means many users submitting
``(workload, shape, dtype, topology)`` requests concurrently, where the
overwhelming majority repeat a small set of popular shapes. The
:class:`TuningService` turns the one-shot offline autotuner (paper §6)
into that service:

* **hits never touch the tuner** — a request whose
  ``(structural_hash, topology_signature)`` pair is already tuned is
  answered from an in-process memory layer (microseconds) or the
  persistent on-disk :class:`~repro.serve.cache.ScheduleCache`
  (one JSON read), on the event loop, without blocking on the pool;
* **identical in-flight misses coalesce** — the first request for an
  untuned pair dispatches one tuning task; every identical request
  arriving while it runs awaits the *same* task, so a burst of new
  traffic costs one search, not N (``serve.coalesced`` counts the
  riders);
* **misses run on a bounded pool** — tuning is CPU-bound search, so it
  executes in a ``ProcessPoolExecutor`` of at most ``max_workers``
  tuner processes (spawn context, like the SPMD backend); the worker
  writes the record through :class:`~repro.core.autotuner.Autotuner`'s
  ``schedule_cache`` hook, which also makes the worker itself
  race-safe: a concurrent process tuning the same pair just produces
  the same record behind the cache's file lock.

Every request lands one latency span (category ``serve``) in the
optional :class:`~repro.observe.Tracer` and bumps
``serve.*`` counters in the service's
:class:`~repro.observe.metrics.MetricsRegistry`.

Usage (the ``repro-serve`` CLI wraps exactly this; see
``docs/serving.md`` for the full tour)::

    import asyncio
    from repro.serve import ScheduleCache, TuneRequest, TuningService

    async def main():
        async with TuningService(ScheduleCache()) as svc:
            req = TuneRequest.make(
                "adam", num_elements=2**20, world_size=16, nodes=1)
            first = await svc.submit(req)    # miss: tunes on the pool
            again = await svc.submit(req)    # hit: answered in-process
            print(first.source, again.source)  # tuned memory
            return again.artifact            # execute/codegen/cost it

    asyncio.run(main())
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import Executor as _PoolExecutor
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Any, Dict, Optional, Tuple

from repro.cluster.topology import Cluster
from repro.core.artifact import Artifact, structural_hash
from repro.core.dtypes import dtype_by_name
from repro.core.program import Program
from repro.core.transforms import Schedule
from repro.errors import CoCoNetError
from repro.observe.metrics import MetricsRegistry
from repro.serve.cache import CachedSchedule, ScheduleCache

__all__ = [
    "ServeError",
    "ServeResult",
    "TuneRequest",
    "TuningService",
    "WORKLOADS",
    "request_key",
]

DEFAULT_MAX_DEPTH = 3


class ServeError(CoCoNetError):
    """A malformed tuning request or a misused service."""


# ---------------------------------------------------------------------------
# Requests: picklable (workload, shape, dtype, topology) descriptors.
# ---------------------------------------------------------------------------

#: workload name -> required integer parameters, in declaration order.
#: Builders live in :meth:`TuneRequest.build_program`; adding a workload
#: means one entry here plus one branch there.
WORKLOADS: Dict[str, Tuple[str, ...]] = {
    "adam": ("num_elements", "world_size"),
    "lamb": ("num_elements", "world_size"),
    "moe": ("capacity", "model_dim", "ffn_dim", "world_size"),
    "attention": ("batch", "seq", "hidden", "world_size"),
}


@dataclass(frozen=True)
class TuneRequest:
    """One tuning/serving request: what to tune, at what size, where.

    Frozen and hashable so it can key the service's in-process maps,
    and built from plain strings/ints so it pickles to the tuner worker
    processes unchanged. ``params`` is a sorted tuple of ``(name,
    value)`` pairs; use :meth:`make` rather than spelling that out.

    >>> req = TuneRequest.make("adam", num_elements=1024, world_size=4)
    >>> req.params_dict()["num_elements"]
    1024
    >>> TuneRequest.from_spec(req.spec()) == req
    True
    """

    workload: str
    params: Tuple[Tuple[str, int], ...]
    dtype: str = "FP16"
    nodes: int = 1

    @classmethod
    def make(
        cls, workload: str, dtype: str = "FP16", nodes: int = 1, **params
    ) -> "TuneRequest":
        """Build a validated request; unknown workloads/params raise."""
        required = WORKLOADS.get(workload)
        if required is None:
            raise ServeError(
                f"unknown workload {workload!r}; known: {sorted(WORKLOADS)}"
            )
        missing = [p for p in required if p not in params]
        extra = [p for p in params if p not in required]
        if missing or extra:
            raise ServeError(
                f"workload {workload!r} takes parameters {required}; "
                f"missing {missing}, unexpected {extra}"
            )
        if nodes < 1:
            raise ServeError("nodes must be >= 1")
        dtype_by_name(dtype)  # raises on unknown names
        return cls(
            workload=workload,
            params=tuple(sorted((k, int(v)) for k, v in params.items())),
            dtype=dtype,
            nodes=int(nodes),
        )

    def params_dict(self) -> Dict[str, int]:
        return dict(self.params)

    def spec(self) -> Dict[str, Any]:
        """Plain-JSON form (what the CLI's replay files contain)."""
        return {
            "workload": self.workload,
            "params": self.params_dict(),
            "dtype": self.dtype,
            "nodes": self.nodes,
        }

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "TuneRequest":
        return cls.make(
            spec["workload"],
            dtype=spec.get("dtype", "FP16"),
            nodes=spec.get("nodes", 1),
            **spec.get("params", {}),
        )

    def describe(self) -> str:
        shape = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.workload}({shape}) {self.dtype} nodes={self.nodes}"

    # -- materialization ----------------------------------------------------

    def cluster(self) -> Cluster:
        return Cluster(self.nodes)

    def build_program(self) -> Program:
        """The workload's DSL program at this request's shape/dtype."""
        dt = dtype_by_name(self.dtype)
        p = self.params_dict()
        if self.workload == "adam":
            from repro.workloads.adam import AdamWorkload

            return AdamWorkload.build(
                p["num_elements"], p["world_size"], grad_dtype=dt
            ).program
        if self.workload == "lamb":
            from repro.workloads.lamb import LambWorkload

            return LambWorkload.build(
                p["num_elements"], p["world_size"], grad_dtype=dt
            ).program
        if self.workload == "moe":
            from repro.workloads.moe import MoEWorkload

            return MoEWorkload.build(
                p["capacity"], p["model_dim"], p["ffn_dim"],
                p["world_size"], dtype=dt,
            ).program
        if self.workload == "attention":
            from repro.workloads.attention import AttentionWorkload

            return AttentionWorkload.build(
                p["batch"], p["seq"], p["hidden"], p["world_size"], dtype=dt,
            ).program
        raise ServeError(  # pragma: no cover - make() guards this
            f"unknown workload {self.workload!r}"
        )


def request_key(request: TuneRequest) -> Tuple[str, str]:
    """The cache pair for a request: build, lower, hash.

    The structural hash is computed on the *untransformed* program —
    the same digest :meth:`Autotuner.tune`'s cache hook derives — and
    is name-free, so every process maps the same (workload, shape,
    dtype) to the same key regardless of its value-name counter.
    """
    program = request.build_program()
    cluster = request.cluster()
    return (
        structural_hash(Schedule(program).lowered(cluster=cluster)),
        cluster.signature(),
    )


# ---------------------------------------------------------------------------
# The tuner worker (runs in a pool process; must stay module-level).
# ---------------------------------------------------------------------------


def _tune_worker(
    spec: Dict[str, Any], cache_path: str, max_depth: int
) -> str:
    """Tune one request and return its cache record's JSON text.

    The Autotuner's ``schedule_cache`` hook does the heavy lifting: it
    re-checks the cache (another process may have finished the same
    tune first — its record is simply reused) and writes the winning
    schedule through the flock-guarded atomic path on a miss.
    """
    from repro.core.autotuner import Autotuner

    request = TuneRequest.from_spec(spec)
    cache = ScheduleCache(cache_path)
    result = Autotuner(
        request.cluster(), max_depth=max_depth, schedule_cache=cache,
    ).tune(request.build_program())
    with open(cache.record_path(*result.cache_key)) as f:
        return f.read()


# ---------------------------------------------------------------------------
# The service.
# ---------------------------------------------------------------------------


@dataclass
class ServeResult:
    """One answered request.

    ``source`` says where the schedule came from: ``memory`` (the
    service's in-process layer), ``disk`` (the persistent cache),
    ``tuned`` (this request triggered the tuning task) or ``coalesced``
    (this request rode an identical in-flight tune).
    """

    request: TuneRequest
    structural_hash: str
    topology: str
    source: str
    latency_seconds: float
    schedule_name: str
    predicted_time: float
    artifact: Artifact

    @property
    def hit(self) -> bool:
        return self.source in ("memory", "disk")


class TuningService:
    """Async server answering tune requests at cache-hit latency.

    ``pool`` defaults to a spawn-context ``ProcessPoolExecutor`` of
    ``max_workers`` tuner processes, created lazily on the first miss
    (a hot cache never forks anything); tests may inject any
    ``concurrent.futures`` executor. Use as an async context manager,
    or call :meth:`close` when done.
    """

    def __init__(
        self,
        cache: Optional[ScheduleCache] = None,
        max_workers: int = 2,
        max_depth: int = DEFAULT_MAX_DEPTH,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
        pool: Optional[_PoolExecutor] = None,
    ) -> None:
        self.cache = cache if cache is not None else ScheduleCache()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if self.cache.metrics is not self.metrics:
            # one registry for the whole service: cache counters
            # (hits/misses/corrupt/evictions) join the request counters
            self.cache.metrics = self.metrics
        self.tracer = tracer
        self.max_depth = max_depth
        if max_workers < 1:
            raise ServeError("max_workers must be >= 1")
        self._max_workers = max_workers
        self._pool: Optional[_PoolExecutor] = pool
        self._owns_pool = pool is None
        self._memory: Dict[Tuple[str, str], CachedSchedule] = {}
        self._keys: Dict[TuneRequest, Tuple[str, str]] = {}
        self._inflight: Dict[Tuple[str, str], asyncio.Task] = {}
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    async def __aenter__(self) -> "TuningService":
        return self

    async def __aexit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        self._closed = True
        if self._owns_pool and self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _ensure_pool(self) -> _PoolExecutor:
        if self._closed:
            raise ServeError("service is closed")
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self._max_workers,
                mp_context=get_context("spawn"),
            )
        return self._pool

    # -- the request path ---------------------------------------------------

    def _key_of(self, request: TuneRequest) -> Tuple[str, str]:
        """(structural_hash, topology) for a request, memoized.

        The first sighting of a shape pays one build+lower+hash (a few
        ms); every repeat is a dict lookup, which is what keeps warm
        requests at microsecond latency.
        """
        key = self._keys.get(request)
        if key is None:
            key = request_key(request)
            self._keys[request] = key
        return key

    async def submit(self, request: TuneRequest) -> ServeResult:
        """Answer one request; never blocks the loop on a cache hit."""
        if self._closed:
            raise ServeError("service is closed")
        t0 = time.perf_counter()
        self.metrics.inc("serve.requests")
        key = self._key_of(request)

        rec = self._memory.get(key)
        source = "memory"
        if rec is None:
            rec = self.cache.get(*key)  # one small-file JSON read
            source = "disk"
        if rec is None:
            self.metrics.inc("serve.misses")
            task = self._inflight.get(key)
            if task is None:
                source = "tuned"
                self.metrics.inc("serve.tunes")
                task = asyncio.get_running_loop().create_task(
                    self._tune(request, key)
                )
                self._inflight[key] = task
            else:
                source = "coalesced"
                self.metrics.inc("serve.coalesced")
            # shield: one awaiting client being cancelled must not
            # cancel the shared tuning task out from under the others
            rec = await asyncio.shield(task)
        else:
            self.metrics.inc(f"serve.hits.{source}")
            self._memory[key] = rec

        latency = time.perf_counter() - t0
        self.metrics.inc("serve.request_seconds", latency)
        if self.tracer is not None:
            self.tracer.complete(
                f"{request.workload}:{source}",
                self.tracer.now() - latency,
                latency,
                cat="serve",
                args={
                    "request": request.describe(),
                    "source": source,
                    "structural_hash": key[0],
                },
            )
        return ServeResult(
            request=request,
            structural_hash=key[0],
            topology=key[1],
            source=source,
            latency_seconds=latency,
            schedule_name=rec.schedule_name,
            predicted_time=rec.predicted_time,
            artifact=rec.artifact,
        )

    async def _tune(
        self, request: TuneRequest, key: Tuple[str, str]
    ) -> CachedSchedule:
        t0 = time.perf_counter()
        loop = asyncio.get_running_loop()
        try:
            text = await loop.run_in_executor(
                self._ensure_pool(),
                _tune_worker,
                request.spec(), self.cache.path, self.max_depth,
            )
        finally:
            self._inflight.pop(key, None)
        rec = CachedSchedule.from_json(json.loads(text))
        self._memory[key] = rec
        self.metrics.inc("serve.tune_seconds", time.perf_counter() - t0)
        return rec

    async def submit_many(self, requests) -> "list[ServeResult]":
        """Submit a batch concurrently; results in request order."""
        return list(
            await asyncio.gather(*(self.submit(r) for r in requests))
        )

    def stats(self) -> Dict[str, float]:
        """Service + cache counters, plus the live cache entry count."""
        out = self.cache.stats()
        out["serve.memory_entries"] = float(len(self._memory))
        out["serve.inflight"] = float(len(self._inflight))
        return out
