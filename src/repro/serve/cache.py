"""Persistent schedule cache: tuned schedules as on-disk records.

The autotuner's dedup key is already a portable identity — the
artifact layer's :func:`~repro.core.artifact.structural_hash`, a
name-free digest of the lowered execution structure that two processes
compute identically for structurally equal programs. This module
promotes that identity to a **persistent tuning cache**: one JSON
record per ``(structural_hash, topology_signature)`` pair, holding the
winning move script and the tuned schedule's full serialized
:class:`~repro.core.artifact.Artifact`, so a schedule tuned once is
served across processes and sessions without re-running the search.

The key has two parts because a tuned schedule is only optimal for the
cluster it was timed on:

* ``structural_hash`` — the *untransformed* program's lowered
  structure (what the tuner's ``default`` candidate hashes to). Two
  users submitting the same (workload, shape, dtype) reach the same
  hash even though their processes generate different value names.
* ``topology_signature`` — :meth:`repro.cluster.topology.Cluster
  .signature`; a DGX-2 pair and a single node tune to different
  schedules, so they occupy different records.

Write discipline mirrors the PR 9 kernel cache
(:mod:`repro.core.codegen.native`): concurrent writers serialize on an
``flock``-guarded lock file, records install via temp-file +
``os.replace`` so readers only ever see complete documents, and a
corrupt or truncated record (a crashed writer predating the atomic
install, disk trouble, hand editing) is **deleted and treated as a
miss** — the tuner simply runs again — never an error. Hit / miss /
corrupt / eviction counters land in a
:class:`~repro.observe.metrics.MetricsRegistry`.

>>> import tempfile
>>> from repro.cluster.topology import Cluster
>>> from repro.core.autotuner import Autotuner
>>> from repro.workloads.adam import AdamWorkload
>>> program = AdamWorkload.build(64, 4).program
>>> with tempfile.TemporaryDirectory() as d:
...     cache = ScheduleCache(d)
...     cold = Autotuner(Cluster(1), max_depth=2,
...                      schedule_cache=cache).tune(program)
...     warm = Autotuner(Cluster(1), max_depth=2,
...                      schedule_cache=cache).tune(program)
...     (cold.cached, warm.cached, len(cache),
...      warm.best.time == cold.best.time)
(False, True, 1, True)
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core import artifact as artifact_mod
from repro.core.artifact import Artifact, ArtifactError
from repro.errors import CoCoNetError
from repro.observe.metrics import MetricsRegistry

FORMAT = "coconet-schedule-cache"
SCHEMA_VERSION = 1

__all__ = [
    "FORMAT",
    "SCHEMA_VERSION",
    "CachedSchedule",
    "ScheduleCache",
    "ScheduleCacheError",
    "default_cache_dir",
]


class ScheduleCacheError(CoCoNetError):
    """A schedule-cache record that cannot be written."""


def default_cache_dir() -> str:
    """On-disk schedule cache root (``$REPRO_SCHEDULE_CACHE`` overrides)."""
    return os.path.expanduser(
        os.environ.get("REPRO_SCHEDULE_CACHE")
        or os.path.join("~", ".cache", "repro", "schedules")
    )


class _FileLock:
    """``flock`` guard so concurrent tuner processes serialize writes.

    Same discipline as the kernel cache: lock around the
    check-then-install window, atomic ``os.replace`` inside it, and a
    silent no-op on platforms without ``fcntl`` (the atomic rename
    alone keeps records complete there).
    """

    def __init__(self, path: str) -> None:
        self._path = path
        self._fd: Optional[int] = None

    def __enter__(self) -> "_FileLock":
        try:
            import fcntl

            os.makedirs(os.path.dirname(self._path), exist_ok=True)
            self._fd = os.open(self._path, os.O_CREAT | os.O_RDWR)
            fcntl.flock(self._fd, fcntl.LOCK_EX)
        except (ImportError, OSError):  # pragma: no cover - non-POSIX
            self._fd = None
        return self

    def __exit__(self, *exc) -> None:
        if self._fd is not None:
            try:
                import fcntl

                fcntl.flock(self._fd, fcntl.LOCK_UN)
            except (ImportError, OSError):  # pragma: no cover
                pass
            os.close(self._fd)


@dataclass
class CachedSchedule:
    """One tuned schedule as stored in (or loaded from) the cache.

    ``artifact`` is the tuned schedule's complete serialized lowered
    program — the record is self-sufficient: a process that never built
    the original DSL objects can execute, codegen or cost the schedule
    straight from the cache (``artifact.lowered()``).
    """

    structural_hash: str
    topology: str
    schedule_name: str
    moves: Tuple[Tuple[str, ...], ...]
    predicted_time: float
    tune_seconds: float
    candidates_explored: int
    artifact: Artifact

    def to_json(self) -> Dict[str, Any]:
        return {
            "format": FORMAT,
            "schema_version": SCHEMA_VERSION,
            "structural_hash": self.structural_hash,
            "topology": self.topology,
            "schedule_name": self.schedule_name,
            "moves": [list(m) for m in self.moves],
            "predicted_time": self.predicted_time,
            "tune_seconds": self.tune_seconds,
            "candidates_explored": self.candidates_explored,
            "artifact": json.loads(self.artifact.dumps()),
        }

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "CachedSchedule":
        if doc.get("format") != FORMAT:
            raise ArtifactError(
                f"not a {FORMAT} record (format={doc.get('format')!r})"
            )
        if doc.get("schema_version") != SCHEMA_VERSION:
            raise ArtifactError(
                f"unsupported schedule-cache schema "
                f"{doc.get('schema_version')!r}"
            )
        # artifact.loads re-verifies the embedded content hash, so a
        # tampered payload surfaces as ArtifactError -> treated corrupt
        art = artifact_mod.loads(json.dumps(doc["artifact"]))
        return cls(
            structural_hash=doc["structural_hash"],
            topology=doc["topology"],
            schedule_name=doc["schedule_name"],
            moves=tuple(tuple(m) for m in doc["moves"]),
            predicted_time=float(doc["predicted_time"]),
            tune_seconds=float(doc["tune_seconds"]),
            candidates_explored=int(doc["candidates_explored"]),
            artifact=art,
        )


class ScheduleCache:
    """Content-addressed on-disk cache of tuned schedules.

    One JSON file per ``(structural_hash, topology)`` pair under
    ``path`` (default :func:`default_cache_dir`), named by the SHA-256
    of the pair so keys never touch the filesystem's name rules.
    ``max_entries`` bounds the directory: inserting past the bound
    evicts the oldest records by modification time (a tuned schedule is
    cheap to regenerate — eviction costs one re-tune, never
    correctness).
    """

    def __init__(
        self,
        path: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
        max_entries: Optional[int] = None,
    ) -> None:
        self.path = path or default_cache_dir()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if max_entries is not None and max_entries < 1:
            raise ScheduleCacheError("max_entries must be >= 1")
        self.max_entries = max_entries

    # -- keys ---------------------------------------------------------------

    @staticmethod
    def record_key(structural_hash: str, topology: str) -> str:
        """Filename stem for a cache pair (SHA-256 of both parts)."""
        h = hashlib.sha256()
        h.update(structural_hash.encode("utf-8"))
        h.update(b"\x00")
        h.update(topology.encode("utf-8"))
        return h.hexdigest()

    def record_path(self, structural_hash: str, topology: str) -> str:
        return os.path.join(
            self.path, self.record_key(structural_hash, topology) + ".json"
        )

    # -- read side ----------------------------------------------------------

    def get(
        self, structural_hash: str, topology: str
    ) -> Optional[CachedSchedule]:
        """The cached tuned schedule for the pair, or ``None``.

        Any unreadable record — invalid JSON, wrong format tag, missing
        fields, artifact content-hash mismatch — counts as
        ``serve.cache.corrupt``, is deleted, and reads as a miss.
        """
        path = self.record_path(structural_hash, topology)
        try:
            with open(path) as f:
                text = f.read()
        except OSError:
            self.metrics.inc("serve.cache.misses")
            return None
        try:
            rec = CachedSchedule.from_json(json.loads(text))
            if (
                rec.structural_hash != structural_hash
                or rec.topology != topology
            ):
                raise ArtifactError(
                    "record key fields do not match the requested pair"
                )
        except (ValueError, KeyError, TypeError, ArtifactError):
            self.metrics.inc("serve.cache.corrupt")
            self.metrics.inc("serve.cache.misses")
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        self.metrics.inc("serve.cache.hits")
        return rec

    # -- write side ---------------------------------------------------------

    def put(self, record: CachedSchedule) -> str:
        """Install ``record``; returns the file path written.

        Concurrent writers of the same pair (two processes tuning the
        same signature) serialize on the lock; both produce valid
        records for the same deterministic search, so last-write-wins
        is benign.
        """
        os.makedirs(self.path, exist_ok=True)
        path = self.record_path(record.structural_hash, record.topology)
        text = json.dumps(record.to_json(), sort_keys=True, indent=1) + "\n"
        with _FileLock(path + ".lock"):
            fd, tmp = tempfile.mkstemp(dir=self.path, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as f:
                    f.write(text)
                os.replace(tmp, path)
            finally:
                try:
                    os.remove(tmp)
                except OSError:
                    pass
        self.metrics.inc("serve.cache.puts")
        if self.max_entries is not None:
            self._evict(keep=path)
        return path

    def _evict(self, keep: str) -> None:
        """Drop oldest records past ``max_entries`` (never ``keep``)."""
        entries = self.entries()
        excess = len(entries) - self.max_entries
        if excess <= 0:
            return
        oldest = sorted(
            entries, key=lambda p: (os.path.getmtime(p), p)
        )
        for path in oldest:
            if excess <= 0:
                break
            if os.path.abspath(path) == os.path.abspath(keep):
                continue
            try:
                os.remove(path)
                self.metrics.inc("serve.cache.evictions")
                excess -= 1
            except OSError:
                pass

    # -- maintenance --------------------------------------------------------

    def entries(self) -> List[str]:
        """Paths of every record file currently in the cache."""
        try:
            names = os.listdir(self.path)
        except OSError:
            return []
        return [
            os.path.join(self.path, n)
            for n in sorted(names)
            if n.endswith(".json")
        ]

    def __len__(self) -> int:
        return len(self.entries())

    def clear(self) -> int:
        """Delete every record (and stray lock/tmp file); returns count."""
        removed = 0
        try:
            names = os.listdir(self.path)
        except OSError:
            return 0
        for n in names:
            if n.endswith((".json", ".lock", ".tmp")):
                try:
                    os.remove(os.path.join(self.path, n))
                    removed += n.endswith(".json")
                except OSError:
                    pass
        return removed

    def stats(self) -> Dict[str, float]:
        """Counter snapshot plus the current entry count and byte size."""
        out = dict(self.metrics.snapshot())
        entries = self.entries()
        out["serve.cache.entries"] = float(len(entries))
        out["serve.cache.bytes"] = float(
            sum(os.path.getsize(p) for p in entries if os.path.exists(p))
        )
        return out
