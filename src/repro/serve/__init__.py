"""Tuning-as-a-service: persistent schedule cache + async serving layer.

The paper's autotuner (§6) is a one-shot offline step; this package is
the production front end the ROADMAP aims it at. Tuned schedules
persist as content-addressed records keyed by
``(structural_hash, topology_signature)`` —
:class:`~repro.serve.cache.ScheduleCache` — and an ``asyncio`` service
— :class:`~repro.serve.service.TuningService` — answers
``(workload, shape, dtype, topology)`` requests from that cache at
memory/disk-hit latency, coalesces identical in-flight misses into one
tuning task, and runs actual tuning on a bounded pool of worker
processes. The ``repro-serve`` CLI (:mod:`repro.serve.cli`) drives the
same service from the shell.

See ``docs/serving.md`` for the guide and
``benchmarks/bench_serve.py`` for the cold-vs-warm replay numbers.
"""

from repro.serve.cache import (
    CachedSchedule,
    ScheduleCache,
    ScheduleCacheError,
    default_cache_dir,
)
from repro.serve.service import (
    WORKLOADS,
    ServeError,
    ServeResult,
    TuneRequest,
    TuningService,
    request_key,
)

__all__ = [
    "CachedSchedule",
    "ScheduleCache",
    "ScheduleCacheError",
    "default_cache_dir",
    "WORKLOADS",
    "ServeError",
    "ServeResult",
    "TuneRequest",
    "TuningService",
    "request_key",
]
