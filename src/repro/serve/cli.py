"""``repro-serve``: the tuning service from the shell.

Four subcommands over the persistent schedule cache
(:mod:`repro.serve`):

.. code-block:: console

   $ repro-serve tune --workload adam --set num_elements=1048576 \\
         --set world_size=16                  # miss: tunes, caches
   $ repro-serve tune --workload adam --set num_elements=1048576 \\
         --set world_size=16                  # hit: served from disk
   $ repro-serve replay requests.json        # drive a request mix
   $ repro-serve stats                       # cache size + counters
   $ repro-serve clear                       # drop every record

Installed via ``[project.scripts]``; in a source checkout use
``PYTHONPATH=src python -m repro.serve.cli``. ``replay`` reads a JSON
list of request specs (``{"workload": ..., "params": {...}, "dtype":
..., "nodes": ...}``) and submits them all concurrently through one
:class:`~repro.serve.service.TuningService` — the shape
``benchmarks/bench_serve.py`` uses at scale.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from repro.errors import CoCoNetError


def _parse_params(pairs) -> dict:
    params = {}
    for pair in pairs or ():
        if "=" not in pair:
            raise CoCoNetError(
                f"--set takes name=value pairs, got {pair!r}"
            )
        name, value = pair.split("=", 1)
        try:
            params[name.strip()] = int(value)
        except ValueError:
            raise CoCoNetError(
                f"--set values must be integers, got {pair!r}"
            ) from None
    return params


def _make_service(args):
    from repro.serve import ScheduleCache, TuningService

    cache = ScheduleCache(args.cache)
    return TuningService(
        cache, max_workers=args.workers, max_depth=args.max_depth
    )


def _print_result(res) -> None:
    print(f"request:    {res.request.describe()}")
    print(f"key:        {res.structural_hash} @ {res.topology}")
    print(f"source:     {res.source}")
    print(f"schedule:   {res.schedule_name}")
    print(f"predicted:  {res.predicted_time * 1e6:.1f} us")
    print(f"latency:    {res.latency_seconds * 1e3:.2f} ms")


def _cmd_tune(args) -> int:
    from repro.serve import TuneRequest

    request = TuneRequest.make(
        args.workload, dtype=args.dtype, nodes=args.nodes,
        **_parse_params(args.set),
    )

    async def go():
        async with _make_service(args) as svc:
            return await svc.submit(request)

    res = asyncio.run(go())
    _print_result(res)
    if args.save:
        res.artifact.save(args.save)
        print(f"artifact:   saved to {args.save}")
    return 0


def _cmd_replay(args) -> int:
    from repro.serve import TuneRequest

    with open(args.requests) as f:
        specs = json.load(f)
    if not isinstance(specs, list):
        raise CoCoNetError(
            f"{args.requests} must hold a JSON list of request specs"
        )
    requests = [TuneRequest.from_spec(s) for s in specs]

    async def go():
        import time

        async with _make_service(args) as svc:
            t0 = time.perf_counter()
            results = await svc.submit_many(requests)
            elapsed = time.perf_counter() - t0
            return results, elapsed, svc.stats()

    results, elapsed, stats = asyncio.run(go())
    by_source: dict = {}
    for r in results:
        by_source[r.source] = by_source.get(r.source, 0) + 1
    rate = len(results) / elapsed if elapsed > 0 else float("inf")
    print(f"served {len(results)} requests in {elapsed:.3f}s "
          f"({rate:.0f} req/s)")
    for source in ("memory", "disk", "tuned", "coalesced"):
        if source in by_source:
            print(f"  {source:<10} {by_source[source]}")
    print(f"tuner invocations: {stats.get('serve.tunes', 0):.0f}")
    return 0


def _cmd_stats(args) -> int:
    from repro.serve import ScheduleCache

    cache = ScheduleCache(args.cache)
    stats = cache.stats()
    print(f"cache dir: {cache.path}")
    print(f"entries:   {stats['serve.cache.entries']:.0f} "
          f"({stats['serve.cache.bytes']:.0f} bytes)")
    for path in cache.entries():
        try:
            with open(path) as f:
                doc = json.load(f)
            print(f"  {doc['structural_hash'][:23]}… @ {doc['topology']}: "
                  f"{doc['schedule_name']} "
                  f"({doc['predicted_time'] * 1e6:.1f} us predicted)")
        except (OSError, ValueError, KeyError):
            print(f"  {path}: unreadable record")
    return 0


def _cmd_clear(args) -> int:
    from repro.serve import ScheduleCache

    removed = ScheduleCache(args.cache).clear()
    print(f"removed {removed} cached schedule(s)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Serve tuned CoCoNet schedules from the persistent schedule "
            "cache; tune misses on a bounded worker pool."
        ),
    )
    parser.add_argument(
        "--cache", default=None,
        help="schedule cache directory (default "
        "$REPRO_SCHEDULE_CACHE or ~/.cache/repro/schedules)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("tune", help="serve one request (tune on a miss)")
    p.add_argument("--workload", required=True,
                   help="adam | lamb | moe | attention")
    p.add_argument(
        "--set", action="append", metavar="NAME=VALUE",
        help="workload shape parameter (repeatable), e.g. "
        "--set num_elements=1048576 --set world_size=16",
    )
    p.add_argument("--dtype", default="FP16",
                   help="tensor dtype (default FP16)")
    p.add_argument("--nodes", type=int, default=1,
                   help="cluster size in nodes (default 1)")
    p.add_argument("--max-depth", type=int, default=3,
                   help="autotuner BFS depth on a miss (default 3)")
    p.add_argument("--workers", type=int, default=2,
                   help="tuner worker processes (default 2)")
    p.add_argument("--save", default=None,
                   help="also save the served artifact to this path")
    p.set_defaults(fn=_cmd_tune)

    p = sub.add_parser(
        "replay", help="submit a JSON list of requests concurrently"
    )
    p.add_argument("requests", help="path to a JSON list of request specs")
    p.add_argument("--max-depth", type=int, default=3)
    p.add_argument("--workers", type=int, default=2)
    p.set_defaults(fn=_cmd_replay)

    p = sub.add_parser("stats", help="cache contents and counters")
    p.set_defaults(fn=_cmd_stats)

    p = sub.add_parser("clear", help="delete every cached schedule")
    p.set_defaults(fn=_cmd_clear)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except CoCoNetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
