"""Pipeline-parallel transformer operations (Figure 8, §6.3).

Megatron-LM assigns transformer layers to groups of ranks; each group
uses model parallelism internally and sends its activations to the next
group. The operations of interest (Figure 8a)::

    Var sum    = AllReduce("+", in);             // within the group
    Var send   = Dropout(sum + b, 0.1) + r;
    Var output = Send(send, GroupRank(GROUP + 1, RANK));

"Since the output of AllReduce is replicated, redundant data is sent
using P2P" — every rank of the group ships the same buffer across the
InfiniBand network. The optimized schedule (Figure 8b) slices the send,
fuses computation into it, and overlaps ReduceScatter / fused P2P /
AllGather at tile granularity (Figure 7b)::

    fuseSend         = fuse(send, output, SendFuse);
    (rsSum, agSum)   = split(sum, ARSplitRSAG);
    (scSend, agOut)  = reorder(fuseSend, agSum, AGReorder);
    overlapOut       = overlap(rsSum, scSend, agOut);
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core import (
    FP16,
    GROUP,
    RANK,
    AllReduce,
    Binary,
    DType,
    Dropout,
    Execute,
    GroupRank,
    Local,
    Program,
    Replicated,
    Send,
    Slice,
    Tensor,
    split_world,
)
from repro.core.tensor import Expr
from repro.core.transforms import (
    ARSplitRSAG,
    ComputationFuse,
    Schedule,
    SendFuse,
)


@dataclass
class PipelineWorkload:
    """Figure 8a's program between two pipeline groups."""

    program: Program
    allreduce: Expr
    compute_ops: List[Expr]
    send: Expr
    batch: int
    seq: int
    hidden: int
    group_size: int

    @classmethod
    def build(
        cls,
        batch: int,
        seq: int,
        hidden: int,
        world_size: int,
        num_groups: int = 2,
        dtype: DType = FP16,
        dropout_seed: int = 0x88,
    ) -> "PipelineWorkload":
        groups = split_world(world_size, num_groups)
        g0 = groups[0]
        in_ = Tensor(dtype, (batch, seq, hidden), Local, g0, RANK, name="in")
        b = Tensor(dtype, (hidden,), Replicated, g0, name="b")
        r = Tensor(dtype, (batch, seq, hidden), Replicated, g0, name="r")

        s = AllReduce("+", in_, name="sum")
        sum_b = Binary("+", s, b, name="sum_b")
        drop = Dropout(sum_b, 0.1, seed=dropout_seed, name="dropout")
        send_val = Binary("+", drop, r, name="send")
        output = Send(send_val, GroupRank(GROUP + 1, RANK), name="output")
        prog = Execute("transformer", [in_, b, r], [output])
        return cls(
            program=prog,
            allreduce=s,
            compute_ops=[sum_b, drop, send_val],
            send=output,
            batch=batch, seq=seq, hidden=hidden, group_size=g0.size,
        )

    # -- §6.3.1 schedules ------------------------------------------------

    def schedule_megatron(self) -> Schedule:
        """Baseline: AR + unfused computations + full-size P2P per rank."""
        return Schedule(self.program)

    def schedule_ar_c_p2p_ag(self) -> Schedule:
        """AR-C-P2P-AG: keep the AllReduce but slice computation + P2P.

        Built as the equivalent program with an explicit Slice after the
        AllReduce (the paper derives it by slicing the AR output), with
        all computations fused.
        """
        variant = _sliced_ar_variant(self)
        sched = Schedule(variant.program)
        sched.fuse(*variant.compute_ops, policy=ComputationFuse)
        return sched

    def schedule_gshard(self) -> Schedule:
        """GShard-Eq / RS-C-P2P-AG: split + reorder, separate kernels."""
        sched = Schedule(self.program)
        comps = sched.fuse(*self.compute_ops, policy=ComputationFuse)
        fuse_send = sched.fuse(comps, self.send, policy=SendFuse)
        rs, ag = sched.split(self.allreduce, ARSplitRSAG)
        sched.reorder(ag, fuse_send)
        # GShard keeps communication unfused: dissolve the send fusion
        # back into compute + P2P kernels, keeping the compute fused.
        members = sched.unfuse(fuse_send)
        comp_members = [m for m in members if not isinstance_send(m)]
        if len(comp_members) >= 2:
            sched.fuse(*comp_members, policy=ComputationFuse)
        return sched

    def schedule_coconet(self) -> Schedule:
        """ol(RS, fuse(C-P2P), AG): Figure 8b, the autotuner's best."""
        sched = Schedule(self.program)
        comps = sched.fuse(*self.compute_ops, policy=ComputationFuse)
        fuse_send = sched.fuse(comps, self.send, policy=SendFuse)
        rs, ag = sched.split(self.allreduce, ARSplitRSAG)
        results = sched.reorder(ag, fuse_send)
        block, gathers = results[0], list(results[1:])
        sched.overlap(rs, block, *gathers)
        return sched

    def schedules(self) -> Dict[str, Schedule]:
        return {
            "MegatronLM": self.schedule_megatron(),
            "AR-C-P2P-AG": self.schedule_ar_c_p2p_ag(),
            "GShard-Eq": self.schedule_gshard(),
            "CoCoNet": self.schedule_coconet(),
        }


def isinstance_send(e: Expr) -> bool:
    from repro.core import ops

    return isinstance(e, ops.Send)


def _sliced_ar_variant(wl: PipelineWorkload) -> PipelineWorkload:
    """The AR-C-P2P-AG program: AR, slice, sliced comps, sliced P2P, AG."""
    from repro.core import AllGather

    prog = wl.program
    g0 = prog.inputs[0].group
    in_ = prog.inputs[0]
    b = prog.inputs[1]
    r = prog.inputs[2]
    drop_seed = next(
        e.seed for e in prog.operations if hasattr(e, "seed")
    )
    s = AllReduce("+", in_, name="sum")
    sliced = Slice(s, 1, name="sliced_sum")
    sum_b = Binary("+", sliced, b, name="sum_b")
    drop = Dropout(sum_b, 0.1, seed=drop_seed, name="dropout")
    send_val = Binary("+", drop, Slice(r, 1, name="sliced_r"), name="send")
    output = Send(send_val, GroupRank(GROUP + 1, RANK), name="output")
    gathered = AllGather(output, name="ag_output")
    program = Execute("transformer", [in_, b, r], [gathered])
    return PipelineWorkload(
        program=program,
        allreduce=s,
        compute_ops=[e for e in program.operations
                     if e.name in ("sliced_sum", "sum_b", "dropout",
                                   "sliced_r", "send")],
        send=output,
        batch=wl.batch, seq=wl.seq, hidden=wl.hidden,
        group_size=wl.group_size,
    )
