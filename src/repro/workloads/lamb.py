"""LAMB parameter update in CoCoNet (You et al., used in §6.1).

LAMB extends Adam with a layer-wise trust ratio computed from the norms
of the parameters and the update. Distributing LAMB is what ZeRO could
not do ("The ZeRO implementation of LAMB does not support distributing
optimizer state among GPUs because significant engineering efforts are
required to implement reduction over distributed gradients and
weights") — CoCoNet gets it from the same reorder transformation,
because a Norm over a sliced tensor reduces locally and AllReduces the
partial (Section 5.2, "Tensor Reduction").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.core import (
    FP16,
    FP32,
    RANK,
    AllReduce,
    DType,
    Execute,
    Local,
    Norm,
    Pow,
    Program,
    Replicated,
    Scalar,
    Sqrt,
    Tensor,
    Update,
    world,
)
from repro.core.tensor import Expr
from repro.core.transforms import (
    AllReduceFuse,
    ARSplitRSAG,
    ComputationFuse,
    Schedule,
)

BETA1, BETA2, EPSILON = 0.9, 0.999, 1e-6
WEIGHT_DECAY = 0.01
#: guard against a zero update norm in the trust ratio
RATIO_GUARD = 1e-12


@dataclass
class LambWorkload:
    """The LAMB DSL program plus handles to its named values."""

    program: Program
    grads: Tensor
    params: Tensor
    momentum: Tensor
    velocity: Tensor
    lr: Scalar
    step: Scalar
    avg: Expr
    compute_ops: List[Expr] = field(default_factory=list)
    updates: Tuple[Expr, Expr, Expr] = ()

    @classmethod
    def build(
        cls,
        num_elements: int,
        world_size: int,
        grad_dtype: DType = FP16,
        param_dtype: "DType | None" = None,
        state_dtype: DType = FP32,
    ) -> "LambWorkload":
        if param_dtype is None:
            # Mixed precision (Figure 10): FP16 gradients and parameters,
            # FP32 optimizer moments.
            param_dtype = grad_dtype
        W = world(world_size)
        g = Tensor(grad_dtype, (num_elements,), Local, W, RANK, name="g")
        p = Tensor(param_dtype, (num_elements,), Replicated, W, name="p")
        m = Tensor(state_dtype, (num_elements,), Replicated, W, name="m")
        v = Tensor(state_dtype, (num_elements,), Replicated, W, name="v")
        lr = Scalar(FP32, name="lr", group=W)
        t = Scalar(FP32, name="t", group=W)

        avg = AllReduce("+", g, name="avg")
        m_upd = Update(m, m * BETA1 + (1.0 - BETA1) * avg, name="m_")
        v_upd = Update(v, v * BETA2 + (1.0 - BETA2) * avg * avg, name="v_")
        m1 = m_upd / (1.0 - Pow(BETA1, t))
        v1 = v_upd / (1.0 - Pow(BETA2, t))
        update = m1 / (Sqrt(v1) + EPSILON) + WEIGHT_DECAY * p
        w_norm = Norm(p, name="w_norm")
        u_norm = Norm(update, name="u_norm")
        ratio = w_norm / (u_norm + RATIO_GUARD)
        p_upd = Update(p, p - lr * ratio * update, name="p_")

        prog = Execute("lamb", [g, p, m, v, lr, t], [p_upd])
        compute = [e for e in prog.operations if e is not avg]
        return cls(
            program=prog,
            grads=g, params=p, momentum=m, velocity=v, lr=lr, step=t,
            avg=avg, compute_ops=compute, updates=(m_upd, v_upd, p_upd),
        )

    # -- the paper's three schedules -----------------------------------------

    def schedule_ar_opt(self) -> Schedule:
        """AR-LAMB: AllReduce then one fused update kernel."""
        sched = Schedule(self.program)
        sched.fuse(*self.compute_ops, policy=ComputationFuse)
        return sched

    def _split_and_reorder(self):
        sched = Schedule(self.program)
        comps = sched.fuse(*self.compute_ops, policy=ComputationFuse)
        rs_g, ag_g = sched.split(self.avg, ARSplitRSAG)
        results = sched.reorder(ag_g, comps)
        block, gathers = results[0], list(results[1:])
        sched.asSlice(self.momentum, dim=0)
        sched.asSlice(self.velocity, dim=0)
        ag_p = None
        for gather in gathers:
            gather = sched.resolve(gather)
            wb = getattr(gather, "writeback", None)
            if wb is not None and wb.name == "p":
                ag_p = gather
            else:
                sched.dead(gather)
        assert ag_p is not None
        return sched, rs_g, block, [ag_p]

    def schedule_gshard(self) -> Schedule:
        """RS-LAMB-AG with separate kernels (what ZeRO cannot do)."""
        sched, _, _, _ = self._split_and_reorder()
        return sched

    def schedule_fused(self) -> Schedule:
        """fuse(RS-LAMB-AG): one FusedAllReduce kernel."""
        sched, rs_g, block, gathers = self._split_and_reorder()
        sched.fuse(rs_g, block, *gathers, policy=AllReduceFuse)
        return sched

    def schedules(self) -> Dict[str, Schedule]:
        return {
            "AR-LAMB": self.schedule_ar_opt(),
            "RS-LAMB-AG": self.schedule_gshard(),
            "fuse(RS-LAMB-AG)": self.schedule_fused(),
        }


def lamb_reference(
    grads: np.ndarray,
    params: np.ndarray,
    momentum: np.ndarray,
    velocity: np.ndarray,
    lr: float,
    step: float,
    beta1: float = BETA1,
    beta2: float = BETA2,
    eps: float = EPSILON,
    weight_decay: float = WEIGHT_DECAY,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reference LAMB step (float64). ``grads``: (world_size, N)."""
    avg = grads.astype(np.float64).sum(axis=0)
    m = momentum.astype(np.float64) * beta1 + (1.0 - beta1) * avg
    v = velocity.astype(np.float64) * beta2 + (1.0 - beta2) * avg * avg
    m1 = m / (1.0 - beta1**step)
    v1 = v / (1.0 - beta2**step)
    update = m1 / (np.sqrt(v1) + eps) + weight_decay * params.astype(np.float64)
    w_norm = np.sqrt(np.sum(params.astype(np.float64) ** 2))
    u_norm = np.sqrt(np.sum(update**2))
    ratio = w_norm / (u_norm + RATIO_GUARD)
    p = params.astype(np.float64) - lr * ratio * update
    return p, m, v
