"""Adam parameter update in CoCoNet (Section 4, Figure 6).

The traditional implementation (Figure 6a)::

    Var avg = AllReduce("+", g);
    Var m_  = Update(m, (m * beta1 + (1 - beta1) * avg));
    Var v_  = Update(v, (v * beta2 + (1 - beta2) * avg * avg));
    Var m1  = m_ / (1 - Pow(beta1, t));
    Var v1  = v_ / (1 - Pow(beta2, t));
    Var p_  = Update(p, (p - lr * m1 / (Sqrt(v1))));
    Execute adam({g, p, v, m, lr}, {p_});

and the optimized schedule (Figure 6b)::

    comps = fuse(m_, v_, m1, v1, p_, ComputationFuse);
    (rsG, agG) = split(avg, ARSplitRSAG);
    (scComp, agP, agM, agV) = reorder(agG, comps, AGReorder);
    asSlice(m); asSlice(v); dead(agM); dead(agV);
    fuseAR = fuse(rsG, scComp, agP, AllReduceFuse);

This module builds both, plus the intermediate GShard-equivalent
schedule, and provides a numpy reference implementation for testing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.core import (
    FP16,
    FP32,
    RANK,
    AllReduce,
    DType,
    Execute,
    Local,
    Pow,
    Program,
    Replicated,
    Scalar,
    Sqrt,
    Tensor,
    Update,
    world,
)
from repro.core.tensor import Expr
from repro.core.transforms import (
    AllReduceFuse,
    ARSplitRSAG,
    ComputationFuse,
    Schedule,
)

#: Default Adam hyper-parameters (Kingma & Ba).
BETA1, BETA2, EPSILON = 0.9, 0.999, 1e-6


@dataclass
class AdamWorkload:
    """The Adam DSL program plus handles to its named values."""

    program: Program
    grads: Tensor
    params: Tensor
    momentum: Tensor
    velocity: Tensor
    lr: Scalar
    step: Scalar
    avg: Expr                      # the AllReduce
    compute_ops: List[Expr] = field(default_factory=list)
    updates: Tuple[Expr, Expr, Expr] = ()  # (m_, v_, p_)

    @classmethod
    def build(
        cls,
        num_elements: int,
        world_size: int,
        grad_dtype: DType = FP16,
        param_dtype: "DType | None" = None,
        state_dtype: DType = FP32,
    ) -> "AdamWorkload":
        """Figure 6a: mixed-precision Adam over one flat gradient tensor."""
        if param_dtype is None:
            # Mixed precision (Figure 10): FP16 gradients and parameters,
            # FP32 optimizer moments.
            param_dtype = grad_dtype
        W = world(world_size)
        g = Tensor(grad_dtype, (num_elements,), Local, W, RANK, name="g")
        p = Tensor(param_dtype, (num_elements,), Replicated, W, name="p")
        m = Tensor(state_dtype, (num_elements,), Replicated, W, name="m")
        v = Tensor(state_dtype, (num_elements,), Replicated, W, name="v")
        lr = Scalar(FP32, name="lr", group=W)
        t = Scalar(FP32, name="t", group=W)

        avg = AllReduce("+", g, name="avg")
        m_new = m * BETA1 + (1.0 - BETA1) * avg
        m_upd = Update(m, m_new, name="m_")
        v_new = v * BETA2 + (1.0 - BETA2) * avg * avg
        v_upd = Update(v, v_new, name="v_")
        m1 = m_upd / (1.0 - Pow(BETA1, t))
        v1 = v_upd / (1.0 - Pow(BETA2, t))
        p_new = p - lr * m1 / (Sqrt(v1) + EPSILON)
        p_upd = Update(p, p_new, name="p_")

        prog = Execute("adam", [g, p, m, v, lr, t], [p_upd])
        compute = [e for e in prog.operations if e is not avg]
        return cls(
            program=prog,
            grads=g, params=p, momentum=m, velocity=v, lr=lr, step=t,
            avg=avg, compute_ops=compute, updates=(m_upd, v_upd, p_upd),
        )

    # -- the paper's three schedules (§6.1.1) --------------------------------

    def schedule_ar_opt(self) -> Schedule:
        """AR-Adam: AllReduce, then all computations fused in one kernel."""
        sched = Schedule(self.program)
        sched.fuse(*self.compute_ops, policy=ComputationFuse)
        return sched

    def _split_and_reorder(self) -> Tuple[Schedule, Expr, object, List[Expr]]:
        sched = Schedule(self.program)
        comps = sched.fuse(*self.compute_ops, policy=ComputationFuse)
        rs_g, ag_g = sched.split(self.avg, ARSplitRSAG)
        results = sched.reorder(ag_g, comps)
        block, gathers = results[0], list(results[1:])
        # Slice the optimizer state across ranks and drop the gathers that
        # restored m and v (Figure 6b line 6).
        sched.asSlice(self.momentum, dim=0)
        sched.asSlice(self.velocity, dim=0)
        ag_p = None
        for gather in gathers:
            gather = sched.resolve(gather)
            wb = getattr(gather, "writeback", None)
            if wb is not None and wb.name == "p":
                ag_p = gather
            else:
                sched.dead(gather)
        assert ag_p is not None, "reorder must produce an AllGather for p"
        return sched, rs_g, block, [ag_p]

    def schedule_gshard(self) -> Schedule:
        """GShard-Eq / RS-Adam-AG: distributed update, separate kernels."""
        sched, _, _, _ = self._split_and_reorder()
        return sched

    def schedule_fused(self) -> Schedule:
        """fuse(RS-Adam-AG): everything in a single FusedAllReduce kernel."""
        sched, rs_g, block, gathers = self._split_and_reorder()
        sched.fuse(rs_g, block, *gathers, policy=AllReduceFuse)
        return sched

    def schedules(self) -> Dict[str, Schedule]:
        """All named schedules, as the autotuner would enumerate them."""
        return {
            "AR-Adam": self.schedule_ar_opt(),
            "RS-Adam-AG": self.schedule_gshard(),
            "fuse(RS-Adam-AG)": self.schedule_fused(),
        }


def adam_reference(
    grads: np.ndarray,
    params: np.ndarray,
    momentum: np.ndarray,
    velocity: np.ndarray,
    lr: float,
    step: float,
    beta1: float = BETA1,
    beta2: float = BETA2,
    eps: float = EPSILON,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reference mixed-precision Adam step.

    ``grads`` has shape (world_size, N): per-rank local gradients that
    are averaged (summed, matching AllReduce("+")) before the update.
    Returns (new_params, new_momentum, new_velocity) in float64.
    """
    avg = grads.astype(np.float64).sum(axis=0)
    m = momentum.astype(np.float64) * beta1 + (1.0 - beta1) * avg
    v = velocity.astype(np.float64) * beta2 + (1.0 - beta2) * avg * avg
    m1 = m / (1.0 - beta1**step)
    v1 = v / (1.0 - beta2**step)
    p = params.astype(np.float64) - lr * m1 / (np.sqrt(v1) + eps)
    return p, m, v
