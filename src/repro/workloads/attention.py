"""Model-parallel self-attention / MLP epilogue (Figure 3, §6.2).

Megatron-LM's model parallelism computes, on every rank, a MatMul over
row-sliced weights producing a partial result, AllReduces it, then adds
bias, applies dropout and adds the residual::

    Tensor w (FP16, [H, H],    Sliced(0), WORLD, RANK);
    Tensor b (FP16, [H],       Replicated, WORLD);
    Tensor in(FP16, [B, S, H], Sliced(2), WORLD, RANK);
    Tensor r (FP16, [B, S, H], Replicated, WORLD);
    Var layer   = MatMul(in, w);
    Var sum     = AllReduce("+", layer);
    Var dropout = Dropout(sum + b, 0.1);
    Var out     = dropout + r;

The MLP block is the same structure with an [B, S, 4H] input and a
[4H, H] weight. The four schedules of §6.2.1 are provided:
Megatron-LM (unfused baseline), MM-AR-C (fused pointwise), GShard-Eq
(MM-RS-C-AG) and CoCoNet's ol(MM, fuse(RS-C-AG)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core import (
    FP16,
    RANK,
    AllReduce,
    Binary,
    DType,
    Dropout,
    Execute,
    MatMul,
    Program,
    Replicated,
    Sliced,
    Tensor,
    world,
)
from repro.core.tensor import Expr
from repro.core.transforms import (
    AllReduceFuse,
    ARSplitRSAG,
    ComputationFuse,
    Schedule,
)


@dataclass
class AttentionWorkload:
    """Self-attention (or MLP) epilogue program with named handles."""

    program: Program
    matmul: Expr
    allreduce: Expr
    compute_ops: List[Expr]
    batch: int
    seq: int
    hidden_in: int
    hidden_out: int

    @classmethod
    def build(
        cls,
        batch: int,
        seq: int,
        hidden: int,
        world_size: int,
        expansion: int = 1,
        dtype: DType = FP16,
        dropout_seed: int = 0xA77,
    ) -> "AttentionWorkload":
        """Figure 3's program; ``expansion=4`` gives the MLP block."""
        W = world(world_size)
        h_in = hidden * expansion
        w = Tensor(dtype, (h_in, hidden), Sliced(0), W, RANK, name="w")
        b = Tensor(dtype, (hidden,), Replicated, W, name="b")
        in_ = Tensor(
            dtype, (batch, seq, h_in), Sliced(2), W, RANK, name="in"
        )
        r = Tensor(dtype, (batch, seq, hidden), Replicated, W, name="r")

        layer = MatMul(in_, w, name="layer")
        s = AllReduce("+", layer, name="sum")
        sum_b = Binary("+", s, b, name="sum_b")
        drop = Dropout(sum_b, 0.1, seed=dropout_seed, name="dropout")
        out = Binary("+", drop, r, name="out")
        prog = Execute("self_attention", [w, in_, b, r], [out])
        return cls(
            program=prog,
            matmul=layer,
            allreduce=s,
            compute_ops=[sum_b, drop, out],
            batch=batch, seq=seq, hidden_in=h_in, hidden_out=hidden,
        )

    # -- §6.2.1 schedules ------------------------------------------------

    def schedule_megatron(self) -> Schedule:
        """Baseline: library MatMul + NCCL AllReduce + unfused pointwise."""
        return Schedule(self.program)

    def schedule_mm_ar_c(self) -> Schedule:
        """MM-AR-C: 'fusing all pointwise computations into one kernel'."""
        sched = Schedule(self.program)
        sched.fuse(*self.compute_ops, policy=ComputationFuse)
        return sched

    def schedule_gshard(self) -> Schedule:
        """GShard-Eq / MM-RS-C-AG: split + reorder, separate kernels."""
        sched = Schedule(self.program)
        comps = sched.fuse(*self.compute_ops, policy=ComputationFuse)
        rs, ag = sched.split(self.allreduce, ARSplitRSAG)
        sched.reorder(ag, comps)
        return sched

    def schedule_coconet(self) -> Schedule:
        """ol(MM, fuse(RS-C-AG)): the autotuner's best schedule."""
        sched = Schedule(self.program)
        comps = sched.fuse(*self.compute_ops, policy=ComputationFuse)
        rs, ag = sched.split(self.allreduce, ARSplitRSAG)
        results = sched.reorder(ag, comps)
        block, gathers = results[0], list(results[1:])
        fused = sched.fuse(rs, block, *gathers, policy=AllReduceFuse)
        sched.overlap(self.matmul, fused)
        return sched

    def schedules(self) -> Dict[str, Schedule]:
        return {
            "MegatronLM": self.schedule_megatron(),
            "MM-AR-C": self.schedule_mm_ar_c(),
            "GShard-Eq": self.schedule_gshard(),
            "CoCoNet": self.schedule_coconet(),
        }
