"""The paper's distributed ML workloads, written in the CoCoNet DSL.

* :mod:`repro.workloads.adam` / :mod:`repro.workloads.lamb` — the
  data-parallel optimizers of Section 4 / Figure 6, with the paper's
  three schedules (AR-Opt, GShard-Eq, fuse(RS-Opt-AG));
* :mod:`repro.workloads.attention` — the model-parallel self-attention
  and MLP epilogues of Figure 3 / Section 6.2;
* :mod:`repro.workloads.pipeline` — the pipeline-parallel transformer
  operations of Figure 8 / Section 6.3;
* :mod:`repro.workloads.moe` — the GShard-style Mixture-of-Experts
  expert MLP (dispatch-AllToAll → expert GEMMs → combine-AllToAll) with
  the GShard-Eq / fused / overlapped schedule family;
* :mod:`repro.workloads.models` — BERT/GPT-2/GPT-3 configurations with
  the memory accounting behind Tables 4 and 5.

Workload → schedule families:

==========  ==============================================================
adam/lamb   AR-Opt, GShard-Eq (RS-Opt-AG), fuse(RS-Opt-AG)
attention   MegatronLM, MM-AR-C, GShard-Eq, ol(MM, fuse(RS-C-AG))
pipeline    MegatronLM, AR-C-P2P-AG, GShard-Eq, ol(RS, fuse(C-P2P), AG)
moe         GShard-Eq, fused (fuse(C-A2A)), overlapped (ol(A2A-MLP-A2A)),
            hierarchical (split(A2A) into intra/inter-node phases)
==========  ==============================================================
"""

from repro.workloads.adam import AdamWorkload, adam_reference
from repro.workloads.lamb import LambWorkload, lamb_reference
from repro.workloads.attention import AttentionWorkload
from repro.workloads.pipeline import PipelineWorkload
from repro.workloads.moe import MoEWorkload, moe_reference
from repro.workloads.models import (
    BERT_336M,
    BERT_1_2B,
    BERT_3_9B,
    GPT2_8_3B,
    GPT3_175B,
    ModelConfig,
)

__all__ = [
    "AdamWorkload",
    "adam_reference",
    "LambWorkload",
    "lamb_reference",
    "AttentionWorkload",
    "PipelineWorkload",
    "MoEWorkload",
    "moe_reference",
    "ModelConfig",
    "BERT_336M",
    "BERT_1_2B",
    "BERT_3_9B",
    "GPT2_8_3B",
    "GPT3_175B",
]
