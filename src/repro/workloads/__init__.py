"""The paper's distributed ML workloads, written in the CoCoNet DSL.

* :mod:`repro.workloads.adam` / :mod:`repro.workloads.lamb` — the
  data-parallel optimizers of Section 4 / Figure 6, with the paper's
  three schedules (AR-Opt, GShard-Eq, fuse(RS-Opt-AG));
* :mod:`repro.workloads.attention` — the model-parallel self-attention
  and MLP epilogues of Figure 3 / Section 6.2;
* :mod:`repro.workloads.pipeline` — the pipeline-parallel transformer
  operations of Figure 8 / Section 6.3;
* :mod:`repro.workloads.models` — BERT/GPT-2/GPT-3 configurations with
  the memory accounting behind Tables 4 and 5.
"""

from repro.workloads.adam import AdamWorkload, adam_reference
from repro.workloads.lamb import LambWorkload, lamb_reference
from repro.workloads.attention import AttentionWorkload
from repro.workloads.pipeline import PipelineWorkload
from repro.workloads.models import (
    BERT_336M,
    BERT_1_2B,
    BERT_3_9B,
    GPT2_8_3B,
    GPT3_175B,
    ModelConfig,
)

__all__ = [
    "AdamWorkload",
    "adam_reference",
    "LambWorkload",
    "lamb_reference",
    "AttentionWorkload",
    "PipelineWorkload",
    "ModelConfig",
    "BERT_336M",
    "BERT_1_2B",
    "BERT_3_9B",
    "GPT2_8_3B",
    "GPT3_175B",
]
