"""GShard-style Mixture-of-Experts expert MLP over AllToAll.

The workload family where AllToAll dominates: every rank holds, for each
expert, a capacity-bounded group of routed tokens. A **dispatch**
AllToAll sends each token group to the rank hosting its expert, the
expert applies its two-layer MLP (GEMM → ReLU → GEMM), and a **combine**
AllToAll returns the results to the ranks that own the tokens::

    Tensor x (FP16, [E, C, M], Local, WORLD, RANK);   // routed tokens
    Tensor w1(FP16, [M, F],    Local, WORLD, RANK);   // this rank's expert
    Tensor w2(FP16, [F, M],    Local, WORLD, RANK);
    Var disp = AllToAll(x, 0);                        // dispatch
    Var h    = MatMul(disp, w1);
    Var act  = ReLU(h);
    Var eo   = MatMul(act, w2);
    Var comb = AllToAll(eo, 0);                       // combine
    Var out  = comb * (1 / E);                        // combine averaging

with ``E = WORLD`` experts (one per rank), capacity ``C`` tokens per
(source rank, expert) pair, model dimension ``M`` and FFN dimension
``F``. Three schedules mirror the paper's families:

* **GShard-Eq** — every operation a separate library kernel, the
  abstraction-siloed baseline ("multiple kernel calls ... significantly
  hurt performance");
* **fused** — the combine-side scaling is reordered *before* the
  combine (an AllToAll is a chunk permutation, so position-uniform
  computation commutes with it) and fused into the exchange kernel;
* **overlapped** — the fused schedule plus fine-grained overlap of the
  whole dispatch → GEMM → ReLU → GEMM → combine chain, so expert
  computation on chunk *c* starts as soon as dispatch delivers chunk
  *c* (Figure 9 applied to a collective the paper never showed).

The autotuner discovers the overlapped schedule on its own; see
``benchmarks/bench_moe.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core import (
    FP16,
    RANK,
    AllToAll,
    Binary,
    Const,
    DType,
    Execute,
    Local,
    MatMul,
    Program,
    ReLU,
    Tensor,
    world,
)
from repro.core.tensor import Expr
from repro.core.transforms import (
    A2ASplitHierarchical,
    AllToAllFuse,
    Schedule,
)


@dataclass
class MoEWorkload:
    """The MoE expert-MLP DSL program plus handles to its named values."""

    program: Program
    tokens: Tensor
    w1: Tensor
    w2: Tensor
    dispatch: Expr
    gemm1: Expr
    act: Expr
    gemm2: Expr
    combine: Expr
    scale: Expr
    experts: int
    capacity: int
    model_dim: int
    ffn_dim: int

    @classmethod
    def build(
        cls,
        capacity: int,
        model_dim: int,
        ffn_dim: int,
        world_size: int,
        dtype: DType = FP16,
    ) -> "MoEWorkload":
        """One expert per rank: ``E = world_size`` experts."""
        E = world_size
        W = world(world_size)
        x = Tensor(dtype, (E, capacity, model_dim), Local, W, RANK, name="x")
        w1 = Tensor(dtype, (model_dim, ffn_dim), Local, W, RANK, name="w1")
        w2 = Tensor(dtype, (ffn_dim, model_dim), Local, W, RANK, name="w2")

        disp = AllToAll(x, dim=0, name="dispatch")
        h = MatMul(disp, w1, name="h")
        act = ReLU(h)
        eo = MatMul(act, w2, name="expert_out")
        comb = AllToAll(eo, dim=0, name="combine")
        # the averaging constant stays in the workload dtype so the
        # epilogue (and the exchange the reorder moves it across) does
        # not get promoted to FP32
        out = Binary("*", comb, Const(1.0 / E, W, dtype), name="out")
        prog = Execute("moe", [x, w1, w2], [out])
        return cls(
            program=prog,
            tokens=x, w1=w1, w2=w2,
            dispatch=disp, gemm1=h, act=act, gemm2=eo, combine=comb,
            scale=out,
            experts=E, capacity=capacity,
            model_dim=model_dim, ffn_dim=ffn_dim,
        )

    # -- the schedule family ----------------------------------------------

    def schedule_gshard(self) -> Schedule:
        """GShard-Eq: library AllToAlls, GEMMs and pointwise kernels."""
        return Schedule(self.program)

    def _reorder_and_fuse(self) -> Tuple[Schedule, Expr]:
        """Shared tail of the fused/overlapped schedules.

        Moves the combine-side scaling before the exchange and fuses it
        into the combine kernel; returns (schedule, fused block).
        """
        sched = Schedule(self.program)
        results = sched.reorder(self.combine, self.scale)
        scaled, new_comb = results[0], results[1]
        block = sched.fuse(scaled, new_comb, policy=AllToAllFuse)
        return sched, block

    def schedule_fused(self) -> Schedule:
        """fuse(C-A2A): scaling rides the combine exchange kernel."""
        sched, _ = self._reorder_and_fuse()
        return sched

    def schedule_overlapped(self) -> Schedule:
        """ol(A2A, MM, C, MM, fuse(C-A2A)): the full chunk pipeline."""
        sched, block = self._reorder_and_fuse()
        sched.overlap(
            self.dispatch, self.gemm1, self.act, self.gemm2, block
        )
        return sched

    def schedule_hierarchical(self, node_size: int = 16) -> Schedule:
        """split(A2A): both exchanges as intra-node + inter-node phases.

        Profitable across nodes, where it replaces ``(k-1)*m`` small
        NIC messages per exchange with ``k-1`` large ones.
        """
        sched = Schedule(self.program)
        sched.split(self.dispatch, A2ASplitHierarchical, node_size=node_size)
        sched.split(self.combine, A2ASplitHierarchical, node_size=node_size)
        return sched

    def schedules(self) -> Dict[str, Schedule]:
        """The named schedule family, as the benchmarks report them."""
        return {
            "GShard-Eq": self.schedule_gshard(),
            "fused": self.schedule_fused(),
            "overlapped": self.schedule_overlapped(),
        }


def moe_reference(
    x: np.ndarray,
    w1: np.ndarray,
    w2: np.ndarray,
) -> np.ndarray:
    """Reference MoE step on stacked per-rank arrays.

    ``x`` has shape (n, E, C, M) — per-rank routed tokens with the rank
    axis leading, matching how the executor feeds Local tensors; ``w1``
    is (n, M, F) and ``w2`` (n, F, M). Returns the per-rank outputs
    stacked the same way, in float64.
    """
    n, E, C, M = x.shape
    if E % n != 0:
        raise ValueError(f"{E} experts do not divide over {n} ranks")
    per = E // n

    def exchange(buf: np.ndarray) -> np.ndarray:
        out = np.empty_like(buf)
        for r in range(n):
            out[r] = np.concatenate(
                [buf[j, r * per : (r + 1) * per] for j in range(n)], axis=0
            )
        return out

    disp = exchange(x.astype(np.float64))
    # w[:, None] keeps the rank axis aligned with disp's leading axis
    # (each rank applies *its own* expert weights to every chunk)
    h = np.maximum(disp @ w1.astype(np.float64)[:, None], 0.0)
    eo = h @ w2.astype(np.float64)[:, None]
    return exchange(eo) / E
