"""Model configurations and training-memory accounting (Tables 4 & 5).

The paper trains BERT at 336M / 1.2B / 3.9B parameters and runs
inference on GPT-2 8.3B and GPT-3 175B. Per-rank memory in
mixed-precision training:

* FP16 weights (2 B/param) and FP16 gradients (2 B/param);
* FP32 master weights + Adam/LAMB moments (4+4+4 = 12 B/param) —
  *replicated* in the baselines, *sliced across ranks* in ZeRO and in
  CoCoNet's fuse(RS-Opt-AG) schedules ("the fused schedule distributes
  memory of optimizer state among all GPUs", §6.1.2);
* activations proportional to the micro-batch size;
* implementation-specific buffers (NV BERT's contiguous gradient
  buffer; PyTorch DDP's 25 MB buckets).

The largest micro-batch that fits the 32 GB V100 reproduces the batch
columns of Table 4, and with them the throughput advantage of the
memory-saving schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster.gpu import GPU, TESLA_V100

GiB = 1024**3


@dataclass(frozen=True)
class ModelConfig:
    """A transformer model as used in the evaluation."""

    name: str
    num_layers: int
    hidden: int
    seq_length: int
    num_params: int
    #: activation bytes per sample per rank during training (calibrated
    #: to the micro-batch limits the paper reports; see EXPERIMENTS.md)
    activation_bytes_per_sample: int
    #: number of parameter tensors (360 for BERT — Table 2)
    num_tensors: int = 360

    @property
    def param_bytes_fp16(self) -> int:
        return 2 * self.num_params

    def flops_per_sample(self) -> float:
        """Forward+backward FLOPs per training sample (~6 · P · tokens)."""
        return 6.0 * self.num_params * self.seq_length

    def inference_flops_per_sample(self) -> float:
        """Forward-only FLOPs per sample (~2 · P · tokens)."""
        return 2.0 * self.num_params * self.seq_length


#: BERT-Large scaled configurations from NVIDIA's BERT scripts /
#: Megatron-LM, as used in §6.1.2.
BERT_336M = ModelConfig(
    name="BERT 336M", num_layers=24, hidden=1024, seq_length=512,
    num_params=336_000_000, activation_bytes_per_sample=230_000_000,
)
BERT_1_2B = ModelConfig(
    name="BERT 1.2B", num_layers=24, hidden=2048, seq_length=512,
    num_params=1_200_000_000, activation_bytes_per_sample=820_000_000,
)
BERT_3_9B = ModelConfig(
    name="BERT 3.9B", num_layers=48, hidden=2560, seq_length=512,
    num_params=3_900_000_000, activation_bytes_per_sample=1_300_000_000,
)
GPT2_8_3B = ModelConfig(
    name="GPT-2 8.3B", num_layers=72, hidden=3072, seq_length=1024,
    num_params=8_300_000_000, activation_bytes_per_sample=520_000_000,
    num_tensors=1000,
)
GPT3_175B = ModelConfig(
    name="GPT-3 175B", num_layers=96, hidden=12288, seq_length=2048,
    num_params=175_000_000_000, activation_bytes_per_sample=4_200_000_000,
    num_tensors=1200,
)


@dataclass(frozen=True)
class TrainingMemoryPlan:
    """How one implementation lays out training state on each rank."""

    name: str
    #: bytes per parameter held replicated on every rank
    replicated_bytes_per_param: float
    #: bytes per parameter sliced across the world (divided by world size)
    sliced_bytes_per_param: float
    #: fixed extra buffer bytes (e.g. DDP's communication buckets)
    fixed_buffer_bytes: int = 0

    def state_bytes(self, config: ModelConfig, world_size: int) -> int:
        p = config.num_params
        return int(
            p * self.replicated_bytes_per_param
            + p * self.sliced_bytes_per_param / world_size
            + self.fixed_buffer_bytes
        )


#: weights(2) + grads(2) + master/momentum/velocity fp32 (12) replicated,
#: plus a contiguous fp16 gradient buffer for the single AllReduce.
NV_BERT_PLAN = TrainingMemoryPlan("NV BERT", 16.0 + 2.0, 0.0)
#: DDP keeps a flattened bucket view of every gradient alongside the
#: originals ("PyTorch's DDP requires extra memory", §7).
PYTORCH_DDP_PLAN = TrainingMemoryPlan(
    "PyTorch DDP", 16.0 + 2.0, 0.0,
    fixed_buffer_bytes=2 * 25 * 1024 * 1024,
)
#: ZeRO partitions optimizer state; its gradient working buffer is
#: transient and reuses the gradient allocation.
ZERO_ADAM_PLAN = TrainingMemoryPlan("ZeRO", 4.0, 12.0)
#: ZeRO cannot partition LAMB state (§6.1.2) — fully replicated.
ZERO_LAMB_PLAN = TrainingMemoryPlan("ZeRO", 16.0 + 2.0, 0.0)
#: CoCoNet's scattered-tensor fused schedule: no contiguous copy, state
#: sliced across ranks.
COCONET_PLAN = TrainingMemoryPlan("CoCoNet", 4.0, 12.0)


def max_micro_batch(
    config: ModelConfig,
    plan: TrainingMemoryPlan,
    world_size: int,
    gpu: GPU = TESLA_V100,
    cap: Optional[int] = None,
) -> Optional[int]:
    """Largest power-of-two micro-batch that fits, or None for OOM.

    ``cap`` bounds the search (e.g. the global batch divided by the
    world size caps the useful micro-batch for Adam's 8192 global
    batch on 256 GPUs at 32).
    """
    state = plan.state_bytes(config, world_size)
    budget = gpu.memory_bytes - state
    if budget < config.activation_bytes_per_sample:
        return None
    batch = 1
    limit = cap if cap is not None else 1 << 20
    while (
        batch * 2 <= limit
        and (batch * 2) * config.activation_bytes_per_sample <= budget
    ):
        batch *= 2
    return batch
