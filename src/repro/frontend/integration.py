"""PyTorch-style integration of generated operations (Section 5.5).

"We integrated CoCoNet generated code as a function to PyTorch's
torch.distributed module. ... We added wrapper functions for calling
CoCoNet generated operations. These wrapper functions prepare the
arguments for calling CoCoNet's operations, which includes
pre-calculating pointers to the buckets for scattered tensors and
clearing the spin-lock buffers for overlapping."

The reproduction provides the same shape: a ``distributed`` module
object on which compiled programs are registered as callable functions;
registration compiles the schedule once, pre-computes bucket tables for
scattered-tensor arguments, and resets spin-lock state before each
invocation.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.core.codegen.generator import CodeGenerator, GeneratedProgram
from repro.core.program import Program
from repro.core.transforms.schedule import Schedule
from repro.errors import CoCoNetError
from repro.runtime.executor import ProgramResult
from repro.scattered.bucketing import ScatteredTensorSet


class CoCoNetFunction:
    """A compiled CoCoNet program registered with the framework."""

    def __init__(
        self,
        name: str,
        schedule: Schedule,
        protocol: str = "Simple",
    ) -> None:
        self.name = name
        self.schedule = schedule
        self.compiled: GeneratedProgram = CodeGenerator(protocol).generate(
            schedule
        )
        self._spinlock_cleared = False
        self._bucket_tables: Dict[str, ScatteredTensorSet] = {}
        self.invocations = 0

    def prepare_scattered(
        self, name: str, tensors: Sequence[np.ndarray]
    ) -> ScatteredTensorSet:
        """Pre-calculate bucket pointers for a scattered argument.

        Done once; the table is reused across invocations ("training
        tasks run for thousands of iterations on the same tensors").
        """
        table = ScatteredTensorSet(tensors)
        self._bucket_tables[name] = table
        return table

    def bucket_table(self, name: str) -> ScatteredTensorSet:
        try:
            return self._bucket_tables[name]
        except KeyError:
            raise CoCoNetError(
                f"no scattered argument {name!r} prepared for {self.name}"
            ) from None

    def _clear_spinlocks(self) -> None:
        """Reset overlap synchronization state before an invocation."""
        self._spinlock_cleared = True

    def __call__(self, inputs: Mapping[str, np.ndarray]) -> ProgramResult:
        self._clear_spinlocks()
        self.invocations += 1
        flat_inputs: Dict[str, np.ndarray] = {}
        for key, value in inputs.items():
            if key in self._bucket_tables:
                flat_inputs[key] = self._bucket_tables[key].gather_flat()
            else:
                flat_inputs[key] = np.asarray(value)
        result = self.compiled.run(flat_inputs)
        for key, table in self._bucket_tables.items():
            table.scatter_flat(
                np.asarray(result.tensor_state(key)).reshape(-1)
            )
        return result


class DistributedModule:
    """The ``torch.distributed``-like registry of CoCoNet functions."""

    def __init__(self) -> None:
        self._functions: Dict[str, CoCoNetFunction] = {}
        self.nccl_initialized = False

    def init_process_group(self) -> None:
        """Reuse the framework's NCCL initialization logic (§5.5)."""
        self.nccl_initialized = True

    def register(
        self,
        schedule: "Schedule | Program",
        name: Optional[str] = None,
        protocol: str = "Simple",
    ) -> CoCoNetFunction:
        """Compile and register a program; returns the callable."""
        if isinstance(schedule, Program):
            schedule = Schedule(schedule)
        fn_name = name or schedule.program.name
        if fn_name in self._functions:
            raise CoCoNetError(f"function {fn_name!r} already registered")
        fn = CoCoNetFunction(fn_name, schedule, protocol)
        self._functions[fn_name] = fn
        return fn

    def __getattr__(self, name: str) -> CoCoNetFunction:
        functions = self.__dict__.get("_functions", {})
        if name in functions:
            return functions[name]
        raise AttributeError(
            f"no registered CoCoNet function {name!r}; registered: "
            f"{sorted(functions)}"
        )

    def functions(self) -> Sequence[str]:
        return sorted(self._functions)


#: Module-level registry, mirroring ``torch.distributed``.
distributed = DistributedModule()
