"""Framework integration (Section 5.5)."""

from repro.frontend.integration import (
    CoCoNetFunction,
    DistributedModule,
    distributed,
)

__all__ = ["CoCoNetFunction", "DistributedModule", "distributed"]
