"""Real SPMD execution: one OS process per rank over shared memory.

Every other backend in this repository — the reference dict world, the
rank-major vectorized world, the lowered-stream interpreter — executes
all ranks inside one Python process, so "communication" is a library
call over arrays it already owns. This module is the first tier where a
generated program runs as *real concurrent processes*: ``launch`` spawns
one process per rank (``multiprocessing`` spawn context), each process
executes the same generated SPMD module (``CodeGenerator`` with
``target="spmd"``), and ranks rendezvous through a
:class:`SpmdCommunicator` built on ``multiprocessing.shared_memory``.

Transport protocol
------------------

The parent lays out one *slot* per (communication site, rank) in a
single shared data segment, plus an ``int64`` flags segment. A site is
a process group (key ``g<start>x<size>``) or a point-to-point pair
(``p<src>><dst>``). Each slot holds a small self-describing header
(shape + dtype) and the payload; each (site, rank) pair has a *ready*
and a *done* sequence counter in the flags segment:

* publish: write payload, then store ``ready = seq * 2^20 + progress``
  (``progress`` counts published chunks; whole payloads publish 1);
* collect: spin until a peer's ready counter covers the needed chunk,
  then copy the payload out;
* finish: store ``done = seq``. A publisher may only reuse its slot for
  ``seq`` once every participant's ``done`` reached ``seq - 1``.

Because the program is SPMD, every member of a group issues that
group's operations in the same order, so the per-site sequence numbers
advance in lockstep and the tiny protocol above is a full rendezvous.

The publish-then-flag ordering relies on total-store-order visibility
between the payload write and the flag store (plus the fences CPython
itself executes between the two numpy calls). That holds on x86-64 —
every environment this repository's CI runs — but is not guaranteed by
weakly-ordered ISAs; a port to ARM should add an explicit fence (or a
``multiprocessing`` synchronization primitive) between the two stores.

Numerics
--------

Collectives gather peer payloads into a contiguous rank-major stack and
apply the *same* reduction/slicing formulas as
:mod:`repro.runtime.collectives` (float64 accumulation in rank order),
so every collective is bit-identical to its vectorized counterpart —
the property the ``run_spmd`` ≡ ``run_lowered`` acceptance tests rely
on. The pairwise AllToAll drains peers in the step order of
:func:`repro.nccl.algorithms.all_to_all_steps`; chunked publication
(:meth:`SpmdCommunicator.begin_chunked` /
:meth:`SpmdCommunicator.publish_chunks`) releases a producer's output
chunk-by-chunk at the lowering's chunk granularity, and a consuming
reduction ingests each chunk as soon as all ranks have published it.
Reductions over the rank axis are element-wise in the data dimensions,
so chunk-wise accumulation is bit-identical to whole-buffer
accumulation while genuinely pipelining the reduce behind the wire
(:meth:`SpmdCommunicator.begin_chunked` documents why the gather-based
consumer releases chunks index-ordered rather than ring-rotated).

Failure handling
----------------

A rank that raises stores a failure marker in the flags segment; every
spin loop polls the marker, so peers blocked mid-collective abort
promptly instead of deadlocking the rendezvous. The parent tears down
in a ``finally``: joins (then terminates) every worker and closes and
unlinks both shared-memory segments, so a failing kernel can never leak
``/dev/shm`` segments.

Usage
-----

The high-level entry point is ``Executor.run_spmd`` (backend selection,
artifact shipping, elastic recovery); ``launch`` is the raw engine
underneath. Not a doctest — it spawns one real OS process per rank:

.. code-block:: python

    from repro.cli import _seeded_inputs
    from repro.runtime.executor import Executor
    from repro.workloads.adam import AdamWorkload

    sched = AdamWorkload.build(1024, 4).schedules()['fuse(RS-Adam-AG)']
    inputs = _seeded_inputs(sched.program, seed=0)
    out = Executor().run_spmd(sched, inputs, allow_downcast=True)
    # bit-identical to run_lowered(sched, inputs) — the acceptance
    # property tests/test_spmd.py holds the backend to; pass
    # codegen_target="native" for compiled C kernels, elastic=True
    # plus a FaultPlan for recovery from dead ranks.
"""

from __future__ import annotations

import os
import time
import traceback
import uuid
from multiprocessing import connection as _mp_connection
from multiprocessing import get_context
from multiprocessing.shared_memory import SharedMemory
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core import ops
from repro.core.process_group import ProcessGroup
from repro.core.tensor import Tensor
from repro.errors import ExecutionError
from repro.observe.ring import (
    KIND_COMPILE,
    KIND_FAULT,
    KIND_KERNEL,
    KIND_PUBLISH,
    KIND_REDUCE,
    KIND_STALL,
    KIND_WAIT,
    TraceRing,
)
from repro.runtime.collectives import _reduce_stack
from repro.runtime.faults import FaultPlan
from repro.runtime.world import SimWorld, slice_of

__all__ = [
    "SpmdCommunicator",
    "SpmdError",
    "SpmdPeerAbort",
    "SpmdTimeout",
    "SpmdWorkerError",
    "launch",
    "scaled_default_timeout",
    "CollectivePool",
]

#: bytes reserved at the start of every slot for the payload header
HEADER_BYTES = 192
#: ready counters encode ``seq * PROGRESS_BASE + chunks_published``
PROGRESS_BASE = 1 << 20
#: error-flag value stored by a failing rank
_ERR_FAILED = 1
#: error-flag value the *parent* stores for a rank whose process died
#: without reporting — peers abort exactly like on a failure, but the
#: message distinguishes "died" from "raised"
_ERR_DEAD = 2
#: spin-wait granularity (seconds) and its escalation ceiling
_SPIN = 5e-5
_SPIN_MAX = 5e-3
#: default per-wait timeout (seconds)
DEFAULT_TIMEOUT = 120.0
#: default soft (escalation) deadline inside a wait: after this many
#: seconds without progress the spin backs off and a stall marker is
#: recorded; the hard ``timeout`` still bounds the wait
DEFAULT_SOFT_TIMEOUT = 2.0
#: exit code of a rank killed by an injected ``die`` fault
_DIE_EXIT_CODE = 86


class SpmdError(ExecutionError):
    """Base error of the SPMD backend."""


class SpmdTimeout(SpmdError):
    """A rendezvous wait exceeded its deadline."""


class SpmdPeerAbort(SpmdError):
    """Another rank failed; this rank aborted its pending waits."""


class SpmdWorkerError(SpmdError):
    """A run failed; ``context`` carries the failing rank's structured
    state — ``{"rank", "op", "site", "seq"}`` — captured at the point
    of failure, so the error is diagnosable from the merged trace
    without parsing the traceback string. ``dead_ranks`` lists ranks
    whose *process* vanished without reporting (killed, ``os._exit``,
    OOM) — the elastic-recovery trigger."""

    def __init__(
        self,
        message: str,
        context: Optional[dict] = None,
        dead_ranks: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(message)
        self.context = context or {}
        self.dead_ranks = sorted(dead_ranks or [])


def _group_key(group: ProcessGroup) -> str:
    return f"g{group.start}x{group.size}"


def _p2p_key(src: int, dst: int) -> str:
    return f"p{src}>{dst}"


def _round64(n: int) -> int:
    return (n + 63) // 64 * 64


class SpmdLayout:
    """Deterministic slot layout shared by the parent and every rank.

    ``sites`` maps a site key to ``(participants, slot_bytes, offset)``
    where ``offset`` is the byte offset of the site's rank-0 slot in the
    data segment; rank ``r``'s slot starts at ``offset + r *
    slot_bytes``. Picklable by construction (plain ints/tuples) so the
    spawn context can ship it to every worker.
    """

    def __init__(self, nranks: int) -> None:
        self.nranks = nranks
        self.sites: Dict[str, Tuple[Tuple[int, ...], int, int]] = {}
        self.data_size = 64
        self._pending: Dict[str, Tuple[Tuple[int, ...], int]] = {}

    def add_site(
        self, key: str, participants: Sequence[int], payload_bytes: int
    ) -> None:
        participants = tuple(participants)
        slot = HEADER_BYTES + _round64(max(64, int(payload_bytes))) + 64
        old = self._pending.get(key)
        if old is not None:
            participants = old[0]
            slot = max(old[1], slot)
        self._pending[key] = (participants, slot)

    def freeze(self) -> int:
        """Assign offsets; returns the total data-segment size."""
        offset = 0
        for key in sorted(self._pending):
            participants, slot = self._pending[key]
            self.sites[key] = (participants, slot, offset)
            offset += slot * self.nranks
        self.data_size = max(offset, 64)
        return self.data_size

    @property
    def num_sites(self) -> int:
        return len(self.sites)

    def flags_length(self) -> int:
        # ready+done per (site, rank), then one error flag per rank
        return self.num_sites * self.nranks * 2 + self.nranks


def build_layout(program) -> SpmdLayout:
    """Enumerate the program's communication sites and size their slots.

    One site per process group touched by a collective or cross-rank
    reduction, one per point-to-point (src, dst) pair of every Send, and
    one world-sized site for barriers. Slot sizes cover the largest
    per-rank payload published at that site (collective inputs, chunked
    staging buffers, gathered scalars).
    """
    world_size = program.inputs[0].group.world_size
    layout = SpmdLayout(world_size)
    layout.add_site(
        _group_key(ProcessGroup(0, world_size, world_size)),
        range(world_size),
        64,
    )
    for e in program.operations:
        if isinstance(e, ops.Send):
            src_group = e.inputs[0].group
            dst_group = e.group
            nbytes = e.inputs[0].per_rank_bytes()
            for local in range(src_group.size):
                src = src_group.global_rank(local)
                dst = dst_group.global_rank(local)
                layout.add_site(_p2p_key(src, dst), (src, dst), nbytes)
        elif isinstance(e, ops.CommOp):
            nbytes = max(
                e.inputs[0].per_rank_bytes(), e.per_rank_bytes()
            )
            layout.add_site(_group_key(e.group), e.group.ranks, nbytes)
        elif (
            isinstance(e, (ops.Norm, ops.ReduceTensor)) and e.crosses_ranks
        ):
            layout.add_site(_group_key(e.group), e.group.ranks, 64)
    layout.freeze()
    return layout


def scaled_default_timeout(
    layout: SpmdLayout, wire_s_per_mb: float,
    compile_allowance_s: float = 0.0,
) -> float:
    """The default per-wait deadline, scaled to the simulated wire.

    Publishing a slot of S MiB costs ``wire_s_per_mb * S`` seconds of
    simulated wire sleep; chunked sites republish the payload per chunk
    and a straggler can serialize every rank's wire time behind it, so
    the flat :data:`DEFAULT_TIMEOUT` gains ``4 x wire x largest-site x
    nranks`` of headroom — slow simulated wires must stretch waits, not
    fail them.

    ``compile_allowance_s`` is the native target's one-time
    cold-kernel-cache headroom: on the first run each rank compiles (or
    waits behind a peer's ``flock`` for) the module's C kernels between
    the barrier and its first rendezvous, which the flat deadline would
    misread as a dead peer. Warm-cache runs pass 0.
    """
    base = DEFAULT_TIMEOUT + max(0.0, compile_allowance_s)
    if wire_s_per_mb <= 0.0 or not layout.sites:
        return base
    largest = max(slot for (_, slot, _) in layout.sites.values())
    scale = 4.0 * wire_s_per_mb * (largest / (1 << 20)) * layout.nranks
    return base + scale


class _ChunkToken:
    """A chunked publication in flight on a group site."""

    def __init__(self, key, group, seq, staging, chunk_dim, bounds) -> None:
        self.key = key
        self.group = group
        self.seq = seq
        self.staging = staging
        self.chunk_dim = chunk_dim
        self.bounds = tuple(bounds)


class SpmdCommunicator:
    """One rank's endpoint of the shared-memory rendezvous."""

    def __init__(
        self,
        layout: SpmdLayout,
        rank: int,
        data: SharedMemory,
        flags: SharedMemory,
        wire_s_per_mb: float = 0.0,
        timeout: float = DEFAULT_TIMEOUT,
        owns_segments: bool = False,
        trace_path: Optional[str] = None,
        soft_timeout: Optional[float] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.layout = layout
        self.rank = rank
        self.nranks = layout.nranks
        self.wire_s_per_mb = float(wire_s_per_mb)
        self.timeout = float(timeout)
        self.soft_timeout = min(
            self.timeout,
            DEFAULT_SOFT_TIMEOUT if soft_timeout is None
            else float(soft_timeout),
        )
        self._data = data
        self._flags_shm = flags
        self._owns = owns_segments
        self._flags = np.ndarray(
            (layout.flags_length(),), dtype=np.int64, buffer=flags.buf
        )
        self._site_order = sorted(layout.sites)
        self._site_idx = {k: i for i, k in enumerate(self._site_order)}
        self._seq: Dict[str, int] = {}
        self._tokens: Dict[str, _ChunkToken] = {}
        self._err_off = layout.num_sites * layout.nranks * 2
        self._closed = False
        # observability: the per-rank trace ring plus the current
        # operation context (kept even without a ring — it is the
        # structured context attached to propagated worker errors)
        self._ring: Optional[TraceRing] = (
            TraceRing(trace_path) if trace_path else None
        )
        self._op = ""
        self._site = ""
        self._site_seq = 0
        self._streams: List["_Stream"] = []
        # fault injection: the plan's per-rank view (None when inert);
        # armed events are recorded up front so a post-mortem trace
        # shows what was injected even if the rank never reaches it
        self._faults = faults.for_rank(rank) if faults is not None else None
        if self._faults is not None and self._ring is not None:
            now = time.monotonic_ns()
            for desc in self._faults.armed():
                self._ring.append(KIND_FAULT, now, 0, name=f"armed:{desc}")

    # -- attach (worker side) -------------------------------------------

    @classmethod
    def attach(
        cls,
        layout: SpmdLayout,
        rank: int,
        data_name: str,
        flags_name: str,
        wire_s_per_mb: float = 0.0,
        timeout: float = DEFAULT_TIMEOUT,
        trace_path: Optional[str] = None,
        soft_timeout: Optional[float] = None,
        faults: Optional[FaultPlan] = None,
    ) -> "SpmdCommunicator":
        data = SharedMemory(name=data_name)
        flags = SharedMemory(name=flags_name)
        # NOTE: attaching does not register with the resource tracker on
        # supported Pythons (3.9+), and spawned workers share the
        # parent's tracker — the parent's unlink() is the only
        # deregistration, so no double-unlink warnings.
        return cls(
            layout, rank, data, flags, wire_s_per_mb, timeout,
            trace_path=trace_path, soft_timeout=soft_timeout,
            faults=faults,
        )

    # -- flags ----------------------------------------------------------

    def _ready_idx(self, key: str, rank: int) -> int:
        return (self._site_idx[key] * self.nranks + rank) * 2

    def _ready(self, key: str, rank: int) -> int:
        return int(self._flags[self._ready_idx(key, rank)])

    def _set_ready(self, key: str, rank: int, value: int) -> None:
        self._flags[self._ready_idx(key, rank)] = value

    def _done(self, key: str, rank: int) -> int:
        return int(self._flags[self._ready_idx(key, rank) + 1])

    def _set_done(self, key: str, rank: int, value: int) -> None:
        self._flags[self._ready_idx(key, rank) + 1] = value

    def signal_error(self, kind: int = _ERR_FAILED) -> None:
        """Mark this rank failed so peers abort their pending waits."""
        if not self._closed:
            self._flags[self._err_off + self.rank] = kind

    def _check_peers(self) -> None:
        errs = self._flags[self._err_off : self._err_off + self.nranks]
        if errs.any():
            failed = [
                r for r in range(self.nranks)
                if errs[r] and r != self.rank
            ]
            if failed:
                dead = [r for r in failed if int(errs[r]) == _ERR_DEAD]
                extra = f" (rank(s) {dead} died)" if dead else ""
                raise SpmdPeerAbort(
                    f"rank {self.rank}: aborting, peer rank(s) "
                    f"{failed} failed{extra}"
                )

    def _spin(self, cond, what: str, site: str = "") -> None:
        """Wait for ``cond`` with escalation instead of one flat wall.

        Under :attr:`soft_timeout` the loop spins at fine granularity;
        each soft deadline that passes without progress is a *soft
        retry* — the spin interval backs off (doubling up to
        ``_SPIN_MAX``) and a stall marker is recorded, so transient
        hiccups (an injected ``stall_publish``, a delayed chunk
        redelivery, a straggler) are ridden out visibly. Only the hard
        :attr:`timeout` raises :class:`SpmdTimeout`, after signalling
        the error flag so every peer aborts its own waits (the
        peer-abort broadcast).
        """
        if cond():
            return
        t0 = time.monotonic_ns() if self._ring is not None else 0
        start = time.monotonic()
        deadline = start + self.timeout
        next_soft = start + self.soft_timeout
        interval = _SPIN
        retries = 0
        try:
            while not cond():
                self._check_peers()
                now = time.monotonic()
                if now > deadline:
                    self.signal_error(_ERR_FAILED)
                    raise SpmdTimeout(
                        f"rank {self.rank}: timed out after "
                        f"{self.timeout:.0f}s ({retries} soft retries of "
                        f"{self.soft_timeout:.2g}s) waiting for {what}"
                    )
                if now >= next_soft:
                    retries += 1
                    interval = min(interval * 2.0, _SPIN_MAX)
                    next_soft = now + self.soft_timeout
                    if self._ring is not None:
                        self._ring.append(
                            KIND_STALL, time.monotonic_ns(), 0,
                            seq=retries, site=site or self._site,
                            name=what,
                        )
                time.sleep(interval)
        finally:
            # recorded even when the wait dies (timeout / peer abort):
            # the stall is exactly what the merged trace must show
            if self._ring is not None:
                self._ring.append(
                    KIND_WAIT, t0, time.monotonic_ns() - t0,
                    seq=self._site_seq, site=site or self._site, name=what,
                )

    # -- observability ----------------------------------------------------

    def _trace(
        self, kind: int, t0: int, *, nbytes: int = 0, seq: int = 0,
        site: str = "", name: str = "",
    ) -> None:
        if self._ring is not None:
            self._ring.append(
                kind, t0, time.monotonic_ns() - t0,
                nbytes=nbytes, seq=seq, site=site, name=name,
            )

    def kernel_span(self, name: str):
        """Scope one generated-kernel call: maintains the current-op
        context (attached to worker errors) and, when tracing, records
        the call as a kernel span."""
        return _KernelSpan(self, name)

    def record_compile(
        self, name: str, seconds: float, status: str
    ) -> None:
        """Record a native kernel-cache outcome as an instant event.

        Called by :func:`repro.core.codegen.native.load_kernels` when
        the communicator is passed as its observer; Perfetto timelines
        then show cold-cache compile stalls (``compile:<key>``) next to
        the kernels they delayed. ``status`` is ``"compile"``, ``"hit"``
        or ``"recompile"``; ``dur`` carries the elapsed time so the
        merged metrics can aggregate per-rank compile seconds.
        """
        if self._ring is not None:
            self._ring.append(
                KIND_COMPILE,
                time.monotonic_ns(),
                int(seconds * 1e9),
                name=f"{status}:{name}",
            )

    def error_context(self) -> Dict[str, object]:
        """The structured where-was-I snapshot for failure reports."""
        return {
            "rank": self.rank,
            "op": self._op,
            "site": self._site,
            "seq": self._site_seq,
        }

    # -- slots -----------------------------------------------------------

    def _slot_bounds(self, key: str, rank: int) -> Tuple[int, int]:
        try:
            _, slot, offset = self.layout.sites[key]
        except KeyError:
            raise SpmdError(
                f"rank {self.rank}: no communication site {key!r}; the "
                f"launcher sized sites from the program — this op was "
                f"not part of it"
            ) from None
        base = offset + rank * slot
        return base, slot

    def _write_header(self, key: str, arr: np.ndarray) -> None:
        base, slot = self._slot_bounds(key, self.rank)
        if HEADER_BYTES + arr.nbytes > slot:
            raise SpmdError(
                f"rank {self.rank}: payload of {arr.nbytes} B exceeds the "
                f"{slot} B slot of site {key!r}"
            )
        if arr.ndim > 8:
            raise SpmdError(f"payloads are limited to 8 dims, got {arr.ndim}")
        header = np.ndarray((10,), dtype=np.int64, buffer=self._data.buf,
                            offset=base)
        header[0] = arr.nbytes
        header[1] = arr.ndim
        for i in range(8):
            header[2 + i] = arr.shape[i] if i < arr.ndim else 0
        dt = arr.dtype.str.encode("ascii")
        self._data.buf[base + 80 : base + 80 + len(dt)] = dt
        self._data.buf[base + 80 + len(dt)] = 0
        del header

    def _payload_view(
        self, key: str, rank: int, shape: Tuple[int, ...], dtype
    ) -> np.ndarray:
        """A writable ndarray view of a slot's payload region.

        Callers must drop the view before :meth:`close` (views pin the
        shared-memory buffer).
        """
        base, _ = self._slot_bounds(key, rank)
        return np.ndarray(
            shape, dtype=dtype, buffer=self._data.buf,
            offset=base + HEADER_BYTES,
        )

    def _read_payload(self, key: str, rank: int) -> np.ndarray:
        base, _ = self._slot_bounds(key, rank)
        header = np.ndarray((10,), dtype=np.int64, buffer=self._data.buf,
                            offset=base)
        ndim = int(header[1])
        shape = tuple(int(header[2 + i]) for i in range(ndim))
        del header
        raw = bytes(self._data.buf[base + 80 : base + 112])
        dtype = np.dtype(raw.split(b"\0", 1)[0].decode("ascii"))
        view = self._payload_view(key, rank, shape, dtype)
        out = view.copy()
        del view
        return out

    def _wire_sleep(self, nbytes: int) -> None:
        if self.wire_s_per_mb > 0.0 and nbytes > 0:
            factor = (
                self._faults.wire_factor if self._faults is not None else 1.0
            )
            time.sleep(self.wire_s_per_mb * factor * nbytes / (1 << 20))

    # -- fault injection --------------------------------------------------

    def _fault_publish(self, site: str, seq: int) -> None:
        """One publish-side injection point: stall, then possibly die.

        Called after the payload is written but before the ready flag —
        a stall delays visibility (peers soft-retry through it), and a
        kill leaves a written-but-unannounced payload behind, exactly
        like a process dying mid-transfer.
        """
        f = self._faults
        if f is None:
            return
        delay = f.publish_delay(site, seq)
        if delay > 0.0:
            self._trace(
                KIND_FAULT, time.monotonic_ns(), seq=seq, site=site,
                name=f"stall_publish {delay:g}s",
            )
            time.sleep(delay)
        if f.should_die(site):
            self._die(site, seq)

    def _die(self, site: str, seq: int) -> None:
        """Injected hard death: no error flag, no parent message.

        The fault marker is flushed to the ring first (the page cache
        keeps it through process exit), then the process vanishes —
        detection is entirely the parent's and the peers' problem,
        which is the point.
        """
        if self._ring is not None:
            self._ring.append(
                KIND_FAULT, time.monotonic_ns(), 0, seq=seq, site=site,
                name="die",
            )
            self._ring.close()
        os._exit(_DIE_EXIT_CODE)

    # -- rendezvous core --------------------------------------------------

    def _begin(self, key: str, participants: Sequence[int]) -> int:
        seq = self._seq.get(key, 0) + 1
        self._seq[key] = seq
        self._site = key
        self._site_seq = seq
        if seq > 1:
            # slot reuse: everyone must have finished the previous op
            self._spin(
                lambda: all(
                    self._done(key, p) >= seq - 1 for p in participants
                ),
                f"site {key} seq {seq - 1} completion",
            )
        return seq

    def _publish(self, key: str, seq: int, arr: np.ndarray) -> None:
        t0 = time.monotonic_ns() if self._ring is not None else 0
        arr = np.asarray(arr)
        if not arr.flags["C_CONTIGUOUS"]:
            # (ascontiguousarray unconditionally would promote 0-d
            # scalars to shape (1,) and break the payload round-trip)
            arr = np.ascontiguousarray(arr)
        self._write_header(key, arr)
        view = self._payload_view(key, self.rank, arr.shape, arr.dtype)
        view[...] = arr
        del view
        self._wire_sleep(arr.nbytes)
        self._fault_publish(key, seq)
        self._set_ready(key, self.rank, seq * PROGRESS_BASE + 1)
        self._trace(
            KIND_PUBLISH, t0, nbytes=arr.nbytes, seq=seq, site=key,
            name=self._op or key,
        )

    def _collect(
        self, key: str, seq: int, ranks: Sequence[int]
    ) -> List[np.ndarray]:
        out = []
        want = seq * PROGRESS_BASE + 1
        for r in ranks:
            self._spin(
                lambda r=r: self._ready(key, r) >= want,
                f"rank {r}'s payload at site {key}",
                site=key,
            )
            out.append(self._read_payload(key, r))
        return out

    def _finish(self, key: str, seq: int) -> None:
        self._set_done(key, self.rank, seq)

    def _exchange_group(
        self, group: ProcessGroup, arr: np.ndarray
    ) -> List[np.ndarray]:
        """All-to-all-gather one payload per rank, in rank order."""
        key = _group_key(group)
        parts = tuple(group.ranks)
        seq = self._begin(key, parts)
        self._publish(key, seq, np.asarray(arr))
        rows = self._collect(key, seq, parts)
        self._finish(key, seq)
        return rows

    # -- collectives ------------------------------------------------------
    #
    # Each method mirrors the corresponding ``*_vectorized`` formula of
    # :mod:`repro.runtime.collectives` on a contiguous rank-major stack,
    # so results are bit-identical to the vectorized backend.

    def _reduced_total(self, x, group: ProcessGroup, op: str) -> np.ndarray:
        token = self._tokens.pop(_group_key(group), None)
        if token is not None:
            return self._token_reduce(token, op)
        rows = self._exchange_group(group, x)
        t0 = time.monotonic_ns() if self._ring is not None else 0
        total = _reduce_stack(np.stack(rows, axis=0), op)
        self._trace(
            KIND_REDUCE, t0, seq=self._site_seq, site=_group_key(group),
            name=self._op or op,
        )
        return total

    def allreduce(self, x, group: ProcessGroup, op: str, dtype) -> np.ndarray:
        """Every rank receives the reduction of all ranks' values."""
        return self._reduced_total(x, group, op).astype(dtype)

    def reducescatter(
        self, x, group: ProcessGroup, op: str, dim: int, dtype,
        context: str = "",
    ) -> np.ndarray:
        """This rank receives its slice of the reduction."""
        total = self._reduced_total(x, group, op).astype(dtype)
        i = group.local_rank(self.rank)
        return slice_of(total, dim, i, group.size, context=context).copy()

    def _gather_rows(self, x, group: ProcessGroup) -> List[np.ndarray]:
        token = self._tokens.pop(_group_key(group), None)
        if token is not None:
            return self._token_rows(token)
        return self._exchange_group(group, x)

    def allgather(self, x, group: ProcessGroup, dim: int) -> np.ndarray:
        """Concatenation of all ranks' slices, in rank order."""
        rows = self._gather_rows(x, group)
        return np.concatenate(rows, axis=dim)

    def alltoall(
        self, x, group: ProcessGroup, dim: int, context: str = ""
    ) -> np.ndarray:
        """This rank receives chunk ``i`` of every rank, in source order.

        Peers are drained in the pairwise step order of
        :func:`repro.nccl.algorithms.all_to_all_steps` (in step ``t``
        rank ``r`` receives from ``(r - t - 1) mod n``); the result is
        assembled in source-rank order, matching the reference. A
        pending chunk token on the group is consumed chunk-by-chunk
        like every other collective.
        """
        n = group.size
        i = group.local_rank(self.rank)
        token = self._tokens.pop(_group_key(group), None)
        if token is not None:
            rows = dict(enumerate(self._token_rows(token)))
        else:
            key = _group_key(group)
            parts = tuple(group.ranks)
            seq = self._begin(key, parts)
            self._publish(key, seq, np.asarray(x))
            rows = {}
            order = [i] + [(i - t - 1) % n for t in range(n - 1)]
            for j in order:
                rows[j] = self._collect(
                    key, seq, [group.global_rank(j)]
                )[0]
            self._finish(key, seq)
        parts_out = [
            slice_of(rows[s], dim, i, n, context=context) for s in range(n)
        ]
        return np.concatenate(parts_out, axis=dim)

    def alltoall_intra(
        self, x, group: ProcessGroup, dim: int, node_size: int,
        context: str = "",
    ) -> np.ndarray:
        """Intra-node phase of the hierarchical AllToAll (this rank)."""
        k, m = self._node_grid(group, node_size)
        n = group.size
        rows = self._gather_rows(x, group)
        local = group.local_rank(self.rank)
        a, q = divmod(local, m)
        parts = [
            slice_of(
                rows[a * m + p], dim, b * m + q, n, context=context
            )
            for b in range(k)
            for p in range(m)
        ]
        return np.concatenate(parts, axis=dim)

    def alltoall_inter(
        self, x, group: ProcessGroup, dim: int, node_size: int,
        context: str = "",
    ) -> np.ndarray:
        """Inter-node phase of the hierarchical AllToAll (this rank)."""
        k, m = self._node_grid(group, node_size)
        n = group.size
        rows = self._gather_rows(x, group)
        local = group.local_rank(self.rank)
        b, q = divmod(local, m)
        parts = [
            slice_of(
                rows[a * m + q], dim, b * m + p, n, context=context
            )
            for a in range(k)
            for p in range(m)
        ]
        return np.concatenate(parts, axis=dim)

    @staticmethod
    def _node_grid(group: ProcessGroup, node_size: int) -> Tuple[int, int]:
        n = group.size
        m = min(max(1, int(node_size)), n)
        if n % m != 0:
            raise ExecutionError(
                f"group size {n} is not divisible by node size {m}"
            )
        return n // m, m

    def reduce(
        self, x, group: ProcessGroup, op: str, root: int, dtype
    ) -> np.ndarray:
        """Root receives the reduction; non-roots keep their input
        (NCCL leaves non-root receive buffers unmodified).

        Only the root reads (and reduces) the published payloads; every
        rank still contributes one, and the sequence counters keep the
        rendezvous symmetric.
        """
        root_rank = group.global_rank(root)
        token = self._tokens.pop(_group_key(group), None)
        if token is not None:
            total = self._token_reduce(token, op)
            if self.rank == root_rank:
                return total.astype(dtype)
            return np.asarray(x).astype(dtype)
        key = _group_key(group)
        parts = tuple(group.ranks)
        seq = self._begin(key, parts)
        self._publish(key, seq, np.asarray(x))
        if self.rank == root_rank:
            rows = self._collect(key, seq, parts)
            out = _reduce_stack(np.stack(rows, axis=0), op).astype(dtype)
        else:
            out = np.asarray(x).astype(dtype)
        self._finish(key, seq)
        return out

    def broadcast(self, x, group: ProcessGroup, root: int) -> np.ndarray:
        """Every rank receives the root rank's value.

        Only the root publishes a payload — one wire transfer, not one
        per rank — while the sequence counters still rendezvous the
        whole group.
        """
        root_rank = group.global_rank(root)
        token = self._tokens.pop(_group_key(group), None)
        if token is not None:
            rows = self._token_rows(token)
            return rows[group.local_rank(root_rank)]
        key = _group_key(group)
        parts = tuple(group.ranks)
        seq = self._begin(key, parts)
        if self.rank == root_rank:
            self._publish(key, seq, np.asarray(x))
            out = np.array(x, copy=True)
        else:
            out = self._collect(key, seq, [root_rank])[0]
        self._finish(key, seq)
        return out

    def exchange_scalars(self, value, group: ProcessGroup) -> List[np.float64]:
        """Gather one float64 scalar per rank, in rank order (§5.2:
        the AllReduce of partial reductions)."""
        rows = self._exchange_group(
            group, np.asarray(value, dtype=np.float64)
        )
        return [np.float64(r) for r in rows]

    def barrier(self, group: Optional[ProcessGroup] = None) -> None:
        if group is None:
            group = ProcessGroup(0, self.nranks, self.nranks)
        self._exchange_group(group, np.zeros((1,), dtype=np.int64))

    # -- P2P --------------------------------------------------------------

    def send(self, x, dst: int) -> None:
        """Send this rank's value to global rank ``dst``."""
        key = _p2p_key(self.rank, dst)
        seq = self._begin(key, (self.rank, dst))
        self._publish(key, seq, np.asarray(x))
        self._finish(key, seq)

    def recv(self, src: int) -> np.ndarray:
        """Receive the value global rank ``src`` sent to this rank."""
        key = _p2p_key(src, self.rank)
        seq = self._begin(key, (src, self.rank))
        out = self._collect(key, seq, [src])[0]
        self._finish(key, seq)
        return out

    # -- chunked ring publication (overlap, §5.3) -------------------------

    def begin_chunked(
        self,
        group: ProcessGroup,
        staging: np.ndarray,
        chunk_dim: int,
        bounds: Sequence[Tuple[int, int]],
    ) -> _ChunkToken:
        """Open a chunked publication of ``staging`` on the group site.

        The next collective this rank issues on ``group`` consumes the
        token chunk-by-chunk instead of exchanging whole buffers.

        Chunks are released in *index order* on every rank. The real
        backend's ring collective consumes rank-rotated chunks (rank
        ``i`` starts at chunk ``i``, Figure 9) because the reduction
        travels around the ring; this communicator's collectives reduce
        in rank order (the bitwise contract with the lowered oracle), so
        chunk ``c`` is complete once every rank published its ``c``-th
        release — under rotation that only happens at the final step for
        *every* chunk, which would serialize the pipeline, while index
        order completes chunk ``c`` at step ``c`` and genuinely overlaps
        the consumer's reduction with the remaining chunks' wire time.
        """
        key = _group_key(group)
        parts = tuple(group.ranks)
        seq = self._begin(key, parts)
        staging = np.asarray(staging)
        if not staging.flags["C_CONTIGUOUS"]:
            staging = np.ascontiguousarray(staging)
        self._write_header(key, staging)
        token = _ChunkToken(key, group, seq, staging, chunk_dim, bounds)
        self._tokens[key] = token
        return token

    def publish_chunks(
        self, token: _ChunkToken, out: Optional[np.ndarray] = None
    ) -> None:
        """Release the staged chunks, one wire transfer per chunk.

        ``out``, when given, receives each chunk as it is published —
        the consumer-visible buffer of the lowered ``publish`` mode.
        """
        staging = token.staging
        bounds = token.bounds
        view = self._payload_view(
            token.key, self.rank, staging.shape, staging.dtype
        )
        # an injected drop_chunk withholds the ready bump: the payload
        # is written, but visibility is redelivered later (with the next
        # chunk's bump, or after the drop's redeliver delay for the last
        # chunk) — consumers soft-retry through the gap
        redeliver: Optional[float] = None
        try:
            for c in range(len(bounds)):
                t0 = time.monotonic_ns() if self._ring is not None else 0
                lo, hi = bounds[c]
                sl = [slice(None)] * staging.ndim
                sl[token.chunk_dim] = slice(lo, hi)
                sl = tuple(sl)
                view[sl] = staging[sl]
                if out is not None:
                    out[sl] = staging[sl]
                nbytes = staging[sl].nbytes
                self._wire_sleep(nbytes)
                self._fault_publish(token.key, c)
                if self._faults is not None:
                    drop = self._faults.drop(token.key, c)
                    if drop is not None:
                        self._trace(
                            KIND_FAULT, time.monotonic_ns(), seq=c,
                            site=token.key, name=f"drop_chunk {c}",
                        )
                        redeliver = drop.redeliver
                        continue
                if redeliver is not None:
                    time.sleep(redeliver)
                    self._trace(
                        KIND_FAULT, time.monotonic_ns(), seq=c,
                        site=token.key, name="redeliver",
                    )
                    redeliver = None
                self._set_ready(
                    token.key, self.rank,
                    token.seq * PROGRESS_BASE + c + 1,
                )
                self._trace(
                    KIND_PUBLISH, t0, nbytes=nbytes, seq=c, site=token.key,
                    name=f"chunk{c}",
                )
            if redeliver is not None:
                # the dropped chunk was the last one: redeliver it
                time.sleep(redeliver)
                self._trace(
                    KIND_FAULT, time.monotonic_ns(),
                    seq=len(bounds) - 1, site=token.key, name="redeliver",
                )
                self._set_ready(
                    token.key, self.rank,
                    token.seq * PROGRESS_BASE + len(bounds),
                )
        finally:
            del view

    def _chunk_wait(self, token: _ChunkToken, local: int, c: int) -> None:
        """Wait until group-local rank ``local`` published chunk ``c``."""
        want = token.seq * PROGRESS_BASE + c + 1
        r = token.group.global_rank(local)
        self._spin(
            lambda: self._ready(token.key, r) >= want,
            f"chunk {c} from rank {r} at site {token.key}",
            site=token.key,
        )

    def _token_reduce(self, token: _ChunkToken, op: str) -> np.ndarray:
        """Chunk-wise rank-order reduction of a chunked publication.

        Reductions over the rank axis are element-wise in the data
        dimensions, so accumulating chunk ``c`` as soon as every rank
        published it is bit-identical to reducing the whole stack —
        while genuinely overlapping the reduce with the remaining
        chunks' wire time.
        """
        group = token.group
        n = group.size
        shape, dtype = token.staging.shape, token.staging.dtype
        total = np.empty(shape, dtype=np.float64)
        t_all = time.monotonic_ns() if self._ring is not None else 0
        views = [
            self._payload_view(token.key, r, shape, dtype)
            for r in group.ranks
        ]
        try:
            for c in range(len(token.bounds)):
                lo, hi = token.bounds[c]
                sl = [slice(None)] * len(shape)
                sl[token.chunk_dim] = slice(lo, hi)
                sl = tuple(sl)
                rows = []
                for j in range(n):
                    self._chunk_wait(token, j, c)
                    rows.append(np.ascontiguousarray(views[j][sl]))
                total[sl] = _reduce_stack(np.stack(rows, axis=0), op)
        finally:
            del views
        self._finish(token.key, token.seq)
        self._trace(
            KIND_REDUCE, t_all, seq=token.seq, site=token.key,
            name=self._op or op,
        )
        return total

    def _token_rows(self, token: _ChunkToken) -> List[np.ndarray]:
        """Assemble every rank's full chunked publication."""
        group = token.group
        shape, dtype = token.staging.shape, token.staging.dtype
        rows = [np.empty(shape, dtype=dtype) for _ in range(group.size)]
        views = [
            self._payload_view(token.key, r, shape, dtype)
            for r in group.ranks
        ]
        try:
            for c in range(len(token.bounds)):
                lo, hi = token.bounds[c]
                sl = [slice(None)] * len(shape)
                sl[token.chunk_dim] = slice(lo, hi)
                sl = tuple(sl)
                for j in range(group.size):
                    self._chunk_wait(token, j, c)
                    rows[j][sl] = views[j][sl]
        finally:
            del views
        self._finish(token.key, token.seq)
        return rows

    # -- streams ----------------------------------------------------------

    def start_stream(self, fn) -> "_Stream":
        """Run ``fn`` on a worker thread — one per GPU stream, giving
        overlap groups actual intra-rank concurrency."""
        s = _Stream(fn, self)
        self._streams.append(s)
        return s

    def join_streams(self, *streams: "_Stream") -> None:
        for s in streams:
            s.join()

    # -- teardown ---------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # every started stream must be joined by now (the generated
        # orchestrators join in a finally); any thread still alive gets
        # a short grace join and is tagged in the trace — a leaked
        # producer is a teardown bug the post-mortem must show
        for s in self._streams:
            if s.alive():
                s.wait(1.0)
                if s.alive() and self._ring is not None:
                    self._ring.append(
                        KIND_FAULT, time.monotonic_ns(), 0,
                        name="stream-leak",
                    )
        self._streams = []
        self._flags = None
        if self._ring is not None:
            self._ring.close()
            self._ring = None
        for shm in (self._data, self._flags_shm):
            try:
                shm.close()
            except BufferError:  # pragma: no cover - view still alive
                pass


class _KernelSpan:
    """Context manager scoping one generated-kernel call.

    Maintains the communicator's current-op name (nested in the
    overlap case: a producer stream publishes while the consumer kernel
    runs) and records the call as a kernel span when tracing.
    """

    def __init__(self, comm: SpmdCommunicator, name: str) -> None:
        self._comm = comm
        self._name = name
        self._prev = ""
        self._t0 = 0

    def __enter__(self) -> "_KernelSpan":
        comm = self._comm
        self._prev = comm._op
        comm._op = self._name
        faults = comm._faults
        if comm._ring is not None or (
            faults is not None and faults.kernel_factor > 1.0
        ):
            self._t0 = time.monotonic_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        comm = self._comm
        faults = comm._faults
        if (
            faults is not None
            and faults.kernel_factor > 1.0
            and self._t0
            and exc_type is None
        ):
            # straggler: stretch the kernel's elapsed time by the factor
            elapsed = (time.monotonic_ns() - self._t0) / 1e9
            time.sleep(elapsed * (faults.kernel_factor - 1.0))
        comm._trace(
            KIND_KERNEL, self._t0, seq=comm._site_seq, site=comm._site,
            name=self._name,
        )
        if exc_type is None:
            comm._op = self._prev
        # on failure the op name is left in place so error_context()
        # reports the kernel that raised


class _Stream(object):
    """A worker thread standing in for one GPU stream."""

    def __init__(self, fn, comm: SpmdCommunicator) -> None:
        import threading

        self._exc: Optional[BaseException] = None
        self._comm = comm

        def run():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - reraised at join
                self._exc = exc
                comm.signal_error(_ERR_FAILED)

        self._thread = threading.Thread(target=run, daemon=True)
        self._thread.start()

    def alive(self) -> bool:
        return self._thread.is_alive()

    def wait(self, timeout: float) -> None:
        """Join without re-raising (teardown-side best effort)."""
        self._thread.join(timeout)

    def join(self) -> None:
        self._thread.join(self._comm.timeout)
        if self._thread.is_alive():  # pragma: no cover - defensive
            raise SpmdTimeout("stream thread did not finish")
        if self._exc is not None:
            raise self._exc


# ---------------------------------------------------------------------------
# Worker entry point (must be importable for the spawn context).
# ---------------------------------------------------------------------------


def _module_source(spec) -> str:
    """Resolve a worker module spec to executable source.

    ``spec`` is either raw generated source (a plain string — the
    historical path, still used when a caller hands ``launch`` an
    explicit module) or ``("artifact", text, protocol[, target])``: a
    serialized :mod:`repro.core.artifact` document from which this rank
    derives its module by deserializing the portable IR and running the
    code generator locally — the worker never needs the originating
    Python objects, only the artifact text. The optional fourth element
    selects the codegen target (``"spmd"`` when absent — specs shipped
    by older callers stay valid); ``"native"`` workers rebuild the same
    C source as the parent and resolve it through the shared
    content-addressed kernel cache, so at most one rank per machine
    actually compiles.
    """
    if isinstance(spec, str):
        return spec
    kind = spec[0]
    if kind == "artifact":
        from repro.core import artifact as artifact_mod
        from repro.core.codegen import CodeGenerator

        target = spec[3] if len(spec) > 3 else "spmd"
        art = artifact_mod.loads(spec[1])
        # hand the artifact itself to generate(): the native target
        # memoizes rendered modules by the artifact's content hash
        gen = CodeGenerator(spec[2], target=target).generate(art)
        return gen.source
    raise ExecutionError(f"unknown SPMD module spec kind {kind!r}")


def _rank_main(
    rank: int,
    source,
    layout: SpmdLayout,
    data_name: str,
    flags_name: str,
    inputs: Dict[str, np.ndarray],
    wire_s_per_mb: float,
    timeout: float,
    soft_timeout: Optional[float],
    fault_plan: Optional[FaultPlan],
    trace_path: Optional[str],
    conn,
) -> None:
    comm = None
    try:
        comm = SpmdCommunicator.attach(
            layout, rank, data_name, flags_name, wire_s_per_mb, timeout,
            trace_path=trace_path, soft_timeout=soft_timeout,
            faults=fault_plan,
        )
        namespace: Dict[str, object] = {}
        exec(
            compile(_module_source(source), f"<spmd rank {rank}>", "exec"),
            namespace,
        )
        ensure = namespace.get("_ensure_native")
        if ensure is not None:
            # compile/load native kernels before the timing barrier so
            # the one-time cc invocation and dlopen+BLAS bind count as
            # startup (like spawn), not as execution time
            ensure(comm)
        # synchronize before timing so spawn stagger (rank 0 idling in
        # its first collective until the last process is up) does not
        # count as execution time
        comm.barrier()
        t0 = time.perf_counter()
        outputs, states = namespace["run_rank"](comm, inputs)
        elapsed = time.perf_counter() - t0
        conn.send(("ok", outputs, states, elapsed))
    except SpmdPeerAbort as exc:
        conn.send(("aborted", str(exc)))
    except BaseException as exc:  # noqa: BLE001 - reported to the parent
        if comm is not None:
            comm.signal_error(_ERR_FAILED)
            context = comm.error_context()
        else:
            context = {"rank": rank, "op": "", "site": "", "seq": 0}
        summary = f"rank {rank}: {type(exc).__name__}: {exc}"
        if context.get("op") or context.get("site"):
            summary += (
                f" (op {context.get('op') or '?'!r}, "
                f"site {context.get('site') or '?'!r}, "
                f"seq {context.get('seq', 0)})"
            )
        conn.send(("error", summary, traceback.format_exc(), context))
    finally:
        if comm is not None:
            comm.close()
        conn.close()


# ---------------------------------------------------------------------------
# Parent-side launcher.
# ---------------------------------------------------------------------------


def _place_per_rank(
    program, inputs: Mapping[str, np.ndarray], allow_downcast
) -> List[Dict[str, np.ndarray]]:
    """Scatter global inputs into per-rank shards (reference placement)."""
    world_size = program.inputs[0].group.world_size
    world = SimWorld(world_size, reference=True)
    for t in program.inputs:
        if t.name not in inputs:
            raise ExecutionError(f"missing input {t.name!r}")
        world.place_input(
            t, np.asarray(inputs[t.name]), allow_downcast=allow_downcast
        )
    extra = set(inputs) - {t.name for t in program.inputs}
    if extra:
        raise ExecutionError(f"unknown inputs: {sorted(extra)}")
    shards: List[Dict[str, np.ndarray]] = []
    for r in range(world_size):
        shards.append(
            {
                name: per_rank[r]
                for name, per_rank in world.storage.items()
                if r in per_rank
            }
        )
    return shards


def _assemble(e, per_rank: Dict[int, np.ndarray]) -> np.ndarray:
    from repro.runtime.executor import Executor

    return Executor._assemble(e, per_rank)


def launch(
    source: Optional[str],
    program,
    inputs: Mapping[str, np.ndarray],
    *,
    nranks: Optional[int] = None,
    allow_downcast: Optional[bool] = None,
    wire_s_per_mb: float = 0.0,
    timeout: Optional[float] = None,
    soft_timeout: Optional[float] = None,
    fault_plan: Optional[FaultPlan] = None,
    trace_dir: Optional[str] = None,
    trace_capacity: int = 32768,
    artifact_text: Optional[str] = None,
    protocol: str = "Simple",
    codegen_target: str = "spmd",
    compile_allowance_s: float = 0.0,
):
    """Run a generated SPMD module as one process per rank.

    Spawns ``world_size`` processes, scatters the placed inputs, executes
    ``run_rank`` on every rank over a shared-memory communicator, gathers
    per-rank outputs/states and reassembles them into a
    :class:`~repro.runtime.executor.ProgramResult`. Teardown is
    exception-safe: workers are joined (terminated on timeout) and both
    shared-memory segments are closed and unlinked in a ``finally`` even
    when a rank raises mid-collective.

    ``timeout`` bounds every rendezvous wait (default:
    :func:`scaled_default_timeout`, so slow simulated wires stretch the
    deadline instead of false-timing-out); ``soft_timeout`` is the
    escalation (soft-retry) deadline inside each wait. ``fault_plan``
    injects the given :class:`~repro.runtime.faults.FaultPlan` into
    every rank. The parent watches worker *process sentinels* alongside
    their result pipes: a rank that dies without reporting (killed, an
    injected ``die``, OOM) is detected promptly, its error flag is
    broadcast on its behalf so surviving ranks abort their in-flight
    collectives with :class:`SpmdPeerAbort` rather than spinning to
    their own timeouts, and the failure is raised as a
    :class:`SpmdWorkerError` with ``dead_ranks`` populated — the
    elastic-recovery trigger.

    ``trace_dir``, when given, receives one pre-created
    ``rank<N>.ring`` trace file per rank (see
    :mod:`repro.observe.ring`); every rank records its
    publish/wait/reduce/kernel spans there. The files are ordinary
    mapped files owned by the caller — they survive faulty-rank
    teardown and are *not* removed here, so the caller can merge them
    whether or not the run succeeded.

    ``artifact_text``, when given, is a serialized
    :mod:`repro.core.artifact` document: it is what ships to the rank
    processes (each worker deserializes the portable IR and derives its
    module with the code generator at the given ``protocol``), and
    ``source`` may then be ``None``. When ``program`` is also ``None``
    it is reconstructed from the artifact, so a saved artifact file is
    sufficient to launch a full SPMD run. Without ``artifact_text``,
    ``source`` must be the generated module source (the historical
    path).

    ``codegen_target`` selects which module flavour artifact-carrying
    workers derive (``"spmd"`` or ``"native"``);
    ``compile_allowance_s`` widens the rendezvous deadline once for a
    cold native kernel cache (see :func:`scaled_default_timeout`).
    """
    from repro.runtime.executor import ProgramResult

    if artifact_text is not None:
        module_spec = ("artifact", artifact_text, protocol, codegen_target)
        if program is None:
            from repro.core import artifact as artifact_mod

            program = artifact_mod.loads(artifact_text).program
    elif source is None:
        raise ExecutionError(
            "launch needs generated module source or artifact_text"
        )
    else:
        module_spec = source

    world_size = program.inputs[0].group.world_size
    if nranks is not None and nranks != world_size:
        raise ExecutionError(
            f"program was built for {world_size} ranks; cannot launch "
            f"{nranks} SPMD processes — rebuild the workload with "
            f"world_size={nranks}"
        )
    shards = _place_per_rank(program, inputs, allow_downcast)
    layout = build_layout(program)
    timeout = (
        scaled_default_timeout(layout, wire_s_per_mb, compile_allowance_s)
        if timeout is None
        else float(timeout) + max(0.0, compile_allowance_s)
    )

    trace_paths: List[Optional[str]] = [None] * world_size
    if trace_dir is not None:
        import os

        for r in range(world_size):
            path = os.path.join(trace_dir, f"rank{r}.ring")
            TraceRing.create(path, trace_capacity).close()
            trace_paths[r] = path

    uid = uuid.uuid4().hex[:8]
    data_name = f"spmd_{uid}_d"
    flags_name = f"spmd_{uid}_f"
    data = flags = None
    flags_arr: Optional[np.ndarray] = None
    procs: List = []
    conns: List = []
    dead_ranks: List[int] = []
    # root-cause classification: a dead process (4) outranks a raised
    # error (3) outranks a silent timeout (2) outranks a peer abort (1)
    # — survivors' aborts are symptoms, never the reported cause
    fail = {"sev": 0, "msg": None, "detail": "", "context": None}

    def _record_failure(
        sev: int, msg: str, det: str = "", ctx: Optional[dict] = None
    ) -> None:
        if sev > fail["sev"]:
            fail.update(sev=sev, msg=msg, detail=det, context=ctx)

    results: Dict[int, Tuple[Dict, Dict]] = {}
    err_off = layout.num_sites * world_size * 2
    try:
        data = SharedMemory(
            create=True, size=layout.data_size, name=data_name
        )
        flags = SharedMemory(
            create=True, size=layout.flags_length() * 8, name=flags_name
        )
        flags_arr = np.ndarray(
            (layout.flags_length(),), dtype=np.int64, buffer=flags.buf
        )
        flags_arr.fill(0)

        def _mark_dead(r: int) -> None:
            dead_ranks.append(r)
            code = procs[r].exitcode
            _record_failure(
                4,
                f"rank {r} died without reporting (exit code {code})",
                ctx={"rank": r, "op": "", "site": "", "seq": 0,
                     "dead": True},
            )
            # broadcast on the corpse's behalf: peers blocked on its
            # payloads abort promptly instead of spinning to timeout
            flags_arr[err_off + r] = _ERR_DEAD

        ctx_mp = get_context("spawn")
        for r in range(world_size):
            parent_conn, child_conn = ctx_mp.Pipe()
            p = ctx_mp.Process(
                target=_rank_main,
                args=(
                    r, module_spec, layout, data_name, flags_name,
                    shards[r], wire_s_per_mb, timeout, soft_timeout,
                    fault_plan, trace_paths[r], child_conn,
                ),
                daemon=True,
            )
            p.start()
            child_conn.close()
            procs.append(p)
            conns.append(parent_conn)

        deadline = time.monotonic() + timeout + 60.0
        pending: Dict[int, object] = dict(enumerate(conns))
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0.0:
                for r in sorted(pending):
                    _record_failure(
                        2, f"rank {r} did not report within {timeout:.0f}s"
                    )
                break
            # wait on result pipes AND process sentinels: a report
            # wakes us, and so does a silent death
            waitables = list(pending.values()) + [
                procs[r].sentinel for r in pending
            ]
            _mp_connection.wait(waitables, timeout=min(remaining, 1.0))
            for r in sorted(pending):
                conn = pending[r]
                if conn.poll(0):
                    del pending[r]
                    try:
                        msg = conn.recv()
                    except (EOFError, OSError):
                        _mark_dead(r)
                        continue
                    if msg[0] == "ok":
                        results[r] = (msg[1], msg[2], msg[3])
                    elif msg[0] == "error":
                        _record_failure(
                            3, msg[1], msg[2],
                            msg[3] if len(msg) > 3 else None,
                        )
                    else:  # aborted by a peer's failure
                        _record_failure(1, msg[1])
                elif not procs[r].is_alive():
                    del pending[r]
                    _mark_dead(r)
    finally:
        flags_arr = None  # drop the view before closing the segment
        for p in procs:
            p.join(timeout=5.0)
        for p in procs:
            if p.is_alive():  # pragma: no cover - hung worker
                p.terminate()
                p.join(timeout=5.0)
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        for shm in (data, flags):
            if shm is not None:
                try:
                    shm.close()
                finally:
                    try:
                        shm.unlink()
                    except FileNotFoundError:  # pragma: no cover
                        pass
    if fail["msg"] is not None:
        detail = fail["detail"]
        raise SpmdWorkerError(
            f"SPMD run failed: {fail['msg']}"
            + (f"\n{detail}" if detail else ""),
            context=fail["context"],
            dead_ranks=dead_ranks,
        )

    outputs = {}
    for o in program.outputs:
        per_rank = {r: results[r][0][o.name] for r in o.group}
        outputs[o.name] = _assemble(o, per_rank)
    states = {}
    for t in program.inputs:
        if not isinstance(t, Tensor):
            continue
        per_rank = {r: results[r][1][t.name] for r in t.group}
        states[t.name] = _assemble(t, per_rank)
    result = ProgramResult(outputs, states)
    # per-rank wall-clock of the rank bodies (barrier-synchronized, so
    # process spawn time is excluded); the slowest rank is the step time
    result.spmd_rank_seconds = {r: results[r][2] for r in results}
    result.spmd_seconds = max(results[r][2] for r in results)
    return result


# ---------------------------------------------------------------------------
# Persistent worker pool: direct collective calls for the property tests.
# ---------------------------------------------------------------------------


def _pool_worker(
    rank: int,
    layout: SpmdLayout,
    data_name: str,
    flags_name: str,
    timeout: float,
    conn,
) -> None:
    comm = None
    try:
        comm = SpmdCommunicator.attach(
            layout, rank, data_name, flags_name, 0.0, timeout
        )
        while True:
            cmd = conn.recv()
            if cmd[0] == "stop":
                break
            _, method, args, kwargs = cmd
            try:
                result = getattr(comm, method)(*args, **kwargs)
                conn.send(("ok", result))
            except SpmdPeerAbort:  # pragma: no cover - raced abort
                conn.send(("error", "aborted by peer"))
            except Exception as exc:
                comm.signal_error(_ERR_FAILED)
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
                # collective state is poisoned; peers saw the error flag
                break
    finally:
        if comm is not None:
            comm.close()
        conn.close()


class CollectivePool:
    """``nranks`` persistent worker processes for direct collective calls.

    Used by the property tests to drive thousands of communicator
    collectives without paying a process spawn per example. ``call``
    broadcasts one method invocation to every worker (each receives its
    own row of the stacked input) and returns the per-rank results in
    rank order.
    """

    def __init__(
        self,
        nranks: int,
        slot_bytes: int = 1 << 20,
        timeout: float = DEFAULT_TIMEOUT,
    ) -> None:
        self.nranks = nranks
        self.timeout = float(timeout)
        layout = SpmdLayout(nranks)
        layout.add_site(
            _group_key(ProcessGroup(0, nranks, nranks)),
            range(nranks),
            slot_bytes,
        )
        layout.freeze()
        self.layout = layout
        uid = uuid.uuid4().hex[:8]
        self._data = SharedMemory(
            create=True, size=layout.data_size,
            name=f"spmdpool_{uid}_d",
        )
        self._flags = SharedMemory(
            create=True, size=layout.flags_length() * 8,
            name=f"spmdpool_{uid}_f",
        )
        np.ndarray(
            (layout.flags_length(),), dtype=np.int64, buffer=self._flags.buf
        ).fill(0)
        ctx = get_context("spawn")
        self._procs = []
        self._conns = []
        for r in range(nranks):
            parent_conn, child_conn = ctx.Pipe()
            p = ctx.Process(
                target=_pool_worker,
                args=(
                    r, layout, self._data.name, self._flags.name,
                    timeout, child_conn,
                ),
                daemon=True,
            )
            p.start()
            child_conn.close()
            self._procs.append(p)
            self._conns.append(parent_conn)

    def call(
        self, method: str, per_rank_args: Sequence[tuple],
        kwargs: Optional[dict] = None,
    ) -> List[np.ndarray]:
        """Invoke ``method`` on every worker; per-rank positional args."""
        kwargs = kwargs or {}
        for conn, args in zip(self._conns, per_rank_args):
            conn.send(("call", method, args, kwargs))
        out = []
        errors = []
        for r, conn in enumerate(self._conns):
            if not conn.poll(self.timeout):
                errors.append(f"rank {r}: no reply")
                continue
            status, payload = conn.recv()
            if status == "ok":
                out.append(payload)
            else:
                errors.append(f"rank {r}: {payload}")
        if errors:
            raise SpmdError("; ".join(errors))
        return out

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for p in self._procs:
            p.join(timeout=5.0)
            if p.is_alive():  # pragma: no cover
                p.terminate()
                p.join(timeout=5.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        for shm in (self._data, self._flags):
            try:
                shm.close()
            finally:
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
