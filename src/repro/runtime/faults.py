"""Deterministic, seeded fault injection for the SPMD backend.

Real clusters have stragglers, contended links, and ranks that die
mid-collective; a backend that only ever runs clean cannot demonstrate
graceful degradation or elastic recovery. A :class:`FaultPlan` is an
immutable, picklable description of *exactly* which failures a run must
experience:

* ``slow_rank(rank, factor)`` — a straggler: every wire transfer and
  generated-kernel call on ``rank`` is stretched by ``factor``;
* ``die(rank, at_site=..., after=N)`` — ``rank`` hard-exits
  (``os._exit``, no error flag, no parent message — a genuinely dead
  process) on its ``N``-th publish matching ``at_site``;
* ``stall_publish(site, delay, ...)`` — a transient hiccup: matching
  publishes are delayed ``delay`` seconds before the ready flag is
  raised, exercising peers' soft-retry escalation;
* ``drop_chunk(site, chunk, ...)`` — a lost chunk of a chunked (§5.3
  overlap) publication: the ready bump for that chunk is withheld and
  redelivered ``redeliver`` seconds later (or with the next chunk),
  like a retransmit.

Because the plan is data (no callbacks, no clocks), the same plan plus
the same program reproduces the same failure bit-for-bit: the plan is
shipped to every spawned rank through the multiprocessing pickle
channel and consulted at fixed injection points. ``FaultPlan.scenario``
derives a whole fault matrix entry from one integer seed so benchmarks
can sweep reproducible scenarios.

The plan also feeds *prediction*: :meth:`FaultPlan.resource_slowdowns`
translates straggler events into the per-resource slowdown mapping of
:class:`repro.perf.engine.Engine`, so the DES timeline can be compared
against the measured timeline under the same injected faults.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple, Union

__all__ = [
    "SlowRank",
    "Die",
    "StallPublish",
    "DropChunk",
    "FaultPlan",
    "RankFaults",
]


@dataclass(frozen=True)
class SlowRank:
    """A persistent straggler: ``rank`` runs ``factor`` times slower."""

    rank: int
    factor: float

    def describe(self) -> str:
        return f"slow_rank(rank={self.rank}, x{self.factor:g})"


@dataclass(frozen=True)
class Die:
    """Hard-kill ``rank`` on its ``after``-th publish matching ``at_site``.

    ``at_site`` is a site-key prefix (``"g"`` matches every group site,
    ``"g0x4"`` exactly that group, ``""`` any site). Publishes are
    counted per event, and chunked publications count each chunk — so a
    ``Die(at_site="g0x8", after=2)`` lands mid-``publish_chunks``, on
    the producer stream thread.
    """

    rank: int
    at_site: str = ""
    after: int = 1

    def describe(self) -> str:
        return f"die(rank={self.rank}, at={self.at_site or '*'}, after={self.after})"


@dataclass(frozen=True)
class StallPublish:
    """Delay matching publishes ``delay`` seconds before the ready flag.

    ``rank``/``seq`` of ``None`` match every rank / every matching
    publish; ``seq`` counts whole publishes by site sequence number and
    chunked publishes by chunk index.
    """

    site: str
    delay: float
    rank: Optional[int] = None
    seq: Optional[int] = None

    def describe(self) -> str:
        who = "*" if self.rank is None else str(self.rank)
        return f"stall_publish(site={self.site or '*'}, {self.delay:g}s, rank={who})"


@dataclass(frozen=True)
class DropChunk:
    """Withhold the ready bump of chunk ``chunk`` at a chunked site.

    The payload itself is written (the slot is shared memory); only the
    visibility flag is delayed — redelivered with the next chunk's bump
    or, for the final chunk, after ``redeliver`` seconds. Consumers ride
    the gap out through the communicator's soft-retry escalation.
    """

    site: str
    chunk: int
    rank: Optional[int] = None
    redeliver: float = 0.02

    def describe(self) -> str:
        who = "*" if self.rank is None else str(self.rank)
        return f"drop_chunk(site={self.site or '*'}, chunk={self.chunk}, rank={who})"


FaultEvent = Union[SlowRank, Die, StallPublish, DropChunk]


def _site_matches(pattern: str, site: str) -> bool:
    return site.startswith(pattern)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seeded set of fault events for one SPMD run.

    Builder methods return extended copies, so plans compose::

        plan = FaultPlan(seed=7).slow_rank(2, 3.0).die(5, at_site="g")

    The ``seed`` names the scenario (benchmarks key their fault matrix
    on it); the events themselves are already fully deterministic.
    """

    events: Tuple[FaultEvent, ...] = ()
    seed: int = 0

    # -- builders --------------------------------------------------------

    def _with(self, event: FaultEvent) -> "FaultPlan":
        return replace(self, events=self.events + (event,))

    def slow_rank(self, rank: int, factor: float) -> "FaultPlan":
        if factor < 1.0:
            raise ValueError(f"straggler factor must be >= 1, got {factor}")
        return self._with(SlowRank(int(rank), float(factor)))

    def die(
        self, rank: int, at_site: str = "", after: int = 1
    ) -> "FaultPlan":
        if after < 1:
            raise ValueError(f"die(after=...) must be >= 1, got {after}")
        return self._with(Die(int(rank), str(at_site), int(after)))

    def stall_publish(
        self,
        site: str,
        delay: float,
        rank: Optional[int] = None,
        seq: Optional[int] = None,
    ) -> "FaultPlan":
        if delay < 0.0:
            raise ValueError(f"stall delay must be >= 0, got {delay}")
        return self._with(StallPublish(str(site), float(delay), rank, seq))

    def drop_chunk(
        self,
        site: str,
        chunk: int,
        rank: Optional[int] = None,
        redeliver: float = 0.02,
    ) -> "FaultPlan":
        return self._with(
            DropChunk(str(site), int(chunk), rank, float(redeliver))
        )

    # -- queries ---------------------------------------------------------

    def dead_ranks(self) -> Tuple[int, ...]:
        """Ranks the plan will kill, in event order (deduplicated)."""
        seen: List[int] = []
        for e in self.events:
            if isinstance(e, Die) and e.rank not in seen:
                seen.append(e.rank)
        return tuple(seen)

    def without_deaths(self) -> "FaultPlan":
        """The same environment minus the kill events (recovery runs)."""
        return replace(
            self,
            events=tuple(
                e for e in self.events if not isinstance(e, Die)
            ),
        )

    def resource_slowdowns(self) -> Dict[str, float]:
        """Straggler events as the DES engine's slowdown mapping.

        Each ``slow_rank(r, f)`` stretches the ``gpu:<r>`` stream by
        ``f``; collectives are as slow as their slowest member, so the
        whole ``fabric:``/``ib:`` families are stretched by the largest
        straggler factor (see :class:`repro.perf.engine.Engine`).
        """
        out: Dict[str, float] = {}
        worst = 1.0
        for e in self.events:
            if isinstance(e, SlowRank):
                key = f"gpu:{e.rank}"
                out[key] = out.get(key, 1.0) * e.factor
                worst = max(worst, out[key])
        if worst > 1.0:
            out["fabric:"] = worst
            out["ib:"] = worst
        return out

    def for_rank(self, rank: int) -> Optional["RankFaults"]:
        """The mutable per-rank runtime view (``None`` when inert)."""
        view = RankFaults(self, rank)
        return view if view.active else None

    def describe(self) -> str:
        if not self.events:
            return f"FaultPlan(seed={self.seed}: no faults)"
        body = "; ".join(e.describe() for e in self.events)
        return f"FaultPlan(seed={self.seed}: {body})"

    # -- seeded scenarios ------------------------------------------------

    @classmethod
    def scenario(cls, seed: int, nranks: int) -> "FaultPlan":
        """A deterministic fault scenario derived from one integer seed.

        Seeds cycle through the fault matrix — straggler, transient
        stall, dropped chunk, dead rank — with seed-dependent
        parameters, so a benchmark sweep over seeds covers every
        failure mode and any scenario reproduces exactly from its seed.
        """
        import numpy as np

        rng = np.random.RandomState(seed)
        plan = cls(seed=seed)
        kind = seed % 4
        rank = int(rng.randint(0, nranks))
        if kind == 0:
            factor = float(np.round(1.5 + 2.5 * rng.random_sample(), 2))
            return plan.slow_rank(rank, factor)
        if kind == 1:
            delay = float(np.round(0.01 + 0.04 * rng.random_sample(), 3))
            return plan.stall_publish("g", delay, rank=rank)
        if kind == 2:
            return plan.drop_chunk("g", int(rng.randint(0, 2)), rank=rank)
        return plan.die(rank, at_site="g", after=int(rng.randint(1, 3)))


class RankFaults:
    """One rank's runtime view of a plan: counters live here, not in
    the (immutable) plan, so repeated runs of the same plan are
    independent. Created inside the worker process via
    :meth:`FaultPlan.for_rank`."""

    def __init__(self, plan: FaultPlan, rank: int) -> None:
        self.rank = rank
        self.seed = plan.seed
        self.wire_factor = 1.0
        self.kernel_factor = 1.0
        self._stalls: List[StallPublish] = []
        self._dies: List[Die] = []
        self._die_counts: List[int] = []
        self._drops: List[DropChunk] = []
        self._drops_armed: List[bool] = []
        for e in plan.events:
            if isinstance(e, SlowRank) and e.rank == rank:
                self.wire_factor *= e.factor
                self.kernel_factor *= e.factor
            elif isinstance(e, StallPublish) and e.rank in (None, rank):
                self._stalls.append(e)
            elif isinstance(e, Die) and e.rank == rank:
                self._dies.append(e)
                self._die_counts.append(0)
            elif isinstance(e, DropChunk) and e.rank in (None, rank):
                self._drops.append(e)
                self._drops_armed.append(True)

    @property
    def active(self) -> bool:
        return bool(
            self.wire_factor > 1.0
            or self._stalls
            or self._dies
            or self._drops
        )

    def armed(self) -> List[str]:
        """Human-readable descriptions of this rank's armed events."""
        out = []
        if self.wire_factor > 1.0:
            out.append(f"slow x{self.wire_factor:g}")
        out.extend(e.describe() for e in self._stalls)
        out.extend(e.describe() for e in self._dies)
        out.extend(e.describe() for e in self._drops)
        return out

    def publish_delay(self, site: str, seq: int) -> float:
        """Total injected stall before this publish's ready bump."""
        return sum(
            e.delay
            for e in self._stalls
            if _site_matches(e.site, site)
            and (e.seq is None or e.seq == seq)
        )

    def should_die(self, site: str) -> bool:
        """Count this publish against armed kills; True when one lands."""
        for i, e in enumerate(self._dies):
            if _site_matches(e.at_site, site):
                self._die_counts[i] += 1
                if self._die_counts[i] == e.after:
                    return True
        return False

    def drop(self, site: str, chunk: int) -> Optional[DropChunk]:
        """The armed drop event covering this chunk, consumed once."""
        for i, e in enumerate(self._drops):
            if (
                self._drops_armed[i]
                and _site_matches(e.site, site)
                and e.chunk == chunk
            ):
                self._drops_armed[i] = False
                return e
        return None
