"""Numeric executor: run a CoCoNet program on a simulated world.

This is the correctness oracle of the reproduction: every schedule —
original, split, reordered, fused or overlapped — must produce the same
numbers here. Two execution modes cover two levels of fidelity:

* :meth:`Executor.run` interprets the raw DFG in topological order.
  Split and reorder rewrite the DFG, so their equivalence is verified
  here directly.
* :meth:`Executor.run_lowered` interprets the *lowered* instruction
  stream of a schedule (:mod:`repro.core.lower`): fused blocks execute
  as units and overlap groups execute chunk-by-chunk, so fusion and
  overlap — which do not change the DFG — are numerically exercised as
  scheduled (chunk boundaries, ring release order, bucket layouts)
  instead of being covered only implicitly. It is property-tested
  bit-identical to :meth:`run` on every schedule.

Two backends share the DFG interpreter:

* **Vectorized (default)** — rank-major evaluation: each expression's
  value is one stacked ``(group.size, *per_rank_shape)`` array, every
  collective is a single numpy expression over the stack, and
  element-wise math runs once over all ranks (or once *total* when every
  operand is provably rank-invariant — a stride-0 replicated view).
* **Reference (``Executor(reference=True)``)** — the original per-rank
  interpretation over dicts of arrays, kept as the oracle.

The two backends are bit-identical (``np.array_equal`` on all outputs
and tensor states): float64 accumulations happen in the same rank order
over identically laid-out buffers, matmuls issue the same per-rank BLAS
calls, and dropout draws the same counter-based masks.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from repro.core import ops
from repro.core.layout import normalize_dim
from repro.core.program import Program
from repro.core.tensor import Const, Expr, Scalar, Tensor
from repro.errors import ExecutionError
from repro.runtime import collectives, rng
from repro.runtime.world import (
    SimWorld,
    assemble_slices,
    astype_stacked,
    copy_stacked,
    rank_invariant,
    replicate,
    scatter_axis,
    slice_of,
    unstack_global,
)

RankValues = Dict[int, np.ndarray]


class ProgramResult:
    """Outputs and final tensor states of one simulated run."""

    def __init__(
        self,
        outputs: Dict[str, np.ndarray],
        tensor_states: Dict[str, np.ndarray],
    ) -> None:
        self._outputs = outputs
        self._tensor_states = tensor_states

    def output(self, name: str) -> np.ndarray:
        """Global value of a program output, reassembled across ranks."""
        try:
            return self._outputs[name]
        except KeyError:
            raise ExecutionError(
                f"no output named {name!r}; have {sorted(self._outputs)}"
            ) from None

    def tensor_state(self, name: str) -> np.ndarray:
        """Final (possibly updated) global value of an input tensor."""
        try:
            return self._tensor_states[name]
        except KeyError:
            raise ExecutionError(
                f"no input tensor named {name!r}; have "
                f"{sorted(self._tensor_states)}"
            ) from None

    @property
    def output_names(self):
        return sorted(self._outputs)


class Executor:
    """Interprets programs over a :class:`SimWorld`.

    ``reference=True`` selects the original per-rank dict interpreter;
    the default is the rank-major vectorized backend.
    """

    def __init__(self, reference: bool = False) -> None:
        self.reference = reference
        # Elastic recovery memo: (structural hash of the original
        # schedule, world size) -> re-lowered Artifact, so repeated
        # recoveries of the same workload skip re-lowering entirely.
        self._elastic_cache: Dict[tuple, object] = {}
        self.elastic_cache_hits = 0
        self.elastic_cache_misses = 0

    def _make_world(
        self,
        program: Program,
        inputs: Mapping[str, np.ndarray],
        allow_downcast: Optional[bool],
    ) -> SimWorld:
        world_size = program.inputs[0].group.world_size
        world = SimWorld(world_size, reference=self.reference)
        for t in program.inputs:
            if t.name not in inputs:
                raise ExecutionError(f"missing input {t.name!r}")
            world.place_input(
                t, np.asarray(inputs[t.name]), allow_downcast=allow_downcast
            )
        extra = set(inputs) - {t.name for t in program.inputs}
        if extra:
            raise ExecutionError(f"unknown inputs: {sorted(extra)}")
        return world

    def run(
        self,
        program: Program,
        inputs: Mapping[str, np.ndarray],
        allow_downcast: Optional[bool] = None,
    ) -> ProgramResult:
        world = self._make_world(program, inputs, allow_downcast)

        from repro.core import dfg

        exprs = dfg.topological(program.roots)
        if self.reference:
            values: Dict[Expr, RankValues] = {}
            for e in exprs:
                if isinstance(e, Const):
                    values[e] = {
                        r: np.asarray(e.value, dtype=e.dtype.to_numpy())
                        for r in e.group
                    }
                elif isinstance(e, (Tensor, Scalar)):
                    # Snapshot: DFG edges to a leaf reference its value at
                    # program start, even if an Update later rewrites
                    # storage.
                    values[e] = {
                        r: world.rank_value(e.name, r).copy() for r in e.group
                    }
                else:
                    values[e] = self._eval(e, values, world)
            outputs = {
                o.name: self._assemble(o, values[o]) for o in program.outputs
            }
        else:
            vvalues: Dict[Expr, np.ndarray] = {}
            for e in exprs:
                if isinstance(e, Const):
                    vvalues[e] = replicate(
                        np.asarray(e.value, dtype=e.dtype.to_numpy()),
                        e.group.size,
                    )
                elif isinstance(e, (Tensor, Scalar)):
                    # Storage arrays are replaced, never mutated in place,
                    # so the snapshot can alias storage directly.
                    vvalues[e] = world.state(e.name)
                else:
                    vvalues[e] = self._eval_vec(e, vvalues, world)
            outputs = {
                o.name: self._assemble_vec(o, vvalues[o])
                for o in program.outputs
            }
        states = {
            t.name: world.read_back(t)
            for t in program.inputs
            if isinstance(t, Tensor)
        }
        return ProgramResult(outputs, states)

    # -- real-process SPMD execution --------------------------------------

    def run_spmd(
        self,
        scheduled,
        inputs: Mapping[str, np.ndarray],
        nranks: Optional[int] = None,
        allow_downcast: Optional[bool] = None,
        protocol: str = "Simple",
        wire_s_per_mb: float = 0.0,
        timeout: Optional[float] = None,
        soft_timeout: Optional[float] = None,
        fault_plan=None,
        tracer=None,
        elastic: bool = False,
        relower=None,
        codegen_target: str = "spmd",
    ) -> ProgramResult:
        """Run a schedule as one real OS process per rank.

        Generates the SPMD module for ``scheduled`` (the same lowered
        instruction stream every backend consumes), spawns one process
        per rank over :mod:`repro.runtime.spmd`'s shared-memory
        communicator, and reassembles the per-rank outputs. Bit-identical
        (``np.array_equal``) to :meth:`run_lowered` on every schedule —
        the communicator applies the same rank-order float64 reduction
        formulas as the vectorized collectives.

        ``nranks``, when given, must equal the program's world size (a
        program's placement is baked in at construction). ``wire_s_per_mb``
        charges simulated wire time per published megabyte, letting
        benchmarks measure real overlap; ``timeout`` bounds every
        rendezvous wait so a failing rank cannot deadlock the run, and
        ``soft_timeout`` sets the escalation (soft-retry) deadline
        inside each wait. ``fault_plan`` injects a deterministic
        :class:`~repro.runtime.faults.FaultPlan` into every rank.

        ``elastic=True`` arms recovery from dead ranks: when the run
        fails because one or more rank *processes* died (an injected
        ``die``, a kill, an OOM), the program is re-lowered for the
        surviving world size via ``relower`` and re-executed — see
        :meth:`_recover_spmd`. ``relower(world_size)`` must return
        ``(scheduled, inputs)`` (or just ``scheduled`` to reuse
        ``inputs``) built for that world size; world sizes descend from
        the survivor count until one both lowers and runs. The returned
        result carries the recovery record in ``result.elastic``.

        ``tracer``, when given (a :class:`repro.observe.Tracer`), makes
        every rank record publish/wait/reduce/kernel spans into a
        file-backed ring buffer; the rings are merged into the tracer's
        event list after the run — *including* when a rank faults, so
        the timeline of a failed run is still harvested.

        ``codegen_target="native"`` executes the same schedule with the
        compute segments compiled to C through the content-addressed
        kernel cache (:mod:`repro.core.codegen.native`): elementwise
        chains fuse into single compiled loops, GEMMs dispatch to BLAS.
        Elementwise-only programs remain bit-identical to
        :meth:`run_lowered`; GEMM-bearing programs carry the documented
        fp tolerance (BLAS reassociates the accumulation).
        """
        from repro.runtime.spmd import SpmdWorkerError

        try:
            return self._run_spmd_once(
                scheduled, inputs, nranks=nranks,
                allow_downcast=allow_downcast, protocol=protocol,
                wire_s_per_mb=wire_s_per_mb, timeout=timeout,
                soft_timeout=soft_timeout, fault_plan=fault_plan,
                tracer=tracer, codegen_target=codegen_target,
            )
        except SpmdWorkerError as exc:
            if not elastic or not exc.dead_ranks:
                raise
            return self._recover_spmd(
                exc, scheduled, inputs, relower=relower,
                allow_downcast=allow_downcast, protocol=protocol,
                wire_s_per_mb=wire_s_per_mb, timeout=timeout,
                soft_timeout=soft_timeout, tracer=tracer,
                codegen_target=codegen_target,
            )

    def _run_spmd_once(
        self,
        scheduled,
        inputs: Mapping[str, np.ndarray],
        *,
        nranks: Optional[int] = None,
        allow_downcast: Optional[bool] = None,
        protocol: str = "Simple",
        wire_s_per_mb: float = 0.0,
        timeout: Optional[float] = None,
        soft_timeout: Optional[float] = None,
        fault_plan=None,
        tracer=None,
        codegen_target: str = "spmd",
    ) -> ProgramResult:
        """One generate-and-launch attempt (no recovery)."""
        from repro.core.codegen import CodeGenerator

        generated = CodeGenerator(
            protocol, target=codegen_target
        ).generate(scheduled)
        if tracer is None:
            return generated.run(
                inputs,
                nranks=nranks,
                allow_downcast=allow_downcast,
                wire_s_per_mb=wire_s_per_mb,
                timeout=timeout,
                soft_timeout=soft_timeout,
                fault_plan=fault_plan,
            )

        import shutil
        import tempfile

        from repro.observe.ring import merge_rank_traces

        trace_dir = tempfile.mkdtemp(prefix="repro_trace_")
        t_base = tracer.now()
        try:
            return generated.run(
                inputs,
                nranks=nranks,
                allow_downcast=allow_downcast,
                wire_s_per_mb=wire_s_per_mb,
                timeout=timeout,
                soft_timeout=soft_timeout,
                fault_plan=fault_plan,
                trace_dir=trace_dir,
            )
        finally:
            tracer.extend(
                merge_rank_traces(
                    trace_dir, base=t_base, metrics=tracer.metrics
                )
            )
            shutil.rmtree(trace_dir, ignore_errors=True)

    def _recover_spmd(
        self,
        exc,
        scheduled,
        inputs: Mapping[str, np.ndarray],
        *,
        relower,
        allow_downcast: Optional[bool],
        protocol: str,
        wire_s_per_mb: float,
        timeout: Optional[float],
        soft_timeout: Optional[float],
        tracer,
        codegen_target: str = "spmd",
    ) -> ProgramResult:
        """Reform the group over the survivors and re-execute.

        A simulated process group cannot shrink in place — the layouts
        of the global tensors (and hence the per-rank shards, slot
        sizes, even the schedule's chunk bounds) are functions of the
        world size. So recovery *re-lowers*: world sizes descend from
        the survivor count, ``relower(ws)`` rebuilds the scheduled
        program (and inputs) at each size, and the first size that both
        lowers and runs wins. The re-run injects no faults: the plan
        described the failed step, and the survivors' re-execution is
        the recovery being measured. ``result.elastic`` records the
        failed ranks, attempted sizes and recovery wall-clock; outputs
        are bit-identical to a direct run at the recovered world size
        (same relowered program, same deterministic backend).

        Re-lowered programs are memoized on the executor as serialized
        artifacts keyed by (structural hash of the original schedule,
        recovered world size): a second recovery of the same workload at
        the same world size skips the lower-and-serialize step entirely
        and executes the cached artifact (``relower`` is still called —
        it also rebuilds the inputs for the smaller world). The hit is
        recorded in ``result.elastic["artifact_cache"]`` and in the
        executor's ``elastic_cache_hits`` / ``elastic_cache_misses``
        counters.
        """
        import time as _time

        from repro.core import artifact as artifact_mod
        from repro.errors import CoCoNetError

        program = scheduled.program if hasattr(scheduled, "program") \
            else scheduled
        world_size = program.inputs[0].group.world_size
        dead = list(exc.dead_ranks)
        if relower is None:
            raise type(exc)(
                f"{exc}\nelastic recovery needs relower=: pass a "
                f"callable rebuilding the workload for a smaller world "
                f"size (rank(s) {dead} died)",
                context=exc.context,
                dead_ranks=dead,
            ) from exc
        t0 = _time.perf_counter()
        base_sig = artifact_mod.as_artifact(scheduled).structural_hash
        attempted = []
        last_error: Exception = exc
        for ws in range(world_size - len(dead), 0, -1):
            attempted.append(ws)
            try:
                relowered = relower(ws)
            except CoCoNetError:
                continue  # the workload cannot be built at this size
            if isinstance(relowered, tuple):
                scheduled2, inputs2 = relowered
            else:
                scheduled2, inputs2 = relowered, inputs
            cached = self._elastic_cache.get((base_sig, ws))
            if cached is not None:
                self.elastic_cache_hits += 1
                cache_state = "hit"
            else:
                self.elastic_cache_misses += 1
                cache_state = "miss"
                cached = artifact_mod.as_artifact(scheduled2)
                self._elastic_cache[(base_sig, ws)] = cached
            if tracer is not None:
                tracer.instant(
                    "elastic-relower", cat="fault",
                    args={
                        "world_size": ws, "dead_ranks": dead,
                        "artifact_cache": cache_state,
                    },
                )
            try:
                result = self._run_spmd_once(
                    cached, inputs2,
                    allow_downcast=allow_downcast, protocol=protocol,
                    wire_s_per_mb=wire_s_per_mb, timeout=timeout,
                    soft_timeout=soft_timeout, tracer=tracer,
                    codegen_target=codegen_target,
                )
            except CoCoNetError as err:
                last_error = err
                continue
            result.elastic = {
                "failed_ranks": dead,
                "original_world": world_size,
                "world_size": ws,
                "attempted": attempted,
                "recovery_seconds": _time.perf_counter() - t0,
                "cause": str(exc).splitlines()[0],
                "artifact_cache": cache_state,
            }
            return result
        raise last_error

    # -- lowered (plan-aware) execution ----------------------------------

    def run_lowered(
        self,
        scheduled,
        inputs: Mapping[str, np.ndarray],
        allow_downcast: Optional[bool] = None,
        trace: Optional[list] = None,
        tracer=None,
    ) -> ProgramResult:
        """Interpret the lowered instruction stream of a schedule.

        Unlike :meth:`run`, which walks the raw DFG and therefore never
        sees fusion or overlap, this interprets the
        :class:`~repro.core.lower.LoweredProgram`: fused blocks execute
        as units, and overlap groups execute chunk-by-chunk — pure
        element-wise members genuinely compute per chunk, single-call
        kernels (GEMMs, library collectives) release their output chunks
        in order (ring order for the Figure 9 GEMM→collective pair), and
        side-effecting members run whole once their producers finish.
        Every step is bit-identical to the DFG interpretation, so this
        is the correctness oracle *of the scheduled execution*, chunk
        boundaries included.

        ``scheduled`` may be a Schedule, a Program, or an already
        lowered program. ``trace``, when a list, receives one event per
        instruction / chunk: ``("launch", name, stream)``,
        ``("chunkloop", name, num_chunks, ring)``,
        ``("chunk", member, step, chunk)``, ``("whole", member, step)``
        and ``("pack", name, num_buckets, metadata_bytes)`` — the legacy
        tuple protocol, kept as a compat shim. ``tracer``, when a
        :class:`repro.observe.Tracer`, receives typed *timed*
        :class:`~repro.observe.SpanEvent` records for the same steps
        (see :class:`repro.observe.LoweredRunRecorder`); both may be
        passed together.
        """
        from repro.core.artifact import Artifact
        from repro.core.lower import (
            ChunkLoop,
            LoweredProgram,
            PackScattered,
            lower,
        )
        from repro.core.transforms.schedule import Schedule

        if self.reference:
            raise ExecutionError(
                "run_lowered interprets the instruction stream on the "
                "vectorized rank-major backend; use Executor() "
                "(reference=False)"
            )
        if isinstance(scheduled, Artifact):
            lowered = scheduled.lowered()
        elif isinstance(scheduled, LoweredProgram):
            lowered = scheduled
        elif isinstance(scheduled, Schedule):
            lowered = scheduled.lowered()
        else:
            lowered = lower(scheduled)
        program = lowered.program
        world = self._make_world(program, inputs, allow_downcast)

        from repro.core import dfg

        values: Dict[Expr, np.ndarray] = {}
        for e in dfg.topological(program.roots):
            if isinstance(e, Const):
                values[e] = replicate(
                    np.asarray(e.value, dtype=e.dtype.to_numpy()),
                    e.group.size,
                )
            elif isinstance(e, (Tensor, Scalar)):
                values[e] = world.state(e.name)

        rec = None
        if trace is not None or tracer is not None:
            from repro.observe.record import LoweredRunRecorder

            rec = LoweredRunRecorder(tracer=tracer, legacy=trace)

        for instr in lowered.instructions:
            if isinstance(instr, PackScattered):
                if rec is not None:
                    rec.pack(instr)
                continue
            if isinstance(instr, ChunkLoop):
                self._run_chunk_loop(instr, values, world, rec)
                continue
            t0 = rec.now() if rec is not None else 0.0
            for e in instr.exprs:
                values[e] = self._eval_vec(e, values, world)
            if rec is not None:
                rec.launch(instr, t0)

        outputs = {
            o.name: self._assemble_vec(o, values[o])
            for o in program.outputs
        }
        states = {
            t.name: world.read_back(t)
            for t in program.inputs
            if isinstance(t, Tensor)
        }
        return ProgramResult(outputs, states)

    def _run_chunk_loop(self, loop, values, world: SimWorld, rec) -> None:
        """Execute one overlap group chunk-by-chunk.

        A member advances at most one chunk per sweep, so producer and
        consumer chunks interleave exactly as the chunk-synchronized
        schedule prescribes (chunk *c* of a consumer only ever reads
        chunk *c* of its producer after it was published).
        """
        loop_t0 = rec.chunkloop_begin(loop) if rec is not None else 0.0
        states = {
            entry.name: {
                "staging": None, "buffer": None, "buffers": {},
                "published": 0, "done": False,
            }
            for entry in loop.entries
        }
        by_name = {entry.name: entry for entry in loop.entries}

        def producers_done(entry) -> bool:
            return all(states[d]["done"] for d in entry.group_deps)

        def chunk_available(entry, c: int) -> bool:
            for d in entry.group_deps:
                st = states[d]
                if st["done"]:
                    continue
                p = by_name[d]
                if p.mode == "whole" or p.chunk_dim != entry.chunk_dim:
                    return False
                if st["published"] <= c:
                    return False
            return True

        step = 0
        limit = (loop.num_chunks + 2) * (len(loop.entries) + 2)
        while not all(st["done"] for st in states.values()):
            progressed = False
            for entry in loop.entries:
                st = states[entry.name]
                if st["done"]:
                    continue
                if entry.mode == "whole":
                    if not producers_done(entry):
                        continue
                    t0 = rec.now() if rec is not None else 0.0
                    for e in entry.instr.exprs:
                        values[e] = self._eval_vec(e, values, world)
                    st["done"] = True
                    progressed = True
                    if rec is not None:
                        rec.whole(entry, step, t0)
                elif entry.mode == "publish":
                    t0 = rec.now() if rec is not None else 0.0
                    if st["staging"] is None:
                        if not producers_done(entry):
                            continue
                        # one kernel launch: a single evaluation (one
                        # BLAS call per rank, one exchange); the chunk
                        # loop below releases its result chunk-by-chunk
                        e = entry.instr.exprs[0]
                        staging = self._eval_vec(e, values, world)
                        st["staging"] = staging
                        st["buffer"] = np.empty(
                            staging.shape, staging.dtype
                        )
                        values[e] = st["buffer"]
                    c = st["published"]
                    self._publish_chunk(entry, loop, st, c)
                    st["published"] = c + 1
                    progressed = True
                    if rec is not None:
                        rec.chunk(entry, step, c, t0)
                    if st["published"] == loop.num_chunks:
                        st["done"] = True
                else:  # "compute": genuinely chunked element-wise math
                    c = st["published"]
                    if not chunk_available(entry, c):
                        continue
                    t0 = rec.now() if rec is not None else 0.0
                    self._compute_chunk(entry, values, st["buffers"], c)
                    st["published"] = c + 1
                    progressed = True
                    if rec is not None:
                        rec.chunk(entry, step, c, t0)
                    if st["published"] == loop.num_chunks:
                        st["done"] = True
            if not progressed or step > limit:
                raise ExecutionError(
                    f"chunk loop {loop.name} stalled at step {step}"
                )
            step += 1
        if rec is not None:
            rec.chunkloop_end(loop, loop_t0)

    @staticmethod
    def _publish_chunk(entry, loop, st, c: int) -> None:
        """Release chunk ``c`` of a singly-launched kernel's output."""
        staging, buf = st["staging"], st["buffer"]
        axis = entry.chunk_dim + 1  # stacked coords: axis 0 is the rank
        bounds = entry.bounds
        if bounds[-1][1] != staging.shape[axis]:
            raise ExecutionError(
                f"{entry.name}: lowered chunk bounds cover "
                f"{bounds[-1][1]} elements but the value has extent "
                f"{staging.shape[axis]} on dim {entry.chunk_dim}"
            )
        if loop.ring:
            # rank i releases chunk (i + step) % n — the order the ring
            # collective consumes them (Figure 9)
            for i in range(staging.shape[0]):
                ci = (i + c) % loop.num_chunks
                lo, hi = bounds[ci]
                sl = [slice(None)] * buf.ndim
                sl[0] = i
                sl[axis] = slice(lo, hi)
                buf[tuple(sl)] = staging[tuple(sl)]
        else:
            lo, hi = bounds[c]
            sl = [slice(None)] * buf.ndim
            sl[axis] = slice(lo, hi)
            buf[tuple(sl)] = staging[tuple(sl)]

    def _compute_chunk(self, entry, values, buffers, c: int) -> None:
        """Evaluate chunk ``c`` of a pure element-wise kernel.

        Element-wise operations are per-element, so computing on input
        slices is bit-identical to slicing the whole-kernel result —
        this member genuinely executes chunk-by-chunk.
        """
        o = ops
        lo, hi = entry.bounds[c]
        extent = entry.bounds[-1][1]
        for e in entry.instr.exprs:
            if isinstance(e, o.Binary):
                fn = _BINARY_FNS[e.op]
            elif isinstance(e, o.Unary):
                fn = _UNARY_FNS[e.op]
            elif isinstance(e, o.Cast):
                fn = lambda x: x  # noqa: E731
            else:  # pragma: no cover - excluded by the lowering
                raise ExecutionError(
                    f"cannot chunk-execute {type(e).__name__}"
                )
            args = [values[i] for i in e.inputs]
            dtype = e.dtype.to_numpy()
            target = max(a.ndim - 1 for a in args)
            aligned = []
            for a in args:
                while a.ndim - 1 < target:
                    a = a[:, None]
                aligned.append(a)
            sliced = []
            for a in aligned:
                if a.shape[1] == extent:
                    sliced.append(a[:, lo:hi])
                elif a.shape[1] == 1:
                    sliced.append(a)
                else:
                    raise ExecutionError(
                        f"{e.name}: operand extent {a.shape[1]} does not "
                        f"match the chunked extent {extent}"
                    )
            chunk = np.asarray(fn(*sliced)).astype(dtype)
            buf = buffers.get(e)
            if buf is None:
                full_shape = (
                    chunk.shape[:1] + (extent,) + chunk.shape[2:]
                )
                buf = np.empty(full_shape, dtype)
                buffers[e] = buf
                values[e] = buf
            buf[:, lo:hi] = chunk

    # -- shared helpers --------------------------------------------------

    @staticmethod
    def _assemble(e: Expr, per_rank: RankValues) -> np.ndarray:
        group = e.group
        if e.layout.is_replicated:
            return per_rank[group.start]
        if e.layout.is_sliced:
            dim = normalize_dim(e.layout.dim, len(e.shape))
            return assemble_slices([per_rank[r] for r in group], dim)
        return np.stack([per_rank[r] for r in group], axis=0)

    @staticmethod
    def _assemble_vec(e: Expr, stacked: np.ndarray) -> np.ndarray:
        return unstack_global(stacked, e.layout, e.shape)

    # -- reference backend -----------------------------------------------

    def _eval(
        self, e: Expr, values: Dict[Expr, RankValues], world: SimWorld
    ) -> RankValues:
        o = ops
        if isinstance(e, o.AllReduce):
            return collectives.allreduce_reference(
                values[e.inputs[0]], e.group, e.reduction, e.dtype.to_numpy()
            )
        if isinstance(e, o.ReduceScatter):
            return collectives.reducescatter_reference(
                values[e.inputs[0]],
                e.group,
                e.reduction,
                normalize_dim(e.layout.dim, len(e.shape)),
                e.dtype.to_numpy(),
                context=e.name,
            )
        if isinstance(e, o.AllGather):
            gathered = collectives.allgather_reference(
                values[e.inputs[0]], e.group, e.dim
            )
            if e.writeback is not None:
                wb = e.writeback
                for r in e.group:
                    world.storage[wb.name][r] = gathered[r].astype(
                        wb.dtype.to_numpy()
                    )
            return gathered
        if isinstance(e, o.AllToAllPhase):
            fn = (
                collectives.alltoall_intra_reference
                if e.phase == "intra"
                else collectives.alltoall_inter_reference
            )
            return fn(
                values[e.inputs[0]], e.group, e.dim, e.node_size,
                context=e.name,
            )
        if isinstance(e, o.AllToAll):
            return collectives.alltoall_reference(
                values[e.inputs[0]], e.group, e.dim, context=e.name
            )
        if isinstance(e, o.Reduce):
            return collectives.reduce_reference(
                values[e.inputs[0]], e.group, e.reduction, e.root,
                e.dtype.to_numpy(),
            )
        if isinstance(e, o.Broadcast):
            return collectives.broadcast_reference(
                values[e.inputs[0]], e.group, e.root
            )
        if isinstance(e, o.Send):
            return self._eval_send(e, values)
        if isinstance(e, o.MatMul):
            return self._per_rank(
                e, values, lambda a, b: np.matmul(a, b)
            )
        if isinstance(e, o.Conv2D):
            return self._per_rank(
                e, values, lambda x, w: _conv2d(x, w, e.stride, e.padding)
            )
        if isinstance(e, o.Binary):
            fn = _BINARY_FNS[e.op]
            return self._per_rank(e, values, fn)
        if isinstance(e, o.Unary):
            fn = _UNARY_FNS[e.op]
            return self._per_rank(e, values, fn)
        if isinstance(e, o.Dropout):
            return self._eval_dropout(e, values)
        if isinstance(e, o.Cast):
            return self._per_rank(e, values, lambda x: x)
        if isinstance(e, o.Slice):
            return self._eval_slice(e, values)
        if isinstance(e, (o.Norm, o.ReduceTensor)):
            return self._eval_reduction(e, values)
        if isinstance(e, o.Update):
            return self._eval_update(e, values, world)
        raise ExecutionError(f"cannot execute {type(e).__name__}")

    def _per_rank(self, e: Expr, values, fn) -> RankValues:
        out: RankValues = {}
        dtype = e.dtype.to_numpy()
        for r in e.group:
            args = [values[i][r] for i in e.inputs]
            out[r] = np.asarray(fn(*args)).astype(dtype)
        return out

    def _eval_send(self, e: ops.Send, values) -> RankValues:
        src_group = e.inputs[0].group
        dst_group = e.group
        out: RankValues = {}
        src_values = values[e.inputs[0]]
        for r in src_group:
            local = src_group.local_rank(r)
            out[dst_group.global_rank(local)] = src_values[r].copy()
        return out

    def _eval_dropout(self, e: ops.Dropout, values) -> RankValues:
        out: RankValues = {}
        dtype = e.dtype.to_numpy()
        for r in e.group:
            x = values[e.inputs[0]][r]
            if e.layout.is_sliced:
                dim = normalize_dim(e.layout.dim, len(e.shape))
                mask = rng.dropout_mask(
                    e.seed, e.prob, e.shape,
                    slice_dim=dim,
                    slice_index=e.group.local_rank(r),
                    num_slices=e.group.size,
                )
            else:
                mask = rng.dropout_mask(e.seed, e.prob, e.shape)
            out[r] = (x.astype(np.float64) * mask).astype(dtype)
        return out

    def _eval_slice(self, e: ops.Slice, values) -> RankValues:
        dim = normalize_dim(e.layout.dim, len(e.shape))
        out: RankValues = {}
        for r in e.group:
            full = values[e.inputs[0]][r]
            out[r] = slice_of(
                full, dim, e.group.local_rank(r), e.group.size, context=e.name
            ).copy()
        return out

    def _eval_reduction(self, e: Expr, values) -> RankValues:
        x_values = values[e.inputs[0]]
        is_norm = isinstance(e, ops.Norm)
        op = "+" if is_norm else e.reduction
        dtype = e.dtype.to_numpy()
        local_reduce = _local_reduce_fn(is_norm, op)

        if e.crosses_ranks:
            partials = {r: local_reduce(x_values[r]) for r in e.group}
            total = _combine_partials(list(partials.values()), is_norm, op)
            return {r: np.asarray(total).astype(dtype) for r in e.group}
        out: RankValues = {}
        for r in e.group:
            v = local_reduce(x_values[r])
            if is_norm:
                v = np.sqrt(v)
            out[r] = np.asarray(v).astype(dtype)
        return out

    def _eval_update(self, e: ops.Update, values, world: SimWorld) -> RankValues:
        target = e.target
        value = values[e.inputs[0]]
        dtype = target.dtype.to_numpy()
        out: RankValues = {}
        for r in e.group:
            new = value[r].astype(dtype)
            out[r] = new
            store = world.storage[target.name]
            if e.layout.is_sliced and target.layout.is_replicated:
                # Write this rank's slice into its full-size storage; the
                # rest becomes valid when an AllGather writes back.
                dim = normalize_dim(e.layout.dim, len(e.shape))
                full = store[r]
                extent = full.shape[dim] // e.group.size
                idx = [slice(None)] * full.ndim
                local = e.group.local_rank(r)
                idx[dim] = slice(local * extent, (local + 1) * extent)
                full[tuple(idx)] = new
            else:
                store[r] = new.copy()
        return out

    # -- vectorized backend ----------------------------------------------

    def _eval_vec(
        self, e: Expr, values: Dict[Expr, np.ndarray], world: SimWorld
    ) -> np.ndarray:
        o = ops
        if isinstance(e, o.AllReduce):
            return collectives.allreduce_vectorized(
                values[e.inputs[0]], e.group, e.reduction, e.dtype.to_numpy()
            )
        if isinstance(e, o.ReduceScatter):
            return collectives.reducescatter_vectorized(
                values[e.inputs[0]],
                e.group,
                e.reduction,
                normalize_dim(e.layout.dim, len(e.shape)),
                e.dtype.to_numpy(),
                context=e.name,
            )
        if isinstance(e, o.AllGather):
            gathered = collectives.allgather_vectorized(
                values[e.inputs[0]], e.group, e.dim
            )
            if e.writeback is not None:
                wb = e.writeback
                world.set_state(
                    wb.name,
                    replicate(
                        gathered[0].astype(wb.dtype.to_numpy()), e.group.size
                    ),
                    wb.group,
                )
            return gathered
        if isinstance(e, o.AllToAllPhase):
            fn = (
                collectives.alltoall_intra_vectorized
                if e.phase == "intra"
                else collectives.alltoall_inter_vectorized
            )
            return fn(
                values[e.inputs[0]], e.group, e.dim, e.node_size,
                context=e.name,
            )
        if isinstance(e, o.AllToAll):
            return collectives.alltoall_vectorized(
                values[e.inputs[0]], e.group, e.dim, context=e.name
            )
        if isinstance(e, o.Reduce):
            return collectives.reduce_vectorized(
                values[e.inputs[0]], e.group, e.reduction, e.root,
                e.dtype.to_numpy(),
            )
        if isinstance(e, o.Broadcast):
            return collectives.broadcast_vectorized(
                values[e.inputs[0]], e.group, e.root
            )
        if isinstance(e, o.Send):
            # Same local rank in the destination group: row order carries
            # over unchanged.
            return copy_stacked(values[e.inputs[0]])
        if isinstance(e, o.MatMul):
            return self._matmul_vec(e, values)
        if isinstance(e, o.Conv2D):
            return self._conv_vec(e, values)
        if isinstance(e, o.Binary):
            return self._elementwise_vec(e, values, _BINARY_FNS[e.op])
        if isinstance(e, o.Unary):
            return self._elementwise_vec(e, values, _UNARY_FNS[e.op])
        if isinstance(e, o.Dropout):
            return self._eval_dropout_vec(e, values)
        if isinstance(e, o.Cast):
            return self._elementwise_vec(e, values, lambda x: x)
        if isinstance(e, o.Slice):
            return self._eval_slice_vec(e, values)
        if isinstance(e, (o.Norm, o.ReduceTensor)):
            return self._eval_reduction_vec(e, values)
        if isinstance(e, o.Update):
            return self._eval_update_vec(e, values, world)
        raise ExecutionError(f"cannot execute {type(e).__name__}")

    def _elementwise_vec(self, e: Expr, values, fn) -> np.ndarray:
        args = [values[i] for i in e.inputs]
        n = e.group.size
        dtype = e.dtype.to_numpy()
        if all(rank_invariant(a) for a in args):
            # Replicated math: compute one representative rank, O(1) fan
            # back out. Per-rank results on identical inputs are
            # identical, so this is bit-equal to the stacked evaluation.
            out = np.asarray(fn(*[a[0] for a in args])).astype(dtype)
            return replicate(out, n)
        target = max(a.ndim - 1 for a in args)
        aligned = []
        for a in args:
            # Insert singleton axes after the rank axis so per-rank
            # broadcasting (trailing-dim aligned) is preserved.
            while a.ndim - 1 < target:
                a = a[:, None]
            aligned.append(a)
        return np.asarray(fn(*aligned)).astype(dtype)

    def _matmul_vec(self, e: ops.MatMul, values) -> np.ndarray:
        a, b = (values[i] for i in e.inputs)
        n = e.group.size
        dtype = e.dtype.to_numpy()
        if rank_invariant(a) and rank_invariant(b):
            out = np.asarray(np.matmul(a[0], b[0])).astype(dtype)
            return replicate(out, n)
        # Per-rank BLAS calls (not one batched matmul) keep the result
        # bit-identical to the reference backend's per-rank gemms.
        rows = [
            np.asarray(
                np.matmul(
                    np.ascontiguousarray(a[i]), np.ascontiguousarray(b[i])
                )
            ).astype(dtype)
            for i in range(n)
        ]
        return np.stack(rows, axis=0)

    def _conv_vec(self, e: ops.Conv2D, values) -> np.ndarray:
        x, w = (values[i] for i in e.inputs)
        n = e.group.size
        dtype = e.dtype.to_numpy()
        if rank_invariant(x) and rank_invariant(w):
            out = _conv2d(x[0], w[0], e.stride, e.padding).astype(dtype)
            return replicate(out, n)
        rows = [
            _conv2d(x[i], w[i], e.stride, e.padding).astype(dtype)
            for i in range(n)
        ]
        return np.stack(rows, axis=0)

    def _eval_dropout_vec(self, e: ops.Dropout, values) -> np.ndarray:
        x = values[e.inputs[0]]
        n = e.group.size
        dtype = e.dtype.to_numpy()
        if e.layout.is_sliced:
            # Per-rank masks are slices of the full counter-based mask —
            # the sliced-dropout determinism the reorder transform relies
            # on — so one mask evaluation serves all ranks.
            dim = normalize_dim(e.layout.dim, len(e.shape))
            full_mask = rng.dropout_mask(e.seed, e.prob, e.shape)
            mask = scatter_axis(full_mask, dim, n, context=e.name)
            return (x.astype(np.float64) * mask).astype(dtype)
        mask = rng.dropout_mask(e.seed, e.prob, e.shape)
        if rank_invariant(x):
            out = (x[0].astype(np.float64) * mask).astype(dtype)
            return replicate(out, n)
        return (x.astype(np.float64) * mask).astype(dtype)

    def _eval_slice_vec(self, e: ops.Slice, values) -> np.ndarray:
        dim = normalize_dim(e.layout.dim, len(e.shape))
        x = values[e.inputs[0]]
        n = e.group.size
        if rank_invariant(x):
            return np.ascontiguousarray(
                scatter_axis(x[0], dim, n, context=e.name)
            )
        rows = [
            slice_of(x[i], dim, i, n, context=e.name) for i in range(n)
        ]
        return np.stack(rows, axis=0)

    def _eval_reduction_vec(self, e: Expr, values) -> np.ndarray:
        x = values[e.inputs[0]]
        n = e.group.size
        is_norm = isinstance(e, ops.Norm)
        op = "+" if is_norm else e.reduction
        dtype = e.dtype.to_numpy()
        local_reduce = _local_reduce_fn(is_norm, op)

        if e.crosses_ranks:
            # Row-wise partials in rank order, combined exactly as the
            # reference does, keep the float64 accumulation bit-identical.
            partials = [local_reduce(x[i]) for i in range(n)]
            total = _combine_partials(partials, is_norm, op)
            return replicate(np.asarray(total).astype(dtype), n)
        if rank_invariant(x):
            v = local_reduce(x[0])
            if is_norm:
                v = np.sqrt(v)
            return replicate(np.asarray(v).astype(dtype), n)
        rows = []
        for i in range(n):
            v = local_reduce(x[i])
            if is_norm:
                v = np.sqrt(v)
            rows.append(np.asarray(v).astype(dtype))
        return np.stack(rows, axis=0)

    def _eval_update_vec(
        self, e: ops.Update, values, world: SimWorld
    ) -> np.ndarray:
        target = e.target
        dtype = target.dtype.to_numpy()
        out = astype_stacked(values[e.inputs[0]], dtype)
        if e.layout.is_sliced and target.layout.is_replicated:
            # Write each rank's slice into a fresh copy of the full-size
            # storage (np.array materializes replicated views); the rest
            # becomes valid when an AllGather writes back.
            dim = normalize_dim(e.layout.dim, len(e.shape))
            full = np.array(world.state(target.name))
            n = e.group.size
            extent = full.shape[dim + 1] // n
            for i in range(n):
                idx = [slice(None)] * full.ndim
                idx[0] = i
                idx[dim + 1] = slice(i * extent, (i + 1) * extent)
                full[tuple(idx)] = out[i]
            world.set_state(target.name, full)
        else:
            # Replace, never mutate: snapshots taken earlier stay valid.
            world.set_state(target.name, out, e.group)
        return out


def _local_reduce_fn(is_norm: bool, op: str):
    def local_reduce(x: np.ndarray) -> np.ndarray:
        x64 = x.astype(np.float64)
        if is_norm:
            return np.sum(x64 * x64)
        if op == "+":
            return np.sum(x64)
        if op == "*":
            return np.prod(x64)
        if op == "max":
            return np.max(x64)
        return np.min(x64)

    return local_reduce


def _combine_partials(partials, is_norm: bool, op: str):
    if op in ("+", "*"):
        total = np.sum(partials) if op == "+" else np.prod(partials)
    elif op == "max":
        total = np.max(partials)
    else:
        total = np.min(partials)
    if is_norm:
        total = np.sqrt(total)
    return total


def _conv2d(x: np.ndarray, w: np.ndarray, stride: int, padding: int) -> np.ndarray:
    """Direct 2-D convolution (correctness reference; small sizes only)."""
    n, c, h, wd = x.shape
    k, _, r, s = w.shape
    if padding:
        x = np.pad(
            x, ((0, 0), (0, 0), (padding, padding), (padding, padding))
        )
    ho = (x.shape[2] - r) // stride + 1
    wo = (x.shape[3] - s) // stride + 1
    out = np.zeros((n, k, ho, wo), dtype=np.float64)
    x64 = x.astype(np.float64)
    w64 = w.astype(np.float64)
    for i in range(r):
        for j in range(s):
            patch = x64[:, :, i : i + ho * stride : stride, j : j + wo * stride : stride]
            out += np.einsum("nchw,kc->nkhw", patch, w64[:, :, i, j])
    return out


_BINARY_FNS = {
    "+": lambda a, b: a.astype(np.float64) + b.astype(np.float64),
    "-": lambda a, b: a.astype(np.float64) - b.astype(np.float64),
    "*": lambda a, b: a.astype(np.float64) * b.astype(np.float64),
    "/": lambda a, b: a.astype(np.float64) / b.astype(np.float64),
    "pow": lambda a, b: np.power(a.astype(np.float64), b.astype(np.float64)),
    "max": lambda a, b: np.maximum(a, b),
    "min": lambda a, b: np.minimum(a, b),
}

_UNARY_FNS = {
    "sqrt": lambda x: np.sqrt(x.astype(np.float64)),
    "rsqrt": lambda x: 1.0 / np.sqrt(x.astype(np.float64)),
    "relu": lambda x: np.maximum(x, 0),
    "tanh": lambda x: np.tanh(x.astype(np.float64)),
    "exp": lambda x: np.exp(x.astype(np.float64)),
    "abs": lambda x: np.abs(x),
}
