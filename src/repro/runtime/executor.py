"""Numeric executor: run a CoCoNet program on a simulated world.

This is the correctness oracle of the reproduction: every schedule —
original, split, reordered, fused or overlapped — must produce the same
numbers here. Fusion and overlap do not change the DFG, so executing the
DFG covers them; split and reorder rewrite the DFG, and their
equivalence is what the tests verify against this executor.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from repro.core import ops
from repro.core.layout import normalize_dim
from repro.core.program import Program
from repro.core.tensor import Const, Expr, Scalar, Tensor
from repro.errors import ExecutionError
from repro.runtime import collectives, rng
from repro.runtime.world import SimWorld, assemble_slices, slice_of

RankValues = Dict[int, np.ndarray]


class ProgramResult:
    """Outputs and final tensor states of one simulated run."""

    def __init__(
        self,
        outputs: Dict[str, np.ndarray],
        tensor_states: Dict[str, np.ndarray],
    ) -> None:
        self._outputs = outputs
        self._tensor_states = tensor_states

    def output(self, name: str) -> np.ndarray:
        """Global value of a program output, reassembled across ranks."""
        try:
            return self._outputs[name]
        except KeyError:
            raise ExecutionError(
                f"no output named {name!r}; have {sorted(self._outputs)}"
            ) from None

    def tensor_state(self, name: str) -> np.ndarray:
        """Final (possibly updated) global value of an input tensor."""
        try:
            return self._tensor_states[name]
        except KeyError:
            raise ExecutionError(
                f"no input tensor named {name!r}; have "
                f"{sorted(self._tensor_states)}"
            ) from None

    @property
    def output_names(self):
        return sorted(self._outputs)


class Executor:
    """Interprets programs over a :class:`SimWorld`."""

    def run(
        self, program: Program, inputs: Mapping[str, np.ndarray]
    ) -> ProgramResult:
        world_size = program.inputs[0].group.world_size
        world = SimWorld(world_size)
        for t in program.inputs:
            if t.name not in inputs:
                raise ExecutionError(f"missing input {t.name!r}")
            world.place_input(t, np.asarray(inputs[t.name]))
        extra = set(inputs) - {t.name for t in program.inputs}
        if extra:
            raise ExecutionError(f"unknown inputs: {sorted(extra)}")

        values: Dict[Expr, RankValues] = {}
        from repro.core import dfg

        for e in dfg.topological(program.roots):
            if isinstance(e, Const):
                values[e] = {
                    r: np.asarray(e.value, dtype=e.dtype.to_numpy())
                    for r in e.group
                }
            elif isinstance(e, (Tensor, Scalar)):
                # Snapshot: DFG edges to a leaf reference its value at
                # program start, even if an Update later rewrites storage.
                values[e] = {
                    r: world.rank_value(e.name, r).copy() for r in e.group
                }
            else:
                values[e] = self._eval(e, values, world)

        outputs = {
            o.name: self._assemble(o, values[o]) for o in program.outputs
        }
        states = {
            t.name: world.read_back(t)
            for t in program.inputs
            if isinstance(t, Tensor)
        }
        return ProgramResult(outputs, states)

    # -- helpers ---------------------------------------------------------

    @staticmethod
    def _assemble(e: Expr, per_rank: RankValues) -> np.ndarray:
        group = e.group
        if e.layout.is_replicated:
            return per_rank[group.start]
        if e.layout.is_sliced:
            dim = normalize_dim(e.layout.dim, len(e.shape))
            return assemble_slices([per_rank[r] for r in group], dim)
        return np.stack([per_rank[r] for r in group], axis=0)

    def _eval(
        self, e: Expr, values: Dict[Expr, RankValues], world: SimWorld
    ) -> RankValues:
        o = ops
        if isinstance(e, o.AllReduce):
            return collectives.allreduce(
                values[e.inputs[0]], e.group, e.reduction, e.dtype.to_numpy()
            )
        if isinstance(e, o.ReduceScatter):
            return collectives.reducescatter(
                values[e.inputs[0]],
                e.group,
                e.reduction,
                normalize_dim(e.layout.dim, len(e.shape)),
                e.dtype.to_numpy(),
            )
        if isinstance(e, o.AllGather):
            gathered = collectives.allgather(
                values[e.inputs[0]], e.group, e.dim
            )
            if e.writeback is not None:
                wb = e.writeback
                for r in e.group:
                    world.storage[wb.name][r] = gathered[r].astype(
                        wb.dtype.to_numpy()
                    )
            return gathered
        if isinstance(e, o.AllToAllPhase):
            fn = (
                collectives.alltoall_intra
                if e.phase == "intra"
                else collectives.alltoall_inter
            )
            return fn(values[e.inputs[0]], e.group, e.dim, e.node_size)
        if isinstance(e, o.AllToAll):
            return collectives.alltoall(values[e.inputs[0]], e.group, e.dim)
        if isinstance(e, o.Reduce):
            return collectives.reduce(
                values[e.inputs[0]], e.group, e.reduction, e.root,
                e.dtype.to_numpy(),
            )
        if isinstance(e, o.Broadcast):
            return collectives.broadcast(values[e.inputs[0]], e.group, e.root)
        if isinstance(e, o.Send):
            return self._eval_send(e, values)
        if isinstance(e, o.MatMul):
            return self._per_rank(
                e, values, lambda a, b: np.matmul(a, b)
            )
        if isinstance(e, o.Conv2D):
            return self._per_rank(
                e, values, lambda x, w: _conv2d(x, w, e.stride, e.padding)
            )
        if isinstance(e, o.Binary):
            fn = _BINARY_FNS[e.op]
            return self._per_rank(e, values, fn)
        if isinstance(e, o.Unary):
            fn = _UNARY_FNS[e.op]
            return self._per_rank(e, values, fn)
        if isinstance(e, o.Dropout):
            return self._eval_dropout(e, values)
        if isinstance(e, o.Cast):
            return self._per_rank(e, values, lambda x: x)
        if isinstance(e, o.Slice):
            return self._eval_slice(e, values)
        if isinstance(e, (o.Norm, o.ReduceTensor)):
            return self._eval_reduction(e, values)
        if isinstance(e, o.Update):
            return self._eval_update(e, values, world)
        raise ExecutionError(f"cannot execute {type(e).__name__}")

    def _per_rank(self, e: Expr, values, fn) -> RankValues:
        out: RankValues = {}
        dtype = e.dtype.to_numpy()
        for r in e.group:
            args = [values[i][r] for i in e.inputs]
            out[r] = np.asarray(fn(*args)).astype(dtype)
        return out

    def _eval_send(self, e: ops.Send, values) -> RankValues:
        src_group = e.inputs[0].group
        dst_group = e.group
        out: RankValues = {}
        src_values = values[e.inputs[0]]
        for r in src_group:
            local = src_group.local_rank(r)
            out[dst_group.global_rank(local)] = src_values[r].copy()
        return out

    def _eval_dropout(self, e: ops.Dropout, values) -> RankValues:
        out: RankValues = {}
        dtype = e.dtype.to_numpy()
        for r in e.group:
            x = values[e.inputs[0]][r]
            if e.layout.is_sliced:
                dim = normalize_dim(e.layout.dim, len(e.shape))
                mask = rng.dropout_mask(
                    e.seed, e.prob, e.shape,
                    slice_dim=dim,
                    slice_index=e.group.local_rank(r),
                    num_slices=e.group.size,
                )
            else:
                mask = rng.dropout_mask(e.seed, e.prob, e.shape)
            out[r] = (x.astype(np.float64) * mask).astype(dtype)
        return out

    def _eval_slice(self, e: ops.Slice, values) -> RankValues:
        dim = normalize_dim(e.layout.dim, len(e.shape))
        out: RankValues = {}
        for r in e.group:
            full = values[e.inputs[0]][r]
            out[r] = slice_of(
                full, dim, e.group.local_rank(r), e.group.size
            ).copy()
        return out

    def _eval_reduction(self, e: Expr, values) -> RankValues:
        x_values = values[e.inputs[0]]
        is_norm = isinstance(e, ops.Norm)
        op = "+" if is_norm else e.reduction
        dtype = e.dtype.to_numpy()

        def local_reduce(x: np.ndarray) -> np.ndarray:
            x64 = x.astype(np.float64)
            if is_norm:
                return np.sum(x64 * x64)
            if op == "+":
                return np.sum(x64)
            if op == "*":
                return np.prod(x64)
            if op == "max":
                return np.max(x64)
            return np.min(x64)

        if e.crosses_ranks:
            partials = {r: local_reduce(x_values[r]) for r in e.group}
            if op in ("+", "*"):
                total = (
                    np.sum(list(partials.values()))
                    if op == "+"
                    else np.prod(list(partials.values()))
                )
            elif op == "max":
                total = np.max(list(partials.values()))
            else:
                total = np.min(list(partials.values()))
            if is_norm:
                total = np.sqrt(total)
            return {r: np.asarray(total).astype(dtype) for r in e.group}
        out: RankValues = {}
        for r in e.group:
            v = local_reduce(x_values[r])
            if is_norm:
                v = np.sqrt(v)
            out[r] = np.asarray(v).astype(dtype)
        return out

    def _eval_update(self, e: ops.Update, values, world: SimWorld) -> RankValues:
        target = e.target
        value = values[e.inputs[0]]
        dtype = target.dtype.to_numpy()
        out: RankValues = {}
        for r in e.group:
            new = value[r].astype(dtype)
            out[r] = new
            store = world.storage[target.name]
            if e.layout.is_sliced and target.layout.is_replicated:
                # Write this rank's slice into its full-size storage; the
                # rest becomes valid when an AllGather writes back.
                dim = normalize_dim(e.layout.dim, len(e.shape))
                full = store[r]
                extent = full.shape[dim] // e.group.size
                idx = [slice(None)] * full.ndim
                local = e.group.local_rank(r)
                idx[dim] = slice(local * extent, (local + 1) * extent)
                full[tuple(idx)] = new
            else:
                store[r] = new.copy()
        return out


def _conv2d(x: np.ndarray, w: np.ndarray, stride: int, padding: int) -> np.ndarray:
    """Direct 2-D convolution (correctness reference; small sizes only)."""
    n, c, h, wd = x.shape
    k, _, r, s = w.shape
    if padding:
        x = np.pad(
            x, ((0, 0), (0, 0), (padding, padding), (padding, padding))
        )
    ho = (x.shape[2] - r) // stride + 1
    wo = (x.shape[3] - s) // stride + 1
    out = np.zeros((n, k, ho, wo), dtype=np.float64)
    x64 = x.astype(np.float64)
    w64 = w.astype(np.float64)
    for i in range(r):
        for j in range(s):
            patch = x64[:, :, i : i + ho * stride : stride, j : j + wo * stride : stride]
            out += np.einsum("nchw,kc->nkhw", patch, w64[:, :, i, j])
    return out


_BINARY_FNS = {
    "+": lambda a, b: a.astype(np.float64) + b.astype(np.float64),
    "-": lambda a, b: a.astype(np.float64) - b.astype(np.float64),
    "*": lambda a, b: a.astype(np.float64) * b.astype(np.float64),
    "/": lambda a, b: a.astype(np.float64) / b.astype(np.float64),
    "pow": lambda a, b: np.power(a.astype(np.float64), b.astype(np.float64)),
    "max": lambda a, b: np.maximum(a, b),
    "min": lambda a, b: np.minimum(a, b),
}

_UNARY_FNS = {
    "sqrt": lambda x: np.sqrt(x.astype(np.float64)),
    "rsqrt": lambda x: 1.0 / np.sqrt(x.astype(np.float64)),
    "relu": lambda x: np.maximum(x, 0),
    "tanh": lambda x: np.tanh(x.astype(np.float64)),
    "exp": lambda x: np.exp(x.astype(np.float64)),
    "abs": lambda x: np.abs(x),
}
