"""Numeric executor: run a CoCoNet program on a simulated world.

This is the correctness oracle of the reproduction: every schedule —
original, split, reordered, fused or overlapped — must produce the same
numbers here. Fusion and overlap do not change the DFG, so executing the
DFG covers them; split and reorder rewrite the DFG, and their
equivalence is what the tests verify against this executor.

Two backends share the interpreter:

* **Vectorized (default)** — rank-major evaluation: each expression's
  value is one stacked ``(group.size, *per_rank_shape)`` array, every
  collective is a single numpy expression over the stack, and
  element-wise math runs once over all ranks (or once *total* when every
  operand is provably rank-invariant — a stride-0 replicated view).
* **Reference (``Executor(reference=True)``)** — the original per-rank
  interpretation over dicts of arrays, kept as the oracle.

The two backends are bit-identical (``np.array_equal`` on all outputs
and tensor states): float64 accumulations happen in the same rank order
over identically laid-out buffers, matmuls issue the same per-rank BLAS
calls, and dropout draws the same counter-based masks.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from repro.core import ops
from repro.core.layout import normalize_dim
from repro.core.program import Program
from repro.core.tensor import Const, Expr, Scalar, Tensor
from repro.errors import ExecutionError
from repro.runtime import collectives, rng
from repro.runtime.world import (
    SimWorld,
    assemble_slices,
    astype_stacked,
    copy_stacked,
    rank_invariant,
    replicate,
    scatter_axis,
    slice_of,
    unstack_global,
)

RankValues = Dict[int, np.ndarray]


class ProgramResult:
    """Outputs and final tensor states of one simulated run."""

    def __init__(
        self,
        outputs: Dict[str, np.ndarray],
        tensor_states: Dict[str, np.ndarray],
    ) -> None:
        self._outputs = outputs
        self._tensor_states = tensor_states

    def output(self, name: str) -> np.ndarray:
        """Global value of a program output, reassembled across ranks."""
        try:
            return self._outputs[name]
        except KeyError:
            raise ExecutionError(
                f"no output named {name!r}; have {sorted(self._outputs)}"
            ) from None

    def tensor_state(self, name: str) -> np.ndarray:
        """Final (possibly updated) global value of an input tensor."""
        try:
            return self._tensor_states[name]
        except KeyError:
            raise ExecutionError(
                f"no input tensor named {name!r}; have "
                f"{sorted(self._tensor_states)}"
            ) from None

    @property
    def output_names(self):
        return sorted(self._outputs)


class Executor:
    """Interprets programs over a :class:`SimWorld`.

    ``reference=True`` selects the original per-rank dict interpreter;
    the default is the rank-major vectorized backend.
    """

    def __init__(self, reference: bool = False) -> None:
        self.reference = reference

    def run(
        self,
        program: Program,
        inputs: Mapping[str, np.ndarray],
        allow_downcast: Optional[bool] = None,
    ) -> ProgramResult:
        world_size = program.inputs[0].group.world_size
        world = SimWorld(world_size, reference=self.reference)
        for t in program.inputs:
            if t.name not in inputs:
                raise ExecutionError(f"missing input {t.name!r}")
            world.place_input(
                t, np.asarray(inputs[t.name]), allow_downcast=allow_downcast
            )
        extra = set(inputs) - {t.name for t in program.inputs}
        if extra:
            raise ExecutionError(f"unknown inputs: {sorted(extra)}")

        from repro.core import dfg

        exprs = dfg.topological(program.roots)
        if self.reference:
            values: Dict[Expr, RankValues] = {}
            for e in exprs:
                if isinstance(e, Const):
                    values[e] = {
                        r: np.asarray(e.value, dtype=e.dtype.to_numpy())
                        for r in e.group
                    }
                elif isinstance(e, (Tensor, Scalar)):
                    # Snapshot: DFG edges to a leaf reference its value at
                    # program start, even if an Update later rewrites
                    # storage.
                    values[e] = {
                        r: world.rank_value(e.name, r).copy() for r in e.group
                    }
                else:
                    values[e] = self._eval(e, values, world)
            outputs = {
                o.name: self._assemble(o, values[o]) for o in program.outputs
            }
        else:
            vvalues: Dict[Expr, np.ndarray] = {}
            for e in exprs:
                if isinstance(e, Const):
                    vvalues[e] = replicate(
                        np.asarray(e.value, dtype=e.dtype.to_numpy()),
                        e.group.size,
                    )
                elif isinstance(e, (Tensor, Scalar)):
                    # Storage arrays are replaced, never mutated in place,
                    # so the snapshot can alias storage directly.
                    vvalues[e] = world.state(e.name)
                else:
                    vvalues[e] = self._eval_vec(e, vvalues, world)
            outputs = {
                o.name: self._assemble_vec(o, vvalues[o])
                for o in program.outputs
            }
        states = {
            t.name: world.read_back(t)
            for t in program.inputs
            if isinstance(t, Tensor)
        }
        return ProgramResult(outputs, states)

    # -- shared helpers --------------------------------------------------

    @staticmethod
    def _assemble(e: Expr, per_rank: RankValues) -> np.ndarray:
        group = e.group
        if e.layout.is_replicated:
            return per_rank[group.start]
        if e.layout.is_sliced:
            dim = normalize_dim(e.layout.dim, len(e.shape))
            return assemble_slices([per_rank[r] for r in group], dim)
        return np.stack([per_rank[r] for r in group], axis=0)

    @staticmethod
    def _assemble_vec(e: Expr, stacked: np.ndarray) -> np.ndarray:
        return unstack_global(stacked, e.layout, e.shape)

    # -- reference backend -----------------------------------------------

    def _eval(
        self, e: Expr, values: Dict[Expr, RankValues], world: SimWorld
    ) -> RankValues:
        o = ops
        if isinstance(e, o.AllReduce):
            return collectives.allreduce_reference(
                values[e.inputs[0]], e.group, e.reduction, e.dtype.to_numpy()
            )
        if isinstance(e, o.ReduceScatter):
            return collectives.reducescatter_reference(
                values[e.inputs[0]],
                e.group,
                e.reduction,
                normalize_dim(e.layout.dim, len(e.shape)),
                e.dtype.to_numpy(),
                context=e.name,
            )
        if isinstance(e, o.AllGather):
            gathered = collectives.allgather_reference(
                values[e.inputs[0]], e.group, e.dim
            )
            if e.writeback is not None:
                wb = e.writeback
                for r in e.group:
                    world.storage[wb.name][r] = gathered[r].astype(
                        wb.dtype.to_numpy()
                    )
            return gathered
        if isinstance(e, o.AllToAllPhase):
            fn = (
                collectives.alltoall_intra_reference
                if e.phase == "intra"
                else collectives.alltoall_inter_reference
            )
            return fn(
                values[e.inputs[0]], e.group, e.dim, e.node_size,
                context=e.name,
            )
        if isinstance(e, o.AllToAll):
            return collectives.alltoall_reference(
                values[e.inputs[0]], e.group, e.dim, context=e.name
            )
        if isinstance(e, o.Reduce):
            return collectives.reduce_reference(
                values[e.inputs[0]], e.group, e.reduction, e.root,
                e.dtype.to_numpy(),
            )
        if isinstance(e, o.Broadcast):
            return collectives.broadcast_reference(
                values[e.inputs[0]], e.group, e.root
            )
        if isinstance(e, o.Send):
            return self._eval_send(e, values)
        if isinstance(e, o.MatMul):
            return self._per_rank(
                e, values, lambda a, b: np.matmul(a, b)
            )
        if isinstance(e, o.Conv2D):
            return self._per_rank(
                e, values, lambda x, w: _conv2d(x, w, e.stride, e.padding)
            )
        if isinstance(e, o.Binary):
            fn = _BINARY_FNS[e.op]
            return self._per_rank(e, values, fn)
        if isinstance(e, o.Unary):
            fn = _UNARY_FNS[e.op]
            return self._per_rank(e, values, fn)
        if isinstance(e, o.Dropout):
            return self._eval_dropout(e, values)
        if isinstance(e, o.Cast):
            return self._per_rank(e, values, lambda x: x)
        if isinstance(e, o.Slice):
            return self._eval_slice(e, values)
        if isinstance(e, (o.Norm, o.ReduceTensor)):
            return self._eval_reduction(e, values)
        if isinstance(e, o.Update):
            return self._eval_update(e, values, world)
        raise ExecutionError(f"cannot execute {type(e).__name__}")

    def _per_rank(self, e: Expr, values, fn) -> RankValues:
        out: RankValues = {}
        dtype = e.dtype.to_numpy()
        for r in e.group:
            args = [values[i][r] for i in e.inputs]
            out[r] = np.asarray(fn(*args)).astype(dtype)
        return out

    def _eval_send(self, e: ops.Send, values) -> RankValues:
        src_group = e.inputs[0].group
        dst_group = e.group
        out: RankValues = {}
        src_values = values[e.inputs[0]]
        for r in src_group:
            local = src_group.local_rank(r)
            out[dst_group.global_rank(local)] = src_values[r].copy()
        return out

    def _eval_dropout(self, e: ops.Dropout, values) -> RankValues:
        out: RankValues = {}
        dtype = e.dtype.to_numpy()
        for r in e.group:
            x = values[e.inputs[0]][r]
            if e.layout.is_sliced:
                dim = normalize_dim(e.layout.dim, len(e.shape))
                mask = rng.dropout_mask(
                    e.seed, e.prob, e.shape,
                    slice_dim=dim,
                    slice_index=e.group.local_rank(r),
                    num_slices=e.group.size,
                )
            else:
                mask = rng.dropout_mask(e.seed, e.prob, e.shape)
            out[r] = (x.astype(np.float64) * mask).astype(dtype)
        return out

    def _eval_slice(self, e: ops.Slice, values) -> RankValues:
        dim = normalize_dim(e.layout.dim, len(e.shape))
        out: RankValues = {}
        for r in e.group:
            full = values[e.inputs[0]][r]
            out[r] = slice_of(
                full, dim, e.group.local_rank(r), e.group.size, context=e.name
            ).copy()
        return out

    def _eval_reduction(self, e: Expr, values) -> RankValues:
        x_values = values[e.inputs[0]]
        is_norm = isinstance(e, ops.Norm)
        op = "+" if is_norm else e.reduction
        dtype = e.dtype.to_numpy()
        local_reduce = _local_reduce_fn(is_norm, op)

        if e.crosses_ranks:
            partials = {r: local_reduce(x_values[r]) for r in e.group}
            total = _combine_partials(list(partials.values()), is_norm, op)
            return {r: np.asarray(total).astype(dtype) for r in e.group}
        out: RankValues = {}
        for r in e.group:
            v = local_reduce(x_values[r])
            if is_norm:
                v = np.sqrt(v)
            out[r] = np.asarray(v).astype(dtype)
        return out

    def _eval_update(self, e: ops.Update, values, world: SimWorld) -> RankValues:
        target = e.target
        value = values[e.inputs[0]]
        dtype = target.dtype.to_numpy()
        out: RankValues = {}
        for r in e.group:
            new = value[r].astype(dtype)
            out[r] = new
            store = world.storage[target.name]
            if e.layout.is_sliced and target.layout.is_replicated:
                # Write this rank's slice into its full-size storage; the
                # rest becomes valid when an AllGather writes back.
                dim = normalize_dim(e.layout.dim, len(e.shape))
                full = store[r]
                extent = full.shape[dim] // e.group.size
                idx = [slice(None)] * full.ndim
                local = e.group.local_rank(r)
                idx[dim] = slice(local * extent, (local + 1) * extent)
                full[tuple(idx)] = new
            else:
                store[r] = new.copy()
        return out

    # -- vectorized backend ----------------------------------------------

    def _eval_vec(
        self, e: Expr, values: Dict[Expr, np.ndarray], world: SimWorld
    ) -> np.ndarray:
        o = ops
        if isinstance(e, o.AllReduce):
            return collectives.allreduce_vectorized(
                values[e.inputs[0]], e.group, e.reduction, e.dtype.to_numpy()
            )
        if isinstance(e, o.ReduceScatter):
            return collectives.reducescatter_vectorized(
                values[e.inputs[0]],
                e.group,
                e.reduction,
                normalize_dim(e.layout.dim, len(e.shape)),
                e.dtype.to_numpy(),
                context=e.name,
            )
        if isinstance(e, o.AllGather):
            gathered = collectives.allgather_vectorized(
                values[e.inputs[0]], e.group, e.dim
            )
            if e.writeback is not None:
                wb = e.writeback
                world.set_state(
                    wb.name,
                    replicate(
                        gathered[0].astype(wb.dtype.to_numpy()), e.group.size
                    ),
                    wb.group,
                )
            return gathered
        if isinstance(e, o.AllToAllPhase):
            fn = (
                collectives.alltoall_intra_vectorized
                if e.phase == "intra"
                else collectives.alltoall_inter_vectorized
            )
            return fn(
                values[e.inputs[0]], e.group, e.dim, e.node_size,
                context=e.name,
            )
        if isinstance(e, o.AllToAll):
            return collectives.alltoall_vectorized(
                values[e.inputs[0]], e.group, e.dim, context=e.name
            )
        if isinstance(e, o.Reduce):
            return collectives.reduce_vectorized(
                values[e.inputs[0]], e.group, e.reduction, e.root,
                e.dtype.to_numpy(),
            )
        if isinstance(e, o.Broadcast):
            return collectives.broadcast_vectorized(
                values[e.inputs[0]], e.group, e.root
            )
        if isinstance(e, o.Send):
            # Same local rank in the destination group: row order carries
            # over unchanged.
            return copy_stacked(values[e.inputs[0]])
        if isinstance(e, o.MatMul):
            return self._matmul_vec(e, values)
        if isinstance(e, o.Conv2D):
            return self._conv_vec(e, values)
        if isinstance(e, o.Binary):
            return self._elementwise_vec(e, values, _BINARY_FNS[e.op])
        if isinstance(e, o.Unary):
            return self._elementwise_vec(e, values, _UNARY_FNS[e.op])
        if isinstance(e, o.Dropout):
            return self._eval_dropout_vec(e, values)
        if isinstance(e, o.Cast):
            return self._elementwise_vec(e, values, lambda x: x)
        if isinstance(e, o.Slice):
            return self._eval_slice_vec(e, values)
        if isinstance(e, (o.Norm, o.ReduceTensor)):
            return self._eval_reduction_vec(e, values)
        if isinstance(e, o.Update):
            return self._eval_update_vec(e, values, world)
        raise ExecutionError(f"cannot execute {type(e).__name__}")

    def _elementwise_vec(self, e: Expr, values, fn) -> np.ndarray:
        args = [values[i] for i in e.inputs]
        n = e.group.size
        dtype = e.dtype.to_numpy()
        if all(rank_invariant(a) for a in args):
            # Replicated math: compute one representative rank, O(1) fan
            # back out. Per-rank results on identical inputs are
            # identical, so this is bit-equal to the stacked evaluation.
            out = np.asarray(fn(*[a[0] for a in args])).astype(dtype)
            return replicate(out, n)
        target = max(a.ndim - 1 for a in args)
        aligned = []
        for a in args:
            # Insert singleton axes after the rank axis so per-rank
            # broadcasting (trailing-dim aligned) is preserved.
            while a.ndim - 1 < target:
                a = a[:, None]
            aligned.append(a)
        return np.asarray(fn(*aligned)).astype(dtype)

    def _matmul_vec(self, e: ops.MatMul, values) -> np.ndarray:
        a, b = (values[i] for i in e.inputs)
        n = e.group.size
        dtype = e.dtype.to_numpy()
        if rank_invariant(a) and rank_invariant(b):
            out = np.asarray(np.matmul(a[0], b[0])).astype(dtype)
            return replicate(out, n)
        # Per-rank BLAS calls (not one batched matmul) keep the result
        # bit-identical to the reference backend's per-rank gemms.
        rows = [
            np.asarray(
                np.matmul(
                    np.ascontiguousarray(a[i]), np.ascontiguousarray(b[i])
                )
            ).astype(dtype)
            for i in range(n)
        ]
        return np.stack(rows, axis=0)

    def _conv_vec(self, e: ops.Conv2D, values) -> np.ndarray:
        x, w = (values[i] for i in e.inputs)
        n = e.group.size
        dtype = e.dtype.to_numpy()
        if rank_invariant(x) and rank_invariant(w):
            out = _conv2d(x[0], w[0], e.stride, e.padding).astype(dtype)
            return replicate(out, n)
        rows = [
            _conv2d(x[i], w[i], e.stride, e.padding).astype(dtype)
            for i in range(n)
        ]
        return np.stack(rows, axis=0)

    def _eval_dropout_vec(self, e: ops.Dropout, values) -> np.ndarray:
        x = values[e.inputs[0]]
        n = e.group.size
        dtype = e.dtype.to_numpy()
        if e.layout.is_sliced:
            # Per-rank masks are slices of the full counter-based mask —
            # the sliced-dropout determinism the reorder transform relies
            # on — so one mask evaluation serves all ranks.
            dim = normalize_dim(e.layout.dim, len(e.shape))
            full_mask = rng.dropout_mask(e.seed, e.prob, e.shape)
            mask = scatter_axis(full_mask, dim, n, context=e.name)
            return (x.astype(np.float64) * mask).astype(dtype)
        mask = rng.dropout_mask(e.seed, e.prob, e.shape)
        if rank_invariant(x):
            out = (x[0].astype(np.float64) * mask).astype(dtype)
            return replicate(out, n)
        return (x.astype(np.float64) * mask).astype(dtype)

    def _eval_slice_vec(self, e: ops.Slice, values) -> np.ndarray:
        dim = normalize_dim(e.layout.dim, len(e.shape))
        x = values[e.inputs[0]]
        n = e.group.size
        if rank_invariant(x):
            return np.ascontiguousarray(
                scatter_axis(x[0], dim, n, context=e.name)
            )
        rows = [
            slice_of(x[i], dim, i, n, context=e.name) for i in range(n)
        ]
        return np.stack(rows, axis=0)

    def _eval_reduction_vec(self, e: Expr, values) -> np.ndarray:
        x = values[e.inputs[0]]
        n = e.group.size
        is_norm = isinstance(e, ops.Norm)
        op = "+" if is_norm else e.reduction
        dtype = e.dtype.to_numpy()
        local_reduce = _local_reduce_fn(is_norm, op)

        if e.crosses_ranks:
            # Row-wise partials in rank order, combined exactly as the
            # reference does, keep the float64 accumulation bit-identical.
            partials = [local_reduce(x[i]) for i in range(n)]
            total = _combine_partials(partials, is_norm, op)
            return replicate(np.asarray(total).astype(dtype), n)
        if rank_invariant(x):
            v = local_reduce(x[0])
            if is_norm:
                v = np.sqrt(v)
            return replicate(np.asarray(v).astype(dtype), n)
        rows = []
        for i in range(n):
            v = local_reduce(x[i])
            if is_norm:
                v = np.sqrt(v)
            rows.append(np.asarray(v).astype(dtype))
        return np.stack(rows, axis=0)

    def _eval_update_vec(
        self, e: ops.Update, values, world: SimWorld
    ) -> np.ndarray:
        target = e.target
        dtype = target.dtype.to_numpy()
        out = astype_stacked(values[e.inputs[0]], dtype)
        if e.layout.is_sliced and target.layout.is_replicated:
            # Write each rank's slice into a fresh copy of the full-size
            # storage (np.array materializes replicated views); the rest
            # becomes valid when an AllGather writes back.
            dim = normalize_dim(e.layout.dim, len(e.shape))
            full = np.array(world.state(target.name))
            n = e.group.size
            extent = full.shape[dim + 1] // n
            for i in range(n):
                idx = [slice(None)] * full.ndim
                idx[0] = i
                idx[dim + 1] = slice(i * extent, (i + 1) * extent)
                full[tuple(idx)] = out[i]
            world.set_state(target.name, full)
        else:
            # Replace, never mutate: snapshots taken earlier stay valid.
            world.set_state(target.name, out, e.group)
        return out


def _local_reduce_fn(is_norm: bool, op: str):
    def local_reduce(x: np.ndarray) -> np.ndarray:
        x64 = x.astype(np.float64)
        if is_norm:
            return np.sum(x64 * x64)
        if op == "+":
            return np.sum(x64)
        if op == "*":
            return np.prod(x64)
        if op == "max":
            return np.max(x64)
        return np.min(x64)

    return local_reduce


def _combine_partials(partials, is_norm: bool, op: str):
    if op in ("+", "*"):
        total = np.sum(partials) if op == "+" else np.prod(partials)
    elif op == "max":
        total = np.max(partials)
    else:
        total = np.min(partials)
    if is_norm:
        total = np.sqrt(total)
    return total


def _conv2d(x: np.ndarray, w: np.ndarray, stride: int, padding: int) -> np.ndarray:
    """Direct 2-D convolution (correctness reference; small sizes only)."""
    n, c, h, wd = x.shape
    k, _, r, s = w.shape
    if padding:
        x = np.pad(
            x, ((0, 0), (0, 0), (padding, padding), (padding, padding))
        )
    ho = (x.shape[2] - r) // stride + 1
    wo = (x.shape[3] - s) // stride + 1
    out = np.zeros((n, k, ho, wo), dtype=np.float64)
    x64 = x.astype(np.float64)
    w64 = w.astype(np.float64)
    for i in range(r):
        for j in range(s):
            patch = x64[:, :, i : i + ho * stride : stride, j : j + wo * stride : stride]
            out += np.einsum("nchw,kc->nkhw", patch, w64[:, :, i, j])
    return out


_BINARY_FNS = {
    "+": lambda a, b: a.astype(np.float64) + b.astype(np.float64),
    "-": lambda a, b: a.astype(np.float64) - b.astype(np.float64),
    "*": lambda a, b: a.astype(np.float64) * b.astype(np.float64),
    "/": lambda a, b: a.astype(np.float64) / b.astype(np.float64),
    "pow": lambda a, b: np.power(a.astype(np.float64), b.astype(np.float64)),
    "max": lambda a, b: np.maximum(a, b),
    "min": lambda a, b: np.minimum(a, b),
}

_UNARY_FNS = {
    "sqrt": lambda x: np.sqrt(x.astype(np.float64)),
    "rsqrt": lambda x: 1.0 / np.sqrt(x.astype(np.float64)),
    "relu": lambda x: np.maximum(x, 0),
    "tanh": lambda x: np.tanh(x.astype(np.float64)),
    "exp": lambda x: np.exp(x.astype(np.float64)),
    "abs": lambda x: np.abs(x),
}
