"""Per-rank device memory accounting.

A simple bump allocator over the simulated GPU's HBM; exceeding the
32 GB of a V100 raises :class:`OutOfMemoryError` — the "OOM" entries of
Table 4.
"""

from __future__ import annotations

from typing import Dict

from repro.cluster.gpu import GPU, TESLA_V100
from repro.errors import OutOfMemoryError


class DeviceAllocator:
    """Tracks named allocations on one simulated GPU."""

    def __init__(self, gpu: GPU = TESLA_V100) -> None:
        self.gpu = gpu
        self.allocations: Dict[str, int] = {}
        self.high_water: int = 0

    @property
    def used_bytes(self) -> int:
        return sum(self.allocations.values())

    @property
    def free_bytes(self) -> int:
        return self.gpu.memory_bytes - self.used_bytes

    def alloc(self, name: str, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError(f"negative allocation {name!r}")
        if name in self.allocations:
            raise ValueError(f"allocation {name!r} already exists")
        if self.used_bytes + nbytes > self.gpu.memory_bytes:
            raise OutOfMemoryError(
                f"allocating {name!r} ({nbytes / 2**30:.2f} GiB) exceeds "
                f"{self.gpu.memory_bytes / 2**30:.0f} GiB device memory "
                f"({self.used_bytes / 2**30:.2f} GiB in use)"
            )
        self.allocations[name] = nbytes
        self.high_water = max(self.high_water, self.used_bytes)

    def free(self, name: str) -> None:
        try:
            del self.allocations[name]
        except KeyError:
            raise ValueError(f"no allocation named {name!r}") from None

    def would_fit(self, nbytes: int) -> bool:
        return self.used_bytes + nbytes <= self.gpu.memory_bytes
