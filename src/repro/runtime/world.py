"""The simulated world: per-rank tensor storage.

A :class:`SimWorld` holds one numpy array per (rank, tensor-name) pair —
the stand-in for each GPU's global memory. Input preparation distributes
a *global* array according to the tensor's layout: replicated tensors
are copied to every rank, sliced tensors are partitioned along their
slice dimension, and local tensors take per-rank values stacked on a
leading axis.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.core.layout import normalize_dim
from repro.core.tensor import Expr, Tensor
from repro.errors import ExecutionError


def slice_of(array: np.ndarray, dim: int, index: int, parts: int) -> np.ndarray:
    """The ``index``-th of ``parts`` equal slices of ``array`` along ``dim``."""
    extent = array.shape[dim]
    if extent % parts != 0:
        raise ExecutionError(
            f"dim {dim} of shape {array.shape} not divisible into {parts} parts"
        )
    step = extent // parts
    sl = [slice(None)] * array.ndim
    sl[dim] = slice(index * step, (index + 1) * step)
    return array[tuple(sl)]


def assemble_slices(parts: Sequence[np.ndarray], dim: int) -> np.ndarray:
    """Concatenate per-rank slices back into the global array."""
    return np.concatenate(list(parts), axis=dim)


class SimWorld:
    """Per-rank storage for a simulated run."""

    def __init__(self, num_ranks: int) -> None:
        if num_ranks <= 0:
            raise ExecutionError("world needs at least one rank")
        self.num_ranks = num_ranks
        self.storage: Dict[str, Dict[int, np.ndarray]] = {}

    def place_input(self, tensor: Expr, value: np.ndarray) -> None:
        """Distribute a global input array according to the tensor layout."""
        value = np.asarray(value, dtype=tensor.dtype.to_numpy())
        group = tensor.group
        per_rank: Dict[int, np.ndarray] = {}
        if tensor.layout.is_replicated:
            if tuple(value.shape) != tensor.shape:
                raise ExecutionError(
                    f"{tensor.name}: expected shape {tensor.shape}, "
                    f"got {value.shape}"
                )
            for r in group:
                per_rank[r] = value.copy()
        elif tensor.layout.is_sliced:
            if tuple(value.shape) != tensor.shape:
                raise ExecutionError(
                    f"{tensor.name}: expected global shape {tensor.shape}, "
                    f"got {value.shape}"
                )
            dim = normalize_dim(tensor.layout.dim, len(tensor.shape))
            for i, r in enumerate(group):
                per_rank[r] = slice_of(value, dim, i, group.size).copy()
        else:  # local: leading axis indexes ranks of the group
            expected = (group.size,) + tensor.shape
            if tuple(value.shape) != expected:
                raise ExecutionError(
                    f"{tensor.name} is local: expected shape {expected} "
                    f"(group size leading), got {value.shape}"
                )
            for i, r in enumerate(group):
                per_rank[r] = value[i].copy()
        self.storage[tensor.name] = per_rank

    def read_back(self, tensor: Expr) -> np.ndarray:
        """Reassemble a tensor's global value from per-rank storage."""
        per_rank = self.storage[tensor.name]
        group = tensor.group
        if tensor.layout.is_replicated:
            return per_rank[group.start]
        if tensor.layout.is_sliced:
            dim = normalize_dim(tensor.layout.dim, len(tensor.shape))
            return assemble_slices([per_rank[r] for r in group], dim)
        return np.stack([per_rank[r] for r in group], axis=0)

    def rank_value(self, name: str, rank: int) -> np.ndarray:
        try:
            return self.storage[name][rank]
        except KeyError:
            raise ExecutionError(
                f"no value for tensor {name!r} on rank {rank}"
            ) from None
