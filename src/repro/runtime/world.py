"""The simulated world: tensor storage for N ranks.

Two storage backends share one API:

* **Vectorized (default)** — rank-major storage: one stacked numpy array
  of shape ``(group.size, *per_rank_shape)`` per tensor, axis 0 indexing
  the local ranks of the tensor's group. Collectives and element-wise
  computation become single numpy expressions over the stack (see
  :mod:`repro.runtime.collectives`), and replicated values are stored as
  stride-0 broadcast views of a single per-rank array, so rank-invariant
  work is done once instead of once per rank.
* **Reference (``SimWorld(num_ranks, reference=True)``)** — the original
  dict of per-rank arrays, one ``np.ndarray`` per (rank, tensor-name)
  pair. Retained as the oracle the vectorized backend is property-tested
  bit-identical against.

Input preparation distributes a *global* array according to the tensor's
layout: replicated tensors are visible on every rank, sliced tensors are
partitioned along their slice dimension, and local tensors take per-rank
values stacked on a leading axis.

Rank-major storage invariant: stacked arrays are never mutated in place.
Updates *replace* a tensor's array (copying first when they must write
per-rank slices), which is what lets leaf snapshots and replicated
broadcast views alias storage safely.
"""

from __future__ import annotations

import warnings
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.layout import normalize_dim
from repro.core.process_group import ProcessGroup
from repro.core.tensor import Expr
from repro.errors import ExecutionError


def context_suffix(context: str) -> str:
    """``" (in <name>)"`` — appended to sharding errors so uneven-split
    mistakes are attributable to a tensor/op from the message alone."""
    return f" (in {context})" if context else ""


def check_divisible(
    shape: Sequence[int], dim: int, parts: int, context: str = ""
) -> int:
    """Assert ``shape[dim]`` splits into ``parts``; return the step."""
    extent = shape[dim]
    if extent % parts != 0:
        raise ExecutionError(
            f"dim {dim} of shape {tuple(shape)} not divisible into "
            f"{parts} parts{context_suffix(context)}"
        )
    return extent // parts


def slice_of(
    array: np.ndarray, dim: int, index: int, parts: int, context: str = ""
) -> np.ndarray:
    """The ``index``-th of ``parts`` equal slices of ``array`` along ``dim``."""
    step = check_divisible(array.shape, dim, parts, context)
    sl = [slice(None)] * array.ndim
    sl[dim] = slice(index * step, (index + 1) * step)
    return array[tuple(sl)]


def assemble_slices(parts: Sequence[np.ndarray], dim: int) -> np.ndarray:
    """Concatenate per-rank slices back into the global array."""
    return np.concatenate(list(parts), axis=dim)


# ---------------------------------------------------------------------------
# Rank-major (stacked) helpers — shared by the vectorized collectives and
# the vectorized executor.
# ---------------------------------------------------------------------------


def replicate(base: np.ndarray, num_ranks: int) -> np.ndarray:
    """A read-only ``(num_ranks, *base.shape)`` stride-0 view of ``base``.

    The rank-major representation of a replicated value: every rank's row
    aliases the same memory, so producing it is O(1) and downstream code
    can detect the invariance (see :func:`rank_invariant`) to compute on
    a single representative rank.
    """
    base = np.asarray(base)
    return np.broadcast_to(base, (num_ranks,) + base.shape)


def rank_invariant(stacked: np.ndarray) -> bool:
    """True when every rank's row provably aliases the same data.

    Detected via the stride-0 leading axis that :func:`replicate`
    produces. A ``False`` answer does not mean rows differ — only that
    they are stored separately.
    """
    return stacked.ndim > 0 and stacked.strides[0] == 0


def scatter_axis(
    array: np.ndarray, dim: int, parts: int, context: str = ""
) -> np.ndarray:
    """View ``array`` as its ``parts`` equal slices along ``dim``, stacked.

    The rank-major equivalent of ``[slice_of(array, dim, i, parts) for i
    in range(parts)]``: a reshape plus axis move, no data copied. The
    result has shape ``(parts, *slice_shape)``.
    """
    step = check_divisible(array.shape, dim, parts, context)
    view = array.reshape(
        array.shape[:dim] + (parts, step) + array.shape[dim + 1 :]
    )
    return np.moveaxis(view, dim, 0)


def gather_axis(stacked: np.ndarray, dim: int) -> np.ndarray:
    """Merge a ``(parts, *slice_shape)`` stack back along ``dim``.

    Inverse of :func:`scatter_axis`; equals concatenating the rows along
    ``dim`` in rank order.
    """
    moved = np.moveaxis(stacked, 0, dim)
    shape = (
        moved.shape[:dim]
        + (moved.shape[dim] * moved.shape[dim + 1],)
        + moved.shape[dim + 2 :]
    )
    return moved.reshape(shape)


def unstack_global(stacked: np.ndarray, layout, shape) -> np.ndarray:
    """Reassemble a stacked value into its global array, for callers.

    The single result boundary of the vectorized backend (program
    outputs and ``read_back`` tensor states). The returned array never
    aliases the stack — matching the reference backend, whose assembled
    results are always independent copies — and is always writable, so
    internal stride-0 replicated views never leak.
    """
    if layout.is_replicated:
        base = stacked[0]
    elif layout.is_sliced:
        base = gather_axis(stacked, normalize_dim(layout.dim, len(shape)))
    else:
        base = np.ascontiguousarray(stacked)
    if np.may_share_memory(base, stacked):
        base = base.copy()
    return base


def copy_stacked(stacked: np.ndarray) -> np.ndarray:
    """Snapshot a stacked value, preserving replicated stride-0 views."""
    if rank_invariant(stacked):
        return replicate(stacked[0].copy(), stacked.shape[0])
    return stacked.copy()


def astype_stacked(stacked: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Cast a stacked value, preserving replicated stride-0 views."""
    if rank_invariant(stacked):
        return replicate(stacked[0].astype(dtype), stacked.shape[0])
    return stacked.astype(dtype)


# ---------------------------------------------------------------------------
# Lossy-downcast detection for input placement.
# ---------------------------------------------------------------------------


def _dtype_lossy(src: np.dtype, dst: np.dtype) -> bool:
    """Is a ``src`` → ``dst`` cast a precision-losing downcast?

    float64 → float32 is the simulator's standard working precision
    (every test feeds ``randn`` float64 into FP32 tensors) and stays
    silent; casts to below-single-precision floats (FP16) and casts that
    numpy itself calls unsafe across kinds (float → int, narrowing int)
    are flagged.
    """
    src, dst = np.dtype(src), np.dtype(dst)
    if src == dst or np.can_cast(src, dst, casting="safe"):
        return False
    if src.kind in "fc" and dst.kind in "fc":
        return dst.itemsize < 4
    return True


class SimWorld:
    """Tensor storage for a simulated run.

    ``reference=True`` selects the original per-rank dict storage (the
    oracle); the default is the rank-major stacked representation.
    """

    def __init__(self, num_ranks: int, reference: bool = False) -> None:
        if num_ranks <= 0:
            raise ExecutionError("world needs at least one rank")
        self.num_ranks = num_ranks
        self.reference = reference
        #: reference backend: name -> {global rank -> ndarray}
        self.storage: Dict[str, Dict[int, np.ndarray]] = {}
        #: vectorized backend: name -> (group.size, *per_rank_shape)
        self._state: Dict[str, np.ndarray] = {}
        self._groups: Dict[str, ProcessGroup] = {}

    # -- input placement ----------------------------------------------------

    def _checked_cast(
        self, tensor: Expr, value: np.ndarray, allow_downcast: Optional[bool]
    ) -> np.ndarray:
        """Cast an input to the tensor dtype, policing lossy downcasts.

        ``allow_downcast=True`` casts silently, ``False`` raises on a
        value-changing lossy downcast, and ``None`` (the default) warns.
        """
        value = np.asarray(value)
        target = tensor.dtype.to_numpy()
        if allow_downcast is not True and _dtype_lossy(value.dtype, target):
            cast = value.astype(target)
            if not np.array_equal(
                cast.astype(value.dtype), value, equal_nan=True
            ):
                msg = (
                    f"placing input {tensor.name!r}: lossy downcast "
                    f"{value.dtype} -> {target} changes values; pass "
                    f"allow_downcast=True to accept"
                )
                if allow_downcast is False:
                    raise ExecutionError(msg)
                warnings.warn(msg, RuntimeWarning, stacklevel=3)
            return cast
        return value.astype(target) if value.dtype != target else value

    def place_input(
        self,
        tensor: Expr,
        value: np.ndarray,
        allow_downcast: Optional[bool] = None,
    ) -> None:
        """Distribute a global input array according to the tensor layout."""
        value = self._checked_cast(tensor, value, allow_downcast)
        group = tensor.group
        if tensor.layout.is_replicated:
            if tuple(value.shape) != tensor.shape:
                raise ExecutionError(
                    f"{tensor.name}: expected shape {tensor.shape}, "
                    f"got {value.shape}"
                )
        elif tensor.layout.is_sliced:
            if tuple(value.shape) != tensor.shape:
                raise ExecutionError(
                    f"{tensor.name}: expected global shape {tensor.shape}, "
                    f"got {value.shape}"
                )
        else:  # local: leading axis indexes ranks of the group
            expected = (group.size,) + tensor.shape
            if tuple(value.shape) != expected:
                raise ExecutionError(
                    f"{tensor.name} is local: expected shape {expected} "
                    f"(group size leading), got {value.shape}"
                )
        if self.reference:
            self._place_reference(tensor, value)
        else:
            self._place_stacked(tensor, value)

    def _place_reference(self, tensor: Expr, value: np.ndarray) -> None:
        group = tensor.group
        per_rank: Dict[int, np.ndarray] = {}
        if tensor.layout.is_replicated:
            for r in group:
                per_rank[r] = value.copy()
        elif tensor.layout.is_sliced:
            dim = normalize_dim(tensor.layout.dim, len(tensor.shape))
            for i, r in enumerate(group):
                per_rank[r] = slice_of(
                    value, dim, i, group.size, context=tensor.name
                ).copy()
        else:
            for i, r in enumerate(group):
                per_rank[r] = value[i].copy()
        self.storage[tensor.name] = per_rank

    def _place_stacked(self, tensor: Expr, value: np.ndarray) -> None:
        group = tensor.group
        if tensor.layout.is_replicated:
            stacked = replicate(value.copy(), group.size)
        elif tensor.layout.is_sliced:
            dim = normalize_dim(tensor.layout.dim, len(tensor.shape))
            # .copy() (not ascontiguousarray) so storage never aliases the
            # caller's input array, matching the reference per-slice copies.
            stacked = scatter_axis(
                value, dim, group.size, context=tensor.name
            ).copy()
        else:
            stacked = value.copy()
        self.set_state(tensor.name, stacked, group)

    # -- vectorized state accessors -----------------------------------------

    def state(self, name: str) -> np.ndarray:
        """The stacked ``(group.size, *per_rank_shape)`` array of a tensor."""
        try:
            return self._state[name]
        except KeyError:
            raise ExecutionError(f"no value for tensor {name!r}") from None

    def set_state(
        self, name: str, stacked: np.ndarray, group: Optional[ProcessGroup] = None
    ) -> None:
        """Replace a tensor's stacked array (never mutate one in place)."""
        if group is not None:
            self._groups[name] = group
        elif name not in self._groups:
            raise ExecutionError(f"no group recorded for tensor {name!r}")
        self._state[name] = stacked

    # -- shared accessors ----------------------------------------------------

    def read_back(self, tensor: Expr) -> np.ndarray:
        """Reassemble a tensor's global value from its storage."""
        if self.reference:
            per_rank = self.storage[tensor.name]
            group = tensor.group
            if tensor.layout.is_replicated:
                return per_rank[group.start]
            if tensor.layout.is_sliced:
                dim = normalize_dim(tensor.layout.dim, len(tensor.shape))
                return assemble_slices([per_rank[r] for r in group], dim)
            return np.stack([per_rank[r] for r in group], axis=0)
        return unstack_global(
            self.state(tensor.name), tensor.layout, tensor.shape
        )

    def rank_value(self, name: str, rank: int) -> np.ndarray:
        """One rank's current value of a tensor (either backend)."""
        if self.reference:
            try:
                return self.storage[name][rank]
            except KeyError:
                raise ExecutionError(
                    f"no value for tensor {name!r} on rank {rank}"
                ) from None
        stacked = self.state(name)
        try:
            local = self._groups[name].local_rank(rank)
        except Exception:
            raise ExecutionError(
                f"no value for tensor {name!r} on rank {rank}"
            ) from None
        return stacked[local]
