"""Simulated multi-rank runtime: the correctness oracle.

Executes CoCoNet programs numerically on N simulated ranks with numpy
arrays. Every transformed schedule must produce the same results as the
original program here — this is the library's enforcement of the paper's
"semantics preserving transformations".
"""

from repro.runtime.executor import Executor, ProgramResult
from repro.runtime.world import SimWorld

__all__ = ["Executor", "ProgramResult", "SimWorld"]
