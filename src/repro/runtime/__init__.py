"""Simulated multi-rank runtime: the correctness oracle.

Executes CoCoNet programs numerically on N simulated ranks with numpy
arrays. Every transformed schedule must produce the same results as the
original program here — this is the library's enforcement of the paper's
"semantics preserving transformations".

Two interchangeable backends: the default rank-major *vectorized* store
(one stacked ``(num_ranks, *shape)`` array per tensor; collectives as
single numpy expressions) and the original per-rank dict *reference*
store (``Executor(reference=True)`` / ``SimWorld(n, reference=True)``),
retained as the oracle the vectorized backend is property-tested
bit-identical against.

``Executor.run_lowered`` additionally interprets the shared lowered
instruction stream (:mod:`repro.core.lower`) — fused blocks as units,
overlap groups chunk-by-chunk — bit-identical to the DFG interpretation,
so scheduled execution itself is numerically verified.

``Executor.run_spmd`` leaves the single process altogether: it executes
the generated SPMD module as one real OS process per rank over the
shared-memory communicator of :mod:`repro.runtime.spmd`, bit-identical
to ``run_lowered``. :mod:`repro.runtime.faults` injects deterministic,
seeded failures (stragglers, stalls, dropped chunks, dead ranks) into
that backend, and ``Executor.run_spmd(elastic=True)`` recovers from
dead ranks by re-lowering for the surviving world size.
"""

from repro.runtime.executor import Executor, ProgramResult
from repro.runtime.faults import FaultPlan
from repro.runtime.spmd import (
    SpmdCommunicator,
    SpmdError,
    SpmdPeerAbort,
    SpmdTimeout,
    SpmdWorkerError,
)
from repro.runtime.world import SimWorld

__all__ = [
    "Executor",
    "FaultPlan",
    "ProgramResult",
    "SimWorld",
    "SpmdCommunicator",
    "SpmdError",
    "SpmdPeerAbort",
    "SpmdTimeout",
    "SpmdWorkerError",
]
