"""Counter-based random numbers for dropout.

Why not `np.random`: the reorder transformation turns a replicated
Dropout into a *sliced* Dropout executed on a different extent of data
per rank. For the transformation to be semantics-preserving, every
element must draw the same random mask regardless of which rank computes
it or how the tensor is partitioned. We therefore hash
``(seed, global element index)`` with a SplitMix64-style mixer — a
counter-based RNG in the spirit of Philox, which is also what real GPU
dropout kernels use.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_U64_MAX = float(2**64)


def splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized SplitMix64 finalizer over uint64 values."""
    x = (x + _GOLDEN).astype(np.uint64)
    x = (x ^ (x >> np.uint64(30))) * _MIX1
    x = (x ^ (x >> np.uint64(27))) * _MIX2
    return x ^ (x >> np.uint64(31))


def uniform(seed: int, indices: np.ndarray) -> np.ndarray:
    """Uniform [0, 1) values keyed by ``(seed, index)``."""
    seed_key = np.uint64((seed * 0x9E3779B97F4A7C15) & (2**64 - 1))
    keyed = indices.astype(np.uint64) ^ seed_key
    return splitmix64(keyed).astype(np.float64) / _U64_MAX


def global_indices(
    global_shape: Sequence[int],
    slice_dim: Optional[int] = None,
    slice_index: int = 0,
    num_slices: int = 1,
) -> np.ndarray:
    """Global linear indices of a rank's sub-block of a tensor.

    With no slicing this is just ``arange(prod(shape))`` reshaped. With
    slicing along ``slice_dim``, returns the indices of slice
    ``slice_index`` of ``num_slices`` — each element's index in the
    *full* tensor, which is what keys the dropout mask.
    """
    shape = tuple(int(s) for s in global_shape)
    if not shape:
        return np.zeros((), dtype=np.uint64)
    if slice_dim is None:
        n = int(np.prod(shape))
        return np.arange(n, dtype=np.uint64).reshape(shape)
    extent = shape[slice_dim] // num_slices
    coords = []
    for d, s in enumerate(shape):
        if d == slice_dim:
            coords.append(np.arange(
                slice_index * extent, (slice_index + 1) * extent, dtype=np.uint64
            ))
        else:
            coords.append(np.arange(s, dtype=np.uint64))
    strides = np.ones(len(shape), dtype=np.uint64)
    for d in range(len(shape) - 2, -1, -1):
        strides[d] = strides[d + 1] * np.uint64(shape[d + 1])
    grid = np.zeros(tuple(len(c) for c in coords), dtype=np.uint64)
    for d, c in enumerate(coords):
        view = [np.newaxis] * len(shape)
        view[d] = slice(None)
        grid = grid + c[tuple(view)] * strides[d]
    return grid


def dropout_mask(
    seed: int,
    prob: float,
    global_shape: Sequence[int],
    slice_dim: Optional[int] = None,
    slice_index: int = 0,
    num_slices: int = 1,
) -> np.ndarray:
    """Inverted-dropout mask (0 or 1/(1-p)) for a rank's sub-block.

    Identical elements get identical mask values no matter how the
    tensor is sliced — the property transformation tests rely on.
    """
    idx = global_indices(global_shape, slice_dim, slice_index, num_slices)
    keep = uniform(seed, idx) >= prob
    return keep.astype(np.float64) / (1.0 - prob)
