"""Reference numpy implementations of the collective operations.

These define the *semantics* the NCCL simulator and generated kernels
must match. Reductions accumulate in float64 in rank order, so an
AllReduce and its ReduceScatter+AllGather split produce identical
results — the determinism the transformation-equivalence tests rely on.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.process_group import ProcessGroup
from repro.runtime.world import assemble_slices, slice_of

RankValues = Dict[int, np.ndarray]


def _accumulate(values: RankValues, group: ProcessGroup, op: str) -> np.ndarray:
    stack = np.stack([values[r] for r in group], axis=0)
    if op == "+":
        return np.sum(stack.astype(np.float64), axis=0)
    if op == "*":
        return np.prod(stack.astype(np.float64), axis=0)
    if op == "max":
        return np.max(stack, axis=0).astype(np.float64)
    if op == "min":
        return np.min(stack, axis=0).astype(np.float64)
    raise ValueError(f"unknown reduction {op!r}")


def allreduce(
    values: RankValues, group: ProcessGroup, op: str, dtype: np.dtype
) -> RankValues:
    """Every rank receives the reduction of all ranks' values."""
    total = _accumulate(values, group, op).astype(dtype)
    return {r: total.copy() for r in group}


def reducescatter(
    values: RankValues, group: ProcessGroup, op: str, dim: int, dtype: np.dtype
) -> RankValues:
    """Rank i receives slice i of the reduction."""
    total = _accumulate(values, group, op).astype(dtype)
    return {
        r: slice_of(total, dim, i, group.size).copy()
        for i, r in enumerate(group)
    }


def allgather(values: RankValues, group: ProcessGroup, dim: int) -> RankValues:
    """Every rank receives the concatenation of all ranks' slices."""
    full = assemble_slices([values[r] for r in group], dim)
    return {r: full.copy() for r in group}


def reduce(
    values: RankValues, group: ProcessGroup, op: str, root: int, dtype: np.dtype
) -> RankValues:
    """The root rank receives the reduction; other ranks receive zeros."""
    total = _accumulate(values, group, op).astype(dtype)
    root_rank = group.global_rank(root)
    return {
        r: total.copy() if r == root_rank else np.zeros_like(total)
        for r in group
    }


def broadcast(values: RankValues, group: ProcessGroup, root: int) -> RankValues:
    """Every rank receives the root rank's value."""
    root_rank = group.global_rank(root)
    src = values[root_rank]
    return {r: src.copy() for r in group}
