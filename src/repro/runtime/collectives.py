"""Numpy implementations of the collective operations, in two backends.

These define the *semantics* the NCCL simulator and generated kernels
must match. Reductions accumulate in float64 in rank order, so an
AllReduce and its ReduceScatter+AllGather split produce identical
results — the determinism the transformation-equivalence tests rely on.

Each collective exists in two forms sharing one public name:

* ``*_reference`` — the original dict-of-ranks implementation
  (``{global rank -> ndarray}``), kept as the oracle;
* ``*_vectorized`` — a rank-major implementation over one stacked
  ``(group.size, *per_rank_shape)`` array whose axis 0 indexes the
  group's local ranks. AllReduce is one ``np.sum(..., axis=0)``
  broadcast back, ReduceScatter/AllGather are reshape+axis-move views,
  the AllToAlls (flat and hierarchical intra/inter phases) are
  reshape/transpose compositions, and Reduce/Broadcast are indexed
  assignments.

The public functions (``allreduce``, ``alltoall``, ...) dispatch on the
input representation — a dict selects the reference backend, an ndarray
the vectorized one — so the executor, the generated modules and the
tests all call one API. The two backends are property-tested
bit-identical (``np.array_equal``); see ``tests/test_runtime_vectorized``.

``context`` parameters thread the originating tensor/op name into
divisibility errors so uneven-sharding mistakes are debuggable from the
message alone.
"""

from __future__ import annotations

from typing import Dict, Tuple, Union

import numpy as np

from repro.core.process_group import ProcessGroup
from repro.runtime.world import (
    assemble_slices,
    check_divisible,
    gather_axis,
    replicate,
    scatter_axis,
    slice_of,
)

RankValues = Dict[int, np.ndarray]
Values = Union[RankValues, np.ndarray]


def _accumulate(values: RankValues, group: ProcessGroup, op: str) -> np.ndarray:
    stack = np.stack([values[r] for r in group], axis=0)
    return _reduce_stack(stack, op)


def _accumulate_stacked(stacked: np.ndarray, op: str) -> np.ndarray:
    # np.ascontiguousarray materializes broadcast views and matches the
    # memory layout np.stack gives the reference path, so the float64
    # rank-order accumulation is bit-identical between backends.
    return _reduce_stack(np.ascontiguousarray(stacked), op)


def _reduce_stack(stack: np.ndarray, op: str) -> np.ndarray:
    if op == "+":
        return np.sum(stack.astype(np.float64), axis=0)
    if op == "*":
        return np.prod(stack.astype(np.float64), axis=0)
    if op == "max":
        return np.max(stack, axis=0).astype(np.float64)
    if op == "min":
        return np.min(stack, axis=0).astype(np.float64)
    raise ValueError(f"unknown reduction {op!r}")


def _node_grid(group: ProcessGroup, node_size: int) -> "Tuple[int, int]":
    """(nodes k, gpus-per-node m) of a group under a node size."""
    n = group.size
    m = min(max(1, int(node_size)), n)
    if n % m != 0:
        raise ValueError(
            f"group size {n} is not divisible by node size {m}"
        )
    return n // m, m


# ---------------------------------------------------------------------------
# Reference backend: dict of per-rank arrays (the oracle).
# ---------------------------------------------------------------------------


def allreduce_reference(
    values: RankValues, group: ProcessGroup, op: str, dtype: np.dtype
) -> RankValues:
    """Every rank receives the reduction of all ranks' values."""
    total = _accumulate(values, group, op).astype(dtype)
    return {r: total.copy() for r in group}


def reducescatter_reference(
    values: RankValues,
    group: ProcessGroup,
    op: str,
    dim: int,
    dtype: np.dtype,
    context: str = "",
) -> RankValues:
    """Rank i receives slice i of the reduction."""
    total = _accumulate(values, group, op).astype(dtype)
    return {
        r: slice_of(total, dim, i, group.size, context=context).copy()
        for i, r in enumerate(group)
    }


def allgather_reference(
    values: RankValues, group: ProcessGroup, dim: int
) -> RankValues:
    """Every rank receives the concatenation of all ranks' slices."""
    full = assemble_slices([values[r] for r in group], dim)
    return {r: full.copy() for r in group}


def alltoall_reference(
    values: RankValues, group: ProcessGroup, dim: int, context: str = ""
) -> RankValues:
    """Rank ``i`` receives chunk ``i`` of every rank, in source order.

    Each rank's buffer is split into ``group.size`` equal chunks along
    ``dim``; chunk ``j`` travels to the rank with local index ``j``, and
    the receiver concatenates incoming chunks in source-rank order —
    GShard's MoE dispatch/combine exchange.
    """
    n = group.size
    out: RankValues = {}
    for i, r in enumerate(group):
        out[r] = np.concatenate(
            [slice_of(values[s], dim, i, n, context=context) for s in group],
            axis=dim,
        )
    return out


def alltoall_intra_reference(
    values: RankValues,
    group: ProcessGroup,
    dim: int,
    node_size: int,
    context: str = "",
) -> RankValues:
    """Intra-node phase of the hierarchical AllToAll.

    Rank ``(a, q)`` (node ``a``, local index ``q``) collects, from every
    rank ``(a, p)`` of its node, the chunks destined for the ranks that
    share local index ``q``, regrouped by destination node: output chunk
    ``b*m + p`` holds source ``(a, p)``'s chunk for rank ``(b, q)``.
    Composing :func:`alltoall_inter` after this phase reproduces the flat
    :func:`alltoall` exactly.
    """
    n = group.size
    k, m = _node_grid(group, node_size)
    out: RankValues = {}
    for a in range(k):
        for q in range(m):
            r = group.global_rank(a * m + q)
            parts = [
                slice_of(
                    values[group.global_rank(a * m + p)],
                    dim,
                    b * m + q,
                    n,
                    context=context,
                )
                for b in range(k)
                for p in range(m)
            ]
            out[r] = np.concatenate(parts, axis=dim)
    return out


def alltoall_inter_reference(
    values: RankValues,
    group: ProcessGroup,
    dim: int,
    node_size: int,
    context: str = "",
) -> RankValues:
    """Inter-node phase of the hierarchical AllToAll.

    Applied to the intra-phase output: rank ``(b, q)`` receives block
    ``b`` (the ``m`` chunks regrouped for it) from the rank with local
    index ``q`` on every node ``a``, concatenated in node order — which
    restores exact source-rank order.
    """
    n = group.size
    k, m = _node_grid(group, node_size)
    out: RankValues = {}
    for b in range(k):
        for q in range(m):
            r = group.global_rank(b * m + q)
            parts = [
                slice_of(
                    values[group.global_rank(a * m + q)],
                    dim,
                    b * m + p,
                    n,
                    context=context,
                )
                for a in range(k)
                for p in range(m)
            ]
            out[r] = np.concatenate(parts, axis=dim)
    return out


def reduce_reference(
    values: RankValues, group: ProcessGroup, op: str, root: int, dtype: np.dtype
) -> RankValues:
    """The root rank receives the reduction; non-root ranks keep their
    input values (cast to ``dtype``).

    Matches NCCL, where ``ncclReduce`` leaves non-root receive buffers
    unmodified. The previous behaviour — zero-filling non-root ranks —
    could launder a schedule that wrongly reads a non-root buffer into an
    all-zero "correct-looking" result.
    """
    total = _accumulate(values, group, op).astype(dtype)
    root_rank = group.global_rank(root)
    return {
        r: total.copy()
        if r == root_rank
        else np.asarray(values[r]).astype(dtype)
        for r in group
    }


def broadcast_reference(
    values: RankValues, group: ProcessGroup, root: int
) -> RankValues:
    """Every rank receives the root rank's value."""
    root_rank = group.global_rank(root)
    src = values[root_rank]
    return {r: src.copy() for r in group}


# ---------------------------------------------------------------------------
# Vectorized backend: one (group.size, *per_rank_shape) stacked array.
# ---------------------------------------------------------------------------


def allreduce_vectorized(
    stacked: np.ndarray, group: ProcessGroup, op: str, dtype: np.dtype
) -> np.ndarray:
    """AllReduce as one reduction over the rank axis, broadcast back."""
    total = _accumulate_stacked(stacked, op).astype(dtype)
    return replicate(total, group.size)


def reducescatter_vectorized(
    stacked: np.ndarray,
    group: ProcessGroup,
    op: str,
    dim: int,
    dtype: np.dtype,
    context: str = "",
) -> np.ndarray:
    """ReduceScatter as a rank-axis reduction plus a scatter view."""
    total = _accumulate_stacked(stacked, op).astype(dtype)
    return np.ascontiguousarray(
        scatter_axis(total, dim, group.size, context=context)
    )


def allgather_vectorized(
    stacked: np.ndarray, group: ProcessGroup, dim: int
) -> np.ndarray:
    """AllGather as a gather view of the stack, broadcast back."""
    full = gather_axis(stacked, dim)
    return replicate(full, group.size)


def alltoall_vectorized(
    stacked: np.ndarray, group: ProcessGroup, dim: int, context: str = ""
) -> np.ndarray:
    """Flat AllToAll as one reshape/transpose composition.

    Splitting each rank's buffer into ``n`` chunks along ``dim`` exposes
    a ``(src, ..., chunk, step, ...)`` view; swapping the source-rank
    axis with the chunk axis performs the whole exchange, and the final
    reshape restores source-rank chunk order on every destination.
    """
    n = group.size
    per = stacked.shape[1:]
    step = _chunk_extent(per, dim, n, context)
    x = stacked.reshape((n,) + per[:dim] + (n, step) + per[dim + 1 :])
    x = np.swapaxes(x, 0, dim + 1)
    return np.ascontiguousarray(x.reshape((n,) + per))


def alltoall_intra_vectorized(
    stacked: np.ndarray,
    group: ProcessGroup,
    dim: int,
    node_size: int,
    context: str = "",
) -> np.ndarray:
    """Intra-node hierarchical phase as a transpose over the node grid.

    With ranks viewed as ``(node a, local p)`` and chunks as
    ``(dest node b, dest local q)``, the intra phase is exactly the swap
    of the source-local and dest-local axes.
    """
    k, m = _node_grid(group, node_size)
    n = k * m
    per = stacked.shape[1:]
    step = _chunk_extent(per, dim, n, context)
    x = stacked.reshape(
        (k, m) + per[:dim] + (k, m, step) + per[dim + 1 :]
    )
    # axes: 0=a (node), 1=p (src local), then dim leading dims,
    # dim+2=b (dest node), dim+3=q (dest local), dim+4=step
    x = np.swapaxes(x, 1, dim + 3)
    return np.ascontiguousarray(x.reshape((n,) + per))


def alltoall_inter_vectorized(
    stacked: np.ndarray,
    group: ProcessGroup,
    dim: int,
    node_size: int,
    context: str = "",
) -> np.ndarray:
    """Inter-node hierarchical phase: the swap of the node axes.

    Applied to the intra-phase output, rank ``(b, q)`` receives block
    ``b`` from the rank with local index ``q`` on every node — the swap
    of the source-node axis with the dest-node chunk axis.
    """
    k, m = _node_grid(group, node_size)
    n = k * m
    per = stacked.shape[1:]
    step = _chunk_extent(per, dim, n, context)
    x = stacked.reshape(
        (k, m) + per[:dim] + (k, m, step) + per[dim + 1 :]
    )
    # axes: 0=a (src node), 1=q (local), dim+2=b (dest node), dim+3=p
    x = np.swapaxes(x, 0, dim + 2)
    return np.ascontiguousarray(x.reshape((n,) + per))


def reduce_vectorized(
    stacked: np.ndarray,
    group: ProcessGroup,
    op: str,
    root: int,
    dtype: np.dtype,
) -> np.ndarray:
    """Reduce as an indexed assignment onto the root's row.

    Non-root rows keep their input values (cast to ``dtype``), matching
    NCCL semantics — see :func:`reduce_reference`.
    """
    group.global_rank(root)  # same root range check as the reference
    total = _accumulate_stacked(stacked, op).astype(dtype)
    out = np.asarray(stacked).astype(dtype)  # astype copies; rows writable
    out[root] = total
    return out


def broadcast_vectorized(
    stacked: np.ndarray, group: ProcessGroup, root: int
) -> np.ndarray:
    """Broadcast as a stride-0 replication of the root's row."""
    group.global_rank(root)  # same root range check as the reference
    return replicate(np.ascontiguousarray(stacked[root]), group.size)


def _chunk_extent(
    per_rank_shape: Tuple[int, ...], dim: int, parts: int, context: str
) -> int:
    return check_divisible(per_rank_shape, dim, parts, context)


# ---------------------------------------------------------------------------
# Public API: one name per collective, dispatching on the representation.
# ---------------------------------------------------------------------------


def allreduce(
    values: Values, group: ProcessGroup, op: str, dtype: np.dtype
) -> Values:
    """Every rank receives the reduction of all ranks' values."""
    if isinstance(values, dict):
        return allreduce_reference(values, group, op, dtype)
    return allreduce_vectorized(values, group, op, dtype)


def reducescatter(
    values: Values,
    group: ProcessGroup,
    op: str,
    dim: int,
    dtype: np.dtype,
    context: str = "",
) -> Values:
    """Rank i receives slice i of the reduction."""
    if isinstance(values, dict):
        return reducescatter_reference(values, group, op, dim, dtype, context)
    return reducescatter_vectorized(values, group, op, dim, dtype, context)


def allgather(values: Values, group: ProcessGroup, dim: int) -> Values:
    """Every rank receives the concatenation of all ranks' slices."""
    if isinstance(values, dict):
        return allgather_reference(values, group, dim)
    return allgather_vectorized(values, group, dim)


def alltoall(
    values: Values, group: ProcessGroup, dim: int, context: str = ""
) -> Values:
    """Rank ``i`` receives chunk ``i`` of every rank, in source order."""
    if isinstance(values, dict):
        return alltoall_reference(values, group, dim, context)
    return alltoall_vectorized(values, group, dim, context)


def alltoall_intra(
    values: Values,
    group: ProcessGroup,
    dim: int,
    node_size: int,
    context: str = "",
) -> Values:
    """Intra-node phase of the hierarchical AllToAll."""
    if isinstance(values, dict):
        return alltoall_intra_reference(values, group, dim, node_size, context)
    return alltoall_intra_vectorized(values, group, dim, node_size, context)


def alltoall_inter(
    values: Values,
    group: ProcessGroup,
    dim: int,
    node_size: int,
    context: str = "",
) -> Values:
    """Inter-node phase of the hierarchical AllToAll."""
    if isinstance(values, dict):
        return alltoall_inter_reference(values, group, dim, node_size, context)
    return alltoall_inter_vectorized(values, group, dim, node_size, context)


def reduce(
    values: Values, group: ProcessGroup, op: str, root: int, dtype: np.dtype
) -> Values:
    """The root rank receives the reduction; non-root ranks keep their
    input values (NCCL leaves non-root receive buffers unmodified)."""
    if isinstance(values, dict):
        return reduce_reference(values, group, op, root, dtype)
    return reduce_vectorized(values, group, op, root, dtype)


def broadcast(values: Values, group: ProcessGroup, root: int) -> Values:
    """Every rank receives the root rank's value."""
    if isinstance(values, dict):
        return broadcast_reference(values, group, root)
    return broadcast_vectorized(values, group, root)
