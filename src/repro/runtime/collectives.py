"""Reference numpy implementations of the collective operations.

These define the *semantics* the NCCL simulator and generated kernels
must match. Reductions accumulate in float64 in rank order, so an
AllReduce and its ReduceScatter+AllGather split produce identical
results — the determinism the transformation-equivalence tests rely on.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.process_group import ProcessGroup
from repro.runtime.world import assemble_slices, slice_of

RankValues = Dict[int, np.ndarray]


def _accumulate(values: RankValues, group: ProcessGroup, op: str) -> np.ndarray:
    stack = np.stack([values[r] for r in group], axis=0)
    if op == "+":
        return np.sum(stack.astype(np.float64), axis=0)
    if op == "*":
        return np.prod(stack.astype(np.float64), axis=0)
    if op == "max":
        return np.max(stack, axis=0).astype(np.float64)
    if op == "min":
        return np.min(stack, axis=0).astype(np.float64)
    raise ValueError(f"unknown reduction {op!r}")


def allreduce(
    values: RankValues, group: ProcessGroup, op: str, dtype: np.dtype
) -> RankValues:
    """Every rank receives the reduction of all ranks' values."""
    total = _accumulate(values, group, op).astype(dtype)
    return {r: total.copy() for r in group}


def reducescatter(
    values: RankValues, group: ProcessGroup, op: str, dim: int, dtype: np.dtype
) -> RankValues:
    """Rank i receives slice i of the reduction."""
    total = _accumulate(values, group, op).astype(dtype)
    return {
        r: slice_of(total, dim, i, group.size).copy()
        for i, r in enumerate(group)
    }


def allgather(values: RankValues, group: ProcessGroup, dim: int) -> RankValues:
    """Every rank receives the concatenation of all ranks' slices."""
    full = assemble_slices([values[r] for r in group], dim)
    return {r: full.copy() for r in group}


def alltoall(values: RankValues, group: ProcessGroup, dim: int) -> RankValues:
    """Rank ``i`` receives chunk ``i`` of every rank, in source order.

    Each rank's buffer is split into ``group.size`` equal chunks along
    ``dim``; chunk ``j`` travels to the rank with local index ``j``, and
    the receiver concatenates incoming chunks in source-rank order —
    GShard's MoE dispatch/combine exchange.
    """
    n = group.size
    out: RankValues = {}
    for i, r in enumerate(group):
        out[r] = np.concatenate(
            [slice_of(values[s], dim, i, n) for s in group], axis=dim
        )
    return out


def _node_grid(group: ProcessGroup, node_size: int) -> "tuple[int, int]":
    """(nodes k, gpus-per-node m) of a group under a node size."""
    n = group.size
    m = min(max(1, int(node_size)), n)
    if n % m != 0:
        raise ValueError(
            f"group size {n} is not divisible by node size {m}"
        )
    return n // m, m


def alltoall_intra(
    values: RankValues, group: ProcessGroup, dim: int, node_size: int
) -> RankValues:
    """Intra-node phase of the hierarchical AllToAll.

    Rank ``(a, q)`` (node ``a``, local index ``q``) collects, from every
    rank ``(a, p)`` of its node, the chunks destined for the ranks that
    share local index ``q``, regrouped by destination node: output chunk
    ``b*m + p`` holds source ``(a, p)``'s chunk for rank ``(b, q)``.
    Composing :func:`alltoall_inter` after this phase reproduces the flat
    :func:`alltoall` exactly.
    """
    n = group.size
    k, m = _node_grid(group, node_size)
    out: RankValues = {}
    for a in range(k):
        for q in range(m):
            r = group.global_rank(a * m + q)
            parts = [
                slice_of(
                    values[group.global_rank(a * m + p)], dim, b * m + q, n
                )
                for b in range(k)
                for p in range(m)
            ]
            out[r] = np.concatenate(parts, axis=dim)
    return out


def alltoall_inter(
    values: RankValues, group: ProcessGroup, dim: int, node_size: int
) -> RankValues:
    """Inter-node phase of the hierarchical AllToAll.

    Applied to the intra-phase output: rank ``(b, q)`` receives block
    ``b`` (the ``m`` chunks regrouped for it) from the rank with local
    index ``q`` on every node ``a``, concatenated in node order — which
    restores exact source-rank order.
    """
    n = group.size
    k, m = _node_grid(group, node_size)
    out: RankValues = {}
    for b in range(k):
        for q in range(m):
            r = group.global_rank(b * m + q)
            parts = [
                slice_of(
                    values[group.global_rank(a * m + q)], dim, b * m + p, n
                )
                for a in range(k)
                for p in range(m)
            ]
            out[r] = np.concatenate(parts, axis=dim)
    return out


def reduce(
    values: RankValues, group: ProcessGroup, op: str, root: int, dtype: np.dtype
) -> RankValues:
    """The root rank receives the reduction; other ranks receive zeros."""
    total = _accumulate(values, group, op).astype(dtype)
    root_rank = group.global_rank(root)
    return {
        r: total.copy() if r == root_rank else np.zeros_like(total)
        for r in group
    }


def broadcast(values: RankValues, group: ProcessGroup, root: int) -> RankValues:
    """Every rank receives the root rank's value."""
    root_rank = group.global_rank(root)
    src = values[root_rank]
    return {r: src.copy() for r in group}
