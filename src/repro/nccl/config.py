"""NCCL-style automatic configuration.

"NCCL automatically sets key configuration values for these properties
based on the size of the input buffer, network architecture, and the
size of WORLD" (§5.1). We reproduce that by searching protocols ×
channel counts × algorithms with the cost model and taking the fastest
— the same space CoCoNet's autotuner explores ("including all NCCL
protocols and all channels from 2 to 64", §6.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

from repro.cluster.topology import Cluster
from repro.core.process_group import ProcessGroup
from repro.nccl.cost_model import Algorithm, collective_time
from repro.nccl.protocol import ALL_PROTOCOLS, Protocol
from repro.nccl.ring import Ring, build_ring

#: Channel counts NCCL (and the autotuner) considers.
CHANNEL_CHOICES = (2, 4, 8, 16, 24, 32, 48, 64)


@dataclass(frozen=True)
class CollectiveConfig:
    """One concrete (algorithm, protocol, channels) configuration."""

    algorithm: Algorithm
    protocol: Protocol
    channels: int

    def describe(self) -> str:
        return (
            f"{self.algorithm.value}/{self.protocol.name}/"
            f"{self.channels}ch"
        )


def candidate_configs(
    kind: str,
    protocols: Sequence[Protocol] = ALL_PROTOCOLS,
    channels: Sequence[int] = CHANNEL_CHOICES,
) -> Tuple[CollectiveConfig, ...]:
    """All configurations valid for a collective kind."""
    algos = [Algorithm.RING]
    if kind in ("allreduce", "broadcast", "reduce"):
        algos.append(Algorithm.TREE)
    return tuple(
        CollectiveConfig(a, p, c)
        for a in algos
        for p in protocols
        for c in channels
    )


def choose_config(
    kind: str,
    nbytes: int,
    cluster: Cluster,
    group: ProcessGroup,
    protocols: Sequence[Protocol] = ALL_PROTOCOLS,
    channels: Sequence[int] = CHANNEL_CHOICES,
    node_size: "int | None" = None,
) -> Tuple[CollectiveConfig, float]:
    """Best (config, time) for one collective call, NCCL-style."""
    ring = build_ring(cluster, group)
    best: Optional[CollectiveConfig] = None
    best_time = float("inf")
    for cfg in candidate_configs(kind, protocols, channels):
        t = collective_time(
            kind, nbytes, cluster, ring, cfg.protocol, cfg.channels,
            cfg.algorithm, node_size=node_size,
        )
        if t < best_time:
            best, best_time = cfg, t
    assert best is not None
    return best, best_time
