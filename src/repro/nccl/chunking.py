"""Three-level tiling: buffer tiles and chunks (§5.1) and the chunk
ordering that drives fine-grained overlap (§5.3, Figure 9).

"Data is first divided into buffer tiles equal to the size of the
communication buffer. Each buffer tile is further divided among all
ranks and channels to obtain chunks. Each channel communicates a chunk
of data at a time."

For the overlap of MatMul with ring AllReduce, "the n-th rank sends the
chunks to the next node in the order starting from the n-th chunk", so
the producer kernel must emit chunks in exactly that order — Figure 9
shows rank 0 starting at chunk 0 and rank 1 at chunk 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

#: Default NCCL communication buffer size per channel (4 MiB).
DEFAULT_BUFFER_BYTES = 4 * 1024 * 1024


def chunk_order(rank: int, num_chunks: int) -> List[int]:
    """Order in which ``rank`` processes the chunks of one buffer tile.

    Rank ``r`` starts at chunk ``r`` and wraps around — the ring
    AllReduce send order of Figure 9.
    """
    if num_chunks <= 0:
        raise ValueError("num_chunks must be positive")
    return [(rank + i) % num_chunks for i in range(num_chunks)]


def tile_chunks(
    total_bytes: int,
    group_size: int,
    channels: int,
    buffer_bytes: int = DEFAULT_BUFFER_BYTES,
) -> Tuple[int, int]:
    """Split a buffer into (num_tiles, chunks_per_tile).

    Each tile holds at most ``buffer_bytes`` per channel aggregated over
    channels; each tile is divided among the group's ranks into chunks.
    """
    if total_bytes <= 0:
        return 0, group_size
    tile_bytes = buffer_bytes * max(1, channels)
    num_tiles = max(1, -(-total_bytes // tile_bytes))
    return num_tiles, group_size


@dataclass(frozen=True)
class ChunkSchedule:
    """Full chunk schedule of one rank over a buffer (Figure 9).

    ``sequence`` lists global chunk ids in the order this rank's
    producer kernel must emit them: tile by tile, within each tile
    starting at the rank's own chunk index.
    """

    rank: int
    num_tiles: int
    chunks_per_tile: int
    sequence: Tuple[int, ...]

    @property
    def total_chunks(self) -> int:
        return self.num_tiles * self.chunks_per_tile


def chunk_schedule(
    rank: int,
    total_bytes: int,
    group_size: int,
    channels: int = 1,
    buffer_bytes: int = DEFAULT_BUFFER_BYTES,
) -> ChunkSchedule:
    """The chunk emission order for ``rank`` over the whole buffer."""
    num_tiles, per_tile = tile_chunks(
        total_bytes, group_size, channels, buffer_bytes
    )
    seq: List[int] = []
    for t in range(num_tiles):
        base = t * per_tile
        seq.extend(base + c for c in chunk_order(rank, per_tile))
    return ChunkSchedule(rank, num_tiles, per_tile, tuple(seq))


def matmul_chunk_grid(
    m: int, n: int, group_size: int, target_chunks: "int | None" = None
) -> Tuple[int, int]:
    """2-D chunk grid for overlapping a GEMM with a collective (§5.3).

    "CoCoNet generates a 2-D AllReduce kernel that communicates 2-D
    chunks, while NCCL AllReduce only supports 1-D continuous chunk."
    Returns (rows_per_chunk, cols_per_chunk); the grid has at least
    ``group_size`` chunks so every rank has a distinct starting chunk.
    """
    chunks = target_chunks or group_size
    rows = max(1, m // chunks)
    return rows, n
