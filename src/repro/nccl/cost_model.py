"""Analytic cost model for collectives over the simulated cluster.

Follows the standard alpha-beta decomposition of ring/tree collectives,
parameterized by the NCCL protocol, channel count, and the cluster's
link structure:

* **bandwidth term** — wire bytes per rank divided by the achieved bus
  bandwidth. Bus bandwidth is the minimum of (i) the per-GPU NVSwitch
  injection bandwidth, (ii) what the active channels' copy engines can
  move, and (iii) for rings spanning nodes, the NICs usable by the
  channels — all scaled by the protocol's wire efficiency;
* **latency term** — the sequential step count of the algorithm times
  the per-step (protocol- and link-dependent) latency;
* **per-call overhead** — kernel launch plus NCCL proxy/stream setup,
  which is what penalizes multi-kernel schedules at small sizes
  ("multiple kernel calls required for GShard-Eq schedules
  significantly hurt performance", §6.1.1).

Constants are calibrated so the reproduction matches the paper's
crossovers and factors; see EXPERIMENTS.md for paper-vs-model numbers.
"""

from __future__ import annotations

from enum import Enum

from repro.cluster.topology import Cluster
from repro.errors import CoCoNetError
from repro.nccl.protocol import Protocol
from repro.nccl.ring import Ring
from repro.nccl.algorithms import num_steps, tree_depth


class Algorithm(Enum):
    RING = "ring"
    TREE = "tree"


#: One NCCL channel's CUDA copy throughput (bytes/s) before protocol
#: efficiency: a single thread-block can't saturate NVSwitch.
PER_CHANNEL_BANDWIDTH = 22e9

#: Fraction of theoretical link bandwidth NCCL achieves in steady state.
IMPLEMENTATION_EFFICIENCY = 0.85

#: Per-collective-call fixed cost: stream/proxy bookkeeping beyond the
#: raw kernel launch.
CALL_SETUP_OVERHEAD = 6e-6

#: Tree turnover: non-pipelined parent/child hand-offs cost more per hop.
TREE_HOP_PENALTY = 2.5

#: Trees trade bandwidth for latency relative to rings: the double
#: binary tree's interior ranks both send and receive on each edge,
#: and NCCL's tree path reaches a much lower fraction of link peak,
#: which is why its tuning prefers rings beyond a few hundred KB.
TREE_BANDWIDTH_FACTOR = 0.35


def ring_bus_bandwidth(
    cluster: Cluster, ring: Ring, protocol: Protocol, channels: int
) -> float:
    """Achieved bus bandwidth of a ring with ``channels`` channels."""
    node = cluster.node
    limit = min(
        node.gpu_fabric_bandwidth,
        channels * PER_CHANNEL_BANDWIDTH,
    )
    if ring.spans_nodes():
        usable_nics = min(channels, node.nics_per_node)
        limit = min(limit, usable_nics * node.nic.bandwidth)
    return limit * protocol.bw_efficiency * IMPLEMENTATION_EFFICIENCY


def _wire_bytes(kind: str, nbytes: int, n: int) -> float:
    """Bytes each rank moves through its ring edge."""
    if n <= 1:
        return 0.0
    if kind == "allreduce":
        return 2.0 * (n - 1) / n * nbytes
    if kind in ("reducescatter", "allgather"):
        return float(n - 1) / n * nbytes
    if kind in ("broadcast", "reduce"):
        return float(nbytes)
    raise CoCoNetError(f"unknown collective {kind!r}")


def _tree_latency(
    cluster: Cluster, ring: Ring, protocol: Protocol, kind: str
) -> float:
    """Latency of the (double binary) tree algorithm."""
    n = ring.size
    nodes_spanned = max(1, ring.inter_edges)
    intra_ranks = max(1, n // nodes_spanned)
    intra_hops = tree_depth(intra_ranks)
    inter_hops = tree_depth(nodes_spanned)
    one_way = (
        intra_hops * protocol.hop_latency_intra
        + inter_hops * protocol.hop_latency_inter
    ) * TREE_HOP_PENALTY
    passes = 2 if kind == "allreduce" else 1  # reduce up + broadcast down
    return passes * one_way


def collective_time(
    kind: str,
    nbytes: int,
    cluster: Cluster,
    ring: Ring,
    protocol: Protocol,
    channels: int,
    algorithm: Algorithm = Algorithm.RING,
    include_setup: bool = True,
) -> float:
    """Time of one collective call (excluding the kernel launch itself)."""
    n = ring.size
    if n <= 1 or nbytes <= 0:
        return CALL_SETUP_OVERHEAD if include_setup else 0.0
    busbw = ring_bus_bandwidth(cluster, ring, protocol, channels)
    if algorithm is Algorithm.TREE:
        if kind not in ("allreduce", "broadcast", "reduce"):
            raise CoCoNetError(f"tree algorithm does not support {kind}")
        factor = 2.0 if kind == "allreduce" else 1.0
        bw_time = factor * nbytes / (busbw * TREE_BANDWIDTH_FACTOR)
        lat = _tree_latency(cluster, ring, protocol, kind)
    else:
        bw_time = _wire_bytes(kind, nbytes, n) / busbw
        lat = num_steps(kind, n) * ring.average_hop_latency(protocol)
    setup = CALL_SETUP_OVERHEAD if include_setup else 0.0
    return lat + bw_time + setup


def p2p_time(
    nbytes: int,
    cluster: Cluster,
    concurrent_pairs: int = 1,
    intra_node: bool = False,
    include_setup: bool = True,
) -> float:
    """Time of point-to-point sends between paired ranks.

    ``concurrent_pairs`` pairs share the available path: intra-node
    pairs share nothing relevant (NVSwitch is non-blocking); inter-node
    pairs share the source node's NICs.
    """
    node = cluster.node
    if intra_node:
        bw = node.gpu_fabric_bandwidth
        lat = node.nvlink.latency
    else:
        bw = node.node_network_bandwidth / max(1, concurrent_pairs)
        bw = min(bw, node.nic.bandwidth * node.nics_per_node)
        lat = node.nic.latency
    setup = CALL_SETUP_OVERHEAD if include_setup else 0.0
    return lat + nbytes / (bw * IMPLEMENTATION_EFFICIENCY) + setup
