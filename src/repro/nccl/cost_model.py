"""Analytic cost model for collectives over the simulated cluster.

Follows the standard alpha-beta decomposition of ring/tree collectives,
parameterized by the NCCL protocol, channel count, and the cluster's
link structure:

* **bandwidth term** — wire bytes per rank divided by the achieved bus
  bandwidth. Bus bandwidth is the minimum of (i) the per-GPU NVSwitch
  injection bandwidth, (ii) what the active channels' copy engines can
  move, and (iii) for rings spanning nodes, the NICs usable by the
  channels — all scaled by the protocol's wire efficiency;
* **latency term** — the sequential step count of the algorithm times
  the per-step (protocol- and link-dependent) latency;
* **per-call overhead** — kernel launch plus NCCL proxy/stream setup,
  which is what penalizes multi-kernel schedules at small sizes
  ("multiple kernel calls required for GShard-Eq schedules
  significantly hurt performance", §6.1.1).

Constants are calibrated so the reproduction matches the paper's
crossovers and factors; see EXPERIMENTS.md for paper-vs-model numbers.
"""

from __future__ import annotations

from enum import Enum

from repro.cluster.topology import Cluster
from repro.errors import CoCoNetError
from repro.nccl.protocol import Protocol
from repro.nccl.ring import Ring
from repro.nccl.algorithms import num_steps, tree_depth


class Algorithm(Enum):
    RING = "ring"
    TREE = "tree"


#: One NCCL channel's CUDA copy throughput (bytes/s) before protocol
#: efficiency: a single thread-block can't saturate NVSwitch.
PER_CHANNEL_BANDWIDTH = 22e9

#: Fraction of theoretical link bandwidth NCCL achieves in steady state.
IMPLEMENTATION_EFFICIENCY = 0.85

#: Per-collective-call fixed cost: stream/proxy bookkeeping beyond the
#: raw kernel launch.
CALL_SETUP_OVERHEAD = 6e-6

#: Tree turnover: non-pipelined parent/child hand-offs cost more per hop.
TREE_HOP_PENALTY = 2.5

#: Trees trade bandwidth for latency relative to rings: the double
#: binary tree's interior ranks both send and receive on each edge,
#: and NCCL's tree path reaches a much lower fraction of link peak,
#: which is why its tuning prefers rings beyond a few hundred KB.
TREE_BANDWIDTH_FACTOR = 0.35


def ring_bus_bandwidth(
    cluster: Cluster, ring: Ring, protocol: Protocol, channels: int
) -> float:
    """Achieved bus bandwidth of a ring with ``channels`` channels."""
    node = cluster.node
    limit = min(
        node.gpu_fabric_bandwidth,
        channels * PER_CHANNEL_BANDWIDTH,
    )
    if ring.spans_nodes():
        usable_nics = min(channels, node.nics_per_node)
        limit = min(limit, usable_nics * node.nic.bandwidth)
    return limit * protocol.bw_efficiency * IMPLEMENTATION_EFFICIENCY


def _wire_bytes(kind: str, nbytes: int, n: int) -> float:
    """Bytes each rank moves through its ring edge."""
    if n <= 1:
        return 0.0
    if kind == "allreduce":
        return 2.0 * (n - 1) / n * nbytes
    if kind in ("reducescatter", "allgather"):
        return float(n - 1) / n * nbytes
    if kind in ("broadcast", "reduce"):
        return float(nbytes)
    # AllToAll kinds never reach here: collective_time dispatches them
    # to flat_alltoall_time / hierarchical_alltoall_time, which own the
    # (n-1)/n pairwise traffic accounting.
    raise CoCoNetError(f"unknown collective {kind!r}")


def _tree_latency(
    cluster: Cluster, ring: Ring, protocol: Protocol, kind: str
) -> float:
    """Latency of the (double binary) tree algorithm."""
    n = ring.size
    nodes_spanned = max(1, ring.inter_edges)
    intra_ranks = max(1, n // nodes_spanned)
    intra_hops = tree_depth(intra_ranks)
    inter_hops = tree_depth(nodes_spanned)
    one_way = (
        intra_hops * protocol.hop_latency_intra
        + inter_hops * protocol.hop_latency_inter
    ) * TREE_HOP_PENALTY
    passes = 2 if kind == "allreduce" else 1  # reduce up + broadcast down
    return passes * one_way


def _ring_node_grid(cluster: Cluster, ring: Ring) -> "tuple[int, int]":
    """(nodes spanned k, ranks per node m) of the ranks on a ring.

    Derived from the ring's actual rank placement, so an offset group
    (ranks 8..23 on 16-GPU nodes spans two nodes) or a non-divisible
    group size still accounts for its NIC traffic.
    """
    counts: "dict[int, int]" = {}
    for r in ring.order:
        node = cluster.node_of(r)
        counts[node] = counts.get(node, 0) + 1
    k = max(1, len(counts))
    m = max(counts.values()) if counts else 1  # most co-resident ranks
    return k, m


def _blocks_node_aligned(cluster: Cluster, ring: Ring, m: int) -> bool:
    """Whether each logical block of ``m`` consecutive ranks sits on one
    physical node — the premise of the intra phase's fabric pricing."""
    order = ring.order
    for start in range(0, len(order), m):
        block = order[start : start + m]
        if len({cluster.node_of(r) for r in block}) > 1:
            return False
    return True


def _inter_peers_node_local(cluster: Cluster, ring: Ring, m: int) -> bool:
    """Whether every inter-phase peer set (ranks ``m`` apart) sits on one
    physical node — then the "inter" exchange also rides the fabric
    (e.g. a logical ``node_size`` smaller than the physical node)."""
    order = ring.order
    for q in range(min(m, len(order))):
        peers = order[q::m]
        if len({cluster.node_of(r) for r in peers}) > 1:
            return False
    return True


def hierarchical_alltoall_time(
    kind: str,
    nbytes: int,
    cluster: Cluster,
    ring: Ring,
    protocol: Protocol,
    channels: int,
    include_setup: bool = True,
    node_size: "int | None" = None,
) -> float:
    """Alpha-beta time of one phase of the hierarchical AllToAll.

    With ``n = k * m`` ranks decomposed as ``k`` groups of ``m``
    (``node_size`` — the decomposition the AllToAllPhase op was built
    with; defaults to the cluster's physical node size):

    * the **intra** phase exchanges ``(m-1)/m`` of the buffer in ``m-1``
      pairwise steps entirely on the NVSwitch fabric;
    * the **inter** phase exchanges ``(k-1)/k`` of the buffer in ``k-1``
      steps over the NICs, which the concurrently-sending GPUs of a
      node share.

    This is what makes the A2A split profitable across nodes: the flat
    AllToAll pays an inter-node hop latency per remote *rank*, the
    hierarchical pair pays one per remote *node*.
    """
    node = cluster.node
    n = ring.size
    m = min(n, node.gpus_per_node if node_size is None else int(node_size))
    k = max(1, n // m)
    setup = CALL_SETUP_OVERHEAD if include_setup else 0.0
    eff = protocol.bw_efficiency * IMPLEMENTATION_EFFICIENCY
    if kind == "alltoall_intra":
        if m <= 1 or nbytes <= 0:
            return setup
        if _blocks_node_aligned(cluster, ring, m):
            bw = min(
                node.gpu_fabric_bandwidth, channels * PER_CHANNEL_BANDWIDTH
            ) * eff
            hop = protocol.hop_latency_intra
        else:
            # The logical blocks straddle physical node boundaries, so
            # the "intra" exchange actually crosses the network: price
            # it like NIC traffic rather than handing the hierarchical
            # split a fabric-bandwidth discount it cannot realize. All
            # physically co-resident ranks send concurrently, whatever
            # the logical decomposition.
            _, senders = _ring_node_grid(cluster, ring)
            bw = min(
                node.node_network_bandwidth / senders,
                channels * PER_CHANNEL_BANDWIDTH,
            ) * eff
            hop = protocol.hop_latency_inter
        lat = (m - 1) * hop
        return lat + (float(m - 1) / m) * nbytes / bw + setup
    if kind == "alltoall_inter":
        if k <= 1 or nbytes <= 0:
            return setup  # single logical node: the inter phase is a no-op
        if _inter_peers_node_local(cluster, ring, m):
            # A logical decomposition finer than the physical node:
            # the "inter" peers still share a node, so this phase rides
            # the NVSwitch fabric too.
            bw = min(
                node.gpu_fabric_bandwidth, channels * PER_CHANNEL_BANDWIDTH
            ) * eff
            hop = protocol.hop_latency_intra
        else:
            # The node's NICs are shared by all physically co-resident
            # ranks — every logical group runs its inter phase
            # concurrently, so a logical decomposition finer than the
            # node does not widen anyone's NIC share.
            _, senders = _ring_node_grid(cluster, ring)
            per_gpu_nic = node.node_network_bandwidth / senders
            bw = min(per_gpu_nic, channels * PER_CHANNEL_BANDWIDTH) * eff
            hop = protocol.hop_latency_inter
        lat = (k - 1) * hop
        return lat + (float(k - 1) / k) * nbytes / bw + setup
    raise CoCoNetError(f"unknown hierarchical AllToAll phase {kind!r}")


def flat_alltoall_time(
    nbytes: int,
    cluster: Cluster,
    ring: Ring,
    protocol: Protocol,
    channels: int,
    include_setup: bool = True,
) -> float:
    """Alpha-beta time of the flat pairwise AllToAll.

    Unlike ring collectives — where only one edge per node crosses the
    network and the NIC aggregate bounds the whole pipeline — a pairwise
    AllToAll has *every* GPU of a node sending concurrently in each
    inter-node step, so each rank gets ``1/m`` of the node's NIC
    capacity. Of the ``n-1`` steps, ``m-1`` stay on the NVSwitch fabric
    and ``(k-1)*m`` cross nodes; the per-step latencies add up
    accordingly, which is exactly what the hierarchical split removes
    (``k-1`` inter-node messages instead of ``(k-1)*m``).
    """
    node = cluster.node
    n = ring.size
    if n <= 1 or nbytes <= 0:
        return CALL_SETUP_OVERHEAD if include_setup else 0.0
    k, m = _ring_node_grid(cluster, ring)
    setup = CALL_SETUP_OVERHEAD if include_setup else 0.0
    eff = protocol.bw_efficiency * IMPLEMENTATION_EFFICIENCY
    fabric_bw = min(
        node.gpu_fabric_bandwidth, channels * PER_CHANNEL_BANDWIDTH
    ) * eff
    lat = (m - 1) * protocol.hop_latency_intra
    bw_time = (float(m - 1) / n) * nbytes / fabric_bw
    if k > 1:
        per_gpu_nic = node.node_network_bandwidth / m
        nic_bw = min(per_gpu_nic, channels * PER_CHANNEL_BANDWIDTH) * eff
        lat += (k - 1) * m * protocol.hop_latency_inter
        bw_time += (float(k - 1) / k) * nbytes / nic_bw
    return lat + bw_time + setup


def collective_time(
    kind: str,
    nbytes: int,
    cluster: Cluster,
    ring: Ring,
    protocol: Protocol,
    channels: int,
    algorithm: Algorithm = Algorithm.RING,
    include_setup: bool = True,
    node_size: "int | None" = None,
) -> float:
    """Time of one collective call (excluding the kernel launch itself).

    ``node_size`` only affects the hierarchical AllToAll phases: it is
    the decomposition the AllToAllPhase op was built with.
    """
    if kind in ("alltoall_intra", "alltoall_inter"):
        return hierarchical_alltoall_time(
            kind, nbytes, cluster, ring, protocol, channels, include_setup,
            node_size,
        )
    if kind == "alltoall":
        return flat_alltoall_time(
            nbytes, cluster, ring, protocol, channels, include_setup
        )
    n = ring.size
    if n <= 1 or nbytes <= 0:
        return CALL_SETUP_OVERHEAD if include_setup else 0.0
    busbw = ring_bus_bandwidth(cluster, ring, protocol, channels)
    if algorithm is Algorithm.TREE:
        if kind not in ("allreduce", "broadcast", "reduce"):
            raise CoCoNetError(f"tree algorithm does not support {kind}")
        factor = 2.0 if kind == "allreduce" else 1.0
        bw_time = factor * nbytes / (busbw * TREE_BANDWIDTH_FACTOR)
        lat = _tree_latency(cluster, ring, protocol, kind)
    else:
        bw_time = _wire_bytes(kind, nbytes, n) / busbw
        lat = num_steps(kind, n) * ring.average_hop_latency(protocol)
    setup = CALL_SETUP_OVERHEAD if include_setup else 0.0
    return lat + bw_time + setup


def p2p_time(
    nbytes: int,
    cluster: Cluster,
    concurrent_pairs: int = 1,
    intra_node: bool = False,
    include_setup: bool = True,
) -> float:
    """Time of point-to-point sends between paired ranks.

    ``concurrent_pairs`` pairs share the available path: intra-node
    pairs share nothing relevant (NVSwitch is non-blocking); inter-node
    pairs share the source node's NICs.
    """
    node = cluster.node
    if intra_node:
        bw = node.gpu_fabric_bandwidth
        lat = node.nvlink.latency
    else:
        bw = node.node_network_bandwidth / max(1, concurrent_pairs)
        bw = min(bw, node.nic.bandwidth * node.nics_per_node)
        lat = node.nic.latency
    setup = CALL_SETUP_OVERHEAD if include_setup else 0.0
    return lat + nbytes / (bw * IMPLEMENTATION_EFFICIENCY) + setup
