"""Ring topology construction over the cluster.

"NCCL creates logical topologies, such as ring and tree, over the
underlying interconnect network" (§5.1). A ring orders the ranks of a
group so that consecutive ranks are ring neighbours; with dense rank
numbering on DGX-2 nodes, one of every ``gpus_per_node`` edges crosses
the InfiniBand network and the rest stay on NVSwitch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.cluster.topology import Cluster
from repro.core.process_group import ProcessGroup
from repro.errors import CoCoNetError
from repro.nccl.protocol import Protocol


@dataclass(frozen=True)
class Ring:
    """A ring over a process group mapped onto the cluster."""

    order: Tuple[int, ...]       # ranks in ring order
    intra_edges: int             # edges staying within a node
    inter_edges: int             # edges crossing nodes

    @property
    def size(self) -> int:
        return len(self.order)

    def next_rank(self, rank: int) -> int:
        i = self.order.index(rank)
        return self.order[(i + 1) % self.size]

    def prev_rank(self, rank: int) -> int:
        i = self.order.index(rank)
        return self.order[(i - 1) % self.size]

    def spans_nodes(self) -> bool:
        return self.inter_edges > 0

    def average_hop_latency(self, protocol: Protocol) -> float:
        """Mean per-step latency, weighting NVLink vs IB edges."""
        total = self.intra_edges + self.inter_edges
        return (
            self.intra_edges * protocol.hop_latency_intra
            + self.inter_edges * protocol.hop_latency_inter
        ) / total


def build_ring(cluster: Cluster, group: ProcessGroup) -> Ring:
    """Ring over ``group``'s ranks in natural order.

    Natural order is what NCCL derives on NVSwitch systems: all GPUs of
    a node are consecutive, so exactly one edge per node boundary runs
    over InfiniBand.
    """
    ranks: List[int] = list(group.ranks)
    if ranks[-1] >= cluster.num_ranks:
        raise CoCoNetError(
            f"group {group} does not fit cluster of {cluster.num_ranks} ranks"
        )
    intra = inter = 0
    n = len(ranks)
    for i in range(n):
        a, b = ranks[i], ranks[(i + 1) % n]
        if cluster.same_node(a, b):
            intra += 1
        else:
            inter += 1
    if n == 1:
        intra, inter = 1, 0
    return Ring(tuple(ranks), intra, inter)
