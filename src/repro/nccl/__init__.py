"""Simulated NCCL: the communication runtime CoCoNet extends (§5.1).

"NCCL's architecture defines four key properties: (i) topology, (ii)
protocols, (iii) channels, and (iv) threads in a thread block of the
CUDA kernel. NCCL automatically sets key configuration values for these
properties based on the size of the input buffer, network architecture,
and the size of WORLD."

This package reproduces those properties over the
:mod:`repro.cluster` hardware model: ring/tree topologies, the LL /
LL128 / Simple protocols with their latency-bandwidth trade-offs,
channel configuration, three-level tiling (buffer tiles → chunks), the
step schedules of ring collectives, and an analytic cost model used by
both the autotuner and the benchmarks.
"""

from repro.nccl.protocol import LL, LL128, SIMPLE, ALL_PROTOCOLS, Protocol
from repro.nccl.ring import Ring, build_ring
from repro.nccl.chunking import ChunkSchedule, chunk_order, tile_chunks
from repro.nccl.config import CollectiveConfig, choose_config
from repro.nccl.cost_model import (
    Algorithm,
    collective_time,
    hierarchical_alltoall_time,
    p2p_time,
)
from repro.nccl.algorithms import all_to_all_steps, simulate_alltoall

__all__ = [
    "all_to_all_steps",
    "simulate_alltoall",
    "hierarchical_alltoall_time",
    "Protocol",
    "LL",
    "LL128",
    "SIMPLE",
    "ALL_PROTOCOLS",
    "Ring",
    "build_ring",
    "ChunkSchedule",
    "chunk_order",
    "tile_chunks",
    "CollectiveConfig",
    "choose_config",
    "Algorithm",
    "collective_time",
    "p2p_time",
]
