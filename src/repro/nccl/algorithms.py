"""Step schedules of the ring collectives, plus a numeric step-by-step
ring simulator used to prove the algorithms against the reference
collectives.

Ring ReduceScatter: in step t (0-based), rank r sends chunk
``(r - t) mod n`` to rank ``r+1`` and reduces the incoming chunk
``(r - t - 1) mod n`` into its accumulator. After ``n-1`` steps, rank r
holds the full reduction of chunk ``(r + 1) mod n``.

Ring AllGather: in step t, rank r forwards the completed chunk it
received in step t-1. After ``n-1`` steps everyone holds all chunks.

Ring AllReduce is ReduceScatter followed by AllGather: ``2(n-1)`` steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Step:
    """One communication step: ``src`` sends ``chunk`` to ``dst``."""

    index: int
    src: int
    dst: int
    chunk: int


def reduce_scatter_steps(n: int) -> List[Step]:
    """The ``n*(n-1)`` sends of a ring ReduceScatter on ``n`` ranks."""
    steps: List[Step] = []
    for t in range(n - 1):
        for r in range(n):
            steps.append(Step(t, r, (r + 1) % n, (r - t) % n))
    return steps


def all_gather_steps(n: int) -> List[Step]:
    """The sends of a ring AllGather; rank r owns chunk (r+1) mod n."""
    steps: List[Step] = []
    for t in range(n - 1):
        for r in range(n):
            steps.append(Step(t, r, (r + 1) % n, (r + 1 - t) % n))
    return steps


def all_reduce_steps(n: int) -> List[Step]:
    """Ring AllReduce = ReduceScatter then AllGather: 2(n-1) phases."""
    rs = reduce_scatter_steps(n)
    ag = [
        Step(s.index + n - 1, s.src, s.dst, s.chunk)
        for s in all_gather_steps(n)
    ]
    return rs + ag


def num_steps(kind: str, n: int) -> int:
    """Sequential step count of a ring collective on ``n`` ranks."""
    if n <= 1:
        return 0
    if kind == "allreduce":
        return 2 * (n - 1)
    if kind in ("reducescatter", "allgather", "broadcast", "reduce"):
        return n - 1
    raise ValueError(f"unknown collective {kind!r}")


def simulate_ring_allreduce(values: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Execute ring AllReduce step by step on numpy arrays.

    Used by tests to show the ring algorithm computes the same result
    as the reference :func:`repro.runtime.collectives.allreduce`.
    Accumulates in float64 like the reference.
    """
    n = len(values)
    if n == 1:
        return [values[0].copy()]
    chunks: List[List[np.ndarray]] = [
        [c.astype(np.float64) for c in np.array_split(v, n)] for v in values
    ]
    # Reduce-scatter phase: after step t, rank r's chunk (r - t) mod n
    # has accumulated t+1 contributions.
    for t in range(n - 1):
        moving = [(r, chunks[r][(r - t) % n]) for r in range(n)]
        for r, data in moving:
            dst = (r + 1) % n
            chunks[dst][(r - t) % n] = chunks[dst][(r - t) % n] + data
    # All-gather phase: rank r owns the fully reduced chunk (r + 1) mod n.
    for t in range(n - 1):
        moving = [(r, chunks[r][(r + 1 - t) % n]) for r in range(n)]
        for r, data in moving:
            dst = (r + 1) % n
            chunks[dst][(r + 1 - t) % n] = data
    return [
        np.concatenate([c for c in chunks[r]]).astype(values[r].dtype)
        for r in range(n)
    ]


def tree_depth(n: int) -> int:
    """Depth of NCCL's binary reduction tree over ``n`` ranks."""
    depth = 0
    while (1 << depth) < n:
        depth += 1
    return depth
