"""Step schedules of the ring collectives, plus a numeric step-by-step
ring simulator used to prove the algorithms against the reference
collectives.

Ring ReduceScatter: in step t (0-based), rank r sends chunk
``(r - t) mod n`` to rank ``r+1`` and reduces the incoming chunk
``(r - t - 1) mod n`` into its accumulator. After ``n-1`` steps, rank r
holds the full reduction of chunk ``(r + 1) mod n``.

Ring AllGather: in step t, rank r forwards the completed chunk it
received in step t-1. After ``n-1`` steps everyone holds all chunks.

Ring AllReduce is ReduceScatter followed by AllGather: ``2(n-1)`` steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Step:
    """One communication step: ``src`` sends ``chunk`` to ``dst``."""

    index: int
    src: int
    dst: int
    chunk: int


def reduce_scatter_steps(n: int) -> List[Step]:
    """The ``n*(n-1)`` sends of a ring ReduceScatter on ``n`` ranks."""
    steps: List[Step] = []
    for t in range(n - 1):
        for r in range(n):
            steps.append(Step(t, r, (r + 1) % n, (r - t) % n))
    return steps


def all_gather_steps(n: int) -> List[Step]:
    """The sends of a ring AllGather; rank r owns chunk (r+1) mod n."""
    steps: List[Step] = []
    for t in range(n - 1):
        for r in range(n):
            steps.append(Step(t, r, (r + 1) % n, (r + 1 - t) % n))
    return steps


def all_reduce_steps(n: int) -> List[Step]:
    """Ring AllReduce = ReduceScatter then AllGather: 2(n-1) phases."""
    rs = reduce_scatter_steps(n)
    ag = [
        Step(s.index + n - 1, s.src, s.dst, s.chunk)
        for s in all_gather_steps(n)
    ]
    return rs + ag


def all_to_all_steps(n: int) -> List[Step]:
    """The ``n*(n-1)`` sends of a pairwise-exchange AllToAll.

    In step t (0-based), rank r sends its chunk destined to peer
    ``(r + t + 1) mod n`` directly to that peer — the classic pairwise
    schedule (ring-ordered peers, so on a ring topology each step is a
    uniform shift). Each rank sends exactly one chunk per step; after
    ``n-1`` steps every chunk has reached its destination and the rank's
    own chunk never leaves it. ``chunk`` names the chunk index within the
    *sender's* buffer, which equals the destination's ring index.
    """
    steps: List[Step] = []
    for t in range(n - 1):
        for r in range(n):
            peer = (r + t + 1) % n
            steps.append(Step(t, r, peer, peer))
    return steps


def num_steps(kind: str, n: int) -> int:
    """Sequential step count of a ring collective on ``n`` ranks."""
    if n <= 1:
        return 0
    if kind == "allreduce":
        return 2 * (n - 1)
    if kind in (
        "reducescatter", "allgather", "broadcast", "reduce", "alltoall"
    ):
        return n - 1
    raise ValueError(f"unknown collective {kind!r}")


def simulate_ring_allreduce(values: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Execute ring AllReduce step by step on numpy arrays.

    Used by tests to show the ring algorithm computes the same result
    as the reference :func:`repro.runtime.collectives.allreduce`.
    Accumulates in float64 like the reference.
    """
    n = len(values)
    if n == 1:
        return [values[0].copy()]
    chunks: List[List[np.ndarray]] = [
        [c.astype(np.float64) for c in np.array_split(v, n)] for v in values
    ]
    # Reduce-scatter phase: after step t, rank r's chunk (r - t) mod n
    # has accumulated t+1 contributions.
    for t in range(n - 1):
        moving = [(r, chunks[r][(r - t) % n]) for r in range(n)]
        for r, data in moving:
            dst = (r + 1) % n
            chunks[dst][(r - t) % n] = chunks[dst][(r - t) % n] + data
    # All-gather phase: rank r owns the fully reduced chunk (r + 1) mod n.
    for t in range(n - 1):
        moving = [(r, chunks[r][(r + 1 - t) % n]) for r in range(n)]
        for r, data in moving:
            dst = (r + 1) % n
            chunks[dst][(r + 1 - t) % n] = data
    return [
        np.concatenate([c for c in chunks[r]]).astype(values[r].dtype)
        for r in range(n)
    ]


def simulate_alltoall(
    values: Sequence[np.ndarray], dim: int = 0
) -> List[np.ndarray]:
    """Execute the pairwise AllToAll step by step on numpy arrays.

    Replays exactly the sends of :func:`all_to_all_steps`; used by tests
    to prove the step schedule computes the same result as the reference
    :func:`repro.runtime.collectives.alltoall`.
    """
    n = len(values)
    if n == 1:
        return [values[0].copy()]
    extent = values[0].shape[dim]
    if extent % n != 0:
        raise ValueError(
            f"dim {dim} extent {extent} not divisible by {n} ranks"
        )
    step_size = extent // n

    def chunk(r: int, c: int) -> np.ndarray:
        idx = [slice(None)] * values[r].ndim
        idx[dim] = slice(c * step_size, (c + 1) * step_size)
        return values[r][tuple(idx)]

    # received[r][j] = the chunk rank r got from source j.
    received: List[Dict[int, np.ndarray]] = [dict() for _ in range(n)]
    for r in range(n):
        received[r][r] = chunk(r, r).copy()  # own chunk never moves
    for s in all_to_all_steps(n):
        received[s.dst][s.src] = chunk(s.src, s.chunk).copy()
    return [
        np.concatenate([received[r][j] for j in range(n)], axis=dim)
        for r in range(n)
    ]


def tree_depth(n: int) -> int:
    """Depth of NCCL's binary reduction tree over ``n`` ranks."""
    depth = 0
    while (1 << depth) < n:
        depth += 1
    return depth
