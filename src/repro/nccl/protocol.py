"""NCCL protocols: LL, LL128 and Simple (§5.1).

"NCCL sends data using one of the three protocols: LL, LL128, and
Simple. These protocols make different tradeoffs between latency and
bandwidth based on the type of inter-node synchronization used: LL has
the lowest latency and Simple provides the highest bandwidth."

The modelled properties:

* ``pack_bytes`` — "the pack type (64-bit for LL, 128-bit for LL128 and
  Simple)", which code generation uses to compute elements per load;
* ``bw_efficiency`` — LL spends half of every 8-byte pack on a flag
  (50%); LL128 spends 8 of every 128 bytes (93.75%); Simple moves pure
  payload (100%);
* hop latencies — per-step delay of the synchronization mechanism on
  NVLink vs InfiniBand edges (flag polling is cheap; Simple's
  full-buffer synchronization is expensive but amortized).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Protocol:
    """One NCCL wire protocol."""

    name: str
    pack_bytes: int
    bw_efficiency: float
    hop_latency_intra: float  # seconds per ring/tree step over NVLink
    hop_latency_inter: float  # seconds per step over InfiniBand
    shared_memory_staging: bool  # LL128 stages through shared memory

    def elements_per_pack(self, itemsize: int) -> int:
        """How many elements of the largest operand type fit one pack.

        Mirrors §5.2 mixed-precision handling: "CoCoNet finds the
        largest element type and based on the pack type of the protocol
        calculates how many elements can be loaded at once."
        """
        return max(1, self.pack_bytes // itemsize)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Protocol({self.name})"


LL = Protocol(
    name="LL",
    pack_bytes=8,
    bw_efficiency=0.50,
    hop_latency_intra=0.12e-6,
    hop_latency_inter=1.0e-6,
    shared_memory_staging=False,
)

LL128 = Protocol(
    name="LL128",
    pack_bytes=16,
    bw_efficiency=120.0 / 128.0,
    hop_latency_intra=0.30e-6,
    hop_latency_inter=1.4e-6,
    shared_memory_staging=True,
)

SIMPLE = Protocol(
    name="Simple",
    pack_bytes=16,
    bw_efficiency=1.0,
    hop_latency_intra=1.2e-6,
    hop_latency_inter=3.5e-6,
    shared_memory_staging=False,
)

ALL_PROTOCOLS = (LL, LL128, SIMPLE)
