"""``repro-run``: execute, inspect, price or hash a saved artifact.

Every tuned schedule in this reproduction serializes to one portable
JSON file (:mod:`repro.core.artifact`); this CLI makes that file a
shippable unit of work, in the style of the DaCe playground scripts —
save a schedule once, then ``describe`` / ``run`` / ``cost`` / ``hash``
it anywhere without the originating Python objects:

.. code-block:: console

   $ repro-run describe tests/golden/adam_fused.repro.json
   $ repro-run run tests/golden/adam_fused.repro.json --backend spmd
   $ repro-run cost tests/golden/moe_overlapped.repro.json --nodes 1
   $ repro-run hash tests/golden/adam_fused.repro.json

Installed via ``[project.scripts]``; in a source checkout (CI does not
pip-install the package) use ``PYTHONPATH=src python -m repro.cli``.

``run`` seeds deterministic inputs from the artifact's own interface
record (tensor shapes, dtypes, layouts) and prints a SHA-256 digest
over all outputs and final tensor states, so two machines can compare
a run with one string.
"""

from __future__ import annotations

import argparse
import hashlib
import os
import sys
from typing import Dict

from repro.errors import CoCoNetError


def _seeded_inputs(program, seed: int) -> Dict[str, object]:
    """Deterministic inputs derived from the program interface.

    Tensors get strictly positive scaled normals (optimizer programs
    feed some inputs to rsqrt, which a zero or negative second moment
    would break); scalars draw from [0.5, 2.0). Local tensors take the
    group-size-leading global shape the executor's placement expects.
    """
    import numpy as np

    from repro.core.tensor import Scalar, Tensor

    rng = np.random.RandomState(seed)
    inputs: Dict[str, object] = {}
    for t in program.inputs:
        if isinstance(t, Tensor):
            if t.layout.is_local:
                shape = (t.group.size,) + t.per_rank_shape()
            else:
                shape = t.shape
            # strictly positive: optimizer second moments feed rsqrt
            inputs[t.name] = np.abs(rng.standard_normal(shape)) * 0.1 + 0.01
        elif isinstance(t, Scalar):
            inputs[t.name] = float(rng.uniform(0.5, 2.0))
    return inputs


def _digest(result) -> str:
    """SHA-256 over every output and tensor state, in name order."""
    h = hashlib.sha256()
    for name in result.output_names:
        arr = result.output(name)
        h.update(name.encode())
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    states = getattr(result, "_tensor_states", {})
    for name in sorted(states):
        arr = states[name]
        h.update(name.encode())
        h.update(arr.tobytes())
    return "sha256:" + h.hexdigest()


def _cmd_describe(args) -> int:
    from repro.core import artifact

    art = artifact.load(args.artifact)
    print(art.describe())
    return 0


def _cmd_run(args) -> int:
    import time

    from repro.core import artifact
    from repro.runtime.executor import Executor

    art = artifact.load(args.artifact)
    program = art.program
    inputs = _seeded_inputs(program, args.seed)
    ex = Executor()
    repeat = max(1, args.repeat)

    def one_run():
        if args.backend == "lowered":
            return ex.run_lowered(art, inputs, allow_downcast=True)
        if args.backend == "spmd":
            return ex.run_spmd(
                art, inputs, allow_downcast=True, timeout=args.timeout
            )
        if args.backend == "native":
            return ex.run_spmd(
                art, inputs, allow_downcast=True, timeout=args.timeout,
                codegen_target="native",
            )
        if args.backend == "dfg":
            return ex.run(program, inputs, allow_downcast=True)
        # pragma: no cover - argparse choices guard this
        raise CoCoNetError(f"unknown backend {args.backend!r}")

    print(f"program:  {program.name}")
    print(f"backend:  {args.backend}")
    print(f"seed:     {args.seed}")
    result = None
    for i in range(repeat):
        t0 = time.perf_counter()
        result = one_run()
        wall = time.perf_counter() - t0
        if repeat > 1:
            # per-iteration wall-clock next to the digest: iteration 1
            # of a native run includes the one-time kernel compile, so
            # the cold-vs-warm gap is visible in one invocation
            print(f"iter {i + 1}: {wall:.6f}s  {_digest(result)}")
    for name in result.output_names:
        arr = result.output(name)
        print(f"output {name}: dtype={arr.dtype} shape={tuple(arr.shape)}")
    print(f"digest:   {_digest(result)}")
    return 0


def _cmd_cost(args) -> int:
    from repro.cluster.topology import Cluster
    from repro.core import artifact
    from repro.perf.program_cost import ProgramCostModel

    art = artifact.load(args.artifact)
    model = ProgramCostModel(Cluster(args.nodes))
    makespan = model.time(art)
    print(f"program:  {art.program.name}")
    print(f"cluster:  {args.nodes} node(s)")
    print(f"makespan: {makespan:.6e} s (predicted)")
    return 0


def _cmd_hash(args) -> int:
    from repro.core import artifact

    art = artifact.load(args.artifact)
    # load() already verified the recorded content hash; recompute the
    # structural hash from the reconstructed program as a deep check
    recomputed = artifact.structural_hash(art.lowered())
    print(f"content hash:    {art.content_hash}")
    print(f"structural hash: {art.structural_hash}")
    if art.structural_hash and recomputed != art.structural_hash:
        print(
            f"WARNING: recorded structural hash does not match the "
            f"reconstructed program ({recomputed})",
            file=sys.stderr,
        )
        return 1
    print("verified: content + structural hashes match the payload")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-run",
        description=(
            "Execute, inspect, price or hash a saved CoCoNet lowered-"
            "program artifact (*.repro.json)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "describe", help="print schema, hashes, interface and instructions"
    )
    p.add_argument("artifact", help="path to a saved artifact")
    p.set_defaults(fn=_cmd_describe)

    p = sub.add_parser(
        "run", help="execute the artifact with seeded inputs; print a digest"
    )
    p.add_argument("artifact", help="path to a saved artifact")
    p.add_argument(
        "--backend",
        choices=("lowered", "spmd", "native", "dfg"),
        default="lowered",
        help="lowered interpreter (default), one real OS process per "
        "rank, per-rank processes with compiled C kernels, or the "
        "raw-DFG oracle",
    )
    p.add_argument(
        "--seed", type=int, default=0,
        help="input RNG seed (default 0)",
    )
    p.add_argument(
        "--timeout", type=float, default=60.0,
        help="spmd rendezvous timeout in seconds (default 60); the "
        "native backend adds a one-time allowance on a cold kernel "
        "cache",
    )
    p.add_argument(
        "--repeat", type=int, default=1,
        help="run N iterations, printing per-iteration wall-clock "
        "alongside the output digest (default 1)",
    )
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser(
        "cost", help="predicted makespan from the DES cost model"
    )
    p.add_argument("artifact", help="path to a saved artifact")
    p.add_argument(
        "--nodes", type=int, default=1,
        help="cluster size in nodes (default 1)",
    )
    p.set_defaults(fn=_cmd_cost)

    p = sub.add_parser(
        "hash", help="print and verify the content and structural hashes"
    )
    p.add_argument("artifact", help="path to a saved artifact")
    p.set_defaults(fn=_cmd_hash)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except CoCoNetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout consumer went away (e.g. `repro-run describe | head`);
        # silence the interpreter's flush-on-exit complaint and follow
        # the Unix convention of exiting quietly
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
