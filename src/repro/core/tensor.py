"""Expression graph leaves: distributed tensors, scalars and constants.

A CoCoNet program is a data-flow graph (DFG) "with operations as vertices
and data dependencies as edges" (Section 2.2). Every vertex is an
:class:`Expr`. This module defines the base class and the three leaf
kinds:

* :class:`Tensor` — a distributed input tensor with dtype, shape, layout
  and process group (Section 2.1);
* :class:`Scalar` — "a zero-dimensional tensor that represents a variable
  available on all ranks";
* :class:`Const` — a literal constant lifted from Python numbers.

Operation vertices live in :mod:`repro.core.ops`; arithmetic operators on
expressions (``+``, ``-``, ``*``, ``/``) build those vertices so programs
read like the paper's examples.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional, Sequence, Tuple, Union

from repro.core.dtypes import DType, FP32
from repro.core.layout import Layout, Local, Replicated, slice_shape
from repro.core.process_group import RANK, ProcessGroup, _SymbolicRank
from repro.errors import LayoutError, ShapeError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    pass

_counter = itertools.count()


def _fresh_name(prefix: str) -> str:
    return f"{prefix}_{next(_counter)}"


def reset_names() -> None:
    """Reset the global name counter (used by tests for stable output)."""
    global _counter
    _counter = itertools.count()


Number = Union[int, float]


class Expr:
    """A vertex of the data-flow graph.

    Attributes:
        name: unique name of the value this vertex produces.
        dtype: element datatype.
        shape: the *global* logical shape; the per-rank shape follows from
            the layout (see :meth:`per_rank_shape`).
        layout: distribution layout (sliced / replicated / local).
        group: process group the value lives in.
        inputs: upstream expressions this vertex depends on.
    """

    def __init__(
        self,
        name: str,
        dtype: DType,
        shape: Sequence[int],
        layout: Layout,
        group: ProcessGroup,
        inputs: Sequence["Expr"] = (),
    ) -> None:
        self.name = name
        self.dtype = dtype
        self.shape: Tuple[int, ...] = tuple(int(s) for s in shape)
        if any(s <= 0 for s in self.shape):
            raise ShapeError(f"{name}: shape {self.shape} has non-positive dims")
        self.layout = layout
        self.group = group
        self.inputs: Tuple[Expr, ...] = tuple(inputs)
        # Validate slicing divides evenly, eagerly.
        slice_shape(self.shape, layout, group.size)

    # -- structural queries -------------------------------------------------

    @property
    def is_leaf(self) -> bool:
        return not self.inputs

    @property
    def num_elements(self) -> int:
        """Total number of elements in the global tensor."""
        n = 1
        for s in self.shape:
            n *= s
        return n

    def per_rank_shape(self) -> Tuple[int, ...]:
        """Shape of the portion stored on each rank of the group."""
        return slice_shape(self.shape, self.layout, self.group.size)

    def per_rank_elements(self) -> int:
        n = 1
        for s in self.per_rank_shape():
            n *= s
        return n

    def per_rank_bytes(self) -> int:
        """Bytes stored per rank (drives the memory and comm cost models)."""
        return self.per_rank_elements() * self.dtype.itemsize

    # -- operator sugar (defined in ops.py to avoid the import cycle) -------

    def __add__(self, other: "Expr | Number") -> "Expr":
        from repro.core import ops

        return ops.binary("+", self, other)

    def __radd__(self, other: Number) -> "Expr":
        from repro.core import ops

        return ops.binary("+", other, self)

    def __sub__(self, other: "Expr | Number") -> "Expr":
        from repro.core import ops

        return ops.binary("-", self, other)

    def __rsub__(self, other: Number) -> "Expr":
        from repro.core import ops

        return ops.binary("-", other, self)

    def __mul__(self, other: "Expr | Number") -> "Expr":
        from repro.core import ops

        return ops.binary("*", self, other)

    def __rmul__(self, other: Number) -> "Expr":
        from repro.core import ops

        return ops.binary("*", other, self)

    def __truediv__(self, other: "Expr | Number") -> "Expr":
        from repro.core import ops

        return ops.binary("/", self, other)

    def __rtruediv__(self, other: Number) -> "Expr":
        from repro.core import ops

        return ops.binary("/", other, self)

    def __neg__(self) -> "Expr":
        from repro.core import ops

        return ops.binary("*", -1.0, self)

    # Graph nodes compare by identity; hash accordingly.
    __hash__ = object.__hash__

    def signature(self) -> str:
        """One-line description, e.g. ``sum(FP16, [8,1024,3072], Replicated)``."""
        dims = ",".join(str(s) for s in self.shape)
        return f"{self.name}({self.dtype.name}, [{dims}], {self.layout!r})"

    def __repr__(self) -> str:
        return self.signature()


class Tensor(Expr):
    """A distributed input tensor (Section 2.1).

    Mirrors the paper's declaration syntax::

        Tensor w(FP16, [H, H], Sliced(0), WORLD, RANK)
        Tensor b(FP16, [H],    Replicated, WORLD)

    ``rank`` is the symbolic RANK marker required for sliced and local
    tensors ("A local tensor requires RANK to identify the values") and
    disallowed for replicated ones ("it does not have a rank identifier").
    """

    def __init__(
        self,
        dtype: DType,
        shape: Sequence[int],
        layout: Layout,
        group: ProcessGroup,
        rank: Optional[_SymbolicRank] = None,
        name: Optional[str] = None,
    ) -> None:
        if layout.is_replicated and rank is not None:
            raise LayoutError(
                "a replicated tensor does not take a rank identifier"
            )
        if (layout.is_sliced or layout.is_local) and rank is not RANK:
            raise LayoutError(
                f"a {layout!r} tensor requires the RANK identifier"
            )
        super().__init__(name or _fresh_name("t"), dtype, shape, layout, group)
        self.updated_by: Optional[Expr] = None  # set by Update ops


class Scalar(Expr):
    """A zero-dimensional tensor available with the same value on all ranks."""

    def __init__(
        self,
        dtype: DType,
        name: Optional[str] = None,
        group: Optional[ProcessGroup] = None,
    ) -> None:
        if group is None:
            raise LayoutError("Scalar requires a process group")
        super().__init__(name or _fresh_name("s"), dtype, (), Replicated, group)


class Const(Expr):
    """A literal constant, e.g. the ``0.1`` in ``Dropout(sum + b, 0.1)``."""

    def __init__(
        self,
        value: Number,
        group: ProcessGroup,
        dtype: DType = FP32,
    ) -> None:
        super().__init__(_fresh_name("c"), dtype, (), Replicated, group)
        self.value = float(value)

    def signature(self) -> str:
        return f"const({self.value})"


def as_expr(value: "Expr | Number", like: Expr) -> Expr:
    """Lift a Python number to a :class:`Const` in ``like``'s group."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float)):
        return Const(value, like.group)
    raise TypeError(f"cannot use {type(value).__name__} as a CoCoNet expression")


__all__ = [
    "Expr",
    "Tensor",
    "Scalar",
    "Const",
    "as_expr",
    "reset_names",
    "Local",
    "Replicated",
]
