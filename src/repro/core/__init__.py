"""The CoCoNet DSL core: distributed tensors, operations, programs,
transformations, the autotuner and the code generator.

This package is the paper's primary contribution. Quick tour::

    from repro.core import (
        FP16, Sliced, Replicated, world, RANK,
        Tensor, MatMul, AllReduce, Dropout, Execute,
    )

    W = world(16)
    w   = Tensor(FP16, (H, H), Sliced(0), W, RANK)
    b   = Tensor(FP16, (H,), Replicated, W)
    in_ = Tensor(FP16, (B, S, H), Sliced(2), W, RANK)
    r   = Tensor(FP16, (B, S, H), Replicated, W)

    layer = MatMul(in_, w)
    out   = Dropout(AllReduce("+", layer) + b, 0.1) + r
    prog  = Execute("self_attention", [w, in_, b, r], [out])
"""

from repro.core.dtypes import (
    ALL_DTYPES,
    BF16,
    FP16,
    FP32,
    FP64,
    INT32,
    INT64,
    DType,
    dtype_by_name,
    promote,
)
from repro.core.layout import Layout, Local, Replicated, Sliced
from repro.core.ops import (
    GROUP,
    AllGather,
    AllReduce,
    AllToAll,
    AllToAllPhase,
    Binary,
    Broadcast,
    Cast,
    CommOp,
    ComputeOp,
    Conv2D,
    Dropout,
    GroupRank,
    MatMul,
    Norm,
    PointwiseOp,
    Pow,
    Reduce,
    ReduceScatter,
    ReduceTensor,
    ReLU,
    Rsqrt,
    Send,
    Slice,
    Sqrt,
    Tanh,
    Unary,
    Update,
)
from repro.core.process_group import RANK, ProcessGroup, split_world, world
from repro.core.program import Execute, Program
from repro.core.tensor import Const, Expr, Scalar, Tensor, reset_names
from repro.core.lower import (  # noqa: E402  (needs ops/tensor above)
    ChunkLoop,
    CollectiveStep,
    LocalCompute,
    LoweredProgram,
    PackScattered,
    lower,
)

__all__ = [
    # dtypes
    "DType", "FP16", "BF16", "FP32", "FP64", "INT32", "INT64",
    "ALL_DTYPES", "dtype_by_name", "promote",
    # layouts & groups
    "Layout", "Sliced", "Replicated", "Local",
    "ProcessGroup", "world", "split_world", "RANK", "GROUP", "GroupRank",
    # leaves
    "Expr", "Tensor", "Scalar", "Const", "reset_names",
    # ops
    "AllReduce", "AllGather", "AllToAll", "AllToAllPhase",
    "ReduceScatter", "Reduce", "Broadcast", "Send",
    "MatMul", "Conv2D", "Binary", "Unary", "Dropout", "Cast", "Slice",
    "Norm", "ReduceTensor", "Update", "Sqrt", "Rsqrt", "ReLU", "Tanh", "Pow",
    "CommOp", "ComputeOp", "PointwiseOp",
    # programs
    "Execute", "Program",
    # lowering (the shared instruction IR)
    "lower", "LoweredProgram", "LocalCompute", "CollectiveStep",
    "PackScattered", "ChunkLoop",
]
