"""Process groups: RANK, GROUP, and WORLD.

The paper follows MPI terminology (Section 2): "RANK is the process ID of
a distributed process, GROUP is a set of concurrent distributed processes,
and WORLD is the GROUP that includes all processes. CoCoNet supports
dividing consecutive ranks into one or more process groups."

A :class:`ProcessGroup` is an immutable, contiguous range of global ranks.
The symbolic placeholders :data:`RANK` and :data:`GROUP` stand for "the
executing process" and "its group" inside DSL programs; they are resolved
to concrete values by the runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import GroupError


@dataclass(frozen=True)
class ProcessGroup:
    """A contiguous set of global ranks ``[start, start + size)``.

    ``world_size`` records the total number of ranks in WORLD, so that a
    group knows its position in the global space (needed by pipeline
    parallelism where a program addresses "GROUP + 1").
    """

    start: int
    size: int
    world_size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise GroupError(f"group size must be positive, got {self.size}")
        if self.start < 0:
            raise GroupError(f"group start must be non-negative, got {self.start}")
        if self.start + self.size > self.world_size:
            raise GroupError(
                f"group [{self.start}, {self.start + self.size}) exceeds "
                f"world of {self.world_size} ranks"
            )

    @property
    def ranks(self) -> range:
        """Global ranks belonging to this group."""
        return range(self.start, self.start + self.size)

    @property
    def index(self) -> int:
        """Index of this group when WORLD is split into equal groups."""
        return self.start // self.size

    def __iter__(self) -> Iterator[int]:
        return iter(self.ranks)

    def __len__(self) -> int:
        return self.size

    def __contains__(self, rank: int) -> bool:
        return self.start <= rank < self.start + self.size

    def local_rank(self, global_rank: int) -> int:
        """Translate a global rank into this group's local rank."""
        if global_rank not in self:
            raise GroupError(f"rank {global_rank} is not in group {self}")
        return global_rank - self.start

    def global_rank(self, local_rank: int) -> int:
        """Translate a local rank in this group into a global rank."""
        if not 0 <= local_rank < self.size:
            raise GroupError(
                f"local rank {local_rank} out of range for group of {self.size}"
            )
        return self.start + local_rank

    def next_group(self, offset: int = 1) -> "ProcessGroup":
        """Return the group ``offset`` positions after this one.

        Used by pipeline parallelism: ``GroupRank(GROUP + 1, RANK)`` in
        Figure 8a addresses the same local rank in the next group.
        """
        new_start = self.start + offset * self.size
        if not 0 <= new_start <= self.world_size - self.size:
            raise GroupError(
                f"group offset {offset} from start {self.start} leaves world "
                f"of {self.world_size} ranks"
            )
        return ProcessGroup(new_start, self.size, self.world_size)

    def __repr__(self) -> str:
        if self.size == self.world_size:
            return f"WORLD({self.world_size})"
        return f"Group(ranks={self.start}..{self.start + self.size - 1})"


def world(num_ranks: int) -> ProcessGroup:
    """Create the WORLD group over ``num_ranks`` processes."""
    return ProcessGroup(0, num_ranks, num_ranks)


def split_world(num_ranks: int, num_groups: int) -> Sequence[ProcessGroup]:
    """Divide consecutive ranks of a world into ``num_groups`` equal groups."""
    if num_ranks % num_groups != 0:
        raise GroupError(
            f"cannot split {num_ranks} ranks into {num_groups} equal groups"
        )
    size = num_ranks // num_groups
    return tuple(
        ProcessGroup(g * size, size, num_ranks) for g in range(num_groups)
    )


class _SymbolicRank:
    """Placeholder for 'the rank executing this program'.

    DSL programs are rank-agnostic: the same program text runs on every
    rank, with RANK resolving to that process's ID at execution time
    (exactly like the paper's C++ ``RANK`` constant).
    """

    _instance: "_SymbolicRank | None" = None

    def __new__(cls) -> "_SymbolicRank":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "RANK"


RANK = _SymbolicRank()
