"""The autotuner (Section 3.5).

"CoCoNet provides an autotuner to automatically explore the space of
all schedules of a program and return the schedule that provides the
best performance for the underlying architecture and input sizes.
First, the autotuner fuses all pointwise computations up to a
pre-defined threshold to decrease the search space and then
exhaustively explores the schedule space in a breadth first search
manner. Finally, the autotuner generates code for all schedules in its
search space, executes all programs, and returns the schedule with
minimum execution time."

We reproduce exactly that: a BFS over abstract transformation *moves*
(split / reorder / fuse-collective / fuse-send / overlap), every
candidate "executed" on the simulated cluster via the discrete-event
cost model (which itself searches all NCCL protocols and channel
counts), minimum time wins.

The search is *incremental*: each BFS level carries live
:class:`Schedule` objects and forks them per move instead of replaying
every move script from the root; candidates are deduplicated by a
canonical execution-plan signature (kernel structure + overlap groups),
which — unlike the historical order-insensitive sorted-script key —
keeps order-dependent schedules apart; and candidates whose
per-resource cost lower bound already reaches the best time seen are
pruned before the discrete-event run. ``Autotuner(baseline=True)``
restores the pre-optimization *machinery* — full replay from the root,
unmemoized cost model, O(n²) reference engine, no pruning — over the
same (signature-deduplicated) candidate space, as the reference mode
``benchmarks/bench_tuner.py`` measures speedups against. The
historical sorted-script dedup key is gone from both modes: it was a
bug (order-dependent schedules were silently skipped), not a mode.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.cluster.topology import Cluster
from repro.core import dfg, ops
from repro.core.program import Program
from repro.core.tensor import Const, Expr
from repro.core.transforms import (
    A2ASplitHierarchical,
    AllReduceFuse,
    AllToAllFuse,
    ARSplitRSAG,
    ComputationFuse,
    Schedule,
    SendFuse,
)
from repro.core.transforms.reorder import _check_alltoall_commutes
from repro.core.transforms.plan import FusedBlock, KernelKind
from repro.errors import AutotunerError, TransformError
from repro.perf.engine import Engine
from repro.perf.program_cost import ProgramCostModel

#: Pointwise fusion threshold: maximal regions larger than this are not
#: fused ("fuses all pointwise computations up to a pre-defined
#: threshold", §3.5).
POINTWISE_FUSION_THRESHOLD = 64

Move = Tuple[str, ...]


@dataclass
class Candidate:
    """One explored schedule with its simulated execution time.

    A ``pruned`` candidate's ``time`` is a *lower bound*: its
    per-resource busy time already reached the best time seen when it
    was evaluated, so the full discrete-event run was skipped — it
    cannot be the best schedule.

    ``schedule`` is normally a live :class:`Schedule`; when a tune was
    answered from a persistent schedule cache it is the stored
    :class:`~repro.core.artifact.Artifact` instead. Both expose
    ``lowered()``, which is the whole surface the executor, the code
    generator and the cost model consume — move scripts are *not*
    replayed on a hit, because generated value names carry a
    process-global counter and would not resolve in a fresh process.
    """

    name: str
    moves: Tuple[Move, ...]
    schedule: Schedule
    time: float
    pruned: bool = False


@dataclass
class TuneResult:
    """Output of one autotuner run.

    ``metrics``, when the tuner was given a metrics registry, is that
    registry — search counters (``tuner.candidates``, ``tuner.pruned``,
    ``tuner.dedup_hits``, ``tuner.transform_errors``) plus the cost
    model's memo statistics (``cost_model.*``).

    ``cached`` is True when the whole search was skipped because a
    persistent schedule cache already held the tuned schedule for this
    ``(structural_hash, topology)`` pair; ``cache_key`` carries that
    pair whenever a cache was consulted.
    """

    best: Candidate
    candidates: List[Candidate]
    elapsed_seconds: float
    metrics: Optional[object] = None
    cached: bool = False
    cache_key: Optional[Tuple[str, str]] = None

    def report(self) -> str:
        lines = [
            f"explored {len(self.candidates)} schedules in "
            f"{self.elapsed_seconds:.2f}s; best = {self.best.name} "
            f"({self.best.time * 1e6:.1f} us)"
        ]
        for c in sorted(self.candidates, key=lambda c: c.time):
            marker = "*" if c is self.best else " "
            bound = ">" if c.pruned else " "
            lines.append(
                f" {marker}{bound}{c.time * 1e6:12.1f} us  {c.name}"
            )
        return "\n".join(lines)


class Autotuner:
    """Breadth-first schedule exploration with DES-based timing.

    ``prune`` enables the cost model's best-so-far lower-bound cutoff.
    ``baseline`` switches the performance machinery back to its
    pre-optimization form: move scripts replayed from the root, no
    memoization, no pruning, and the O(n²) reference engine. Both modes
    walk the identical signature-deduplicated candidate space (the old
    order-insensitive sorted-script key was a bug, so it is not
    preserved), which is what makes the benchmark's equivalence check —
    same best schedule, same simulated time — exact.
    """

    def __init__(
        self,
        cluster: Cluster,
        cost_model_factory: Optional[
            Callable[[Cluster], ProgramCostModel]
        ] = None,
        max_depth: int = 4,
        prune: bool = True,
        baseline: bool = False,
        metrics=None,
        schedule_cache=None,
    ) -> None:
        self.cluster = cluster
        self.baseline = baseline
        #: optional repro.observe.MetricsRegistry (duck-typed: anything
        #: with inc/set) receiving search and cost-model counters
        self.metrics = metrics
        #: optional repro.serve.ScheduleCache (duck-typed: get/put with
        #: the (structural_hash, topology) pair) consulted before the
        #: search and written through after it — the persistence hook
        #: that makes tuning a reusable, cross-process service
        self.schedule_cache = schedule_cache
        self.prune = prune and not baseline
        if cost_model_factory is None:
            if baseline:
                cost_model_factory = lambda c: ProgramCostModel(  # noqa: E731
                    c, memoize=False, engine=Engine(reference=True),
                )
            else:
                cost_model_factory = ProgramCostModel
        self._factory = cost_model_factory
        self.max_depth = max_depth

    # -- move application --------------------------------------------------

    def _fresh(self, program: Program) -> Schedule:
        sched = Schedule(program)
        _fuse_pointwise_regions(sched)
        return sched

    def _apply(self, sched: Schedule, move: Move) -> None:
        kind = move[0]
        if kind == "split":
            ar = sched.program.find(move[1])
            sched.split(ar, ARSplitRSAG)
        elif kind == "a2asplit":
            a2a = sched.program.find(move[1])
            sched.split(
                a2a, A2ASplitHierarchical,
                node_size=self.cluster.node.gpus_per_node,
            )
        elif kind == "a2areorder":
            a2a = sched.program.find(move[1])
            region = _alltoall_reorder_region(sched, a2a)
            if not region:
                raise TransformError("no commuting region for the AllToAll")
            sched.reorder(a2a, *_as_items(sched, region))
        elif kind == "a2afuse":
            a2a = sched.program.find(move[1])
            members = _alltoall_fusion_region(sched, a2a)
            sched.fuse(*members, policy=AllToAllFuse)
        elif kind == "reorder":
            ag = sched.program.find(move[1])
            region = _maximal_reorder_region(sched, ag)
            if not region:
                raise TransformError("no reorderable region")
            sched.reorder(ag, *_as_items(sched, region))
        elif kind == "arfuse":
            rs = sched.program.find(move[1])
            members = _collective_fusion_region(sched, rs)
            sched.fuse(*members, policy=AllReduceFuse)
        elif kind == "sendfuse":
            send = sched.program.find(move[1])
            members = _send_fusion_region(sched, send)
            sched.fuse(*members, policy=SendFuse)
        elif kind == "slice_state":
            # Figure 6b line 6: store updated tensors sliced and remove
            # the AllGathers that restored them.
            applied = False
            for gather in list(sched.program.effects):
                gather = sched.resolve(gather)
                wb = getattr(gather, "writeback", None)
                if wb is None or not wb.layout.is_replicated:
                    continue
                sched.asSlice(wb, dim=gather.dim)
                sched.dead(sched.resolve(gather))
                applied = True
            if not applied:
                raise TransformError("no sliceable optimizer state")
        elif kind == "overlap":
            chain = _overlap_chain(sched)
            if len(chain) < 2:
                raise TransformError("no overlap chain")
            sched.overlap(*chain)
        else:  # pragma: no cover - defensive
            raise AutotunerError(f"unknown move {kind}")

    def _replay(self, program: Program, moves: Sequence[Move]) -> Schedule:
        sched = self._fresh(program)
        for m in moves:
            self._apply(sched, m)
        return sched

    def _next_moves(self, sched: Schedule, done: Sequence[Move]) -> List[Move]:
        prog = sched.program
        moves: List[Move] = []
        done_kinds = {m[0] for m in done}
        for e in prog.operations:
            if isinstance(e, ops.AllReduce):
                moves.append(("split", e.name))
            if isinstance(e, ops.AllToAll):
                if (
                    self.cluster.spans_nodes()
                    and e.group.size > self.cluster.node.gpus_per_node
                    and ("a2asplit", e.name) not in done
                    and sched._block_of(e) is None
                ):
                    moves.append(("a2asplit", e.name))
                if (
                    ("a2areorder", e.name) not in done
                    and sched._block_of(e) is None
                    and _alltoall_reorder_region(sched, e)
                ):
                    moves.append(("a2areorder", e.name))
            if isinstance(e, (ops.AllToAll, ops.AllToAllPhase)):
                # per-name dedup (unlike arfuse): an MoE program has two
                # exchanges and both may deserve their own fused kernel
                if ("a2afuse", e.name) not in done and sched._block_of(
                    e
                ) is None:
                    try:
                        _alltoall_fusion_region(sched, e)
                        moves.append(("a2afuse", e.name))
                    except TransformError:
                        pass
            if isinstance(e, ops.AllGather) and ("reorder", e.name) not in done:
                if _maximal_reorder_region(sched, e):
                    moves.append(("reorder", e.name))
            if isinstance(e, ops.ReduceScatter) and "arfuse" not in done_kinds:
                try:
                    _collective_fusion_region(sched, e)
                    moves.append(("arfuse", e.name))
                except TransformError:
                    pass
            if isinstance(e, ops.Send) and "sendfuse" not in done_kinds:
                if sched._block_of(e) is None:
                    try:
                        _send_fusion_region(sched, e)
                        moves.append(("sendfuse", e.name))
                    except TransformError:
                        pass
        if "slice_state" not in done_kinds:
            for gather in sched.program.effects:
                wb = getattr(sched.resolve(gather), "writeback", None)
                if wb is not None and wb.layout.is_replicated:
                    moves.append(("slice_state",))
                    break
        if "overlap" not in done_kinds and len(_overlap_chain(sched)) >= 2:
            moves.append(("overlap",))
        return moves

    # -- canonical dedup key ------------------------------------------------

    def _plan_signature(self, sched: Schedule) -> str:
        """Canonical lowered-execution key: what actually runs, not how
        we got there.

        Delegates to :func:`repro.core.artifact.structural_hash` — the
        same name-free structural digest every serialized artifact
        carries — computed on the lowered instruction stream
        (:meth:`Schedule.lowered`, requested with the tuner's cluster so
        the cost model's evaluation reuses the same cache entry; the key
        itself contains no resource names, so it is
        cluster-independent). Two move scripts that lower to the same
        launches (kernel kind + member ops + dataflow) in the same order
        with the same chunk-loop structure are the same candidate — and,
        since all further moves depend only on the current program and
        plan, so are their whole subtrees. Sharing the digest with the
        artifact layer means an on-disk artifact's ``structural_hash``
        *is* the tuner's dedup key for that schedule, which is what lets
        a persistent schedule cache (ROADMAP item 2) be keyed by
        artifact hash.
        """
        from repro.core import artifact

        return artifact.structural_hash(sched.lowered(cluster=self.cluster))

    # -- the search ---------------------------------------------------------

    def tune(self, program: Program) -> TuneResult:
        """Explore all schedules of ``program``; return the fastest.

        With a ``schedule_cache``, the search is consulted-through: the
        untransformed program's structural hash plus the cluster's
        topology signature key a lookup first (a hit skips the whole
        BFS and returns the stored tuned schedule as an artifact-backed
        candidate), and a miss writes the winning schedule back after
        the search — so the next process submitting the same program
        shape on the same topology never tunes again.

        >>> from repro.cluster.topology import Cluster
        >>> from repro.workloads.adam import AdamWorkload
        >>> result = Autotuner(Cluster(1), max_depth=2).tune(
        ...     AdamWorkload.build(64, 4).program)
        >>> result.best.time <= min(c.time for c in result.candidates)
        True
        >>> result.best.time < result.candidates[0].time  # beats default
        True
        """
        t0 = _time.perf_counter()
        cache = self.schedule_cache
        cache_key: Optional[Tuple[str, str]] = None
        if cache is not None:
            cache_key = (
                self._plan_signature(Schedule(program)),
                self.cluster.signature(),
            )
            rec = cache.get(*cache_key)
            if rec is not None:
                if self.metrics is not None:
                    self.metrics.inc("tuner.cache_hits")
                best = Candidate(
                    rec.schedule_name,
                    tuple(tuple(m) for m in rec.moves),
                    rec.artifact,
                    rec.predicted_time,
                )
                return TuneResult(
                    best, [best], _time.perf_counter() - t0,
                    metrics=self.metrics, cached=True, cache_key=cache_key,
                )
            if self.metrics is not None:
                self.metrics.inc("tuner.cache_misses")
        candidates = self._search(program)
        if not candidates:
            raise AutotunerError("no valid schedule found")
        best = min(
            (c for c in candidates if not c.pruned),
            key=lambda c: c.time,
        )
        elapsed = _time.perf_counter() - t0
        if cache is not None:
            from repro.core.artifact import Artifact
            from repro.serve.cache import CachedSchedule

            cache.put(
                CachedSchedule(
                    structural_hash=cache_key[0],
                    topology=cache_key[1],
                    schedule_name=best.name,
                    moves=tuple(tuple(m) for m in best.moves),
                    predicted_time=best.time,
                    tune_seconds=elapsed,
                    candidates_explored=len(candidates),
                    artifact=Artifact.from_lowered(
                        best.schedule.lowered(cluster=self.cluster)
                    ),
                )
            )
        return TuneResult(
            best, candidates, elapsed,
            metrics=self.metrics, cache_key=cache_key,
        )

    def _search(self, program: Program) -> List[Candidate]:
        """BFS over moves; candidates deduplicated by plan signature.

        In the default (incremental) mode each child schedule is a
        cheap fork of its parent with one extra move applied. In
        baseline mode every child is replayed move-by-move from the
        root, exactly as the search originally worked — both modes walk
        the identical candidate space, so the benchmark's equivalence
        check (same best schedule, same simulated time) is exact.
        """
        cost = self._factory(self.cluster)
        candidates: List[Candidate] = []
        best_time = float("inf")

        metrics = self.metrics

        def evaluate(name: str, moves: Tuple[Move, ...], sched: Schedule):
            nonlocal best_time
            cutoff = best_time if self.prune else None
            ev = cost.evaluate(sched, cutoff=cutoff)
            candidates.append(
                Candidate(name, moves, sched, ev.time, pruned=ev.pruned)
            )
            if metrics is not None:
                metrics.inc("tuner.candidates")
                if ev.pruned:
                    metrics.inc("tuner.pruned")
            if not ev.pruned and ev.time < best_time:
                best_time = ev.time

        base = Schedule(program)
        evaluate("default", (), base)
        root = self._fresh(program)
        evaluate(_script_name(()), (), root)
        seen: Set[str] = {
            self._plan_signature(base), self._plan_signature(root)
        }

        level: List[Tuple[Schedule, Tuple[Move, ...]]] = [(root, ())]
        while level:
            next_level: List[Tuple[Schedule, Tuple[Move, ...]]] = []
            for sched, moves in level:
                for m in self._next_moves(sched, moves):
                    script = moves + (m,)
                    try:
                        if self.baseline:
                            child = self._replay(program, script)
                        else:
                            child = sched.fork()
                            self._apply(child, m)
                    except TransformError:
                        if metrics is not None:
                            metrics.inc("tuner.transform_errors")
                        continue
                    sig = self._plan_signature(child)
                    if sig in seen:
                        if metrics is not None:
                            metrics.inc("tuner.dedup_hits")
                        continue
                    seen.add(sig)
                    evaluate(_script_name(script), script, child)
                    if len(script) < self.max_depth:
                        next_level.append((child, script))
            level = next_level
        if metrics is not None and hasattr(cost, "memo_stats"):
            for name, value in cost.memo_stats().items():
                metrics.set(f"cost_model.{name}", value)
        return candidates


# -- region discovery helpers ------------------------------------------------


def _fuse_pointwise_regions(sched: Schedule) -> List[FusedBlock]:
    """Pre-pass: fuse maximal pointwise regions (§3.5).

    Connected (by def-use edges) pointwise operations merge into one
    region via union-find, so an op joining two regions unifies them.
    """
    prog = sched.program
    fusable = [
        e
        for e in prog.operations
        if isinstance(e, (ops.PointwiseOp, ops.Norm, ops.ReduceTensor))
        and not isinstance(e, ops.Slice)
    ]
    if len(fusable) < 2 or len(fusable) > POINTWISE_FUSION_THRESHOLD:
        return []
    parent: Dict[int, int] = {id(e): id(e) for e in fusable}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        parent[find(a)] = find(b)

    fusable_ids = set(parent)
    for e in fusable:
        for i in e.inputs:
            if id(i) in fusable_ids:
                union(id(e), id(i))
    regions: Dict[int, List] = {}
    for e in fusable:
        regions.setdefault(find(id(e)), []).append(e)
    blocks = []
    for region in regions.values():
        if len(region) >= 2:
            try:
                blocks.append(sched.fuse(*region, policy=ComputationFuse))
            except TransformError:
                pass
    return blocks


def _maximal_reorder_region(sched: Schedule, ag: ops.AllGather) -> List:
    """Largest sliceable op region downstream of an AllGather."""
    users = sched.users_map()
    region: List = []
    frontier = list(users.get(ag, []))
    seen = set()
    sliceable = (ops.PointwiseOp, ops.Norm, ops.ReduceTensor, ops.Send)
    while frontier:
        e = frontier.pop()
        if id(e) in seen:
            continue
        seen.add(id(e))
        if not isinstance(e, sliceable) or isinstance(e, ops.Slice):
            return []  # a consumer cannot be sliced -> reorder invalid
        region.append(e)
        frontier.extend(users.get(e, []))
    return region


def _as_items(sched: Schedule, region: Sequence) -> List:
    """Pass fused blocks (not their members) to reorder when present."""
    items: List = []
    seen_blocks = set()
    for e in region:
        b = sched._block_of(e)
        if b is None:
            items.append(e)
        elif id(b) not in seen_blocks:
            seen_blocks.add(id(b))
            items.append(b)
    return items


def _collective_fusion_region(sched: Schedule, rs: ops.ReduceScatter) -> List:
    """RS + sliced computation + AllGathers, for AllReduceFuse."""
    users = sched.users_map()
    members: List = [rs]
    frontier = list(users.get(rs, []))
    seen = {id(rs)}
    found_gather = False
    while frontier:
        e = frontier.pop()
        if id(e) in seen:
            continue
        seen.add(id(e))
        if isinstance(e, ops.AllGather):
            members.append(e)
            found_gather = True
            continue
        if isinstance(e, ops.Send):
            raise TransformError("P2P send cannot join an AllReduceFuse")
        if not isinstance(e, (ops.PointwiseOp, ops.Norm, ops.ReduceTensor)):
            raise TransformError(f"{e.name} cannot join an AllReduceFuse")
        members.append(e)
        frontier.extend(users.get(e, []))
    if not found_gather:
        raise TransformError("no AllGather downstream of the ReduceScatter")
    return _as_items(sched, members)


def _alltoall_reorder_region(sched: Schedule, a2a: ops.AllToAll) -> List:
    """Largest downstream region that commutes with the AllToAll.

    Starts from every transitive consumer and shrinks to a fixpoint:
    an op stays only while it is position-uniform (see the reorder
    transformation) *and* every exchanged-data operand it reads is also
    staying — dropping one op cascades to its consumers, but leaves
    independent branches (a pointwise epilogue feeding a MatMul keeps
    the pointwise part). Joins work regardless of visit order because
    commute checks see the whole candidate set. Empty only if a direct
    consumer of the exchange cannot move, since reorder requires all of
    them in the region.
    """
    prog = sched.program
    if a2a in prog.roots:
        return []
    users = sched.users_map()
    candidates: List = []
    frontier = list(users.get(a2a, []))
    seen = set()
    while frontier:
        e = frontier.pop()
        if id(e) in seen:
            continue
        seen.add(id(e))
        candidates.append(e)
        frontier.extend(users.get(e, []))
    cand_set = set(candidates)

    def rides_exchange(inp) -> bool:
        # an expression depends on the exchange iff it is the exchange
        # or one of its transitive users — all already collected in
        # ``seen`` above, so no per-input reachability walk is needed
        return inp is a2a or id(inp) in seen

    changed = True
    while changed:
        changed = False
        for op in list(cand_set):
            try:
                _check_alltoall_commutes(op, a2a, cand_set)
                ok = all(
                    inp is a2a or inp in cand_set or not rides_exchange(inp)
                    for inp in op.inputs
                )
            except TransformError:
                ok = False
            if not ok:
                cand_set.discard(op)
                changed = True
    if any(u not in cand_set for u in users.get(a2a, [])):
        return []
    return [e for e in candidates if e in cand_set]


def _pointwise_producer_region(
    sched: Schedule, anchor: Expr, what: str
) -> List:
    """Pointwise producers feeding ``anchor``, plus the anchor itself —
    the member set of SendFuse / AllToAllFuse."""
    members: List = []
    frontier = list(anchor.inputs)
    seen = set()
    while frontier:
        e = frontier.pop()
        if id(e) in seen or e.is_leaf:
            continue
        seen.add(id(e))
        if isinstance(e, (ops.PointwiseOp, ops.Norm, ops.ReduceTensor)):
            members.append(e)
            frontier.extend(e.inputs)
    if not members:
        raise TransformError(f"no fusable computation feeds the {what}")
    return _as_items(sched, members) + [anchor]


def _alltoall_fusion_region(sched: Schedule, a2a: Expr) -> List:
    """Pointwise producers + the AllToAll, for AllToAllFuse."""
    return _pointwise_producer_region(sched, a2a, "AllToAll")


def _send_fusion_region(sched: Schedule, send: ops.Send) -> List:
    """Pointwise producers + the Send, for SendFuse."""
    return _pointwise_producer_region(sched, send, "Send")


def _overlap_chain(sched: Schedule) -> List:
    """Find the longest producer→consumer kernel chain worth overlapping.

    Walks the plan's kernels in order, extending the current chain
    whenever the next GEMM / communication / elementwise kernel directly
    consumes the chain tail's output (the MoE pipeline
    dispatch→GEMM→act→GEMM→combine is one such chain; the attention
    MatMul→FusedAllReduce pair is another). A chain is only worth
    overlapping when it spans at least one communication kernel —
    compute-only kernels share the GPU stream and gain nothing.
    """
    plan = sched.plan()
    comm_kinds = (
        KernelKind.COLLECTIVE,
        KernelKind.FUSED_COLLECTIVE,
        KernelKind.P2P,
        KernelKind.FUSED_P2P,
    )
    chain_kinds = comm_kinds + (
        KernelKind.GEMM,
        KernelKind.ELEMENTWISE,
        KernelKind.FUSED_ELEMENTWISE,
    )

    def item_of(k) -> object:
        block = sched._block_of(k.exprs[-1])
        return block if block is not None else k.exprs[0]

    def consumes(k, prev_out) -> bool:
        return any(prev_out in e.inputs for e in k.exprs)

    elementwise = (KernelKind.ELEMENTWISE, KernelKind.FUSED_ELEMENTWISE)

    def trimmed(kernels: List) -> List:
        # A trailing elementwise stage has no communication to hide
        # behind — it only adds chunk-synchronization overhead. Interior
        # elementwise stages (the activation between the MoE GEMMs) stay.
        out = list(kernels)
        while out and out[-1].kind in elementwise:
            out.pop()
        return out

    def score(kernels: List) -> "Tuple[int, int]":
        return (
            len(kernels),
            sum(k.kind in comm_kinds for k in kernels),
        )

    best: List = []
    cur: List = []
    for k in plan.kernels:
        if k.kind not in chain_kinds or (
            len(k.exprs) == 1 and isinstance(k.exprs[0], ops.Slice)
        ):
            cur = []
            continue
        if cur and consumes(k, cur[-1].exprs[-1]):
            cur = cur + [k]
        else:
            cur = [k]
        cand = trimmed(cur)
        if (
            len(cand) >= 2
            and any(x.kind in comm_kinds for x in cand)
            and score(cand) > score(best)
        ):
            best = cand
    return [item_of(k) for k in best]


def _script_name(moves: Sequence[Move]) -> str:
    if not moves:
        return "fused-compute"
    return " ; ".join(
        m[0] if len(m) == 1 else f"{m[0]}({m[1]})" for m in moves
    )
