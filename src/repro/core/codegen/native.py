"""Native compiled codegen target: C kernels + a content-hash cache.

The SPMD backend executes generated *Python* per rank, so after PR 5
the interpreter is the hot path: every elementwise op pays a float64
temporary and a full memory pass, and fp16 GEMMs fall into numpy's
generic (BLAS-less) inner loop. This module renders the compute parts
of a :class:`~repro.core.lower.LoweredProgram` kernel to C — maximal
runs of elementwise ops fused into a *single* loop per segment, GEMMs
dispatched to BLAS — compiles them with ``cc`` into one shared object
per module, and memoizes the objects in an on-disk content-addressed
kernel cache (tinygrad's hash→compile→``lru_cache`` pipeline, DaCe's
build-folder flow).

Bit-identity contract
---------------------
The Python emission computes ``+ - * / pow sqrt rsqrt tanh exp`` in
float64 (operands upcast via ``astype(np.float64)``) and casts the
result to the expression dtype; ``max/min/relu/abs`` and ``Cast``
operate on the native-dtype values directly. The C loop mirrors this
exactly: every value is carried as a ``double``, each expression's
result is rounded to its declared dtype domain immediately
(``(double)(float)x`` for fp32, a correctly-rounded half round-trip
for fp16), comparisons/abs are exact on the upconverted doubles, and
``max``/``min`` use numpy's ``(a > b || isnan(a)) ? a : b`` formula.
fp16 conversions implement IEEE round-to-nearest-even from the double
— the same single-step rounding numpy's ``astype(np.float16)`` does —
so elementwise-only programs are **bit-identical** to ``run_lowered``.
GEMMs go to BLAS (or a naive tiled fallback) whose accumulation order
differs from ``np.matmul``; those carry the documented fp tolerance
(see EXPERIMENTS.md, "Native codegen").

Kernel cache
------------
``~/.cache/repro/kernels/<sha256>.so`` (override with
``$REPRO_KERNEL_CACHE``), keyed by SHA-256 over the C source plus the
compiler identity and flags. Writes are concurrent-safe — every rank
process of a cold-cache run compiles behind a ``flock`` and installs
via atomic ``os.replace`` — and stale/corrupt entries (unloadable or
missing the expected symbols) are deleted and recompiled once.
Hit/miss/compile-time counters land in :data:`metrics` (a
:class:`~repro.observe.metrics.MetricsRegistry`) and, when a
communicator is passed as ``observer``, in the rank's trace ring as
instant events so Perfetto timelines show compile stalls.

BLAS binding
------------
The compiled object never links BLAS: it exports
``repro_bind_blas(void* sgemm, void* dgemm)`` and the loader injects
raw cblas function pointers found at runtime (system
``cblas``/``openblas`` first, then scipy's bundled
``scipy_cblas_*gemm``). NULL pointers fall back to the naive tiled C
GEMM — so the cache key is independent of which BLAS (if any) the
machine has.
"""

from __future__ import annotations

import ctypes
import ctypes.util
import glob
import hashlib
import os
import shutil
import subprocess
import tempfile
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import ops
from repro.core.tensor import Const, Expr
from repro.errors import CodegenError
from repro.observe.metrics import MetricsRegistry

__all__ = [
    "available",
    "toolchain_report",
    "metrics",
    "load_kernels",
    "cold_compile_allowance",
    "cache_dir",
    "CompiledKernels",
    "NativeEmitter",
    "PRELUDE",
    "DEFAULT_COMPILE_ALLOWANCE",
]

#: module-wide cache counters: ``native.cache.memo_hits`` (in-process),
#: ``native.cache.disk_hits``, ``native.cache.compiles``,
#: ``native.cache.compile_seconds``, ``native.cache.recompiles``
metrics = MetricsRegistry()

#: seconds added to the SPMD rendezvous deadline for a cold-cache run
DEFAULT_COMPILE_ALLOWANCE = 45.0

_CFLAGS = ("-O3", "-fPIC", "-shared", "-ffp-contract=off", "-fno-math-errno")


# ---------------------------------------------------------------------------
# Toolchain discovery.
# ---------------------------------------------------------------------------


def _find_cc() -> Optional[str]:
    env = os.environ.get("CC")
    if env:
        path = shutil.which(env)
        if path:
            return path
    for cand in ("cc", "gcc", "clang"):
        path = shutil.which(cand)
        if path:
            return path
    return None


_CC_VERSION: Dict[str, str] = {}


def _cc_version(cc: str) -> str:
    if cc not in _CC_VERSION:
        try:
            out = subprocess.run(
                [cc, "--version"], capture_output=True, text=True, timeout=30
            ).stdout
            _CC_VERSION[cc] = out.splitlines()[0] if out else cc
        except (OSError, subprocess.SubprocessError):
            _CC_VERSION[cc] = cc
    return _CC_VERSION[cc]


def available() -> bool:
    """True when a C compiler is on PATH (the native target's only need)."""
    return _find_cc() is not None


class _Blas:
    def __init__(self, path: str, lib, sgemm, dgemm) -> None:
        self.path = path
        self.lib = lib  # keep the dlopen handle alive
        self.sgemm = sgemm
        self.dgemm = dgemm


_BLAS: "List[Optional[_Blas]]" = []  # lazy singleton ([] = unprobed)


def _blas_candidates() -> List[str]:
    paths: List[str] = []
    env = os.environ.get("REPRO_BLAS")
    if env:
        paths.append(env)
    for name in ("cblas", "openblas", "blas"):
        found = ctypes.util.find_library(name)
        if found:
            paths.append(found)
    try:  # scipy bundles an LP64 openblas with scipy_cblas_* symbols
        import scipy

        libs = os.path.join(os.path.dirname(scipy.__file__), "..",
                            "scipy.libs", "*.so*")
        paths.extend(sorted(glob.glob(libs)))
    except ImportError:  # pragma: no cover - scipy is in the test env
        pass
    return paths


def _load_blas() -> Optional[_Blas]:
    if _BLAS:
        return _BLAS[0]
    found = None
    for path in _blas_candidates():
        try:
            lib = ctypes.CDLL(path)
        except OSError:
            continue
        for prefix in ("cblas_", "scipy_cblas_"):
            try:
                sgemm = getattr(lib, prefix + "sgemm")
                dgemm = getattr(lib, prefix + "dgemm")
            except AttributeError:
                continue
            # single-threaded BLAS: one process per rank already uses
            # every core, and a fixed thread count keeps gemm results
            # deterministic across repeat runs
            for setter in (
                "openblas_set_num_threads",
                "scipy_openblas_set_num_threads",
                "goto_set_num_threads",
            ):
                try:
                    getattr(lib, setter)(1)
                    break
                except AttributeError:
                    continue
            found = _Blas(path, lib, sgemm, dgemm)
            break
        if found:
            break
    _BLAS.append(found)
    return found


def cache_dir() -> str:
    """On-disk kernel cache root (``$REPRO_KERNEL_CACHE`` overrides)."""
    return os.path.expanduser(
        os.environ.get("REPRO_KERNEL_CACHE")
        or os.path.join("~", ".cache", "repro", "kernels")
    )


def toolchain_report() -> Dict[str, object]:
    """What the native target found on this machine (CI prints this)."""
    cc = _find_cc()
    blas = _load_blas()
    cdir = cache_dir()
    try:
        cached = len([f for f in os.listdir(cdir) if f.endswith(".so")])
    except OSError:
        cached = 0
    return {
        "cc": cc,
        "cc_version": _cc_version(cc) if cc else None,
        "blas": blas.path if blas else None,
        "cache_dir": cdir,
        "cached_kernels": cached,
    }


# ---------------------------------------------------------------------------
# C prelude: half conversions, op helpers, GEMM dispatch.
# ---------------------------------------------------------------------------

PRELUDE = r"""
#include <stdint.h>
#include <string.h>
#include <math.h>

/* -- IEEE half <-> double, bit-exact with numpy's astype ------------- */

static inline double repro_h2d(uint16_t h) {
    uint32_t sign = (uint32_t)(h >> 15) << 31;
    uint32_t exp = (h >> 10) & 0x1fu;
    uint32_t man = h & 0x3ffu;
    uint32_t f;
    float out;
    if (exp == 0) {
        if (man == 0) {
            f = sign;                       /* +-0 */
        } else {                            /* subnormal: normalize */
            exp = 113;                      /* 127 - 15 + 1 */
            while (!(man & 0x400u)) { man <<= 1; exp--; }
            f = sign | (exp << 23) | ((man & 0x3ffu) << 13);
        }
    } else if (exp == 31) {                 /* inf / nan, keep payload */
        f = sign | 0x7f800000u | (man << 13);
    } else {
        f = sign | ((exp + 112u) << 23) | (man << 13);
    }
    memcpy(&out, &f, 4);
    return (double)out;
}

/* round-to-nearest-even double -> half, single-step (no double
 * rounding through float) — matches numpy's float64->float16 cast */
static inline uint16_t repro_d2h(double d) {
    uint64_t bits;
    memcpy(&bits, &d, 8);
    uint16_t sign = (uint16_t)((bits >> 48) & 0x8000u);
    uint64_t mag = bits & 0x7fffffffffffffffULL;
    int e;
    uint64_t m, keep, rem, half;
    int shift;
    if (mag >= 0x7ff0000000000000ULL) {     /* inf / nan */
        return mag > 0x7ff0000000000000ULL ? (uint16_t)(sign | 0x7e00u)
                                           : (uint16_t)(sign | 0x7c00u);
    }
    e = (int)(mag >> 52) - 1023;
    if (e >= 16) return (uint16_t)(sign | 0x7c00u);   /* overflow */
    /* 53-bit significand; double subnormals (biased exp 0) get a bogus
     * implicit bit but land in the shift>63 underflow branch anyway */
    m = (mag & 0xfffffffffffffULL) | 0x10000000000000ULL;
    if (e >= -14) {                         /* normal half range */
        shift = 42;
        keep = m >> shift;
        rem = m & ((1ULL << shift) - 1);
        half = 1ULL << (shift - 1);
        if (rem > half || (rem == half && (keep & 1))) keep++;
        /* keep==0x800 bumps the exponent (and 30<<10 + 0x400 == inf) */
        return (uint16_t)(sign | (((uint64_t)(e + 15) << 10)
                                  + (keep - 0x400ULL)));
    }
    shift = 28 - e;                         /* half-subnormal domain */
    if (shift > 63) return sign;            /* underflow to +-0 */
    keep = m >> shift;
    rem = m & ((1ULL << shift) - 1);
    half = 1ULL << (shift - 1);
    if (rem > half || (rem == half && (keep & 1))) keep++;
    return (uint16_t)(sign | keep);         /* 0x400 = smallest normal */
}

/* numpy maximum/minimum: (in1 OP in2 || isnan(in1)) ? in1 : in2 */
static inline double repro_max(double a, double b) {
    return (a > b || a != a) ? a : b;
}
static inline double repro_min(double a, double b) {
    return (a < b || a != a) ? a : b;
}

/* -- GEMM: injected cblas pointers with a naive tiled fallback ------- */

typedef void (*repro_sgemm_t)(int, int, int, int, int, int, float,
                              const float*, int, const float*, int,
                              float, float*, int);
typedef void (*repro_dgemm_t)(int, int, int, int, int, int, double,
                              const double*, int, const double*, int,
                              double, double*, int);
static repro_sgemm_t repro_sgemm = 0;
static repro_dgemm_t repro_dgemm = 0;

void repro_bind_blas(void* sgemm, void* dgemm) {
    repro_sgemm = (repro_sgemm_t)sgemm;
    repro_dgemm = (repro_dgemm_t)dgemm;
}

#define REPRO_GEMM_BK 64
#define REPRO_GEMM_BJ 256

static void repro_naive_sgemm(const float* a, const float* b, float* c,
                              long long M, long long N, long long K) {
    long long i, j, k, kk, jj, kmax, jmax;
    for (i = 0; i < M * N; ++i) c[i] = 0.0f;
    for (kk = 0; kk < K; kk += REPRO_GEMM_BK) {
        kmax = kk + REPRO_GEMM_BK < K ? kk + REPRO_GEMM_BK : K;
        for (jj = 0; jj < N; jj += REPRO_GEMM_BJ) {
            jmax = jj + REPRO_GEMM_BJ < N ? jj + REPRO_GEMM_BJ : N;
            for (i = 0; i < M; ++i) {
                for (k = kk; k < kmax; ++k) {
                    float av = a[i * K + k];
                    for (j = jj; j < jmax; ++j)
                        c[i * N + j] += av * b[k * N + j];
                }
            }
        }
    }
}

static void repro_naive_dgemm(const double* a, const double* b, double* c,
                              long long M, long long N, long long K) {
    long long i, j, k, kk, jj, kmax, jmax;
    for (i = 0; i < M * N; ++i) c[i] = 0.0;
    for (kk = 0; kk < K; kk += REPRO_GEMM_BK) {
        kmax = kk + REPRO_GEMM_BK < K ? kk + REPRO_GEMM_BK : K;
        for (jj = 0; jj < N; jj += REPRO_GEMM_BJ) {
            jmax = jj + REPRO_GEMM_BJ < N ? jj + REPRO_GEMM_BJ : N;
            for (i = 0; i < M; ++i) {
                for (k = kk; k < kmax; ++k) {
                    double av = a[i * K + k];
                    for (j = jj; j < jmax; ++j)
                        c[i * N + j] += av * b[k * N + j];
                }
            }
        }
    }
}

static inline void repro_gemm_f32(const float* a, const float* b, float* c,
                                  long long M, long long N, long long K) {
    if (repro_sgemm) {
        /* 101 = CblasRowMajor, 111 = CblasNoTrans */
        repro_sgemm(101, 111, 111, (int)M, (int)N, (int)K, 1.0f,
                    a, (int)K, b, (int)N, 0.0f, c, (int)N);
    } else {
        repro_naive_sgemm(a, b, c, M, N, K);
    }
}

static inline void repro_gemm_f64(const double* a, const double* b,
                                  double* c, long long M, long long N,
                                  long long K) {
    if (repro_dgemm) {
        repro_dgemm(101, 111, 111, (int)M, (int)N, (int)K, 1.0,
                    a, (int)K, b, (int)N, 0.0, c, (int)N);
    } else {
        repro_naive_dgemm(a, b, c, M, N, K);
    }
}
"""


# ---------------------------------------------------------------------------
# Content-addressed kernel cache + compiled-module handle.
# ---------------------------------------------------------------------------

#: in-process memo in front of the disk cache: sha -> CompiledKernels
_MEMO: Dict[str, "CompiledKernels"] = {}


def source_key(c_source: str) -> str:
    """SHA-256 over the C source plus the compiler identity and flags."""
    cc = _find_cc() or ""
    h = hashlib.sha256()
    h.update(c_source.encode())
    h.update(b"\x00")
    h.update(cc.encode())
    h.update(_cc_version(cc).encode() if cc else b"")
    h.update(" ".join(_CFLAGS).encode())
    return h.hexdigest()


class CompiledKernels:
    """A loaded kernel shared object; ``call`` invokes one C function.

    Every generated function has the uniform ABI
    ``void f(char** bufs, double* scalars)`` with shapes, loop bounds
    and broadcast strides baked into the source, so the Python side
    only marshals base pointers (a ctypes foreign call releases the
    GIL — the overlap producer stream keeps running during compute).
    """

    def __init__(self, lib: ctypes.CDLL, key: str, path: str) -> None:
        self._lib = lib
        self.key = key
        self.path = path
        self._fns: Dict[str, object] = {}
        bind = lib.repro_bind_blas
        bind.argtypes = [ctypes.c_void_p, ctypes.c_void_p]
        bind.restype = None
        blas = _load_blas()
        if blas is not None:
            bind(
                ctypes.cast(blas.sgemm, ctypes.c_void_p),
                ctypes.cast(blas.dgemm, ctypes.c_void_p),
            )
        self.blas = blas.path if blas is not None else None

    def _fn(self, name: str):
        fn = self._fns.get(name)
        if fn is None:
            fn = getattr(self._lib, name)
            fn.argtypes = [
                ctypes.POINTER(ctypes.c_void_p),
                ctypes.POINTER(ctypes.c_double),
            ]
            fn.restype = None
            self._fns[name] = fn
        return fn

    def call(
        self,
        name: str,
        arrays: Sequence[np.ndarray],
        scalars: Sequence[float] = (),
    ) -> None:
        bufs = []
        for a in arrays:
            if not a.flags["C_CONTIGUOUS"]:
                # inputs only — outputs are freshly np.empty'd and
                # always contiguous, so the copy never detaches a result
                a = np.ascontiguousarray(a)
            bufs.append(a.ctypes.data)
        ptrs = (ctypes.c_void_p * len(bufs))(*bufs)
        sc = (ctypes.c_double * max(1, len(scalars)))(*scalars)
        self._fn(name)(ptrs, sc)


def _compile(c_source: str, so_path: str) -> None:
    cc = _find_cc()
    if cc is None:
        raise CodegenError(
            "native codegen target needs a C compiler (cc/gcc/clang) on "
            "PATH — none found"
        )
    os.makedirs(os.path.dirname(so_path), exist_ok=True)
    fd, c_path = tempfile.mkstemp(
        suffix=".c", dir=os.path.dirname(so_path)
    )
    tmp_so = c_path[:-2] + ".so.tmp"
    try:
        with os.fdopen(fd, "w") as f:
            f.write(c_source)
        proc = subprocess.run(
            [cc, *_CFLAGS, "-o", tmp_so, c_path, "-lm"],
            capture_output=True, text=True, timeout=300,
        )
        if proc.returncode != 0:
            raise CodegenError(
                f"kernel compilation failed ({cc}):\n{proc.stderr[-4000:]}"
            )
        # atomic install: concurrent rank processes compiling the same
        # source race benignly — last replace wins, all see a valid .so
        os.replace(tmp_so, so_path)
    finally:
        for p in (c_path, tmp_so):
            try:
                os.remove(p)
            except OSError:
                pass


def _try_load(key: str, so_path: str) -> Optional[CompiledKernels]:
    try:
        lib = ctypes.CDLL(so_path)
        if not hasattr(lib, "repro_bind_blas"):
            raise OSError("missing repro_bind_blas (stale cache entry)")
        return CompiledKernels(lib, key, so_path)
    except (OSError, AttributeError):
        return None


class _FileLock:
    """``flock`` guard so one process compiles while peers wait."""

    def __init__(self, path: str) -> None:
        self._path = path
        self._fd: Optional[int] = None

    def __enter__(self) -> "_FileLock":
        try:
            import fcntl

            os.makedirs(os.path.dirname(self._path), exist_ok=True)
            self._fd = os.open(self._path, os.O_CREAT | os.O_RDWR)
            fcntl.flock(self._fd, fcntl.LOCK_EX)
        except (ImportError, OSError):  # pragma: no cover - non-POSIX
            self._fd = None
        return self

    def __exit__(self, *exc) -> None:
        if self._fd is not None:
            try:
                import fcntl

                fcntl.flock(self._fd, fcntl.LOCK_UN)
            except (ImportError, OSError):  # pragma: no cover
                pass
            os.close(self._fd)


def load_kernels(c_source: str, observer=None) -> CompiledKernels:
    """Resolve C source to a loaded shared object via the kernel cache.

    In-process memo first, then ``cache_dir()/<sha256>.so``, then a
    locked compile with atomic install. ``observer``, when given, is a
    :class:`~repro.runtime.spmd.SpmdCommunicator` (or anything with
    ``record_compile(name, seconds, status)``) that receives one
    instant event per cache outcome for the Perfetto timeline.
    """
    key = source_key(c_source)
    memo = _MEMO.get(key)
    if memo is not None:
        metrics.inc("native.cache.memo_hits")
        return memo
    so_path = os.path.join(cache_dir(), f"{key}.so")
    t0 = time.perf_counter()
    with _FileLock(so_path + ".lock"):
        compiled = None
        status = "hit"
        if os.path.exists(so_path):
            compiled = _try_load(key, so_path)
            if compiled is None:
                # stale/corrupt entry: drop it and recompile below
                metrics.inc("native.cache.recompiles")
                status = "recompile"
                try:
                    os.remove(so_path)
                except OSError:
                    pass
        if compiled is None:
            if status == "hit":
                status = "compile"
            _compile(c_source, so_path)
            compiled = _try_load(key, so_path)
            if compiled is None:  # pragma: no cover - defensive
                raise CodegenError(
                    f"compiled kernel at {so_path} is unloadable"
                )
            metrics.inc("native.cache.compiles")
            metrics.inc(
                "native.cache.compile_seconds", time.perf_counter() - t0
            )
        else:
            metrics.inc("native.cache.disk_hits")
    seconds = time.perf_counter() - t0
    if observer is not None:
        recorder = getattr(observer, "record_compile", None)
        if recorder is not None:
            recorder(key[:12], seconds, status)
    _MEMO[key] = compiled
    return compiled


def cold_compile_allowance(c_source: str) -> float:
    """Extra rendezvous headroom when this source is not yet cached.

    Zero on a warm cache — the satellite fix for
    :func:`repro.runtime.spmd.scaled_default_timeout`, which otherwise
    ignores first-run compile latency and lets a cold-cache SPMD run
    trip ``SpmdTimeout``.
    """
    key = source_key(c_source)
    if key in _MEMO:
        return 0.0
    if os.path.exists(os.path.join(cache_dir(), f"{key}.so")):
        return 0.0
    return DEFAULT_COMPILE_ALLOWANCE


# ---------------------------------------------------------------------------
# The C renderer used by the code generator.
# ---------------------------------------------------------------------------

#: ops whose Python emission the C loop reproduces bit-exactly
_C_BINARY = ("+", "-", "*", "/", "max", "min")
_C_UNARY = ("sqrt", "rsqrt", "relu", "abs")

_CTYPE = {"float16": "uint16_t", "float32": "float", "float64": "double"}


def _cdt(dtype) -> Optional[str]:
    name = dtype.to_numpy().name
    return name if name in _CTYPE else None


def _prod(shape: Tuple[int, ...]) -> int:
    n = 1
    for s in shape:
        n *= int(s)
    return n


def _strip1(shape: Tuple[int, ...]) -> Tuple[int, ...]:
    i = 0
    while i < len(shape) and shape[i] == 1:
        i += 1
    return tuple(shape[i:])


def _suffix_ok(si: Tuple[int, ...], so: Tuple[int, ...]) -> bool:
    """Row-major flat ``i % prod(si)`` reproduces numpy broadcasting."""
    s = _strip1(si)
    if not s:
        return True
    return tuple(so[len(so) - len(s):]) == s if len(s) <= len(so) else False


def _sanitize(name: str) -> str:
    return "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)


def _load(cvar: str, dt: str, idx: str) -> str:
    if dt == "float16":
        return f"repro_h2d({cvar}[{idx}])"
    if dt == "float32":
        return f"(double){cvar}[{idx}]"
    return f"{cvar}[{idx}]"


def _store(cvar: str, dt: str, idx: str, val: str) -> str:
    if dt == "float16":
        return f"{cvar}[{idx}] = repro_d2h({val});"
    if dt == "float32":
        return f"{cvar}[{idx}] = (float){val};"
    return f"{cvar}[{idx}] = {val};"


def _round(dt: str, expr: str) -> str:
    """Round a double to the expression dtype's value domain."""
    if dt == "float16":
        return f"repro_h2d(repro_d2h({expr}))"
    if dt == "float32":
        return f"(double)(float)({expr})"
    return expr


class _Array:
    def __init__(self, cvar: str, dt: str, py_ref: str, n: int) -> None:
        self.cvar = cvar
        self.dt = dt
        self.py_ref = py_ref
        self.n = n


class NativeEmitter:
    """Renders C functions for a lowered program's compute segments.

    Owned by one :class:`~repro.core.codegen.generator.CodeGenerator`
    invocation; the generator calls :meth:`emit_segment` where it would
    otherwise emit per-op numpy lines and :meth:`emit_gemm` for MatMul
    expressions, then embeds :meth:`c_source` into the module.
    """

    def __init__(self, lowered) -> None:
        self.functions: List[str] = []
        self._fn_names: Dict[str, int] = {}
        self._consumers: Dict[int, List[Expr]] = {}
        for k in lowered.plan.kernels:
            for e in k.exprs:
                for x in e.inputs:
                    self._consumers.setdefault(id(x), []).append(e)
        self._output_ids = {id(o) for o in lowered.program.outputs}

    @property
    def used(self) -> bool:
        return bool(self.functions)

    def c_source(self) -> Optional[str]:
        if not self.functions:
            return None
        return PRELUDE + "\n" + "\n".join(self.functions)

    # -- naming ---------------------------------------------------------

    def _fresh_fn(self, base: str) -> str:
        base = _sanitize(base)
        n = self._fn_names.get(base, 0)
        self._fn_names[base] = n + 1
        return base if n == 0 else f"{base}_{n}"

    # -- qualification --------------------------------------------------

    def _c_able(self, e: Expr) -> bool:
        if isinstance(e, ops.Binary):
            if e.op not in _C_BINARY:
                return False
        elif isinstance(e, ops.Unary):
            if e.op not in _C_UNARY:
                return False
        elif isinstance(e, ops.Update):
            # the V-store runs in C; the T write stays in Python
            if e.per_rank_shape() != e.inputs[0].per_rank_shape():
                return False
        elif not isinstance(e, ops.Cast):
            return False
        if _cdt(e.dtype) is None:
            return False
        oshape = e.per_rank_shape()
        if _prod(oshape) < 2:
            return False  # scalars stay in Python (they cost nothing)
        for x in e.inputs:
            if _cdt(x.dtype) is None:
                return False
            xs = x.per_rank_shape()
            if _prod(xs) == 1:
                continue  # scalar broadcast via the scalars array
            if not _suffix_ok(xs, oshape):
                return False
        return True

    def _escapes(self, e: Expr, run_ids: set) -> bool:
        if id(e) in self._output_ids or isinstance(e, ops.Update):
            return True
        consumers = self._consumers.get(id(e))
        if not consumers:
            return True  # unknown reader — store defensively
        return any(id(c) not in run_ids for c in consumers)

    # -- segment emission -----------------------------------------------

    def emit_segment(self, gen, em, exprs: Sequence[Expr]) -> None:
        """Emit one compute segment: fused C runs + Python fallbacks.

        Maximal runs of C-able elementwise expressions with the same
        flat per-rank element count become one compiled loop each;
        everything else goes through the generator's normal
        ``_emit_op`` emission, reading and writing the same ``V``.
        """
        runs: List[Tuple[str, List[Expr], int]] = []
        for e in exprs:
            if self._c_able(e):
                n = _prod(e.per_rank_shape())
                if runs and runs[-1][0] == "c" and runs[-1][2] == n:
                    runs[-1][1].append(e)
                else:
                    runs.append(("c", [e], n))
            else:
                if runs and runs[-1][0] == "py":
                    runs[-1][1].append(e)
                else:
                    runs.append(("py", [e], 0))
        for kind, group, n in runs:
            if kind == "py":
                for e in group:
                    gen._emit_op(em, e)
            else:
                self._emit_c_run(gen, em, group, n)

    def _emit_c_run(self, gen, em, run: List[Expr], n: int) -> None:
        run_ids = {id(e) for e in run}
        var_of: Dict[int, str] = {}
        arrays: List[_Array] = []
        arr_index: Dict[str, int] = {}
        scalars: List[str] = []
        scalar_index: Dict[str, int] = {}
        body: List[str] = []

        def operand(x: Expr) -> str:
            if id(x) in var_of:
                return var_of[id(x)]
            if isinstance(x, Const):
                # bake the literal, rounded to the Const's declared
                # dtype first — the Python path materializes e.g. an
                # FP32 0.1 as float64(float32(0.1)), not the raw double
                val = float(np.asarray(x.value, dtype=x.dtype.to_numpy()))
                key = f"c:{x.name}"
                if key not in scalar_index:
                    scalar_index[key] = len(scalars)
                    scalars.append(repr(val))
                return f"S[{scalar_index[key]}]"
            nx = _prod(x.per_rank_shape())
            if nx == 1:
                # 0-d value read from V; float() is the exact f64 upcast
                if x.name not in scalar_index:
                    scalar_index[x.name] = len(scalars)
                    scalars.append(f"float(V[{x.name!r}])")
                return f"S[{scalar_index[x.name]}]"
            if x.name not in arr_index:
                arr_index[x.name] = len(arrays)
                arrays.append(_Array(
                    f"a{len(arrays)}", _cdt(x.dtype),
                    f"V[{x.name!r}]", nx,
                ))
            a = arrays[arr_index[x.name]]
            idx = "i" if a.n == n else f"i % {a.n}LL"
            return _load(a.cvar, a.dt, idx)

        stores: List[Tuple[Expr, _Array]] = []
        for j, e in enumerate(run):
            if isinstance(e, ops.Binary):
                a, b = (operand(x) for x in e.inputs)
                if e.op == "max":
                    core = f"repro_max({a}, {b})"
                elif e.op == "min":
                    core = f"repro_min({a}, {b})"
                else:
                    core = f"({a}) {e.op} ({b})"
            elif isinstance(e, ops.Unary):
                x = operand(e.inputs[0])
                core = {
                    "sqrt": f"sqrt({x})",
                    "rsqrt": f"1.0 / sqrt({x})",
                    "relu": f"repro_max({x}, 0.0)",
                    "abs": f"fabs({x})",
                }[e.op]
            else:  # Cast / Update: the value, rounded to the out dtype
                core = operand(e.inputs[0])
            var = f"e{j}"
            dt = _cdt(e.dtype)
            body.append(f"double {var} = {_round(dt, core)};")
            var_of[id(e)] = var
            if self._escapes(e, run_ids):
                out = _Array(
                    f"o{len(arrays)}", dt, f"V[{e.name!r}]", n
                )
                arrays.append(out)
                stores.append((e, out))
                body.append(_store(out.cvar, out.dt, "i", var))

        fn = self._fresh_fn(f"s_{run[0].name}")
        lines = [f"void {fn}(char** A, double* S) {{"]
        for k, a in enumerate(arrays):
            const = "" if any(a is o for _, o in stores) else "const "
            lines.append(
                f"    {const}{_CTYPE[a.dt]}* {a.cvar} = "
                f"({const}{_CTYPE[a.dt]}*)A[{k}];"
            )
        if not scalars:
            lines.append("    (void)S;")
        lines.append(f"    for (long long i = 0; i < {n}LL; ++i) {{")
        lines.extend(f"        {ln}" for ln in body)
        lines.append("    }")
        lines.append("}")
        self.functions.append("\n".join(lines) + "\n")

        names = ", ".join(e.name for e in run)
        em.emit(f"# compiled native segment ({fn}): {names}")
        for e, out in stores:
            shape = e.per_rank_shape()
            em.emit(
                f"V[{e.name!r}] = np.empty({shape!r}, "
                f"dtype=np.{e.dtype.to_numpy().name})"
            )
        refs = ", ".join(a.py_ref for a in arrays)
        sc = ", ".join(scalars)
        em.emit(
            f"_K.call({fn!r}, ({refs},), ({sc + ',' if sc else ''}))"
        )
        for e, _ in stores:
            if isinstance(e, ops.Update):
                gen._emit_update_store(em, e, f"V[{e.name!r}]")

    # -- GEMM ------------------------------------------------------------

    def emit_gemm(self, gen, em, e: Expr, out_var: Optional[str] = None
                  ) -> bool:
        """BLAS-dispatch a MatMul; False when it must stay in Python.

        ``(…, M, K) @ (K, N)`` flattens the leading dims into one
        row-major GEMM. fp16 operands are upconverted to fp32 on the
        Python side (the GEMM itself accumulates in fp32, like numpy's
        half inner loop — the accumulation *order* differs, which is
        exactly the documented BLAS tolerance), fp64 runs in dgemm.
        """
        if not isinstance(e, ops.MatMul):
            return False
        a, b = e.inputs
        if isinstance(a, Const) or isinstance(b, Const):
            return False
        if _cdt(a.dtype) is None or _cdt(b.dtype) is None:
            return False
        if _cdt(e.dtype) is None:
            return False
        ashape = a.per_rank_shape()
        bshape = b.per_rank_shape()
        oshape = e.per_rank_shape()
        if len(bshape) != 2 or len(ashape) < 2:
            return False
        if ashape[-1] != bshape[0] or oshape[-1] != bshape[1]:
            return False
        if oshape[:-1] != ashape[:-1]:
            return False
        M = _prod(ashape[:-1])
        K = ashape[-1]
        N = bshape[1]
        edt = e.dtype.to_numpy().name
        # compute dtype: f64 iff the result is f64, else f32
        ct = "float64" if edt == "float64" else "float32"
        fn = self._fresh_fn(f"g_{e.name}")
        ctyp = _CTYPE[ct]
        gemm = "repro_gemm_f64" if ct == "float64" else "repro_gemm_f32"
        self.functions.append(
            f"void {fn}(char** A, double* S) {{\n"
            f"    (void)S;\n"
            f"    {gemm}((const {ctyp}*)A[0], (const {ctyp}*)A[1], "
            f"({ctyp}*)A[2], {M}LL, {N}LL, {K}LL);\n"
            f"}}\n"
        )
        np_ct = f"np.{ct}"
        em.emit(f"# native GEMM ({fn}): BLAS or tiled-C fallback")
        for ref, src in (("_ga", gen._ref(a)), ("_gb", gen._ref(b))):
            em.emit(f"{ref} = {src}")
            em.emit(f"if {ref}.dtype != {np_ct}:")
            em.indent += 1
            em.emit(f"{ref} = {ref}.astype({np_ct})")
            em.indent -= 1
        em.emit(f"_go = np.empty({tuple(oshape)!r}, dtype={np_ct})")
        em.emit(f"_K.call({fn!r}, (_ga, _gb, _go))")
        out = out_var if out_var is not None else f"V[{e.name!r}]"
        if ct == edt:
            em.emit(f"{out} = _go")
        else:
            em.emit(f"{out} = _go.astype(np.{edt})")
        return True
