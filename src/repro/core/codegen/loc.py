"""Line-of-code accounting for generated kernels and DSL programs.

Table 3 of the paper compares "Generated CUDA" lines against "Program
in CoCoNet" lines; we measure the same two quantities for our generated
Python and DSL programs. Blank lines and comment-only lines are not
counted (matching how `cloc` counts code).
"""

from __future__ import annotations


def count_loc(source: str) -> int:
    """Count non-blank, non-comment source lines."""
    count = 0
    for line in source.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        count += 1
    return count
