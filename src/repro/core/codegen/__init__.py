"""The CoCoNet code generator (Section 5).

"For each operation, CoCoNet either generates (i) a call to a collective
communication operation, (ii) a CUDA kernel for fused computations,
(iii) a CUDA kernel for fused-collective communications, or (iv) CUDA
kernels for overlapping of communication and computation operations."

The reproduction generates *Python* kernels against the simulated
multi-rank runtime instead of CUDA against real GPUs:

* plain collectives become generated calls into the reference
  collective library (the analogue of calling NCCL);
* fused computation becomes a generated per-rank kernel with the whole
  expression chain inlined;
* fused collectives become generated ring step loops (reduce-scatter
  phase, fused computation applied to the scatter-complete slice,
  all-gather phase) with per-protocol pack handling;
* overlapped groups become a generated chunk orchestrator with
  spin-lock flags, producing chunks in each rank's ring order.

Every generated module is executable, and its results are required (by
the differential tests) to match the interpreting executor exactly.
Generated line counts feed Table 3.

``CodeGenerator(target="spmd")`` emits a second flavour of module: a
per-rank program whose kernels bind to a
:class:`repro.runtime.spmd.SpmdCommunicator` and execute as one real OS
process per rank (:class:`GeneratedSpmdProgram`).

``CodeGenerator(target="native")`` emits the same per-rank module with
the compute segments rendered to C — elementwise chains fused into one
compiled loop each, GEMMs dispatched to BLAS — built with ``cc`` and
memoized in :mod:`repro.core.codegen.native`'s on-disk
content-addressed kernel cache. Communication still runs over the
``SpmdCommunicator``, so overlap chunk loops release real compute
early.
"""

from repro.core.codegen.generator import (
    CodeGenerator,
    GeneratedProgram,
    GeneratedSpmdProgram,
)
from repro.core.codegen.loc import count_loc

__all__ = [
    "CodeGenerator",
    "GeneratedProgram",
    "GeneratedSpmdProgram",
    "count_loc",
]
