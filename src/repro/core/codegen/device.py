"""Device-function library imported by generated kernels.

Real CoCoNet kernels call CUDA device functions and NCCL primitives;
our generated Python kernels call these helpers. Keeping them in a
library (rather than inlining) mirrors how generated CUDA links against
device-side headers.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.runtime.rng import dropout_mask  # noqa: F401  (re-export)
from repro.runtime.world import check_divisible


def slice_bounds(extent: int, index: int, parts: int, context: str = ""):
    """Half-open bounds of slice ``index`` of ``parts`` over ``extent``.

    Uneven extents raise instead of silently truncating the tail (which
    would leave stale values in the untouched region); ``context`` names
    the tensor/op for the error message.
    """
    step = check_divisible((extent,), 0, parts, context)
    return index * step, (index + 1) * step


def take_slice(
    array: np.ndarray, dim: int, index: int, parts: int, context: str = ""
) -> np.ndarray:
    lo, hi = slice_bounds(array.shape[dim], index, parts, context)
    sl = [slice(None)] * array.ndim
    sl[dim] = slice(lo, hi)
    return array[tuple(sl)]


def write_slice(
    array: np.ndarray,
    dim: int,
    index: int,
    parts: int,
    value: np.ndarray,
    context: str = "",
) -> None:
    lo, hi = slice_bounds(array.shape[dim], index, parts, context)
    sl = [slice(None)] * array.ndim
    sl[dim] = slice(lo, hi)
    array[tuple(sl)] = value


def update_storage(
    storage: Dict[int, np.ndarray],
    rank: int,
    value: np.ndarray,
    sliced_dim: "int | None",
    local_index: int,
    parts: int,
    context: str = "",
) -> None:
    """Write an Update's value into a tensor's per-rank storage.

    A sliced value written to full-size (replicated) storage covers only
    the rank's slice region — the rest becomes valid when an AllGather
    writes back (Figure 6b's ``agP``).
    """
    dtype = storage[rank].dtype
    if sliced_dim is None or storage[rank].shape == value.shape:
        storage[rank] = value.astype(dtype)
    else:
        write_slice(
            storage[rank], sliced_dim, local_index, parts,
            value.astype(dtype), context=context,
        )


def conv2d(x: np.ndarray, w: np.ndarray, stride: int, padding: int) -> np.ndarray:
    """Library convolution call (cuDNN analogue)."""
    from repro.runtime.executor import _conv2d

    return _conv2d(x, w, stride, padding)


def pack_stats(nbytes: int, pack_bytes: int):
    """(full packs, tail bytes) of a buffer under a protocol pack size.

    Mirrors §5.2: the number of elements loaded at once follows from the
    protocol's pack type and the largest operand element type.
    """
    return nbytes // pack_bytes, nbytes % pack_bytes


def ring_reduce_scatter(
    values: Dict[int, np.ndarray], ranks: Sequence[int], dim: int
) -> Dict[int, np.ndarray]:
    """Step-wise ring reduce-scatter (float64 accumulation).

    Returns each rank's fully reduced slice. Kept here as the device
    library's "communication primitive"; generated fused kernels unroll
    the same steps inline when they need to interleave computation.
    """
    n = len(ranks)
    chunks = {
        r: [
            take_slice(values[r].astype(np.float64), dim, c, n)
            for c in range(n)
        ]
        for r in ranks
    }
    # Step t: rank i sends chunk (i - 1 - t) mod n to its ring neighbour,
    # which accumulates it; after n-1 steps rank i owns chunk i.
    for step in range(n - 1):
        moving = [
            (i, (i - 1 - step) % n, chunks[r][(i - 1 - step) % n])
            for i, r in enumerate(ranks)
        ]
        for i, c, data in moving:
            dst = ranks[(i + 1) % n]
            chunks[dst][c] = chunks[dst][c] + data
    return {r: chunks[r][i] for i, r in enumerate(ranks)}


def ring_all_gather(
    slices: Dict[int, np.ndarray], ranks: Sequence[int], dim: int
) -> Dict[int, np.ndarray]:
    """Step-wise ring all-gather of per-rank slices."""
    n = len(ranks)
    have: Dict[int, Dict[int, np.ndarray]] = {
        r: {i: slices[r]} for i, r in enumerate(ranks)
    }
    for step in range(n - 1):
        moving = [
            (i, (i - step) % n, have[r][(i - step) % n])
            for i, r in enumerate(ranks)
        ]
        for i, c, data in moving:
            dst = ranks[(i + 1) % n]
            have[dst][c] = data
    return {
        r: np.concatenate([have[r][c] for c in range(n)], axis=dim)
        for r in ranks
    }
