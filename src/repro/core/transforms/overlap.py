"""The overlap transformation (Sections 2.4, 3.4, 5.3).

"CoCoNet provides the overlap transformation to overlap a series of
producer-consumer operations to utilize multiple resources of hardware
simultaneously." Validity: "Overlapping multiple operations is valid
only when all operations have a producer-consumer relationship between
them."

Overlap does not alter the DFG; it records an :class:`OverlapGroup` in
the execution plan. The performance model executes overlapped kernels at
chunk granularity — the producer kernel computes chunks in the order the
consumer collective communicates them (Figure 9), each kernel launched
exactly once.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence, Union

from repro.core import dfg
from repro.core.tensor import Expr
from repro.core.transforms.plan import FusedBlock, OverlapGroup
from repro.errors import TransformError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.transforms.schedule import Schedule

Item = Union[Expr, FusedBlock]


def _item_exprs(item: Item) -> List[Expr]:
    return item.members if isinstance(item, FusedBlock) else [item]


def apply_overlap(sched: "Schedule", items: Sequence[Item]) -> OverlapGroup:
    """Overlap a producer→consumer chain of operations / fused blocks."""
    if len(items) < 2:
        raise TransformError("overlap requires at least two operations")
    resolved: List[Item] = []
    for it in items:
        if isinstance(it, FusedBlock):
            it.members = [sched.resolve(m) for m in it.members]
            resolved.append(it)
        else:
            resolved.append(sched.resolve(it))

    ops_in_program = set(sched.program.operations)
    for it in resolved:
        for e in _item_exprs(it):
            if e not in ops_in_program:
                raise TransformError(
                    f"{e.signature()} is not an operation of the current "
                    f"program"
                )

    # Producer-consumer validity: each item's output must feed the next.
    for producer, consumer in zip(resolved, resolved[1:]):
        out = _item_exprs(producer)[-1]
        consumer_exprs = _item_exprs(consumer)
        consumed = any(
            out in dfg.reachable(list(c.inputs)) or out in c.inputs
            for c in consumer_exprs
        )
        if not consumed:
            p_name = producer.name if isinstance(producer, FusedBlock) else producer.name
            c_name = consumer.name if isinstance(consumer, FusedBlock) else consumer.name
            raise TransformError(
                f"overlap requires a producer-consumer relationship: "
                f"{c_name} does not consume {p_name}"
            )

    group = OverlapGroup(resolved)
    sched._overlaps.append(group)
    names = ", ".join(
        it.name if isinstance(it, FusedBlock) else it.name for it in resolved
    )
    sched._record(f"overlap({names}) -> {group.name}")
    return group
