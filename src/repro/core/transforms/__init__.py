"""CoCoNet's semantics-preserving transformations (Section 3).

* :func:`~repro.core.transforms.schedule.Schedule.split` — break an
  AllReduce into ReduceScatter + AllGather (§3.1);
* :func:`~repro.core.transforms.schedule.Schedule.reorder` — move an
  AllGather past computations / P2P sends, slicing them (§3.2);
* :func:`~repro.core.transforms.schedule.Schedule.fuse` — merge
  computations and communication into single kernels (§3.3);
* :func:`~repro.core.transforms.schedule.Schedule.overlap` — fine-grained
  overlap of producer-consumer operations (§3.4);

plus the helpers ``asSlice`` and ``dead`` used by the optimized Adam
schedule of Figure 6b.

The :class:`Schedule` object applies transformations to a program while
recording each step, so a schedule can be printed and audited — "we
call an order of transformations a schedule". (The autotuner replays
schedules from abstract move scripts; see
:mod:`repro.core.autotuner`.)
"""

from repro.core.transforms.plan import (
    ExecutionPlan,
    FusedBlock,
    FusePolicy,
    Kernel,
    KernelKind,
    OverlapGroup,
    SplitPolicy,
)
from repro.core.transforms.schedule import Schedule

# Paper-style policy aliases
ARSplitRSAG = SplitPolicy.AR_SPLIT_RS_AG
ARSplitReduceBroadcast = SplitPolicy.AR_SPLIT_REDUCE_BCAST
A2ASplitHierarchical = SplitPolicy.A2A_SPLIT_HIERARCHICAL
ComputationFuse = FusePolicy.COMPUTATION
AllReduceFuse = FusePolicy.ALLREDUCE
SendFuse = FusePolicy.SEND
AllToAllFuse = FusePolicy.ALLTOALL

__all__ = [
    "Schedule",
    "ExecutionPlan",
    "Kernel",
    "KernelKind",
    "FusedBlock",
    "OverlapGroup",
    "SplitPolicy",
    "FusePolicy",
    "ARSplitRSAG",
    "ARSplitReduceBroadcast",
    "A2ASplitHierarchical",
    "ComputationFuse",
    "AllReduceFuse",
    "SendFuse",
    "AllToAllFuse",
]
