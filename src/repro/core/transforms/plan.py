"""Execution plans: how a program's DFG maps onto kernels.

The paper's ``fuse`` and ``overlap`` transformations do not change what a
program computes — they change *how* it executes: which operations share
a GPU kernel, and which kernels run concurrently at chunk granularity.
We model that explicitly: a :class:`Kernel` is an ordered set of DFG
vertices executed together; an :class:`ExecutionPlan` is the ordered
kernel list plus overlap groups. The default plan gives every operation
its own library kernel — exactly the state of the art the paper starts
from ("computation and communication kernels are invoked separately").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import ops
from repro.core.tensor import Expr


class SplitPolicy(Enum):
    """Policies for the split transformation (Section 3.1)."""

    AR_SPLIT_RS_AG = "ARSplitRSAG"
    AR_SPLIT_REDUCE_BCAST = "ARSplitReduceBroadcast"
    A2A_SPLIT_HIERARCHICAL = "A2ASplitHierarchical"


class FusePolicy(Enum):
    """Policies for the fuse transformation (Section 3.3)."""

    COMPUTATION = "ComputationFuse"
    ALLREDUCE = "AllReduceFuse"
    SEND = "SendFuse"
    ALLTOALL = "AllToAllFuse"


class KernelKind(Enum):
    """What kind of GPU kernel executes a set of operations."""

    GEMM = "gemm"                    # cuBLAS/CUTLASS call
    CONV = "conv"                    # cuDNN call
    ELEMENTWISE = "elementwise"      # one pointwise op per kernel
    FUSED_ELEMENTWISE = "fused_elementwise"
    COLLECTIVE = "collective"        # plain NCCL call
    FUSED_COLLECTIVE = "fused_collective"  # NCCL kernel with fused compute
    P2P = "p2p"
    FUSED_P2P = "fused_p2p"


_block_counter = [0]


class FusedBlock:
    """A group of DFG vertices fused into one kernel.

    Returned by ``Schedule.fuse``; can be passed back into subsequent
    transformations (reorder of a fused computation block, overlap of a
    FusedAllReduce with a MatMul, ...). Members are kept up to date by
    the owning Schedule when later transformations rewrite the graph.
    """

    def __init__(self, policy: FusePolicy, members: Sequence[Expr]):
        self.policy = policy
        self.members: List[Expr] = list(members)
        _block_counter[0] += 1
        self.name = f"{policy.value.lower()}_{_block_counter[0]}"

    @property
    def output(self) -> Expr:
        """The last member — the block's externally visible result."""
        return self.members[-1]

    def kernel_kind(self) -> KernelKind:
        if self.policy is FusePolicy.COMPUTATION:
            return KernelKind.FUSED_ELEMENTWISE
        if self.policy in (FusePolicy.ALLREDUCE, FusePolicy.ALLTOALL):
            return KernelKind.FUSED_COLLECTIVE
        return KernelKind.FUSED_P2P

    def __repr__(self) -> str:
        names = ", ".join(m.name for m in self.members)
        return f"FusedBlock<{self.policy.value}>({names})"


class OverlapGroup:
    """Kernels overlapped in a fine-grained, chunk-synchronized manner.

    "CoCoNet provides the overlap transformation to overlap a series of
    producer-consumer operations to utilize multiple resources of
    hardware simultaneously" (Section 3.4). Items are exprs or fused
    blocks, ordered producer → consumer.
    """

    def __init__(self, items: Sequence["Expr | FusedBlock"]):
        self.items: List["Expr | FusedBlock"] = list(items)
        _block_counter[0] += 1
        self.name = f"overlap_{_block_counter[0]}"

    def __repr__(self) -> str:
        names = ", ".join(
            i.name if isinstance(i, FusedBlock) else i.name for i in self.items
        )
        return f"OverlapGroup({names})"


@dataclass
class Kernel:
    """One GPU kernel launch: an ordered set of operations it executes."""

    name: str
    kind: KernelKind
    exprs: Tuple[Expr, ...]
    #: name of the overlap group this kernel belongs to, if any — set
    #: during plan derivation so a kernel is debuggable on its own
    overlap_group: Optional[str] = None

    @property
    def output(self) -> Expr:
        return self.exprs[-1]

    def comm_bytes(self) -> int:
        """Per-rank bytes of the communication ops in this kernel."""
        return sum(
            e.inputs[0].per_rank_bytes()
            for e in self.exprs
            if isinstance(e, ops.CommOp)
        )

    def __repr__(self) -> str:
        member = (
            f", in {self.overlap_group}" if self.overlap_group else ""
        )
        return (
            f"Kernel({self.name}, {self.kind.value}, "
            f"{len(self.exprs)} ops{member})"
        )


@dataclass
class ExecutionPlan:
    """Ordered kernels plus overlap groups for one scheduled program."""

    kernels: List[Kernel] = field(default_factory=list)
    overlap_groups: List[List[str]] = field(default_factory=list)

    def kernel_of(self, expr: Expr) -> Optional[Kernel]:
        for k in self.kernels:
            if any(e is expr for e in k.exprs):
                return k
        return None

    @property
    def num_launches(self) -> int:
        """Kernel launches per program invocation.

        Overlapped kernels still launch once each ("we need to invoke
        only one MatMul kernel and AllReduce kernel", Section 1) so this
        is simply the kernel count.
        """
        return len(self.kernels)

    def describe(self, lowered=None) -> str:
        """Render the plan; with a lowered program, annotate each kernel
        with its stream assignment and each overlap group with its chunk
        count and mode (the facts only the lowering knows)."""
        streams: Dict[str, str] = {}
        chunk_info: Dict[int, str] = {}
        if lowered is not None:
            for launch in lowered.launches():
                streams[launch.name] = launch.stream
            loops = lowered.chunk_loops()
            for gi, group in enumerate(self.overlap_groups):
                # the lowered loop may hold *more* kernels than the plan
                # group (interposed dependents, merged groups), so match
                # on containment, not equality
                loop = next(
                    (
                        lo for lo in loops
                        if set(group) <= set(lo.member_names)
                    ),
                    None,
                )
                if loop is not None:
                    kind = "ring" if loop.ring else "tiled"
                    chunk_info[gi] = f" [{loop.num_chunks} chunks, {kind}]"
        lines = []
        for k in self.kernels:
            members = ", ".join(e.name for e in k.exprs)
            at = f" @ {streams[k.name]}" if k.name in streams else ""
            lines.append(f"{k.name}: {k.kind.value} [{members}]{at}")
        for gi, group in enumerate(self.overlap_groups):
            lines.append(
                f"overlap: {' <-> '.join(group)}{chunk_info.get(gi, '')}"
            )
        return "\n".join(lines)


def singleton_kind(e: Expr) -> KernelKind:
    """Kernel kind for an operation executed on its own."""
    if isinstance(e, ops.MatMul):
        return KernelKind.GEMM
    if isinstance(e, ops.Conv2D):
        return KernelKind.CONV
    if isinstance(e, ops.Send):
        return KernelKind.P2P
    if isinstance(e, ops.CommOp):
        return KernelKind.COLLECTIVE
    return KernelKind.ELEMENTWISE
