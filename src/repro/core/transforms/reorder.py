"""The reorder transformation (Section 3.2).

"AllGather Reorder reorders an AllGather with communication and
computation operations. ... (i) the output of AllGather used in the
computation is replaced by the input of AllGather, and (ii) since the
input of AllGather is sliced, all tensors input to the computations are
also sliced along the same dimension as the input of AllGather. ...
Furthermore, the new AllGather is performed on the outputs of the
computations."

Validity: "the reorder transformation is valid only if operations being
reordered with an AllGather can be sliced along the dimension the
AllGather is performed." Pointwise ops, Dropout, Update and P2P Send are
sliceable; tensor reductions (Norm/ReduceTensor) remain valid because a
reduction over a sliced tensor performs a local reduction plus an
AllReduce (Section 5.2); MatMul/Conv are rejected.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from repro.core import dfg, inference, ops
from repro.core.tensor import Expr
from repro.errors import CoCoNetError, TransformError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.transforms.schedule import Schedule

_SLICEABLE = (
    ops.PointwiseOp,  # Binary/Unary/Dropout/Cast/Slice/Update
    ops.Norm,
    ops.ReduceTensor,
    ops.Send,
)


def _check_sliceable(op: Expr) -> None:
    if isinstance(op, (ops.MatMul, ops.Conv2D)):
        raise TransformError(
            f"{op.signature()} cannot be reordered with an AllGather: "
            f"matrix operations are not sliceable along the gather dim"
        )
    if not isinstance(op, _SLICEABLE):
        raise TransformError(
            f"{type(op).__name__} ({op.signature()}) is not sliceable"
        )


def _slice_operand(
    inp: Expr, op: Expr, dim: int, cache: Dict[Tuple[int, int], Expr]
) -> Expr:
    """Slice a replicated operand of a region op if it spans ``dim``.

    One Slice vertex is shared per (operand, dimension) pair across the
    region — several consumers of e.g. the parameter tensor read the
    same slice.
    """
    if not inp.layout.is_replicated or not inp.shape:
        return inp
    if isinstance(op, (ops.Norm, ops.ReduceTensor)):
        # Full reductions: slicing any dim preserves the (cross-rank)
        # reduction semantics; slice along the gather dim when possible.
        if dim < len(inp.shape) and inp.shape[dim] % inp.group.size == 0:
            j = dim
        else:
            return inp
    else:
        out_rank = len(op.shape)
        j = dim - (out_rank - len(inp.shape))
        if j < 0 or inp.shape[j] <= 1:
            return inp
    key = (id(inp), j)
    if key not in cache:
        cache[key] = ops.Slice(inp, j)  # default name is made unique
    return cache[key]


def apply_broadcast_reorder(
    sched: "Schedule", bc: Expr, region: Sequence[Expr]
) -> Tuple[List[Expr], List[Expr]]:
    """Reorder a Broadcast past computations (§3.2 names both forms).

    The computations move *before* the Broadcast: instead of every rank
    computing on the broadcast value, only the root computes and the
    results are broadcast. Valid when every region op reads only the
    broadcast value, replicated operands, or other region ops — the
    root then has everything it needs.
    """
    bc = sched.resolve(bc)
    if not isinstance(bc, ops.Broadcast):
        raise TransformError(
            f"broadcast reorder expects a Broadcast, got {type(bc).__name__}"
        )
    region = [sched.resolve(e) for e in region]
    prog = sched.program
    position = {e: i for i, e in enumerate(prog.operations)}
    for e in region:
        if e not in position:
            raise TransformError(
                f"{e.signature()} is not an operation of the current program"
            )
    region = sorted(set(region), key=position.__getitem__)
    region_set = set(region)
    users = dfg.users_map(prog.roots)
    for u in users.get(bc, []):
        if u not in region_set:
            raise TransformError(
                f"cannot reorder: {u.signature()} consumes {bc.name} but "
                f"is not part of the reordered region"
            )
    src = bc.inputs[0]
    for op in region:
        if not isinstance(op, ops.PointwiseOp):
            raise TransformError(
                f"{type(op).__name__} cannot be reordered with a Broadcast"
            )
        for inp in op.inputs:
            ok = (
                inp is bc
                or inp in region_set
                or inp.layout.is_replicated
            )
            if not ok:
                raise TransformError(
                    f"{op.name} reads non-replicated {inp.signature()}; "
                    f"the root cannot compute it before the Broadcast"
                )
    mapping: Dict[Expr, Expr] = {bc: src}
    new_region: List[Expr] = []
    for op in region:
        new_inputs = tuple(mapping.get(i, i) for i in op.inputs)
        clone = dfg.clone_with_inputs(op, new_inputs)
        mapping[op] = clone
        new_region.append(clone)
    live_outs = dfg.region_live_outs(region, prog.roots)
    broadcasts: List[Expr] = []
    out_mapping: Dict[Expr, Expr] = {}
    for lo in live_outs:
        new_bc = ops.Broadcast(mapping[lo], root=bc.root, name=f"bc_{lo.name}")
        broadcasts.append(new_bc)
        out_mapping[lo] = new_bc
    sched._apply_rewrite(
        {**mapping, **out_mapping},
        fwd_overrides={op: mapping[op] for op in region},
    )
    new_region = [sched.resolve(e) for e in new_region]
    broadcasts = [sched.resolve(b) for b in broadcasts]
    sched._record(
        f"reorder({bc.name} | {', '.join(o.name for o in region)}) -> "
        f"({', '.join(o.name for o in new_region + broadcasts)})"
    )
    return new_region, broadcasts


def _check_alltoall_commutes(
    op: Expr, a2a: ops.AllToAll, region_set: "set[Expr]"
) -> None:
    """Reject region ops that do not commute with the chunk exchange.

    An AllToAll permutes equal chunks between ranks, so an operation
    moved from after it to before it must be *position-uniform*: the
    same function applied at every (rank, chunk) position. Unary and
    Cast always qualify; a Binary qualifies when its partner operand is
    a constant, a scalar, or a replicated tensor whose broadcasting
    stays out of the exchanged dimension (a per-position operand would
    end up paired with the wrong chunk). Dropout is rejected — its mask
    is keyed on the global element index, which the exchange permutes —
    and so are reductions, whose per-rank value changes with ownership.
    The op must also preserve the AllToAll's shape: a broadcast that
    grows the output rank would shift the exchanged axis, so the
    reconstructed AllToAll would exchange the wrong dimension.
    """
    if op.shape != a2a.shape:
        raise TransformError(
            f"{op.name}: output shape {op.shape} differs from the "
            f"AllToAll's {a2a.shape}; the exchange cannot move past a "
            f"shape-changing operation"
        )
    if isinstance(op, (ops.Unary, ops.Cast)):
        return
    if isinstance(op, ops.Binary):
        out_rank = len(op.shape)
        for inp in op.inputs:
            if inp is a2a or inp in region_set:
                continue  # the data path being exchanged
            if not inp.shape and inp.layout.is_replicated:
                continue  # Const / Scalar: same value on every rank
            if inp.layout.is_replicated and not inference.covers_dim(
                inp.shape, out_rank, a2a.dim
            ):
                continue
            # everything else — including 0-d Local values like the Norm
            # of a per-rank tensor — differs by rank or position, so the
            # moved op would pair chunks with the wrong rank's value
            raise TransformError(
                f"{op.name}: operand {inp.signature()} is positioned or "
                f"per-rank data relative to {a2a.name}; it cannot move "
                f"across the exchange"
            )
        return
    raise TransformError(
        f"{type(op).__name__} ({op.signature()}) does not commute with "
        f"an AllToAll"
    )


def apply_alltoall_reorder(
    sched: "Schedule", a2a: ops.AllToAll, region: Sequence[Expr]
) -> Tuple[List[Expr], List[ops.AllToAll]]:
    """Reorder an AllToAll past position-uniform pointwise computations.

    ``f(AllToAll(x))`` becomes ``AllToAll(f(x))``: the computations move
    *before* the exchange (where they can fuse with producers or with
    the exchange kernel itself), and a new AllToAll is performed on each
    of the region's live-out values. Valid because an AllToAll is a
    permutation of equal chunks and the region ops are required to be
    position-uniform (see :func:`_check_alltoall_commutes`).
    """
    a2a = sched.resolve(a2a)
    block = sched._block_of(a2a)
    if block is not None:
        raise TransformError(
            f"cannot reorder: {a2a.name} is fused into {block.name}; "
            f"unfuse the block first"
        )
    region = [sched.resolve(e) for e in region]
    prog = sched.program
    position = {e: i for i, e in enumerate(prog.operations)}
    for e in region:
        if e not in position:
            raise TransformError(
                f"{e.signature()} is not an operation of the current program"
            )
    region = sorted(set(region), key=position.__getitem__)
    region_set = set(region)

    users = dfg.users_map(prog.roots)
    for u in users.get(a2a, []):
        if u not in region_set:
            raise TransformError(
                f"cannot reorder: {u.signature()} consumes {a2a.name} but "
                f"is not part of the reordered region"
            )
    if a2a in prog.roots:
        raise TransformError(
            f"cannot reorder: {a2a.name} is a program output; include its "
            f"consumers in the region"
        )
    # Every region op must (transitively, within the region) consume the
    # exchange: an unrelated op would get wrapped in a spurious AllToAll
    # that permutes its values across ranks.
    consuming: set = set()
    for op in region:
        if any(i is a2a or i in consuming for i in op.inputs):
            consuming.add(op)
    for op in region:
        if op not in consuming:
            raise TransformError(
                f"cannot reorder: {op.signature()} does not consume "
                f"{a2a.name}; remove it from the region"
            )
    for op in region:
        _check_alltoall_commutes(op, a2a, region_set)

    x = a2a.inputs[0]
    live_outs = dfg.region_live_outs(region, prog.roots)
    mapping: Dict[Expr, Expr] = {a2a: x}
    new_region: List[Expr] = []
    for op in region:
        new_inputs = tuple(mapping.get(i, i) for i in op.inputs)
        clone = dfg.clone_with_inputs(op, new_inputs)
        mapping[op] = clone
        new_region.append(clone)

    exchanges: List[ops.AllToAll] = []
    out_mapping: Dict[Expr, Expr] = {}
    for lo in live_outs:
        ex = ops.AllToAll(mapping[lo], dim=a2a.dim, name=f"a2a_{lo.name}")
        exchanges.append(ex)
        out_mapping[lo] = ex

    sched._apply_rewrite(
        {**mapping, **out_mapping},
        fwd_overrides={op: mapping[op] for op in region},
    )
    new_region = [sched.resolve(e) for e in new_region]
    exchanges = [sched.resolve(e) for e in exchanges]
    sched._record(
        f"reorder({a2a.name} | {', '.join(o.name for o in region)}) -> "
        f"({', '.join(o.name for o in new_region + exchanges)})"
    )
    return new_region, exchanges


def apply_reorder(
    sched: "Schedule", ag: Expr, region: Sequence[Expr]
) -> Tuple[List[Expr], List[ops.AllGather]]:
    """Reorder ``ag`` past the ops in ``region``.

    Returns the sliced clones of the region ops (in topological order)
    and the new AllGathers over the region's live-out values.
    """
    ag = sched.resolve(ag)
    if isinstance(ag, ops.Broadcast):
        return apply_broadcast_reorder(sched, ag, region)
    if isinstance(ag, ops.AllToAll):
        return apply_alltoall_reorder(sched, ag, region)
    if not isinstance(ag, ops.AllGather):
        raise TransformError(
            f"reorder expects an AllGather, got {type(ag).__name__}"
        )
    region = [sched.resolve(e) for e in region]

    prog = sched.program
    # Order region ops topologically within the current program.
    position = {e: i for i, e in enumerate(prog.operations)}
    for e in region:
        if e not in position:
            raise TransformError(
                f"{e.signature()} is not an operation of the current program"
            )
    region = sorted(set(region), key=position.__getitem__)
    region_set = set(region)

    users = dfg.users_map(prog.roots)
    for u in users.get(ag, []):
        if u not in region_set:
            raise TransformError(
                f"cannot reorder: {u.signature()} consumes {ag.name} but is "
                f"not part of the reordered region"
            )
    if ag in prog.roots:
        raise TransformError(
            f"cannot reorder: {ag.name} is a program output; include its "
            f"consumers in the region"
        )
    for op in region:
        _check_sliceable(op)

    dim = ag.dim
    rs_out = ag.inputs[0]
    live_outs = dfg.region_live_outs(region, prog.roots)

    # Build sliced clones of the region, substituting ag -> its input and
    # slicing replicated operands that span the gather dimension.
    mapping: Dict[Expr, Expr] = {ag: rs_out}
    slice_cache: Dict[Tuple[int, int], Expr] = {}
    new_region: List[Expr] = []
    for op in region:
        new_inputs = []
        for inp in op.inputs:
            cur = mapping.get(inp, inp)
            if inp not in mapping:
                cur = _slice_operand(cur, op, dim, slice_cache)
            new_inputs.append(cur)
        try:
            clone = dfg.clone_with_inputs(op, tuple(new_inputs))
        except CoCoNetError as err:
            raise TransformError(
                f"reorder cannot slice {op.signature()}: {err}"
            ) from err
        mapping[op] = clone
        new_region.append(clone)

    # New AllGathers over live-out values; gathers of in-place Updates
    # write the gathered value back to the (still replicated) target.
    gathers: List[ops.AllGather] = []
    out_mapping: Dict[Expr, Expr] = {}
    effect_gathers: List[ops.AllGather] = []
    root_set = set(prog.roots)
    for lo in live_outs:
        new_lo = mapping[lo]
        if not new_lo.layout.is_sliced:
            out_mapping[lo] = new_lo
            continue
        g = ops.AllGather(new_lo, name=f"ag_{lo.name}")
        if isinstance(lo, ops.Update) and lo.target.layout.is_replicated:
            g.writeback = lo.target
        gathers.append(g)
        out_mapping[lo] = g
        has_external_use = any(
            u not in region_set for u in users.get(lo, [])
        ) or lo in root_set
        if not has_external_use:
            effect_gathers.append(g)

    # External users of a live-out see its AllGather; handles to the op
    # itself (fused-block members, later transforms) follow the sliced
    # clone.
    sched._apply_rewrite(
        {**mapping, **out_mapping},
        extra_effects=effect_gathers,
        fwd_overrides={op: mapping[op] for op in region},
    )
    new_region = [sched.resolve(e) for e in new_region]
    gathers = [sched.resolve(g) for g in gathers]
    sched._record(
        f"reorder({ag.name} | {', '.join(o.name for o in region)}) -> "
        f"({', '.join(o.name for o in new_region + gathers)})"
    )
    return new_region, gathers
