"""The split transformation (Section 3.1).

"The split transformation breaks a collective communication operation
into two communication operations." The primary policy is **AllReduce
Split RS-AG**: AllReduce → ReduceScatter (producing a sliced tensor) +
AllGather (restoring a replicated tensor). "Since an AllReduce can always
be split to a ReduceScatter and an AllGather, this transformation is
always valid."

A second, classic equivalence is provided as ``ARSplitReduceBroadcast``:
AllReduce → Reduce-to-root + Broadcast.

For AllToAll the ``A2ASplitHierarchical`` policy applies the standard
two-level decomposition: a flat AllToAll over ``k`` nodes of ``m`` GPUs
becomes an intra-node exchange (regrouping chunks by destination-local
index, on the NVSwitch fabric) followed by an inter-node exchange among
the ranks sharing a local index — ``k-1`` large messages per NIC instead
of ``(k-1)*m`` small ones. The composition is exactly equivalent (see
:mod:`repro.runtime.collectives`), so the split is always valid.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from repro.core import ops
from repro.core.tensor import Expr
from repro.core.transforms.plan import SplitPolicy
from repro.errors import LayoutError, TransformError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.transforms.schedule import Schedule


def choose_slice_dim(x: Expr, preferred: int = 0) -> int:
    """First dimension of ``x`` evenly divisible by its group size.

    NCCL slices the flat buffer; at the DSL level we slice a concrete
    dimension, so pick one that divides evenly (preferring ``preferred``).
    """
    size = x.group.size
    dims = [preferred] + [d for d in range(len(x.shape)) if d != preferred]
    for d in dims:
        if d < len(x.shape) and x.shape[d] % size == 0:
            return d
    raise TransformError(
        f"no dimension of {x.signature()} is divisible by group size {size}"
    )


def apply_split(
    sched: "Schedule",
    ar: Expr,
    policy: SplitPolicy = SplitPolicy.AR_SPLIT_RS_AG,
    dim: "int | None" = None,
    node_size: "int | None" = None,
) -> Tuple[Expr, Expr]:
    """Split a collective; returns the two replacement operations."""
    ar = sched.resolve(ar)
    if isinstance(ar, ops.AllToAll):
        return _apply_alltoall_split(sched, ar, policy, node_size)
    if policy is SplitPolicy.A2A_SPLIT_HIERARCHICAL:
        raise TransformError(
            f"A2ASplitHierarchical expects an AllToAll, got "
            f"{type(ar).__name__} ({ar.signature()})"
        )
    if not isinstance(ar, ops.AllReduce):
        raise TransformError(
            f"split expects an AllReduce or AllToAll, got "
            f"{type(ar).__name__} ({ar.signature()})"
        )
    x = ar.inputs[0]
    if policy is SplitPolicy.AR_SPLIT_RS_AG:
        slice_dim = choose_slice_dim(x) if dim is None else dim
        try:
            rs = ops.ReduceScatter(
                ar.reduction, x, dim=slice_dim, name=f"rs_{ar.name}"
            )
        except LayoutError as err:
            raise TransformError(str(err)) from err
        ag = ops.AllGather(rs, name=f"ag_{ar.name}")
        sched._apply_rewrite({ar: ag})
        sched._record(f"split({ar.name}, ARSplitRSAG) -> ({rs.name}, {ag.name})")
        return sched.resolve(rs), sched.resolve(ag)
    if policy is SplitPolicy.AR_SPLIT_REDUCE_BCAST:
        red = ops.Reduce(ar.reduction, x, root=0, name=f"red_{ar.name}")
        bc = ops.Broadcast(red, root=0, name=f"bc_{ar.name}")
        sched._apply_rewrite({ar: bc})
        sched._record(
            f"split({ar.name}, ARSplitReduceBroadcast) -> ({red.name}, {bc.name})"
        )
        return sched.resolve(red), sched.resolve(bc)
    raise TransformError(f"unknown split policy {policy!r}")


#: Node size assumed when the caller does not pass one: the paper's
#: DGX-2 testbed (16 GPUs per node). The autotuner passes the actual
#: cluster's ``gpus_per_node``.
DEFAULT_NODE_SIZE = 16


def _apply_alltoall_split(
    sched: "Schedule",
    a2a: ops.AllToAll,
    policy: SplitPolicy,
    node_size: "int | None",
) -> Tuple[Expr, Expr]:
    """AllToAll → intra-node exchange + inter-node exchange."""
    if policy is not SplitPolicy.A2A_SPLIT_HIERARCHICAL:
        raise TransformError(
            f"an AllToAll splits only with A2ASplitHierarchical, "
            f"got {policy.value}"
        )
    block = sched._block_of(a2a)
    if block is not None:
        # Splitting a fused exchange would leave the block holding only
        # the inter phase, with the intra phase stranded outside it —
        # an unexecutable kernel plan.
        raise TransformError(
            f"cannot split: {a2a.name} is fused into {block.name}; "
            f"unfuse the block first"
        )
    x = a2a.inputs[0]
    m = DEFAULT_NODE_SIZE if node_size is None else int(node_size)
    try:
        intra = ops.AllToAllPhase(
            x, a2a.dim, "intra", m, name=f"intra_{a2a.name}"
        )
        inter = ops.AllToAllPhase(
            intra, a2a.dim, "inter", intra.node_size,
            name=f"inter_{a2a.name}",
        )
    except LayoutError as err:
        raise TransformError(str(err)) from err
    sched._apply_rewrite({a2a: inter})
    sched._record(
        f"split({a2a.name}, A2ASplitHierarchical) -> "
        f"({intra.name}, {inter.name})"
    )
    return sched.resolve(intra), sched.resolve(inter)
