"""The split transformation (Section 3.1).

"The split transformation breaks a collective communication operation
into two communication operations." The primary policy is **AllReduce
Split RS-AG**: AllReduce → ReduceScatter (producing a sliced tensor) +
AllGather (restoring a replicated tensor). "Since an AllReduce can always
be split to a ReduceScatter and an AllGather, this transformation is
always valid."

A second, classic equivalence is provided as ``ARSplitReduceBroadcast``:
AllReduce → Reduce-to-root + Broadcast.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from repro.core import ops
from repro.core.tensor import Expr
from repro.core.transforms.plan import SplitPolicy
from repro.errors import LayoutError, TransformError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.transforms.schedule import Schedule


def choose_slice_dim(x: Expr, preferred: int = 0) -> int:
    """First dimension of ``x`` evenly divisible by its group size.

    NCCL slices the flat buffer; at the DSL level we slice a concrete
    dimension, so pick one that divides evenly (preferring ``preferred``).
    """
    size = x.group.size
    dims = [preferred] + [d for d in range(len(x.shape)) if d != preferred]
    for d in dims:
        if d < len(x.shape) and x.shape[d] % size == 0:
            return d
    raise TransformError(
        f"no dimension of {x.signature()} is divisible by group size {size}"
    )


def apply_split(
    sched: "Schedule",
    ar: Expr,
    policy: SplitPolicy = SplitPolicy.AR_SPLIT_RS_AG,
    dim: "int | None" = None,
) -> Tuple[Expr, Expr]:
    """Split an AllReduce; returns the two replacement operations."""
    ar = sched.resolve(ar)
    if not isinstance(ar, ops.AllReduce):
        raise TransformError(
            f"split expects an AllReduce, got {type(ar).__name__} "
            f"({ar.signature()})"
        )
    x = ar.inputs[0]
    if policy is SplitPolicy.AR_SPLIT_RS_AG:
        slice_dim = choose_slice_dim(x) if dim is None else dim
        try:
            rs = ops.ReduceScatter(
                ar.reduction, x, dim=slice_dim, name=f"rs_{ar.name}"
            )
        except LayoutError as err:
            raise TransformError(str(err)) from err
        ag = ops.AllGather(rs, name=f"ag_{ar.name}")
        sched._apply_rewrite({ar: ag})
        sched._record(f"split({ar.name}, ARSplitRSAG) -> ({rs.name}, {ag.name})")
        return sched.resolve(rs), sched.resolve(ag)
    if policy is SplitPolicy.AR_SPLIT_REDUCE_BCAST:
        red = ops.Reduce(ar.reduction, x, root=0, name=f"red_{ar.name}")
        bc = ops.Broadcast(red, root=0, name=f"bc_{ar.name}")
        sched._apply_rewrite({ar: bc})
        sched._record(
            f"split({ar.name}, ARSplitReduceBroadcast) -> ({red.name}, {bc.name})"
        )
        return sched.resolve(red), sched.resolve(bc)
    raise TransformError(f"unknown split policy {policy!r}")
