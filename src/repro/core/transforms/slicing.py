"""Storage transformations: ``asSlice`` and ``dead`` (Section 4).

Figure 6b line 6: ``asSlice(m); asSlice(v); dead(agM); dead(agV);`` —
"slices optimizer states on all ranks to decrease memory usage and
removes corresponding AllGather." ``asSlice`` changes an input tensor's
declared layout from replicated to sliced (collapsing Slice ops on it);
``dead`` removes a side-effect operation nothing depends on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core import dfg, ops
from repro.core.process_group import RANK
from repro.core.tensor import Expr, Tensor
from repro.core.layout import Sliced
from repro.errors import CoCoNetError, TransformError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.transforms.schedule import Schedule


def apply_as_slice(sched: "Schedule", tensor: Tensor, dim: int = 0) -> Tensor:
    """Re-declare an input tensor as sliced along ``dim``.

    Slice ops over the tensor along the same dimension collapse into
    direct uses of the (now sliced) tensor. Any use that genuinely needs
    the replicated value raises, making the transformation safe.
    """
    tensor = sched.resolve(tensor)
    if not isinstance(tensor, Tensor):
        raise TransformError("asSlice expects an input Tensor")
    if not tensor.layout.is_replicated:
        raise TransformError(
            f"asSlice expects a replicated tensor, got {tensor.signature()}"
        )
    new_t = Tensor(
        tensor.dtype,
        tensor.shape,
        Sliced(dim),
        tensor.group,
        RANK,
        name=tensor.name,
    )
    mapping = {tensor: new_t}
    for e in dfg.topological(sched.program.roots):
        is_matching_slice = (
            isinstance(e, ops.Slice)
            and e.inputs[0] is tensor
            and e.layout.dim == dim
        )
        if is_matching_slice:
            mapping[e] = new_t
    try:
        sched._apply_rewrite(mapping, leaf_map={tensor: new_t})
    except CoCoNetError as err:
        raise TransformError(
            f"asSlice({tensor.name}) is invalid: a use requires the "
            f"replicated value ({err})"
        ) from err
    sched._record(f"asSlice({tensor.name}, dim={dim})")
    return new_t


def apply_dead(sched: "Schedule", var: Expr) -> None:
    """Remove a side-effect operation that is no longer needed."""
    var = sched.resolve(var)
    prog = sched.program
    if var in prog.outputs:
        raise TransformError(f"dead({var.name}): it is a program output")
    users = dfg.users_map(prog.roots)
    if users.get(var):
        names = ", ".join(u.name for u in users[var])
        raise TransformError(f"dead({var.name}): still consumed by {names}")
    if var not in prog.effects:
        if var in set(prog.operations):
            raise TransformError(
                f"dead({var.name}): operation is reachable from the outputs"
            )
        return  # already gone
    effects = tuple(e for e in prog.effects if e is not var)
    sched._set_program(
        type(prog)(prog.name, prog.inputs, prog.outputs, effects)
    )
    sched._record(f"dead({var.name})")
