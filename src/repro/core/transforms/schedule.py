"""The Schedule: apply, record, and replay transformations.

"We call an order of transformations a schedule. A user can manually
specify the schedule to optimize the program" (Section 3). A
:class:`Schedule` owns the current (rewritten) program, the fusion blocks
and overlap groups, and a textual record of every step. Old expression
handles remain usable across rewrites — the schedule chases them to
their current versions, so code written against the paper's examples
works verbatim.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core import dfg, ops
from repro.core.program import Program
from repro.core.tensor import Expr, Tensor
from repro.core.transforms import fuse as _fuse
from repro.core.transforms import overlap as _overlap
from repro.core.transforms import reorder as _reorder
from repro.core.transforms import slicing as _slicing
from repro.core.transforms import split as _split
from repro.core.transforms.plan import (
    ExecutionPlan,
    FusedBlock,
    FusePolicy,
    Kernel,
    KernelKind,
    OverlapGroup,
    SplitPolicy,
    singleton_kind,
)
from repro.errors import TransformError

Item = Union[Expr, FusedBlock]


class Schedule:
    """A program plus an ordered list of applied transformations."""

    def __init__(self, program: Program) -> None:
        self.original = program
        self.program = program
        self.steps: List[str] = []
        self._fwd: Dict[Expr, Expr] = {}
        self._blocks: List[FusedBlock] = []
        self._overlaps: List[OverlapGroup] = []
        #: bumped on every recorded transformation; keys the caches below
        self._version = 0
        self._plan_cache: "Tuple[int, ExecutionPlan] | None" = None
        self._users_cache: "Tuple[int, Dict[Expr, List[Expr]]] | None" = None
        #: (gpus_per_node, overlap_chunks) -> (version, LoweredProgram)
        self._lowered_cache: Dict[tuple, tuple] = {}

    # -- bookkeeping ---------------------------------------------------------

    def fork(self) -> "Schedule":
        """An independent copy sharing the (immutable) expression graph.

        Transformations rewrite the program functionally — expressions
        are never mutated in place — so forking only copies the
        schedule's own bookkeeping: the forward map, the step list, and
        the fused blocks / overlap groups (whose member lists *are*
        mutated by later transformations). The autotuner forks the
        frontier schedule per move instead of replaying every move
        script from the root.
        """
        new = Schedule.__new__(Schedule)
        new.original = self.original
        new.program = self.program
        new.steps = list(self.steps)
        new._fwd = dict(self._fwd)
        block_map: Dict[int, FusedBlock] = {}
        new._blocks = []
        for b in self._blocks:
            nb = FusedBlock.__new__(FusedBlock)
            nb.policy = b.policy
            nb.members = list(b.members)
            nb.name = b.name
            block_map[id(b)] = nb
            new._blocks.append(nb)
        new._overlaps = []
        for g in self._overlaps:
            ng = OverlapGroup.__new__(OverlapGroup)
            ng.items = [block_map.get(id(it), it) for it in g.items]
            ng.name = g.name
            new._overlaps.append(ng)
        new._version = self._version
        new._plan_cache = None
        new._users_cache = None
        new._lowered_cache = {}
        return new

    def users_map(self) -> Dict[Expr, List[Expr]]:
        """Cached :func:`dfg.users_map` of the current program.

        Region-discovery helpers query consumers once per enumerated
        move; the map only changes when a transformation rewrites the
        program, so it is cached per schedule version.
        """
        if self._users_cache is None or self._users_cache[0] != self._version:
            self._users_cache = (
                self._version, dfg.users_map(self.program.roots)
            )
        return self._users_cache[1]

    def resolve(self, e: Expr) -> Expr:
        """Chase an expression to its current version in the program."""
        seen = {id(e)}
        while e in self._fwd and self._fwd[e] is not e:
            e = self._fwd[e]
            if id(e) in seen:
                break
            seen.add(id(e))
        return e

    def _record(self, step: str) -> None:
        self.steps.append(step)
        self._version += 1

    def _set_program(self, program: Program) -> None:
        self.program = program
        self._version += 1

    def _block_of(self, e: Expr) -> Optional[FusedBlock]:
        for b in self._blocks:
            if any(m is e for m in b.members):
                return b
        return None

    def _dissolve_block(self, block: FusedBlock) -> None:
        self._blocks = [b for b in self._blocks if b is not block]
        # invalidate caches even when the caller's transform later fails
        self._version += 1

    def _apply_rewrite(
        self,
        mapping: Mapping[Expr, Expr],
        leaf_map: "Mapping[Expr, Expr] | None" = None,
        extra_effects: Sequence[Expr] = (),
        fwd_overrides: "Mapping[Expr, Expr] | None" = None,
    ) -> None:
        """Rewrite the program under ``mapping``.

        ``fwd_overrides`` adjusts how *handles* resolve when that differs
        from the structural rewrite: reorder rewrites external users of a
        live-out to its new AllGather, but a handle to the op itself must
        resolve to its sliced clone (e.g. for later fusion).
        """
        prog = self.program
        roots = list(prog.outputs) + list(prog.effects) + list(extra_effects)
        new_roots, memo = dfg.rewrite(roots, mapping, leaf_map)
        n_out = len(prog.outputs)
        outputs = new_roots[:n_out]
        effects = new_roots[n_out:]
        # Deduplicate effects while preserving order.
        seen: set = set()
        effects = [
            e for e in effects if not (id(e) in seen or seen.add(id(e)))
        ]
        inputs = list(prog.inputs)
        if leaf_map:
            inputs = [leaf_map.get(i, i) for i in inputs]
        for old, new in memo.items():
            if old is not new:
                self._fwd[old] = new
        if leaf_map:
            for old, new in leaf_map.items():
                if old is not new:
                    self._fwd[old] = new
        if fwd_overrides:
            for old, new in fwd_overrides.items():
                if old is not new:
                    self._fwd[old] = new
        for b in self._blocks:
            b.members = [self.resolve(m) for m in b.members]
        for g in self._overlaps:
            g.items = [
                it if isinstance(it, FusedBlock) else self.resolve(it)
                for it in g.items
            ]
        self._set_program(Program(prog.name, inputs, outputs, effects))

    # -- the four transformations + helpers -----------------------------------

    def split(
        self,
        ar: Expr,
        policy: SplitPolicy = SplitPolicy.AR_SPLIT_RS_AG,
        dim: "int | None" = None,
        node_size: "int | None" = None,
    ) -> Tuple[Expr, Expr]:
        """AllReduce → (ReduceScatter, AllGather) [or Reduce+Broadcast];
        AllToAll → (intra-node, inter-node) hierarchical phases."""
        return _split.apply_split(self, ar, policy, dim, node_size)

    def reorder(self, ag: Expr, *region: Item) -> Tuple[Expr, ...]:
        """Move an AllGather past computations; returns sliced clones + gathers.

        Accepts fused blocks as region items (Figure 6b reorders a fused
        computation block); a block in the region is returned as a new
        block over the sliced clones.
        """
        blocks = [it for it in region if isinstance(it, FusedBlock)]
        exprs: List[Expr] = []
        for it in region:
            if isinstance(it, FusedBlock):
                exprs.extend(it.members)
            else:
                exprs.append(it)
        new_region, gathers = _reorder.apply_reorder(self, ag, exprs)
        if blocks:
            # Blocks were remapped in-place by _apply_rewrite; return them.
            return tuple(blocks) + tuple(gathers)
        return tuple(new_region) + tuple(gathers)

    def fuse(self, *items: Item, policy: FusePolicy) -> FusedBlock:
        """Fuse operations (or blocks) into a single kernel."""
        return _fuse.apply_fuse(self, items, policy)

    def overlap(self, *items: Item) -> OverlapGroup:
        """Overlap a producer→consumer chain of kernels."""
        return _overlap.apply_overlap(self, items)

    def unfuse(self, block: FusedBlock) -> List[Expr]:
        """Dissolve a fused block back into per-op kernels.

        Returns the (current) member expressions so they can be fused
        differently — used e.g. to derive GShard-style unfused schedules
        from a fused one.
        """
        members = [self.resolve(m) for m in block.members]
        self._dissolve_block(block)
        self._record(f"unfuse({block.name})")
        return members

    def as_slice(self, tensor: Tensor, dim: int = 0) -> Tensor:
        """Re-declare a replicated input tensor as sliced (``asSlice``)."""
        return _slicing.apply_as_slice(self, tensor, dim)

    asSlice = as_slice  # paper spelling

    def dead(self, var: Expr) -> None:
        """Remove a no-longer-needed side-effect op (``dead``)."""
        _slicing.apply_dead(self, var)

    # -- plan derivation -------------------------------------------------------

    def plan(self) -> ExecutionPlan:
        """Derive the execution plan: kernels + overlap groups.

        Cached per schedule version — the autotuner's move enumeration
        and the cost model both consult the plan of an unchanged
        schedule repeatedly.
        """
        if self._plan_cache is not None and self._plan_cache[0] == self._version:
            return self._plan_cache[1]
        plan = self._derive_plan()
        self._plan_cache = (self._version, plan)
        return plan

    def _derive_plan(self) -> ExecutionPlan:
        operations = self.program.operations
        op_set = set(operations)
        block_of: Dict[Expr, FusedBlock] = {}
        for b in self._blocks:
            b.members = [m for m in (self.resolve(x) for x in b.members) if m in op_set]
            for m in b.members:
                block_of[m] = b

        kernels: List[Kernel] = []
        emitted: set = set()
        position = {e: i for i, e in enumerate(operations)}
        for e in operations:
            if e in emitted:
                continue
            b = block_of.get(e)
            if b is None:
                kernels.append(Kernel(e.name, singleton_kind(e), (e,)))
                emitted.add(e)
            else:
                last = max(b.members, key=position.__getitem__)
                if e is not last:
                    continue  # emit at the block's last member
                members = tuple(sorted(b.members, key=position.__getitem__))
                kernels.append(Kernel(b.name, b.kernel_kind(), members))
                emitted.update(members)

        kernel_name_of: Dict[int, str] = {}
        for k in kernels:
            for e in k.exprs:
                kernel_name_of[id(e)] = k.name
        groups: List[List[str]] = []
        by_name = {k.name: k for k in kernels}
        for g in self._overlaps:
            names: List[str] = []
            for it in g.items:
                exprs = it.members if isinstance(it, FusedBlock) else [it]
                for e in exprs:
                    e = self.resolve(e)
                    name = kernel_name_of.get(id(e))
                    if name is not None and name not in names:
                        names.append(name)
            if len(names) >= 2:
                groups.append(names)
                for name in names:
                    by_name[name].overlap_group = g.name
        return ExecutionPlan(kernels, groups)

    # -- lowering --------------------------------------------------------------

    def lowered(self, cluster=None, overlap_chunks: "int | None" = None):
        """Lower this schedule to the shared instruction IR (cached).

        The executor, the code generator and the cost model all consume
        the same :class:`~repro.core.lower.LoweredProgram`; it only
        changes when a transformation rewrites the program, so it is
        cached per schedule version (and per cluster node width, the one
        cluster fact that affects resource naming).
        """
        from repro.core.lower import lower

        gpn = cluster.node.gpus_per_node if cluster is not None else None
        key = (gpn, overlap_chunks)
        hit = self._lowered_cache.get(key)
        if hit is not None and hit[0] == self._version:
            return hit[1]
        lp = lower(self, cluster=cluster, overlap_chunks=overlap_chunks)
        self._lowered_cache[key] = (self._version, lp)
        return lp

    # -- reporting --------------------------------------------------------------

    def describe(self) -> str:
        """Human-readable record of the applied transformations."""
        if not self.steps:
            return f"{self.program.name}: default schedule (no transformations)"
        return "\n".join(self.steps)

    def dsl_line_count(self) -> int:
        """Program + schedule lines ('Program in CoCoNet', Table 3)."""
        return self.original.dsl_line_count() + len(self.steps)

    def __repr__(self) -> str:
        return (
            f"Schedule({self.program.name!r}, {len(self.steps)} steps, "
            f"{len(self._blocks)} fused blocks, {len(self._overlaps)} overlaps)"
        )
