"""The fuse transformation (Section 3.3) and fused collectives (§2.3).

Three policies:

* **Computation Fuse** — "fuses a series of computations in a single
  operation that performs all these operations";
* **AllReduce Fuse** — "fuses a series of ReduceScatter, sliced
  computations, and AllGather operations in a single FusedAllReduce",
  which "avoids such stores and loads by directly passing the output of
  communication to following computations through registers";
* **Send Fuse** — fuses computations into a P2P send (Figure 8b line 1).

Fusion never changes the DFG's semantics — it changes which operations
share a kernel, recorded in the schedule's execution plan. "Fusing
multiple operations into one operation is valid only if the dependencies
in the DFG after fusion are preserved": the member set must be convex.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence, Union

from repro.core import dfg, ops
from repro.core.tensor import Expr
from repro.core.transforms.plan import FusedBlock, FusePolicy
from repro.errors import TransformError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.transforms.schedule import Schedule

Item = Union[Expr, FusedBlock]

_FUSABLE_COMPUTE = (ops.PointwiseOp, ops.Norm, ops.ReduceTensor)


def check_convex(members: Sequence[Expr], roots: Sequence[Expr]) -> None:
    """Reject fusions that would create a dependency cycle.

    A non-member op that both depends on a member and is depended on by a
    member would have to run in the middle of the fused kernel.
    """
    member_set = set(members)
    ancestors_of_members = dfg.reachable(list(members)) - member_set
    for z in dfg.topological(roots):
        if z in member_set or z.is_leaf:
            continue
        if z not in ancestors_of_members:
            continue  # no member depends on z
        if member_set & dfg.reachable([z]):
            raise TransformError(
                f"fusing would break dependencies: {z.signature()} must "
                f"execute in the middle of the fused region"
            )


def _flatten(sched: "Schedule", items: Sequence[Item]) -> List[Expr]:
    members: List[Expr] = []
    for it in items:
        if isinstance(it, FusedBlock):
            members.extend(sched.resolve(m) for m in it.members)
            sched._dissolve_block(it)
        else:
            members.append(sched.resolve(it))
    return members


def apply_fuse(
    sched: "Schedule", items: Sequence[Item], policy: FusePolicy
) -> FusedBlock:
    """Fuse operations / existing blocks into one kernel; returns the block."""
    members = _flatten(sched, items)
    prog = sched.program
    position = {e: i for i, e in enumerate(prog.operations)}
    for m in members:
        if m not in position:
            raise TransformError(
                f"{m.signature()} is not an operation of the current program"
            )
    members = sorted(set(members), key=position.__getitem__)
    if len(members) < 2:
        raise TransformError("fuse requires at least two operations")
    _check_policy(members, policy)
    check_convex(members, prog.roots)
    for m in members:
        existing = sched._block_of(m)
        if existing is not None:
            raise TransformError(
                f"{m.name} already belongs to {existing.name}; pass the "
                f"block itself to fuse"
            )
    block = FusedBlock(policy, members)
    sched._blocks.append(block)
    sched._record(
        f"fuse({', '.join(m.name for m in members)}, {policy.value}) -> "
        f"{block.name}"
    )
    return block


def _check_policy(members: Sequence[Expr], policy: FusePolicy) -> None:
    comm = [m for m in members if isinstance(m, ops.CommOp)]
    if policy is FusePolicy.COMPUTATION:
        for m in members:
            if isinstance(m, ops.CommOp):
                raise TransformError(
                    f"ComputationFuse cannot include communication op "
                    f"{m.signature()}"
                )
            if not isinstance(m, _FUSABLE_COMPUTE):
                raise TransformError(
                    f"ComputationFuse cannot include {type(m).__name__} "
                    f"({m.signature()}); matrix ops use library kernels"
                )
        return
    if policy is FusePolicy.ALLREDUCE:
        if not comm:
            raise TransformError("AllReduceFuse requires communication ops")
        scatters = [m for m in comm if isinstance(m, ops.ReduceScatter)]
        gathers = [m for m in comm if isinstance(m, ops.AllGather)]
        others = [
            m
            for m in comm
            if not isinstance(m, (ops.ReduceScatter, ops.AllGather, ops.AllReduce))
        ]
        if others:
            raise TransformError(
                f"AllReduceFuse only fuses ReduceScatter/AllGather/AllReduce, "
                f"got {type(others[0]).__name__}"
            )
        if not scatters and not any(isinstance(m, ops.AllReduce) for m in comm):
            raise TransformError(
                "AllReduceFuse requires a ReduceScatter (or AllReduce) member"
            )
        if scatters and not gathers:
            raise TransformError(
                "AllReduceFuse of a ReduceScatter requires an AllGather to "
                "restore the replicated layout"
            )
        for m in members:
            if isinstance(m, ops.CommOp):
                continue
            if not isinstance(m, _FUSABLE_COMPUTE):
                raise TransformError(
                    f"AllReduceFuse cannot fuse {type(m).__name__} "
                    f"({m.signature()})"
                )
        return
    if policy is FusePolicy.ALLTOALL:
        a2as = [
            m for m in comm
            if isinstance(m, (ops.AllToAll, ops.AllToAllPhase))
        ]
        if len(a2as) != 1 or len(comm) != 1:
            raise TransformError(
                "AllToAllFuse requires exactly one AllToAll and no other "
                "communication ops"
            )
        for m in members:
            if isinstance(m, (ops.AllToAll, ops.AllToAllPhase)):
                continue
            if not isinstance(m, _FUSABLE_COMPUTE):
                raise TransformError(
                    f"AllToAllFuse cannot fuse {type(m).__name__} "
                    f"({m.signature()})"
                )
        return
    if policy is FusePolicy.SEND:
        sends = [m for m in comm if isinstance(m, ops.Send)]
        if len(sends) != 1 or len(comm) != 1:
            raise TransformError(
                "SendFuse requires exactly one Send and no other "
                "communication ops"
            )
        for m in members:
            if isinstance(m, ops.Send):
                continue
            if not isinstance(m, _FUSABLE_COMPUTE):
                raise TransformError(
                    f"SendFuse cannot fuse {type(m).__name__} ({m.signature()})"
                )
        return
    raise TransformError(f"unknown fuse policy {policy!r}")
