"""LoweredProgram as a portable, schema-versioned artifact.

The paper's central premise is that *one* intermediate representation
carries a distributed program to every execution target. PR 4 unified
lowering in-process — :class:`~repro.core.lower.LoweredProgram` drives
the interpreter, the code generator and the cost model — but the IR was
still a live object graph that died with the interpreter. This module
gives it a stable serialized form: a JSON payload that captures the
entire expression DFG (every vertex with dtype, shape, layout, process
group and op attributes), the execution plan (kernels + overlap
groups), and the lowered instruction stream (launches, §5.4 pack
metadata, chunk loops with modes/bounds/ring order and dependency
edges) — enough to reconstruct a LoweredProgram that executes, codegens
and costs **without any of the originating Python objects**.

Two hashes identify an artifact:

* ``content_hash`` — SHA-256 of the canonical (sorted-keys, compact)
  JSON payload. Stable across processes and dict orderings; two
  artifacts with equal content hashes reconstruct identical programs.
* ``structural_hash`` — SHA-256 of the *name-free* canonical execution
  structure (kernel kinds + member ops + dataflow + chunk-loop shape).
  This is the autotuner's dedup key: generated value names carry a
  global counter, so the same plan reached via fork-per-move vs.
  replay differs by name but not by structure.

Format::

    {
      "format": "coconet-lowered-artifact",
      "schema_version": 1,
      "content_hash": "sha256:...",
      "structural_hash": "sha256:...",
      "payload": { "program": ..., "exprs": [...],
                   "plan": ..., "instructions": [...] }
    }

Forward compatibility: each schema version registers a loader in
``_LOADERS``; old artifacts keep loading as the schema evolves (the
golden files under ``tests/golden/`` pin that promise).

Round trip in four lines — serialize a tuned schedule, reconstruct it
in (conceptually) another process, and the identity hashes agree:

>>> from repro.core import artifact
>>> from repro.workloads.adam import AdamWorkload
>>> sched = AdamWorkload.build(64, 4).schedules()['fuse(RS-Adam-AG)']
>>> a = artifact.as_artifact(sched)
>>> b = artifact.loads(a.dumps())     # verifies content_hash on load
>>> b.content_hash == a.content_hash
True
>>> b.structural_hash == artifact.structural_hash(sched.lowered())
True
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core import ops
from repro.core.dtypes import dtype_by_name
from repro.core.layout import Layout, LayoutKind
from repro.core.lower import (
    ChunkEntry,
    ChunkLoop,
    CollectiveStep,
    Launch,
    LocalCompute,
    LoweredProgram,
    PackScattered,
)
from repro.core.process_group import ProcessGroup
from repro.core.program import Program
from repro.core.tensor import Const, Expr, Scalar, Tensor
from repro.core.transforms.plan import ExecutionPlan, Kernel, KernelKind
from repro.errors import CoCoNetError

FORMAT = "coconet-lowered-artifact"
SCHEMA_VERSION = 1

_HASH_PREFIX = "sha256:"


class ArtifactError(CoCoNetError):
    """A malformed, unsupported or corrupted artifact."""


# ---------------------------------------------------------------------------
# Expression graph codec.
# ---------------------------------------------------------------------------

#: Expr subclasses a payload may reference, by type tag. Leaves first,
#: then every DSL operation; reconstruction bypasses the op
#: constructors (which re-run inference and could not reproduce
#: transform-mutated state) and restores the recorded facts verbatim.
_EXPR_TYPES: Dict[str, type] = {
    "Tensor": Tensor,
    "Scalar": Scalar,
    "Const": Const,
    "AllReduce": ops.AllReduce,
    "ReduceScatter": ops.ReduceScatter,
    "AllGather": ops.AllGather,
    "Reduce": ops.Reduce,
    "Broadcast": ops.Broadcast,
    "AllToAll": ops.AllToAll,
    "AllToAllPhase": ops.AllToAllPhase,
    "Send": ops.Send,
    "MatMul": ops.MatMul,
    "Conv2D": ops.Conv2D,
    "Binary": ops.Binary,
    "Unary": ops.Unary,
    "Dropout": ops.Dropout,
    "Cast": ops.Cast,
    "Slice": ops.Slice,
    "Norm": ops.Norm,
    "ReduceTensor": ops.ReduceTensor,
    "Update": ops.Update,
}

#: plain-value attributes serialized per op type (cross-link attributes
#: — AllGather.writeback, Update.target — are handled separately since
#: they reference other graph vertices)
_OP_ATTRS: Dict[type, Tuple[str, ...]] = {
    ops.AllReduce: ("reduction",),
    ops.ReduceScatter: ("reduction",),
    ops.AllGather: ("dim",),
    ops.Reduce: ("reduction", "root"),
    ops.Broadcast: ("root",),
    ops.AllToAll: ("dim",),
    ops.AllToAllPhase: ("dim", "phase", "node_size"),
    ops.Conv2D: ("stride", "padding"),
    ops.Binary: ("op",),
    ops.Unary: ("op",),
    ops.Dropout: ("prob", "seed"),
    ops.Norm: ("crosses_ranks",),
    ops.ReduceTensor: ("reduction", "crosses_ranks"),
}


def _layout_to_json(layout: Layout) -> Dict[str, Any]:
    return {"kind": layout.kind.value, "dim": layout.dim}


def _layout_from_json(data: Dict[str, Any]) -> Layout:
    return Layout(LayoutKind(data["kind"]), data.get("dim"))


def _expr_to_json(e: Expr, idx: Dict[int, int]) -> Dict[str, Any]:
    tag = type(e).__name__
    if tag not in _EXPR_TYPES:
        raise ArtifactError(
            f"cannot serialize expression type {tag!r} ({e.signature()})"
        )
    rec: Dict[str, Any] = {
        "type": tag,
        "name": e.name,
        "dtype": e.dtype.name,
        "shape": list(e.shape),
        "layout": _layout_to_json(e.layout),
        "group": [e.group.start, e.group.size, e.group.world_size],
        "inputs": [idx[id(i)] for i in e.inputs],
    }
    attrs: Dict[str, Any] = {}
    for f in _OP_ATTRS.get(type(e), ()):
        attrs[f] = getattr(e, f)
    if isinstance(e, Const):
        attrs["value"] = e.value
    if isinstance(e, ops.Send):
        attrs["dst_group_offset"] = e.dst.group_offset
    if isinstance(e, ops.AllGather) and e.writeback is not None:
        attrs["writeback"] = idx[id(e.writeback)]
    if isinstance(e, ops.Update):
        attrs["target"] = idx[id(e.target)]
    if attrs:
        rec["attrs"] = attrs
    return rec


def _expr_from_json(
    rec: Dict[str, Any], by_id: List[Expr]
) -> Expr:
    tag = rec["type"]
    cls = _EXPR_TYPES.get(tag)
    if cls is None:
        raise ArtifactError(f"unknown expression type {tag!r} in artifact")
    group = ProcessGroup(*rec["group"])
    inputs = tuple(by_id[i] for i in rec["inputs"])
    e = object.__new__(cls)
    Expr.__init__(
        e,
        rec["name"],
        dtype_by_name(rec["dtype"]),
        tuple(rec["shape"]),
        _layout_from_json(rec["layout"]),
        group,
        inputs,
    )
    attrs = rec.get("attrs", {})
    for f in _OP_ATTRS.get(cls, ()):
        setattr(e, f, attrs[f])
    if isinstance(e, Tensor):
        e.updated_by = None  # restored by the Update that targets it
    if isinstance(e, Const):
        e.value = float(attrs["value"])
    if isinstance(e, ops.AllToAllPhase):
        e.comm_kind = f"alltoall_{e.phase}"
    if isinstance(e, ops.Send):
        from repro.core.ops import GroupRank, GroupShift
        from repro.core.process_group import RANK

        e.dst = GroupRank(GroupShift(attrs["dst_group_offset"]), RANK)
    if isinstance(e, ops.AllGather):
        wb = attrs.get("writeback")
        e.writeback = by_id[wb] if wb is not None else None
    if isinstance(e, ops.Update):
        target = by_id[attrs["target"]]
        e.target = target
        target.updated_by = e
    return e


def _graph_order(program: Program, plan: ExecutionPlan) -> List[Expr]:
    """Every reachable vertex in topological order.

    The plan's kernels and the program's roots reference the same graph;
    walking the program roots *plus* every kernel member covers vertices
    a transformation kept alive only through the plan.
    """
    from repro.core import dfg

    roots: List[Expr] = list(program.roots)
    for k in plan.kernels:
        roots.extend(k.exprs)
    order = dfg.topological(roots)
    # Declared-but-unused inputs still define the execution interface.
    seen = {id(e) for e in order}
    for t in program.inputs:
        if id(t) not in seen:
            order.append(t)
    return order


# ---------------------------------------------------------------------------
# Instruction stream codec.
# ---------------------------------------------------------------------------


def _pack_to_json(pack: PackScattered) -> Dict[str, Any]:
    return {
        "name": pack.name,
        "target": pack.target,
        "stream": pack.stream,
        "num_elements": pack.num_elements,
        "num_buckets": pack.num_buckets,
        "metadata_bytes": pack.metadata_bytes,
    }


def _pack_from_json(rec: Dict[str, Any]) -> PackScattered:
    return PackScattered(
        name=rec["name"],
        target=rec["target"],
        stream=rec["stream"],
        num_elements=rec["num_elements"],
        num_buckets=rec["num_buckets"],
        metadata_bytes=rec["metadata_bytes"],
    )


def _launch_to_json(instr: Launch) -> Dict[str, Any]:
    rec: Dict[str, Any] = {
        "kind": (
            "collective_step"
            if isinstance(instr, CollectiveStep)
            else "local_compute"
        ),
        "name": instr.name,
        "kernel": instr.kernel.name,
        "stream": instr.stream,
        "resource": instr.resource,
        "deps": list(instr.deps),
    }
    if isinstance(instr, CollectiveStep) and instr.pack is not None:
        rec["pack"] = _pack_to_json(instr.pack)
    return rec


def _launch_from_json(
    rec: Dict[str, Any], kernels: Dict[str, Kernel]
) -> Launch:
    kernel = kernels[rec["kernel"]]
    if rec["kind"] == "collective_step":
        pack = rec.get("pack")
        return CollectiveStep(
            rec["name"], kernel, rec["stream"], rec["resource"],
            tuple(rec["deps"]),
            _pack_from_json(pack) if pack is not None else None,
        )
    return LocalCompute(
        rec["name"], kernel, rec["stream"], rec["resource"],
        tuple(rec["deps"]),
    )


def _instr_to_json(instr) -> Dict[str, Any]:
    if isinstance(instr, ChunkLoop):
        return {
            "kind": "chunk_loop",
            "name": instr.name,
            "num_chunks": instr.num_chunks,
            "ring": instr.ring,
            "entries": [
                {
                    "instr": _launch_to_json(e.instr),
                    "upstream": e.upstream,
                    "external_deps": list(e.external_deps),
                    "group_deps": list(e.group_deps),
                    "mode": e.mode,
                    "chunk_dim": e.chunk_dim,
                    "bounds": (
                        [list(b) for b in e.bounds]
                        if e.bounds is not None else None
                    ),
                }
                for e in instr.entries
            ],
        }
    if isinstance(instr, PackScattered):
        rec = _pack_to_json(instr)
        rec["kind"] = "pack_scattered"
        return rec
    return _launch_to_json(instr)


def _instr_from_json(rec: Dict[str, Any], kernels: Dict[str, Kernel]):
    kind = rec["kind"]
    if kind == "chunk_loop":
        entries = [
            ChunkEntry(
                instr=_launch_from_json(er["instr"], kernels),
                upstream=er["upstream"],
                external_deps=tuple(er["external_deps"]),
                group_deps=tuple(er["group_deps"]),
                mode=er["mode"],
                chunk_dim=er["chunk_dim"],
                bounds=(
                    tuple(tuple(b) for b in er["bounds"])
                    if er["bounds"] is not None else None
                ),
            )
            for er in rec["entries"]
        ]
        return ChunkLoop(
            rec["name"], entries, rec["num_chunks"], rec["ring"]
        )
    if kind == "pack_scattered":
        return _pack_from_json(rec)
    if kind in ("collective_step", "local_compute"):
        return _launch_from_json(rec, kernels)
    raise ArtifactError(f"unknown instruction kind {kind!r} in artifact")


# ---------------------------------------------------------------------------
# Whole-program payload (schema v1).
# ---------------------------------------------------------------------------


def to_payload(lowered: LoweredProgram) -> Dict[str, Any]:
    """The schema-v1 JSON payload of a lowered program."""
    program = lowered.program
    plan = lowered.plan
    order = _graph_order(program, plan)
    idx = {id(e): i for i, e in enumerate(order)}
    return {
        "program": {
            "name": program.name,
            "inputs": [idx[id(t)] for t in program.inputs],
            "outputs": [idx[id(o)] for o in program.outputs],
            "effects": [idx[id(o)] for o in program.effects],
        },
        "exprs": [_expr_to_json(e, idx) for e in order],
        "plan": {
            "kernels": [
                {
                    "name": k.name,
                    "kind": k.kind.value,
                    "exprs": [idx[id(e)] for e in k.exprs],
                    "overlap_group": k.overlap_group,
                }
                for k in plan.kernels
            ],
            "overlap_groups": [list(g) for g in plan.overlap_groups],
        },
        "instructions": [
            _instr_to_json(i) for i in lowered.instructions
        ],
    }


def _load_v1(payload: Dict[str, Any]) -> LoweredProgram:
    by_id: List[Expr] = []
    for rec in payload["exprs"]:
        by_id.append(_expr_from_json(rec, by_id))
    prog = payload["program"]
    program = Program(
        prog["name"],
        [by_id[i] for i in prog["inputs"]],
        [by_id[i] for i in prog["outputs"]],
        [by_id[i] for i in prog["effects"]],
    )
    kernels: List[Kernel] = []
    for rec in payload["plan"]["kernels"]:
        kernels.append(
            Kernel(
                rec["name"],
                KernelKind(rec["kind"]),
                tuple(by_id[i] for i in rec["exprs"]),
                rec.get("overlap_group"),
            )
        )
    plan = ExecutionPlan(
        kernels,
        [list(g) for g in payload["plan"]["overlap_groups"]],
    )
    by_name = {k.name: k for k in kernels}
    instructions = [
        _instr_from_json(rec, by_name) for rec in payload["instructions"]
    ]
    return LoweredProgram(program, plan, instructions)


#: schema version -> payload loader. New versions append here; old
#: payloads keep loading through their original loader forever.
_LOADERS: Dict[int, Callable[[Dict[str, Any]], LoweredProgram]] = {
    1: _load_v1,
}


# ---------------------------------------------------------------------------
# Hashes.
# ---------------------------------------------------------------------------


def _canonical(data: Any) -> str:
    return json.dumps(
        data, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def _sha256(text: str) -> str:
    return _HASH_PREFIX + hashlib.sha256(text.encode("utf-8")).hexdigest()


def content_hash(payload: Dict[str, Any]) -> str:
    """SHA-256 of the canonical payload JSON.

    Canonicalization (sorted keys, compact separators) makes the hash
    independent of dict insertion order and of the process that wrote
    the file.
    """
    return _sha256(_canonical(payload))


def structural_signature(lowered: LoweredProgram) -> Tuple:
    """Canonical *name-free* execution structure of a lowered program.

    What actually runs, not how it was reached: two schedules that
    lower to the same launches (kernel kind + member ops + dataflow) in
    the same order with the same chunk-loop structure (members, chunk
    count, ring/tiled shape, chunk modes) are the same candidate. The
    key is deliberately name-free for operations — generated names
    (``slice_p_32``, fused-block names) carry a global counter, so the
    same plan reached via fork-per-move vs. replay would hash
    differently by name. Operations are identified structurally (type,
    salient attributes, output size, dataflow references by plan
    position; program inputs by their stable declared names), and
    instructions reference kernels by plan position. The key contains
    no resource names, so it is also cluster-independent.

    This is the autotuner's dedup key; :func:`structural_hash` digests
    it so artifacts can carry it.
    """
    plan = lowered.plan
    token: Dict[int, int] = {}
    for k in plan.kernels:
        for e in k.exprs:
            token[id(e)] = len(token)

    def ref(x) -> Tuple:
        t = token.get(id(x))
        if t is not None:
            return ("op", t)
        if isinstance(x, Const):
            return ("const", x.value, x.dtype.name)
        return (
            "leaf", x.name, type(x.layout).__name__,
            getattr(x.layout, "dim", None), x.per_rank_bytes(),
        )

    def entry(e) -> Tuple:
        attrs: List[Tuple] = []
        for f in (
            "op", "reduction", "dim", "phase", "node_size",
            "dst", "prob", "seed", "root",
        ):
            v = getattr(e, f, None)
            if v is not None:
                attrs.append((f, str(v)))
        if isinstance(e, ops.Cast):
            attrs.append(("dtype", e.dtype.name))
        if isinstance(e, ops.Update):
            attrs.append(("target", ref(e.target)))
        return (
            type(e).__name__,
            tuple(attrs),
            type(e.layout).__name__,
            getattr(e.layout, "dim", None),
            e.per_rank_bytes(),
            (e.group.start, e.group.size),
            tuple(ref(i) for i in e.inputs),
        )

    index = {k.name: i for i, k in enumerate(plan.kernels)}
    kernels = tuple(
        (k.kind.value, tuple(entry(e) for e in k.exprs))
        for k in plan.kernels
    )
    layout: List[Tuple] = []
    for instr in lowered.instructions:
        if isinstance(instr, PackScattered):
            continue  # derived from its fused kernel, no new info
        if isinstance(instr, ChunkLoop):
            layout.append(
                (
                    "chunkloop", instr.num_chunks, instr.ring,
                    tuple(
                        (index[e.name], e.mode)
                        for e in instr.entries
                    ),
                )
            )
        else:
            layout.append(("launch", index[instr.name]))
    return (kernels, tuple(layout))


def _jsonable(x: Any) -> Any:
    if isinstance(x, tuple):
        return [_jsonable(v) for v in x]
    return x


def structural_hash(lowered: LoweredProgram) -> str:
    """SHA-256 of the canonical structural signature."""
    return _sha256(_canonical(_jsonable(structural_signature(lowered))))


# ---------------------------------------------------------------------------
# The artifact object and the save/load/dumps/loads quartet.
# ---------------------------------------------------------------------------


@dataclass
class Artifact:
    """A serialized lowered program plus its identity.

    Every consumer accepts one directly — ``Executor.run_lowered`` /
    ``run_spmd``, ``CodeGenerator.generate``, ``ProgramCostModel`` —
    by reconstructing (and caching) the live :class:`LoweredProgram`
    via :meth:`lowered`.
    """

    schema_version: int
    payload: Dict[str, Any]
    content_hash: str
    structural_hash: str
    _lowered: Optional[LoweredProgram] = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def from_lowered(cls, lowered: LoweredProgram) -> "Artifact":
        payload = to_payload(lowered)
        return cls(
            schema_version=SCHEMA_VERSION,
            payload=payload,
            content_hash=content_hash(payload),
            structural_hash=structural_hash(lowered),
            _lowered=lowered,
        )

    def lowered(self) -> LoweredProgram:
        """The reconstructed (or originating) live program, cached."""
        if self._lowered is None:
            loader = _LOADERS.get(self.schema_version)
            if loader is None:
                raise ArtifactError(
                    f"unsupported artifact schema version "
                    f"{self.schema_version}; this build reads "
                    f"{sorted(_LOADERS)}"
                )
            self._lowered = loader(self.payload)
        return self._lowered

    @property
    def program(self) -> Program:
        return self.lowered().program

    def dumps(self, indent: Optional[int] = None) -> str:
        """The full artifact document as JSON text."""
        doc = {
            "format": FORMAT,
            "schema_version": self.schema_version,
            "content_hash": self.content_hash,
            "structural_hash": self.structural_hash,
            "payload": self.payload,
        }
        return json.dumps(doc, indent=indent, sort_keys=True) + "\n"

    def save(self, path: str, indent: Optional[int] = 1) -> None:
        with open(path, "w") as f:
            f.write(self.dumps(indent=indent))

    def describe(self) -> str:
        """Human-readable summary: identity, interface, instructions."""
        prog = self.payload["program"]
        exprs = self.payload["exprs"]
        lines = [
            f"artifact: {prog['name']} (schema v{self.schema_version})",
            f"content hash:    {self.content_hash}",
            f"structural hash: {self.structural_hash}",
        ]
        for label, ids in (
            ("inputs", prog["inputs"]), ("outputs", prog["outputs"]),
        ):
            rendered = []
            for i in ids:
                rec = exprs[i]
                dims = ",".join(str(s) for s in rec["shape"])
                rendered.append(f"{rec['name']}({rec['dtype']}, [{dims}])")
            lines.append(f"{label}: {', '.join(rendered)}")
        nkern = len(self.payload["plan"]["kernels"])
        lines.append(f"{nkern} kernels, "
                     f"{len(self.payload['instructions'])} instructions:")
        lines.append(self.lowered().describe())
        return "\n".join(lines)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Artifact)
            and other.content_hash == self.content_hash
        )

    def __hash__(self) -> int:
        return hash(self.content_hash)


def dumps(scheduled, indent: Optional[int] = None) -> str:
    """Serialize a Schedule / Program / LoweredProgram / Artifact."""
    return as_artifact(scheduled).dumps(indent=indent)


def loads(text: str) -> Artifact:
    """Parse an artifact document; verifies format and content hash."""
    try:
        doc = json.loads(text)
    except ValueError as exc:
        raise ArtifactError(f"artifact is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != FORMAT:
        raise ArtifactError(
            f"not a {FORMAT} document (format="
            f"{doc.get('format') if isinstance(doc, dict) else None!r})"
        )
    version = doc.get("schema_version")
    if not isinstance(version, int):
        raise ArtifactError("artifact has no integer schema_version")
    if version not in _LOADERS:
        raise ArtifactError(
            f"unsupported artifact schema version {version}; this build "
            f"reads {sorted(_LOADERS)}"
        )
    payload = doc.get("payload")
    if not isinstance(payload, dict):
        raise ArtifactError("artifact has no payload object")
    recorded = doc.get("content_hash")
    actual = content_hash(payload)
    if recorded is not None and recorded != actual:
        raise ArtifactError(
            f"artifact content hash mismatch: recorded {recorded}, "
            f"payload hashes to {actual} — the file was edited or "
            f"corrupted"
        )
    art = Artifact(
        schema_version=version,
        payload=payload,
        content_hash=actual,
        structural_hash=doc.get("structural_hash", ""),
    )
    if not art.structural_hash:
        art.structural_hash = structural_hash(art.lowered())
    return art


def save(scheduled, path: str, indent: Optional[int] = 1) -> Artifact:
    """Serialize to ``path``; returns the :class:`Artifact` written."""
    art = as_artifact(scheduled)
    art.save(path, indent=indent)
    return art


def load(path: str) -> Artifact:
    """Load an artifact file written by :func:`save`."""
    with open(path) as f:
        return loads(f.read())


def as_artifact(scheduled) -> Artifact:
    """Coerce a Schedule / Program / LoweredProgram / Artifact."""
    from repro.core.lower import lower

    if isinstance(scheduled, Artifact):
        return scheduled
    if isinstance(scheduled, LoweredProgram):
        return Artifact.from_lowered(scheduled)
    if hasattr(scheduled, "lowered"):  # Schedule: reuse its lowering cache
        return Artifact.from_lowered(scheduled.lowered())
    return Artifact.from_lowered(lower(scheduled))


__all__ = [
    "FORMAT",
    "SCHEMA_VERSION",
    "Artifact",
    "ArtifactError",
    "as_artifact",
    "content_hash",
    "dumps",
    "load",
    "loads",
    "save",
    "structural_hash",
    "structural_signature",
    "to_payload",
]
