"""Distribution layouts for CoCoNet tensors.

Section 2.1 of the paper defines three layouts:

* **Sliced(d)** — "equally distributed among all nodes in a group along a
  specified dimension with RANK identifying the slice for that process."
* **Replicated** — "same value on each rank and it does not have a rank
  identifier."
* **Local** — "same shape on all ranks but different values on all ranks."

Layouts participate in static type checking: every operation's output
layout is inferred from its inputs (see :mod:`repro.core.inference`), and
transformations rewrite layouts (e.g. `reorder` turns replicated
computations into sliced ones).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Sequence, Tuple

from repro.errors import LayoutError


class LayoutKind(Enum):
    SLICED = "sliced"
    REPLICATED = "replicated"
    LOCAL = "local"


@dataclass(frozen=True)
class Layout:
    """A distribution layout. Use :func:`Sliced`, :data:`Replicated`, or
    :data:`Local` rather than constructing directly.

    Attributes:
        kind: one of the three layout kinds.
        dim: for sliced layouts, the dimension along which the tensor is
            split among the ranks of its group; ``None`` otherwise.
    """

    kind: LayoutKind
    dim: "int | None" = None

    def __post_init__(self) -> None:
        if self.kind is LayoutKind.SLICED and self.dim is None:
            raise LayoutError("a sliced layout requires a dimension")
        if self.kind is not LayoutKind.SLICED and self.dim is not None:
            raise LayoutError(f"{self.kind.value} layout takes no dimension")

    @property
    def is_sliced(self) -> bool:
        return self.kind is LayoutKind.SLICED

    @property
    def is_replicated(self) -> bool:
        return self.kind is LayoutKind.REPLICATED

    @property
    def is_local(self) -> bool:
        return self.kind is LayoutKind.LOCAL

    def __repr__(self) -> str:
        if self.is_sliced:
            return f"Sliced({self.dim})"
        return self.kind.value.capitalize()


def Sliced(dim: int) -> Layout:
    """Layout of a tensor split along dimension ``dim`` across its group."""
    if dim < 0:
        raise LayoutError(f"slice dimension must be non-negative, got {dim}")
    return Layout(LayoutKind.SLICED, dim)


Replicated = Layout(LayoutKind.REPLICATED)
Local = Layout(LayoutKind.LOCAL)


def normalize_dim(dim: int, rank: int) -> int:
    """Normalize a possibly-negative dimension index against ``rank`` dims."""
    if dim < 0:
        dim += rank
    if not 0 <= dim < rank:
        raise LayoutError(f"dimension {dim} out of range for {rank}-d tensor")
    return dim


def slice_shape(
    global_shape: Sequence[int], layout: Layout, group_size: int
) -> Tuple[int, ...]:
    """Return the per-rank shape of a tensor with ``global_shape``.

    For sliced tensors the sliced dimension shrinks by the group size
    ("equally distributed"); replicated and local tensors keep the full
    shape on every rank.

    Raises:
        LayoutError: if a sliced dimension does not divide evenly.
    """
    shape = tuple(int(s) for s in global_shape)
    if not layout.is_sliced:
        return shape
    # per-rank slice and per-peer exchange chunk share the same math
    return exchange_chunk_shape(shape, layout.dim, group_size)


def exchange_chunk_shape(
    global_shape: Sequence[int], dim: int, group_size: int
) -> Tuple[int, ...]:
    """Shape of one AllToAll exchange chunk.

    An AllToAll keeps the per-rank shape intact but moves ``group_size``
    equal chunks along ``dim`` between ranks; this is the shape of each
    chunk on the wire. Backs the AllToAll shape rule in
    :func:`repro.core.inference.alltoall_layout`.

    Raises:
        LayoutError: if ``dim`` does not divide evenly.
    """
    shape = tuple(int(s) for s in global_shape)
    dim = normalize_dim(dim, len(shape))
    if shape[dim] % group_size != 0:
        raise LayoutError(
            f"dimension {dim} of shape {shape} is not divisible by "
            f"group size {group_size}"
        )
    return shape[:dim] + (shape[dim] // group_size,) + shape[dim + 1 :]


def unsliced_shape(
    per_rank_shape: Sequence[int], layout: Layout, group_size: int
) -> Tuple[int, ...]:
    """Inverse of :func:`slice_shape`: recover the global shape."""
    shape = tuple(int(s) for s in per_rank_shape)
    if not layout.is_sliced:
        return shape
    dim = normalize_dim(layout.dim, len(shape))
    return shape[:dim] + (shape[dim] * group_size,) + shape[dim + 1 :]
