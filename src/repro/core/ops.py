"""Operations of the CoCoNet DSL (Table 1 of the paper).

Operations are classified as "(i) local computations, such as pointwise
computations, matrix multiplication, and convolution, and (ii) cross rank
communication operations, such as AllReduce, AllGather, and P2P Send-Recv"
(Section 2.2). Each operation is an :class:`Expr` vertex whose output
shape and layout are inferred at construction time — the static checking
the paper highlights as a benefit of carrying layouts in the type system.

Constructor functions use the paper's capitalized names so programs read
like Figure 3::

    layer = MatMul(in_, w)
    sum_  = AllReduce("+", layer)
    drop  = Dropout(sum_ + b, 0.1)
    out   = drop + r
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence, Tuple, Union

from repro.core import inference
from repro.core.dtypes import DType, promote
from repro.core.layout import (
    Local,
    Replicated,
    Sliced,
    normalize_dim,
)
from repro.core.tensor import Const, Expr, Number, Tensor, as_expr, _fresh_name
from repro.errors import LayoutError, ShapeError

REDUCTION_OPS = ("+", "max", "min", "*")

_seed_counter = itertools.count(0x5EED)


def _check_reduction(op: str) -> str:
    if op not in REDUCTION_OPS:
        raise ValueError(f"unknown reduction {op!r}; expected one of {REDUCTION_OPS}")
    return op


class CommOp(Expr):
    """Base class for cross-rank communication operations."""

    #: bytes moved on the wire per rank, filled by the cost model
    comm_kind: str = "comm"


class ComputeOp(Expr):
    """Base class for local computation operations."""


class PointwiseOp(ComputeOp):
    """Computation applied independently per element (fusable, sliceable)."""


# ---------------------------------------------------------------------------
# Communication operations
# ---------------------------------------------------------------------------


class AllReduce(CommOp):
    """Reduce values across all ranks of the group; everyone gets the sum.

    Input must be *local* (per-rank partial values); output is replicated.
    """

    comm_kind = "allreduce"

    def __init__(self, op: str, x: Expr, name: Optional[str] = None):
        self.reduction = _check_reduction(op)
        if not (x.layout.is_local or x.layout.is_replicated):
            raise LayoutError(
                f"AllReduce input must be local (per-rank partial values), "
                f"got {x.signature()}"
            )
        super().__init__(
            name or _fresh_name(f"ar_{x.name}"), x.dtype, x.shape, Replicated, x.group, (x,)
        )


class ReduceScatter(CommOp):
    """Reduce across ranks, leaving each rank with one slice of the result."""

    comm_kind = "reducescatter"

    def __init__(self, op: str, x: Expr, dim: int = 0, name: Optional[str] = None):
        self.reduction = _check_reduction(op)
        if not (x.layout.is_local or x.layout.is_replicated):
            raise LayoutError(
                f"ReduceScatter input must be local, got {x.signature()}"
            )
        dim = normalize_dim(dim, len(x.shape))
        super().__init__(
            name or _fresh_name(f"rs_{x.name}"), x.dtype, x.shape, Sliced(dim), x.group, (x,)
        )


class AllGather(CommOp):
    """Gather slices from all ranks; everyone gets the full tensor.

    ``writeback`` names an input tensor whose replicated storage must
    receive the gathered value: the reorder transformation sets it when
    gathering the result of a sliced in-place Update (e.g. ``agP`` in
    Figure 6b restores the replicated parameter tensor ``p``).
    """

    comm_kind = "allgather"

    def __init__(self, x: Expr, name: Optional[str] = None):
        if not x.layout.is_sliced:
            raise LayoutError(f"AllGather input must be sliced, got {x.signature()}")
        self.dim = normalize_dim(x.layout.dim, len(x.shape))
        self.writeback: Optional[Tensor] = None
        super().__init__(
            name or _fresh_name(f"ag_{x.name}"), x.dtype, x.shape, Replicated, x.group, (x,)
        )


class Reduce(CommOp):
    """Reduce across ranks onto a single root rank."""

    comm_kind = "reduce"

    def __init__(self, op: str, x: Expr, root: int = 0, name: Optional[str] = None):
        self.reduction = _check_reduction(op)
        self.root = root
        if not (x.layout.is_local or x.layout.is_replicated):
            raise LayoutError(f"Reduce input must be local, got {x.signature()}")
        super().__init__(
            name or _fresh_name(f"red_{x.name}"), x.dtype, x.shape, Local, x.group, (x,)
        )


class Broadcast(CommOp):
    """Broadcast the root rank's value to all ranks of the group."""

    comm_kind = "broadcast"

    def __init__(self, x: Expr, root: int = 0, name: Optional[str] = None):
        self.root = root
        super().__init__(
            name or _fresh_name(f"bc_{x.name}"), x.dtype, x.shape, Replicated, x.group, (x,)
        )


class AllToAll(CommOp):
    """Exchange chunk ``i`` of every rank's buffer with rank ``i``.

    The collective behind Mixture-of-Experts dispatch/combine (GShard):
    each rank splits its *local* buffer into ``group.size`` equal chunks
    along ``dim``, sends chunk ``j`` to rank ``j``, and concatenates the
    chunks it receives in source-rank order. Input and output are both
    Local — same shape on every rank, different values — so an AllToAll
    composed with itself along the same dimension is the identity
    (dispatch followed by combine restores token ownership).
    """

    comm_kind = "alltoall"

    def __init__(self, x: Expr, dim: int = 0, name: Optional[str] = None):
        layout, self.dim = inference.alltoall_layout(x, dim)
        super().__init__(
            name or _fresh_name(f"a2a_{x.name}"),
            x.dtype, x.shape, layout, x.group, (x,),
        )


class AllToAllPhase(CommOp):
    """One phase of a hierarchical (intra-node / inter-node) AllToAll.

    The split transformation decomposes a flat AllToAll over ``k * m``
    ranks (``k`` nodes of ``m`` GPUs) into two phases:

    * **intra** — ranks exchange within their node, regrouping chunks by
      destination-local index; moves ``(m-1)/m`` of the buffer over the
      NVSwitch fabric;
    * **inter** — ranks exchange the regrouped blocks across nodes with
      the peers sharing their local index; moves ``(k-1)/k`` of the
      buffer over the NICs.

    ``inter(intra(x))`` equals the flat ``AllToAll(x)`` exactly (see
    :mod:`repro.runtime.collectives` and the equivalence tests), while
    the cost model charges each phase only its own fabric.

    A ``node_size`` larger than the group degenerates (with a clamp to
    the group size) to a single-level decomposition: the intra phase is
    the whole exchange and the inter phase a no-op. A non-positive
    ``node_size`` is rejected.
    """

    def __init__(
        self,
        x: Expr,
        dim: int,
        phase: str,
        node_size: int,
        name: Optional[str] = None,
    ):
        if phase not in ("intra", "inter"):
            raise ValueError(f"unknown AllToAll phase {phase!r}")
        if int(node_size) < 1:
            raise LayoutError(
                f"hierarchical AllToAll node size must be >= 1, got "
                f"{node_size}"
            )
        layout, self.dim = inference.alltoall_layout(x, dim)
        n = x.group.size
        m = min(int(node_size), n)
        if n % m != 0:
            raise LayoutError(
                f"hierarchical AllToAll needs the group size {n} divisible "
                f"by the node size {m}"
            )
        self.phase = phase
        self.node_size = m
        self.comm_kind = f"alltoall_{phase}"
        super().__init__(
            name or _fresh_name(f"a2a_{phase}_{x.name}"),
            x.dtype, x.shape, layout, x.group, (x,),
        )


class _SymbolicGroup:
    """The GROUP placeholder; ``GROUP + 1`` addresses the next group."""

    def __add__(self, offset: int) -> "GroupShift":
        return GroupShift(int(offset))

    def __repr__(self) -> str:
        return "GROUP"


GROUP = _SymbolicGroup()


class GroupShift:
    """Result of ``GROUP + k``: the group ``k`` positions after ours."""

    def __init__(self, offset: int):
        self.offset = offset

    def __repr__(self) -> str:
        return f"GROUP+{self.offset}"


class GroupRank:
    """Addressing helper for P2P sends: ``GroupRank(GROUP + 1, RANK)``.

    Names the process with the *same local rank* in another group, exactly
    as used by the pipeline-parallel program of Figure 8a.
    """

    def __init__(self, group: "GroupShift | _SymbolicGroup", rank: object):
        if isinstance(group, _SymbolicGroup):
            group = GroupShift(0)
        if not isinstance(group, GroupShift):
            raise TypeError("GroupRank expects GROUP or GROUP + offset")
        self.group_offset = group.offset
        self.rank = rank

    def __repr__(self) -> str:
        return f"GroupRank(GROUP+{self.group_offset}, RANK)"


class Send(CommOp):
    """P2P send to the same local rank of another group (Figure 8a).

    The result expression lives in the *destination* group with the same
    layout: sending a sliced tensor delivers a sliced tensor there, which
    is what makes the reorder of P2P sends with AllGather well-typed.
    """

    comm_kind = "send"

    def __init__(self, x: Expr, dst: GroupRank, name: Optional[str] = None):
        self.dst = dst
        dst_group = x.group.next_group(dst.group_offset)
        super().__init__(
            name or _fresh_name(f"send_{x.name}"), x.dtype, x.shape, x.layout, dst_group, (x,)
        )


# ---------------------------------------------------------------------------
# Layers
# ---------------------------------------------------------------------------


class MatMul(ComputeOp):
    """Matrix multiplication [..., M, K] x [K, N] → [..., M, N].

    Layout behaviour follows Section 2.2: a MatMul between an input sliced
    along its contraction dimension and a row-sliced weight produces a
    *local* partial result, which an AllReduce then combines.
    """

    def __init__(self, a: Expr, b: Expr, name: Optional[str] = None):
        inference.require_same_group(a, b)
        shape = inference.matmul_shape(a, b)
        layout = inference.matmul_layout(a, b)
        dtype = promote(a.dtype, b.dtype)
        super().__init__(name or _fresh_name(f"mm_{a.name}"), dtype, shape, layout, a.group, (a, b))

    def flops(self) -> int:
        """Multiply-accumulate FLOPs performed per rank."""
        m = 1
        for s in self.inputs[0].per_rank_shape()[:-1]:
            m *= s
        k = self.inputs[0].per_rank_shape()[-1]
        n = self.inputs[1].per_rank_shape()[-1]
        return 2 * m * k * n


class Conv2D(ComputeOp):
    """2-D convolution [N,C,H,W] * [K,C,R,S] → [N,K,H',W'] (stride/pad)."""

    def __init__(
        self,
        x: Expr,
        w: Expr,
        stride: int = 1,
        padding: int = 0,
        name: Optional[str] = None,
    ):
        inference.require_same_group(x, w)
        if len(x.shape) != 4 or len(w.shape) != 4:
            raise ShapeError("Conv2D expects 4-D input and weight")
        if x.shape[1] != w.shape[1]:
            raise ShapeError(
                f"Conv2D channel mismatch: input {x.shape}, weight {w.shape}"
            )
        n, _, h, wdt = x.shape
        k, _, r, s = w.shape
        ho = (h + 2 * padding - r) // stride + 1
        wo = (wdt + 2 * padding - s) // stride + 1
        if ho <= 0 or wo <= 0:
            raise ShapeError("Conv2D output has non-positive spatial dims")
        if x.layout.is_sliced or w.layout.is_sliced:
            raise LayoutError("Conv2D supports replicated/local operands only")
        layout = Local if (x.layout.is_local or w.layout.is_local) else Replicated
        self.stride, self.padding = stride, padding
        super().__init__(
            name or _fresh_name(f"conv_{x.name}"),
            promote(x.dtype, w.dtype),
            (n, k, ho, wo),
            layout,
            x.group,
            (x, w),
        )


# ---------------------------------------------------------------------------
# Pointwise computation
# ---------------------------------------------------------------------------

BINARY_OPS = ("+", "-", "*", "/", "pow", "max", "min")
UNARY_OPS = ("sqrt", "relu", "tanh", "exp", "abs", "rsqrt")


class Binary(PointwiseOp):
    """Elementwise binary operation with broadcast semantics.

    Python numbers are lifted to constants, so ``Binary("+", x, 1.0)``
    works like ``x + 1.0``.
    """

    def __init__(
        self,
        op: str,
        a: "Expr | Number",
        b: "Expr | Number",
        name: Optional[str] = None,
    ):
        if op not in BINARY_OPS:
            raise ValueError(f"unknown binary op {op!r}")
        if not isinstance(a, Expr) and not isinstance(b, Expr):
            raise TypeError("at least one operand must be an expression")
        like = a if isinstance(a, Expr) else b
        a = as_expr(a, like)
        b = as_expr(b, like)
        inference.require_same_group(a, b)
        self.op = op
        shape = inference.broadcast_shapes(a.shape, b.shape)
        layout = inference.pointwise_layout(a, b, shape)
        dtype = promote(a.dtype, b.dtype)
        super().__init__(name or _fresh_name(f"bin_{op}"), dtype, shape, layout, a.group, (a, b))


class Unary(PointwiseOp):
    """Elementwise unary operation (sqrt, relu, tanh, ...)."""

    def __init__(self, op: str, x: Expr, name: Optional[str] = None):
        if op not in UNARY_OPS:
            raise ValueError(f"unknown unary op {op!r}")
        self.op = op
        super().__init__(
            name or _fresh_name(f"{op}_{x.name}"), x.dtype, x.shape, x.layout, x.group, (x,)
        )


class Dropout(PointwiseOp):
    """Dropout activation.

    The mask is drawn from a counter-based RNG keyed on the *global*
    element index (see :mod:`repro.runtime.rng`), so a sliced execution of
    a reordered program draws exactly the same mask as the replicated
    original — the property that makes the reorder transformation
    semantics-preserving for Dropout.
    """

    def __init__(
        self,
        x: Expr,
        prob: float,
        seed: Optional[int] = None,
        name: Optional[str] = None,
    ):
        if not 0.0 <= prob < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {prob}")
        self.prob = float(prob)
        self.seed = seed if seed is not None else next(_seed_counter)
        super().__init__(
            name or _fresh_name(f"drop_{x.name}"), x.dtype, x.shape, x.layout, x.group, (x,)
        )


class Cast(PointwiseOp):
    """Elementwise datatype conversion (mixed-precision support)."""

    def __init__(self, dtype: DType, x: Expr, name: Optional[str] = None):
        super().__init__(
            name or _fresh_name(f"cast_{x.name}"), dtype, x.shape, x.layout, x.group, (x,)
        )


class Slice(PointwiseOp):
    """Take the executing rank's slice of a replicated tensor.

    Introduced by the reorder transformation: "all tensors input to the
    computations are also sliced along the same dimension as the input of
    AllGather" (Section 3.2) — e.g. ``Slice(r)`` in Figure 4 program 2.
    """

    def __init__(self, x: Expr, dim: int, name: Optional[str] = None):
        if not x.layout.is_replicated:
            raise LayoutError(f"Slice input must be replicated, got {x.signature()}")
        dim = normalize_dim(dim, len(x.shape))
        super().__init__(
            name or _fresh_name(f"slice_{x.name}"), x.dtype, x.shape, Sliced(dim), x.group, (x,)
        )


class Norm(ComputeOp):
    """L2 norm of a tensor, as a zero-dimensional result.

    Norm of a *sliced* tensor is still the global norm: "To reduce a
    sliced tensor, each rank reduces locally and do an AllReduce"
    (Section 5.2). The executor and cost model implement exactly that.
    """

    def __init__(self, x: Expr, name: Optional[str] = None):
        layout = Local if x.layout.is_local else Replicated
        self.crosses_ranks = x.layout.is_sliced
        super().__init__(name or _fresh_name(f"norm_{x.name}"), x.dtype, (), layout, x.group, (x,))


class ReduceTensor(ComputeOp):
    """Full reduction of a tensor to a zero-dimensional value."""

    def __init__(self, op: str, x: Expr, name: Optional[str] = None):
        self.reduction = _check_reduction(op)
        layout = Local if x.layout.is_local else Replicated
        self.crosses_ranks = x.layout.is_sliced
        super().__init__(name or _fresh_name(f"rt_{x.name}"), x.dtype, (), layout, x.group, (x,))


class Update(PointwiseOp):
    """In-place update of an input tensor (Figure 6a, lines 2-3).

    "Update updates the values of a tensor and reflects the new values in
    that position in the DFG." The output represents the tensor's new
    value; the runtime writes it back to the input's storage.
    """

    def __init__(self, target: Tensor, value: Expr, name: Optional[str] = None):
        if not isinstance(target, Tensor):
            raise TypeError("Update target must be an input Tensor")
        inference.require_same_group(target, value)
        if value.shape != target.shape:
            raise ShapeError(
                f"Update value shape {value.shape} != target shape {target.shape}"
            )
        self.target = target
        super().__init__(
            name or _fresh_name(f"upd_{target.name}"),
            target.dtype,
            target.shape,
            value.layout,
            target.group,
            (value,),
        )
        target.updated_by = self


# ---------------------------------------------------------------------------
# Constructor helpers (paper-style free functions)
# ---------------------------------------------------------------------------


def binary(op: str, a: "Expr | Number", b: "Expr | Number") -> Binary:
    if not isinstance(a, Expr) and not isinstance(b, Expr):
        raise TypeError("at least one operand must be an expression")
    like = a if isinstance(a, Expr) else b
    return Binary(op, as_expr(a, like), as_expr(b, like))


def Sqrt(x: Expr) -> Unary:
    return Unary("sqrt", x)


def Rsqrt(x: Expr) -> Unary:
    return Unary("rsqrt", x)


def ReLU(x: Expr) -> Unary:
    return Unary("relu", x)


def Tanh(x: Expr) -> Unary:
    return Unary("tanh", x)


def Pow(a: "Expr | Number", b: "Expr | Number") -> Binary:
    return binary("pow", a, b)


COMM_OP_TYPES = (
    AllReduce, ReduceScatter, AllGather, Reduce, Broadcast, Send,
    AllToAll, AllToAllPhase,
)

__all__ = [
    "AllReduce",
    "AllGather",
    "AllToAll",
    "AllToAllPhase",
    "ReduceScatter",
    "Reduce",
    "Broadcast",
    "Send",
    "GroupRank",
    "GroupShift",
    "GROUP",
    "MatMul",
    "Conv2D",
    "Binary",
    "Unary",
    "Dropout",
    "Cast",
    "Slice",
    "Norm",
    "ReduceTensor",
    "Update",
    "binary",
    "Sqrt",
    "Rsqrt",
    "ReLU",
    "Tanh",
    "Pow",
    "CommOp",
    "ComputeOp",
    "PointwiseOp",
    "COMM_OP_TYPES",
    "REDUCTION_OPS",
]
