"""Lowering: one pass from an execution plan to a shared instruction IR.

CoCoNet's premise is that a single representation should drive both the
computation and the communication of a distributed program. Before this
module existed the repo had quietly rebuilt the abstraction barrier
internally: the numeric executor interpreted the raw DFG and ignored the
execution plan, while the code generator and the program cost model each
re-derived kernel grouping, stream assignment and overlap chunking from
the plan on their own. :func:`lower` is the one place that walk happens
now. It turns a :class:`~repro.core.transforms.plan.ExecutionPlan` into a
:class:`LoweredProgram` — a linear, explicitly ordered instruction stream
with per-instruction stream assignment, dependency edges, chunk shapes /
slice bounds, and scattered-tensor bucket metadata (§5.4) — and the
three consumers interpret it:

* the numeric runtime (``Executor.run_lowered``) executes the stream,
  running overlap groups chunk-by-chunk and fused blocks as units;
* the code generator emits one function per instruction and derives the
  overlap orchestrators from :class:`ChunkLoop` instead of re-walking
  the plan;
* the program cost model builds its discrete-event tasks directly from
  the stream, and the autotuner's structural dedup signature is computed
  on the lowered instructions.

Instruction kinds
-----------------

``LocalCompute``
    A GEMM / convolution / (fused) element-wise kernel launch.
``CollectiveStep``
    A communication kernel launch — a plain library collective, a fused
    collective (ring phases with computation riding the exchange), or a
    P2P send. Fused collectives carry a :class:`PackScattered` handle.
``PackScattered``
    The one-time bucket-table preparation of §5.4 for a fused
    collective over scattered tensors: ``12 · ⌈N / 2^10⌉`` bytes of
    (tensor address, offset) metadata.
``ChunkLoop``
    One overlap group: an ordered list of member launches executed at
    chunk granularity, with per-member chunk mode, slice bounds, and the
    chunk-to-chunk dependency chain of Figure 9.

Chunk modes
-----------

Overlap members execute in one of three modes, chosen statically here so
every consumer agrees on the chunking:

``"compute"``
    Genuinely chunked computation: pure element-wise kernels evaluate
    chunk ``c`` from chunk ``c`` of their inputs. Element-wise math is
    per-element, so this is bit-identical to whole-kernel evaluation.
``"publish"``
    The kernel is *launched once* (GEMMs issue a single BLAS call per
    rank — BLAS row-blocking is not bitwise invariant under partitioning
    of the M dimension, so per-chunk GEMM calls would diverge from the
    DFG oracle) but its output chunks are released to consumers in
    order, ring order for the Figure 9 GEMM→collective pair.
``"whole"``
    Kernels with side effects or non-chunkable structure (fused
    collectives, writeback AllGathers, dropout) run as one unit at the
    first step where every in-group producer has completed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core import ops
from repro.core.layout import normalize_dim
from repro.core.program import Program
from repro.core.tensor import Expr
from repro.core.transforms.plan import ExecutionPlan, Kernel, KernelKind
from repro.errors import CoCoNetError
from repro.scattered.bucketing import BUCKET_ELEMENTS, bucket_memory_overhead

#: Kernel kinds that occupy a communication resource.
COMM_KINDS = (
    KernelKind.COLLECTIVE,
    KernelKind.FUSED_COLLECTIVE,
    KernelKind.P2P,
    KernelKind.FUSED_P2P,
)

#: Overlap tile buffer: NCCL-style 8 slots × 4 MiB. Communication-chain
#: overlap groups keep only a few tiles in flight (Figure 7b shows
#: T0–T2); the chunk count follows from the exchanged bytes over this.
OVERLAP_BUFFER_BYTES = 8 * 4 * 1024 * 1024

Bounds = Tuple[Tuple[int, int], ...]


@dataclass
class Launch:
    """One kernel launch: the base instruction of the lowered stream.

    ``stream`` is the issuing GPU stream (kernels on one stream
    serialize); ``resource`` is the hardware resource the launch
    occupies for cost purposes — the GPU stream for computation, the
    node fabric or NIC group for communication. ``deps`` names every
    producer kernel whose output this launch reads.
    """

    name: str
    kernel: Kernel
    stream: str
    resource: str
    deps: Tuple[str, ...] = ()

    @property
    def exprs(self) -> Tuple[Expr, ...]:
        return self.kernel.exprs

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.name}, stream={self.stream}, "
            f"deps={list(self.deps)})"
        )


@dataclass
class LocalCompute(Launch):
    """A computation kernel: GEMM, convolution, or (fused) element-wise."""


@dataclass
class PackScattered:
    """Bucket-table preparation for a fused collective (§5.4).

    Scattered (non-contiguous) tensors are addressed through buckets of
    at most 2^10 elements; each bucket costs 12 bytes of metadata (a
    64-bit tensor address and a 32-bit offset). The table is built once
    on the CPU, but the fused kernel *reads* it, so the cost model
    charges ``metadata_bytes`` of extra HBM traffic to the exchange.
    """

    name: str
    target: str             # the fused-collective kernel this feeds
    stream: str
    num_elements: int       # per-rank elements addressed through buckets
    num_buckets: int
    metadata_bytes: int


@dataclass
class CollectiveStep(Launch):
    """A communication kernel: library collective, fused exchange or P2P."""

    pack: Optional[PackScattered] = None


@dataclass
class ChunkEntry:
    """One member of an overlap group, with its chunk execution mode."""

    instr: Launch
    #: chain predecessor inside the group (chunk c waits for its chunk c)
    upstream: Optional[str]
    #: producers outside the group (kernel names)
    external_deps: Tuple[str, ...]
    #: producers inside the group (kernel names, data edges)
    group_deps: Tuple[str, ...]
    mode: str = "whole"     # "compute" | "publish" | "whole"
    #: chunked per-rank data dimension (valid for compute/publish)
    chunk_dim: Optional[int] = None
    #: half-open per-chunk slice bounds along ``chunk_dim``
    bounds: Optional[Bounds] = None

    @property
    def name(self) -> str:
        return self.instr.name


@dataclass
class ChunkLoop:
    """One overlap group lowered to a chunk-synchronized loop.

    ``ring`` marks the Figure 9 GEMM→collective pair, where the producer
    releases 2-D chunks in ring order (rank *i* starts at chunk *i*).
    """

    name: str
    entries: List[ChunkEntry]
    num_chunks: int
    ring: bool

    @property
    def member_names(self) -> Tuple[str, ...]:
        return tuple(e.name for e in self.entries)

    def __repr__(self) -> str:
        members = ", ".join(self.member_names)
        kind = "ring" if self.ring else "tiled"
        return (
            f"ChunkLoop({self.name}, {self.num_chunks} chunks, {kind}: "
            f"{members})"
        )


Instruction = Union[Launch, PackScattered, ChunkLoop]


@dataclass
class LoweredProgram:
    """The linear instruction stream all three backends consume."""

    program: Program
    plan: ExecutionPlan
    instructions: List[Instruction] = field(default_factory=list)
    #: lazily built name -> Launch index; consumers call :meth:`launch_of`
    #: once per kernel, which a linear rescan would make quadratic
    _launch_index: Optional[Dict[str, Launch]] = field(
        default=None, repr=False, compare=False
    )

    def launches(self) -> List[Launch]:
        """Every kernel launch, flattening chunk loops."""
        out: List[Launch] = []
        for instr in self.instructions:
            if isinstance(instr, ChunkLoop):
                out.extend(e.instr for e in instr.entries)
            elif isinstance(instr, Launch):
                out.append(instr)
        return out

    def launch_of(self, kernel_name: str) -> Launch:
        if self._launch_index is None:
            self._launch_index = {l.name: l for l in self.launches()}
        try:
            return self._launch_index[kernel_name]
        except KeyError:
            raise CoCoNetError(
                f"no launch for kernel {kernel_name!r}"
            ) from None

    def chunk_loops(self) -> List[ChunkLoop]:
        return [i for i in self.instructions if isinstance(i, ChunkLoop)]

    def describe(self) -> str:
        lines = []
        for instr in self.instructions:
            if isinstance(instr, ChunkLoop):
                members = " <-> ".join(instr.member_names)
                kind = "ring" if instr.ring else "tiled"
                lines.append(
                    f"chunk_loop {instr.name} [{instr.num_chunks} chunks, "
                    f"{kind}]: {members}"
                )
                for e in instr.entries:
                    lines.append(
                        f"  {e.name}: {e.mode} @ {e.instr.stream} "
                        f"-> {e.instr.resource}"
                    )
            elif isinstance(instr, PackScattered):
                lines.append(
                    f"pack_scattered {instr.name}: {instr.num_buckets} "
                    f"buckets, {instr.metadata_bytes} B metadata"
                )
            else:
                lines.append(
                    f"{type(instr).__name__.lower()} {instr.name} "
                    f"@ {instr.stream} -> {instr.resource}"
                )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Derivation helpers (shared facts, derived once here).
# ---------------------------------------------------------------------------


def stream_of(kernel: Kernel) -> str:
    """The issuing GPU stream of a kernel (one per rank group origin)."""
    return f"gpu:{kernel.output.group.start}"


def fabric_of(comm: Expr, gpus_per_node: Optional[int]) -> str:
    """The communication resource a collective occupies.

    With a known node width the name distinguishes the intra-node
    fabric from cross-node groups, matching the cost model's historical
    resource naming; without one, a generic per-group channel is used.
    """
    group = comm.group
    if gpus_per_node is None:
        return f"comm:g{group.start}x{group.size}"
    first = group.start // gpus_per_node
    last = (group.start + group.size - 1) // gpus_per_node
    if first == last:
        return f"fabric:node{first}"
    return f"fabric:g{group.start}x{group.size}"


def fused_pack_info(kernel: Kernel) -> Optional[PackScattered]:
    """§5.4 bucket metadata for a fused-collective kernel.

    The exchange anchor (the ReduceScatter of an RS..AG ring, else the
    first communication op) addresses its input through the bucket
    table; the table costs 12 bytes per 2^10-element bucket.
    """
    comm = [e for e in kernel.exprs if isinstance(e, ops.CommOp)]
    if not comm:
        return None
    scatters = [e for e in comm if isinstance(e, ops.ReduceScatter)]
    anchor = scatters[0] if scatters else comm[0]
    src = anchor.inputs[0]
    elems = src.per_rank_bytes() // max(1, src.dtype.itemsize)
    if elems <= 0:
        return None
    buckets = -(-elems // BUCKET_ELEMENTS)
    return PackScattered(
        name=f"pack_{kernel.name}",
        target=kernel.name,
        stream=stream_of(kernel),
        num_elements=elems,
        num_buckets=buckets,
        metadata_bytes=bucket_memory_overhead(elems),
    )


def _per_rank_extent(e: Expr, dim: int) -> int:
    """Extent of a per-rank value of ``e`` along data dimension ``dim``."""
    shape = e.shape
    extent = shape[dim]
    lay = e.layout
    if lay.is_sliced and normalize_dim(lay.dim, len(shape)) == dim:
        extent //= e.group.size
    return extent


def _even_bounds(extent: int, parts: int) -> Optional[Bounds]:
    if parts <= 0 or extent % parts != 0:
        return None
    step = extent // parts
    return tuple((i * step, (i + 1) * step) for i in range(parts))


_CHUNKABLE_POINTWISE = (ops.Binary, ops.Unary, ops.Cast)


def _num_chunks(
    kernels: Sequence[Kernel], overlap_chunks: Optional[int]
) -> int:
    """Chunk count of an overlap group (the historical cost-model rule)."""
    comm_members = [k for k in kernels if k.kind in COMM_KINDS]
    first_comm = comm_members[0] if comm_members else None
    if overlap_chunks is not None:
        return overlap_chunks
    if kernels[0].kind is KernelKind.GEMM:
        # GEMM producer: 2-D chunks in ring order, one per rank
        # (Figure 9)
        anchor = first_comm if first_comm is not None else kernels[0]
        return min(32, max(4, anchor.output.group.size))
    if first_comm is not None:
        # Communication chain (Figure 7b): tiles are communication
        # buffers handed from stage to stage; NCCL's buffer-slot
        # recycling keeps only a few tiles in flight.
        nbytes = max(
            first_comm.output.per_rank_bytes(),
            first_comm.exprs[0].inputs[0].per_rank_bytes(),
        )
        return min(4, max(2, -(-nbytes // OVERLAP_BUFFER_BYTES)))
    return 8


def _entry_chunking(
    kernel: Kernel,
    nchunks: int,
    ring_producer: bool,
    common_extent: Optional[int],
) -> Tuple[str, Optional[int], Optional[Bounds]]:
    """(mode, chunk_dim, bounds) of one overlap member.

    Ring producers chunk the second-to-last output dimension (the GEMM
    M rows of Figure 9); everything else chunks the leading per-rank
    data dimension, and only while every chunked member of the group
    agrees on that extent — mismatched extents would let a consumer
    read an unpublished region.
    """
    out = kernel.output
    if ring_producer:
        if len(out.shape) < 2:
            return "whole", None, None
        dim = len(out.shape) - 2
        bounds = _even_bounds(_per_rank_extent(out, dim), nchunks)
        if bounds is None:
            return "whole", None, None
        return "publish", dim, bounds
    if not out.shape:
        return "whole", None, None
    extent = _per_rank_extent(out, 0)
    if common_extent is not None and extent != common_extent:
        return "whole", None, None
    bounds = _even_bounds(extent, nchunks)
    if bounds is None:
        return "whole", None, None
    if kernel.kind in (KernelKind.GEMM, KernelKind.CONV):
        # single BLAS/library call, chunk-wise release of the result
        return ("publish", 0, bounds) if len(kernel.exprs) == 1 else (
            "whole", None, None
        )
    if kernel.kind in (KernelKind.ELEMENTWISE, KernelKind.FUSED_ELEMENTWISE):
        chunkable = all(
            isinstance(e, _CHUNKABLE_POINTWISE)
            and e.shape
            and _per_rank_extent(e, 0) == extent
            for e in kernel.exprs
        )
        return ("compute", 0, bounds) if chunkable else ("whole", None, None)
    if kernel.kind is KernelKind.COLLECTIVE and len(kernel.exprs) == 1:
        e = kernel.exprs[0]
        # writeback gathers mutate tensor storage: keep them atomic
        if getattr(e, "writeback", None) is None:
            return "publish", 0, bounds
    return "whole", None, None


# ---------------------------------------------------------------------------
# The lowering pass.
# ---------------------------------------------------------------------------


def lower(
    scheduled,
    cluster=None,
    overlap_chunks: Optional[int] = None,
) -> LoweredProgram:
    """Lower a schedule (or a plain program) to a :class:`LoweredProgram`.

    ``cluster`` (anything with ``.node.gpus_per_node``) refines the
    communication resource names; the instruction structure itself is
    cluster-independent. ``overlap_chunks`` overrides the per-group
    chunk count, mirroring the cost model's historical knob.
    """
    from repro.core.transforms.schedule import Schedule

    if isinstance(scheduled, LoweredProgram):
        return scheduled
    if isinstance(scheduled, Schedule):
        sched = scheduled
    elif isinstance(scheduled, Program):
        sched = Schedule(scheduled)
    else:
        raise CoCoNetError(
            f"cannot lower {type(scheduled).__name__}; expected a "
            f"Schedule, Program or LoweredProgram"
        )
    plan = sched.plan()
    program = sched.program
    gpus_per_node = (
        cluster.node.gpus_per_node if cluster is not None else None
    )

    producer: Dict[int, str] = {}
    for k in plan.kernels:
        for e in k.exprs:
            producer[id(e)] = k.name
    kernel_deps: Dict[str, Tuple[str, ...]] = {}
    for k in plan.kernels:
        deps: List[str] = []
        for e in k.exprs:
            for i in e.inputs:
                p = producer.get(id(i))
                if p and p != k.name and p not in deps:
                    deps.append(p)
        kernel_deps[k.name] = tuple(deps)

    def make_launch(k: Kernel) -> Launch:
        stream = stream_of(k)
        if k.kind in COMM_KINDS:
            comm = next(e for e in k.exprs if isinstance(e, ops.CommOp))
            resource = fabric_of(comm, gpus_per_node)
            pack = (
                fused_pack_info(k)
                if k.kind is KernelKind.FUSED_COLLECTIVE
                else None
            )
            return CollectiveStep(
                k.name, k, stream, resource, kernel_deps[k.name], pack
            )
        return LocalCompute(k.name, k, stream, stream, kernel_deps[k.name])

    plan_index = {k.name: i for i, k in enumerate(plan.kernels)}

    def _span_closure(names: set) -> set:
        """Close a member set over its plan span.

        The loop spans the plan region from the first to the last
        member. A non-member kernel inside that span that (transitively)
        depends on a member sits on the group's producer→consumer path
        — e.g. the ReduceScatter of an ``overlap(mm, ar); split(ar)``
        script, where the group holds the MatMul and the AllGather —
        and must execute inside the loop; it joins as a member, which
        also models the real chunk pipeline (MM→RS→AG) instead of
        dropping the dependency. Span kernels independent of the group
        keep their position before the loop.
        """
        included = set(names)
        while True:
            positions = [plan_index[n] for n in included]
            lo, hi = min(positions), max(positions)
            grew = False
            for k in plan.kernels[lo : hi + 1]:
                if k.name in included:
                    continue
                if any(d in included for d in kernel_deps[k.name]):
                    included.add(k.name)
                    grew = True
            if not grew:
                return included

    def _merged_groups() -> List[set]:
        """Span-closed overlap groups, merged when their regions share
        kernels — one kernel must belong to exactly one chunk loop, and
        two groups whose lowered regions interleave are in reality one
        chunk-synchronized pipeline."""
        merged: List[set] = []
        for group in plan.overlap_groups:
            acc = _span_closure(set(group))
            keep: List[set] = []
            for m in merged:
                if m & acc:
                    acc |= m
                else:
                    keep.append(m)
            merged = keep + [acc]
        # merging can widen a span over new interposed kernels; close
        # and re-merge until the partition is stable
        while True:
            before = {frozenset(m) for m in merged}
            regrouped: List[set] = []
            for acc in (_span_closure(m) for m in merged):
                keep: List[set] = []
                for m in regrouped:
                    if m & acc:
                        acc |= m
                    else:
                        keep.append(m)
                regrouped = keep + [acc]
            merged = regrouped
            if {frozenset(m) for m in merged} == before:
                break
        merged.sort(key=lambda m: min(plan_index[n] for n in m))
        return merged

    def make_chunk_loop(gi: int, included: set) -> ChunkLoop:
        kernels = [k for k in plan.kernels if k.name in included]
        nchunks = _num_chunks(kernels, overlap_chunks)
        ring = (
            kernels[0].kind is KernelKind.GEMM
            and len(kernels) == 2
            and kernels[1].kind in COMM_KINDS
        )
        entries: List[ChunkEntry] = []
        common_extent: Optional[int] = None
        for ki, k in enumerate(kernels):
            deps = kernel_deps[k.name]
            mode, dim, bounds = _entry_chunking(
                k, nchunks, ring and ki == 0, common_extent
            )
            if not ring and mode != "whole" and common_extent is None:
                common_extent = _per_rank_extent(k.output, 0)
            entries.append(
                ChunkEntry(
                    instr=make_launch(k),
                    upstream=kernels[ki - 1].name if ki > 0 else None,
                    external_deps=tuple(
                        d for d in deps if d not in included
                    ),
                    group_deps=tuple(d for d in deps if d in included),
                    mode=mode,
                    chunk_dim=dim,
                    bounds=bounds,
                )
            )
        return ChunkLoop(f"overlap_{gi}", entries, nchunks, ring)

    loops: List[ChunkLoop] = []
    consumed: Dict[str, ChunkLoop] = {}
    for gi, included in enumerate(_merged_groups()):
        loop = make_chunk_loop(gi, included)
        loops.append(loop)
        for name in loop.member_names:
            consumed[name] = loop

    instructions: List[Instruction] = []
    loop_emit_at = {
        id(loop): max(plan_index[n] for n in loop.member_names)
        for loop in loops
    }
    for pi, k in enumerate(plan.kernels):
        loop = consumed.get(k.name)
        if loop is not None:
            # the loop is issued at its last member's plan position,
            # after every kernel the group depends on
            if loop_emit_at[id(loop)] == pi:
                instructions.append(loop)
            continue
        launch = make_launch(k)
        if isinstance(launch, CollectiveStep) and launch.pack is not None:
            instructions.append(launch.pack)
        instructions.append(launch)
    return LoweredProgram(program, plan, instructions)
