"""Data-flow graph utilities: traversal, users, and rewriting.

"A CoCoNet program inherits the concept of a data-flow graph (DFG) from
existing machine learning frameworks with operations as vertices and data
dependencies as edges" (Section 2.2). Expressions already form that graph
through their ``inputs`` tuples; this module provides the queries the
transformation system needs — topological order, user maps, reachability
— plus :func:`clone_with_inputs` / :func:`rewrite`, the substitution
machinery every transformation is built on.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.core import ops as _ops
from repro.core.tensor import Const, Expr, Scalar, Tensor
from repro.errors import TransformError


def topological(roots: Sequence[Expr]) -> List[Expr]:
    """All expressions reachable from ``roots``, inputs before users."""
    order: List[Expr] = []
    seen: Set[int] = set()

    def visit(e: Expr) -> None:
        if id(e) in seen:
            return
        seen.add(id(e))
        for inp in e.inputs:
            visit(inp)
        order.append(e)

    for r in roots:
        visit(r)
    return order


def reachable(roots: Sequence[Expr]) -> Set[Expr]:
    return set(topological(roots))


def users_map(roots: Sequence[Expr]) -> Dict[Expr, List[Expr]]:
    """Map each expression to the expressions that consume it."""
    users: Dict[Expr, List[Expr]] = {}
    for e in topological(roots):
        users.setdefault(e, [])
        for inp in e.inputs:
            users.setdefault(inp, []).append(e)
    return users


def is_on_path(producer: Expr, consumer: Expr) -> bool:
    """Whether ``consumer`` (transitively) depends on ``producer``."""
    return producer in reachable([consumer])


def clone_with_inputs(
    expr: Expr,
    new_inputs: Tuple[Expr, ...],
    leaf_map: "Mapping[Expr, Expr] | None" = None,
) -> Expr:
    """Rebuild an operation vertex with substituted inputs.

    Re-runs shape/layout inference, so a clone whose inputs changed layout
    (e.g. replicated → sliced during reorder) gets a correctly inferred
    output layout. Attribute-carrying ops (Dropout seed, reduction kind,
    roots) keep their attributes — the Dropout seed in particular must
    survive cloning for transformations to be semantics-preserving.

    ``leaf_map`` additionally remaps *non-input* leaf references such as
    an Update's target tensor (needed by ``asSlice``).
    """
    if expr.is_leaf:
        if new_inputs:
            raise TransformError(f"leaf {expr.signature()} takes no inputs")
        return expr
    o = _ops
    if isinstance(expr, o.AllReduce):
        return o.AllReduce(expr.reduction, new_inputs[0], name=expr.name)
    if isinstance(expr, o.ReduceScatter):
        return o.ReduceScatter(
            expr.reduction, new_inputs[0], dim=expr.layout.dim, name=expr.name
        )
    if isinstance(expr, o.AllGather):
        clone = o.AllGather(new_inputs[0], name=expr.name)
        wb = expr.writeback
        if wb is not None and leaf_map is not None:
            wb = leaf_map.get(wb, wb)
        clone.writeback = wb
        return clone
    if isinstance(expr, o.AllToAllPhase):
        return o.AllToAllPhase(
            new_inputs[0], expr.dim, expr.phase, expr.node_size,
            name=expr.name,
        )
    if isinstance(expr, o.AllToAll):
        return o.AllToAll(new_inputs[0], dim=expr.dim, name=expr.name)
    if isinstance(expr, o.Reduce):
        return o.Reduce(expr.reduction, new_inputs[0], root=expr.root, name=expr.name)
    if isinstance(expr, o.Broadcast):
        return o.Broadcast(new_inputs[0], root=expr.root, name=expr.name)
    if isinstance(expr, o.Send):
        return o.Send(new_inputs[0], expr.dst, name=expr.name)
    if isinstance(expr, o.MatMul):
        return o.MatMul(new_inputs[0], new_inputs[1], name=expr.name)
    if isinstance(expr, o.Conv2D):
        return o.Conv2D(
            new_inputs[0],
            new_inputs[1],
            stride=expr.stride,
            padding=expr.padding,
            name=expr.name,
        )
    if isinstance(expr, o.Binary):
        return o.Binary(expr.op, new_inputs[0], new_inputs[1], name=expr.name)
    if isinstance(expr, o.Unary):
        return o.Unary(expr.op, new_inputs[0], name=expr.name)
    if isinstance(expr, o.Dropout):
        return o.Dropout(new_inputs[0], expr.prob, seed=expr.seed, name=expr.name)
    if isinstance(expr, o.Cast):
        return o.Cast(expr.dtype, new_inputs[0], name=expr.name)
    if isinstance(expr, o.Slice):
        return o.Slice(new_inputs[0], expr.layout.dim, name=expr.name)
    if isinstance(expr, o.Norm):
        return o.Norm(new_inputs[0], name=expr.name)
    if isinstance(expr, o.ReduceTensor):
        return o.ReduceTensor(expr.reduction, new_inputs[0], name=expr.name)
    if isinstance(expr, o.Update):
        target = expr.target
        if leaf_map is not None:
            target = leaf_map.get(target, target)
        return o.Update(target, new_inputs[0], name=expr.name)
    raise TransformError(f"cannot clone {type(expr).__name__}")


def rewrite(
    roots: Sequence[Expr],
    mapping: Mapping[Expr, Expr],
    leaf_map: "Mapping[Expr, Expr] | None" = None,
) -> Tuple[List[Expr], Dict[Expr, Expr]]:
    """Rebuild the graph under ``roots`` with substitutions applied.

    ``mapping`` sends old vertices to their replacements. Every vertex
    downstream of a replaced vertex is cloned; untouched vertices are
    shared. Returns the new roots and the complete old→new map (identity
    entries included) so callers can chase any old reference.
    """
    memo: Dict[Expr, Expr] = dict(mapping)

    def rebuild(e: Expr) -> Expr:
        if e in memo:
            return memo[e]
        if e.is_leaf:
            memo[e] = e
            return e
        new_inputs = tuple(rebuild(i) for i in e.inputs)
        unchanged = all(n is old for n, old in zip(new_inputs, e.inputs))
        target_moved = (
            leaf_map is not None
            and isinstance(e, _ops.Update)
            and e.target in leaf_map
        )
        if unchanged and not target_moved:
            memo[e] = e
        else:
            memo[e] = clone_with_inputs(e, new_inputs, leaf_map)
        return memo[e]

    new_roots = [rebuild(r) for r in roots]
    return new_roots, memo


def leaves(roots: Sequence[Expr]) -> List[Expr]:
    """Leaf expressions (Tensors / Scalars / Consts) under ``roots``."""
    return [e for e in topological(roots) if e.is_leaf]


def input_leaves(roots: Sequence[Expr]) -> List[Expr]:
    """Leaves that must be provided as program inputs (non-constants)."""
    return [
        e
        for e in topological(roots)
        if isinstance(e, (Tensor, Scalar)) and not isinstance(e, Const)
    ]


def region_live_outs(
    region: Sequence[Expr], roots: Sequence[Expr]
) -> List[Expr]:
    """Members of ``region`` consumed outside it, or that are program
    outputs / in-place updates — the values a reorder must AllGather."""
    region_set = set(region)
    users = users_map(roots)
    outs: List[Expr] = []
    root_set = set(roots)
    for e in region:
        external = [u for u in users.get(e, []) if u not in region_set]
        if external or e in root_set or isinstance(e, _ops.Update):
            outs.append(e)
    return outs


def external_inputs(region: Iterable[Expr]) -> List[Expr]:
    """Expressions feeding the region from outside it, in first-use order."""
    region_set = set(region)
    seen: Set[int] = set()
    result: List[Expr] = []
    for e in region:
        for inp in e.inputs:
            if inp not in region_set and id(inp) not in seen:
                seen.add(id(inp))
                result.append(inp)
    return result
