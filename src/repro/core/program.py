"""Programs: the `Execute` construct.

"Execute defines the name, inputs, and outputs of the program"
(Section 2.2, Figure 3 line 15). A :class:`Program` freezes a DFG with a
declared interface and offers the queries the rest of the system uses:
topological op order, pretty printing (which also provides the DSL line
counts of Table 3), and the set of in-place-updated tensors.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core import dfg, ops
from repro.core.tensor import Const, Expr, Scalar, Tensor
from repro.errors import CoCoNetError


class Program:
    """An executable CoCoNet program: named inputs, a DFG, named outputs.

    ``effects`` are operations that must execute for their side effects
    (in-place Updates, or the AllGathers that write an updated value back
    to a replicated tensor) even though no program output depends on
    them. The reorder transformation introduces such gathers; ``dead``
    removes them (Figure 6b line 6).
    """

    def __init__(
        self,
        name: str,
        inputs: Sequence[Expr],
        outputs: Sequence[Expr],
        effects: Sequence[Expr] = (),
    ) -> None:
        self.name = name
        self.inputs: Tuple[Expr, ...] = tuple(inputs)
        self.outputs: Tuple[Expr, ...] = tuple(outputs)
        self.effects: Tuple[Expr, ...] = tuple(effects)
        # a Program's DFG is frozen at construction, so its topological
        # order is computed once; do not mutate the cached lists
        self._topo_cache: "List[Expr] | None" = None
        self._validate()

    def _validate(self) -> None:
        declared = set(self.inputs)
        for leaf in dfg.input_leaves(self.roots):
            if leaf not in declared:
                raise CoCoNetError(
                    f"program {self.name!r} uses undeclared input "
                    f"{leaf.signature()}"
                )
        names = [e.name for e in self.inputs]
        if len(names) != len(set(names)):
            raise CoCoNetError(f"program {self.name!r} has duplicate input names")

    # -- graph queries ------------------------------------------------------

    @property
    def roots(self) -> Tuple[Expr, ...]:
        """Outputs plus side-effect ops: everything that must execute."""
        return self.outputs + self.effects

    def _topological(self) -> List[Expr]:
        if self._topo_cache is None:
            self._topo_cache = dfg.topological(self.roots)
        return self._topo_cache

    @property
    def operations(self) -> List[Expr]:
        """All non-leaf vertices in topological (executable) order."""
        return [e for e in self._topological() if not e.is_leaf]

    @property
    def comm_ops(self) -> List[Expr]:
        return [e for e in self.operations if isinstance(e, ops.CommOp)]

    @property
    def compute_ops(self) -> List[Expr]:
        return [e for e in self.operations if isinstance(e, ops.ComputeOp)]

    def updated_tensors(self) -> List[Tensor]:
        """Input tensors written in place by Update ops, in program order."""
        result = []
        for e in self.operations:
            if isinstance(e, ops.Update) and e.target not in result:
                result.append(e.target)
        return result

    def find(self, name: str) -> Expr:
        """Look up a vertex (input or operation) by name."""
        for e in self._topological():
            if e.name == name:
                return e
        for e in self.inputs:
            if e.name == name:
                return e
        raise KeyError(f"no expression named {name!r} in program {self.name!r}")

    # -- printing -----------------------------------------------------------

    def pretty(self) -> str:
        """Render the program as DSL-style source (Figure 3 style)."""
        lines = []
        for t in self.inputs:
            kind = "Scalar" if isinstance(t, Scalar) else "Tensor"
            dims = ", ".join(str(s) for s in t.shape)
            lines.append(
                f"{kind} {t.name}({t.dtype.name}, [{dims}], {t.layout!r}, {t.group!r})"
            )
        for e in self.operations:
            lines.append(f"Var {e.name} = {_render_op(e)}")
        outs = ", ".join(o.name for o in self.outputs)
        ins = ", ".join(i.name for i in self.inputs)
        lines.append(f"Execute {self.name}({{{ins}}}, {{{outs}}})")
        return "\n".join(lines)

    def dsl_line_count(self) -> int:
        """Number of DSL lines (the 'Program in CoCoNet' column of Table 3)."""
        return len(self.pretty().splitlines())

    def __repr__(self) -> str:
        n_comm = len(self.comm_ops)
        n_comp = len(self.compute_ops)
        return (
            f"Program({self.name!r}, {len(self.inputs)} inputs, "
            f"{n_comp} compute + {n_comm} comm ops)"
        )


def _operand(e: Expr) -> str:
    if isinstance(e, Const):
        return f"{e.value:g}"
    return e.name


def _render_op(e: Expr) -> str:
    o = ops
    args = ", ".join(_operand(i) for i in e.inputs)
    if isinstance(e, (o.AllReduce, o.ReduceScatter, o.Reduce, o.ReduceTensor)):
        return f'{type(e).__name__}("{e.reduction}", {args})'
    if isinstance(e, o.Send):
        return f"Send({args}, {e.dst!r})"
    if isinstance(e, o.AllToAllPhase):
        return (
            f"AllToAll{e.phase.capitalize()}({args}, dim={e.dim}, "
            f"node_size={e.node_size})"
        )
    if isinstance(e, o.AllToAll):
        return f"AllToAll({args}, dim={e.dim})"
    if isinstance(e, o.Binary):
        return f"{_operand(e.inputs[0])} {e.op} {_operand(e.inputs[1])}"
    if isinstance(e, o.Unary):
        return f"{e.op.capitalize()}({args})"
    if isinstance(e, o.Dropout):
        return f"Dropout({args}, {e.prob:g})"
    if isinstance(e, o.Slice):
        return f"Slice({args}, dim={e.layout.dim})"
    if isinstance(e, o.Cast):
        return f"Cast({e.dtype.name}, {args})"
    if isinstance(e, o.Update):
        return f"Update({e.target.name}, {args})"
    return f"{type(e).__name__}({args})"


def Execute(
    name: str,
    inputs: Sequence[Expr],
    outputs: Sequence[Expr],
    effects: Sequence[Expr] = (),
) -> Program:
    """Build a :class:`Program`, paper-style:

    ``Execute("self_attention", [w, in_, b, r], [out])``
    """
    return Program(name, inputs, outputs, effects)
