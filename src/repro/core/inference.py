"""Shape and layout inference rules.

"A Var's shape and distribution layout are inferred based on the operation
and inputs to the operation" (Section 2.2). These functions implement that
inference and the static checks the paper performs on every operation.

The rules encoded here:

* pointwise ops follow PyTorch broadcast semantics on shapes and a layout
  join (replicated ⊔ replicated = replicated, local absorbs replicated,
  sliced requires compatible slicing of the partner);
* MatMul between tensors sliced along the contraction dimension produces a
  *local* (partial-sum) tensor, the situation AllReduce resolves;
* collectives map local → replicated (AllReduce), local → sliced
  (ReduceScatter), sliced → replicated (AllGather).
"""

from __future__ import annotations

from typing import Tuple

from repro.core.layout import (
    Layout,
    Local,
    Replicated,
    Sliced,
    exchange_chunk_shape,
    normalize_dim,
)
from repro.core.tensor import Expr
from repro.errors import LayoutError, ShapeError


def broadcast_shapes(a: Tuple[int, ...], b: Tuple[int, ...]) -> Tuple[int, ...]:
    """NumPy/PyTorch-style broadcast of two global shapes."""
    out = []
    la, lb = len(a), len(b)
    for i in range(max(la, lb)):
        da = a[la - 1 - i] if i < la else 1
        db = b[lb - 1 - i] if i < lb else 1
        if da != db and da != 1 and db != 1:
            raise ShapeError(f"cannot broadcast shapes {a} and {b}")
        out.append(max(da, db))
    return tuple(reversed(out))


def covers_dim(operand_shape: Tuple[int, ...], out_rank: int, dim: int) -> bool:
    """Whether an operand participates (non-trivially) in output dim ``dim``.

    With trailing-aligned broadcasting, output dim ``dim`` corresponds to
    operand dim ``dim - (out_rank - len(operand_shape))``. The operand
    covers it if that index is valid and its extent is greater than one.
    """
    j = dim - (out_rank - len(operand_shape))
    return j >= 0 and operand_shape[j] > 1


def pointwise_layout(a: Expr, b: Expr, out_shape: Tuple[int, ...]) -> Layout:
    """Layout of a pointwise binary op between ``a`` and ``b``.

    Raises LayoutError on combinations the paper's type system rejects,
    e.g. adding a sliced tensor to a replicated tensor that spans the
    sliced dimension without an explicit Slice.
    """
    la, lb = a.layout, b.layout
    if la.is_sliced and lb.is_sliced:
        if la.dim != lb.dim:
            raise LayoutError(
                f"cannot combine tensors sliced along different dims: "
                f"{a.signature()} and {b.signature()}"
            )
        return la
    if la.is_sliced or lb.is_sliced:
        sliced, other = (a, b) if la.is_sliced else (b, a)
        dim = normalize_dim(sliced.layout.dim, len(sliced.shape))
        # A replicated/scalar partner is fine only if broadcasting keeps it
        # out of the sliced dimension; otherwise an explicit Slice is needed.
        if other.layout.is_local:
            raise LayoutError(
                f"cannot combine sliced {sliced.signature()} with local "
                f"{other.signature()}"
            )
        if covers_dim(other.shape, len(out_shape), dim):
            raise LayoutError(
                f"{other.signature()} spans the sliced dimension {dim} of "
                f"{sliced.signature()}; apply Slice() first"
            )
        return sliced.layout
    if la.is_local or lb.is_local:
        return Local
    return Replicated


def matmul_shape(a: Expr, b: Expr) -> Tuple[int, ...]:
    """Global output shape of ``MatMul(a, b)``.

    ``a`` may carry leading batch dimensions ([..., M, K]); ``b`` must be a
    2-D [K, N] weight (the paper's workloads only need this form).
    """
    if len(a.shape) < 2 or len(b.shape) != 2:
        raise ShapeError(
            f"MatMul expects a [..., M, K] input and a [K, N] weight, got "
            f"{a.shape} x {b.shape}"
        )
    if a.shape[-1] != b.shape[0]:
        raise ShapeError(
            f"MatMul contraction mismatch: {a.shape} x {b.shape}"
        )
    return a.shape[:-1] + (b.shape[1],)


def matmul_layout(a: Expr, b: Expr) -> Layout:
    """Layout of ``MatMul(a, b)``.

    The cases, mirroring Megatron-style parallelism:

    * contraction dim sliced on both sides → Local (partial sums, e.g.
      Figure 3: "MatMul between two sliced tensors produces a local
      tensor");
    * ``a`` sliced along a batch dim, ``b`` replicated → sliced (data
      parallel);
    * ``a`` replicated, ``b`` sliced along columns → output sliced along
      the last dim (Megatron column parallelism);
    * both replicated → replicated; a local operand with a replicated
      partner → local.
    """
    adim = (
        normalize_dim(a.layout.dim, len(a.shape)) if a.layout.is_sliced else None
    )
    bdim = (
        normalize_dim(b.layout.dim, len(b.shape)) if b.layout.is_sliced else None
    )
    a_rank = len(a.shape)
    if a.layout.is_sliced and adim == a_rank - 1:
        # a sliced along contraction dim: partner must be row-sliced.
        if not (b.layout.is_sliced and bdim == 0):
            raise LayoutError(
                f"MatMul: {a.signature()} is sliced along its contraction "
                f"dim; the weight must be Sliced(0), got {b.signature()}"
            )
        return Local
    if b.layout.is_sliced and bdim == 0:
        raise LayoutError(
            f"MatMul: weight {b.signature()} is sliced along the contraction "
            f"dim; the input must be sliced along its last dim"
        )
    if a.layout.is_sliced:
        # batch-dim sliced input
        if b.layout.is_sliced:
            raise LayoutError(
                "MatMul: cannot slice both batch dim of input and weight"
            )
        return a.layout
    if b.layout.is_sliced:  # column parallel: output sliced along last dim
        if a.layout.is_local:
            raise LayoutError(
                "MatMul: local input with column-sliced weight is ambiguous"
            )
        return Sliced(a_rank - 1)
    if a.layout.is_local or b.layout.is_local:
        return Local
    return Replicated


def alltoall_layout(x: Expr, dim: int) -> Tuple[Layout, int]:
    """Layout rule of AllToAll: Local → Local, exchanging along ``dim``.

    AllToAll permutes equal chunks *between* ranks, so its input must be
    Local (per-rank distinct values; a replicated tensor would exchange
    identical data, a sliced tensor already lives in slice form). The
    exchanged dimension must divide evenly into ``group.size`` chunks.
    Returns the output layout and the normalized dimension.
    """
    if not x.layout.is_local:
        raise LayoutError(
            f"AllToAll input must be local (per-rank values), got "
            f"{x.signature()}"
        )
    dim = normalize_dim(dim, len(x.shape))
    try:
        exchange_chunk_shape(x.shape, dim, x.group.size)
    except LayoutError:
        raise ShapeError(
            f"AllToAll dim {dim} of {x.signature()} is not divisible by "
            f"group size {x.group.size}"
        ) from None
    return Local, dim


def require_same_group(*exprs: Expr) -> None:
    group = exprs[0].group
    for e in exprs[1:]:
        if e.group != group:
            raise LayoutError(
                f"operands live in different groups: "
                f"{exprs[0].signature()} in {group}, {e.signature()} in {e.group}"
            )
