"""Element datatypes for distributed tensors.

CoCoNet tensors carry an item datatype "like FP32 and FP16" (Section 2.1).
This module defines those datatypes, their sizes (needed by the
communication cost model and the memory model), their numpy equivalents
(needed by the numeric executor), and the mixed-precision promotion rules
used by code generation (Section 5.2, "Mixed Precision").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DTypeError


@dataclass(frozen=True)
class DType:
    """An element datatype.

    Attributes:
        name: canonical name used in printed programs, e.g. ``"FP16"``.
        itemsize: size of one element in bytes.
        np_dtype: the numpy dtype string used by the simulated executor.
        is_float: whether the type is a floating-point type.
    """

    name: str
    itemsize: int
    np_dtype: str
    is_float: bool = True

    def to_numpy(self) -> np.dtype:
        """Return the numpy dtype used to hold values of this type."""
        return np.dtype(self.np_dtype)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return self.name


FP16 = DType("FP16", 2, "float16")
BF16 = DType("BF16", 2, "float32")  # numpy lacks bfloat16; simulate in fp32
FP32 = DType("FP32", 4, "float32")
FP64 = DType("FP64", 8, "float64")
INT32 = DType("INT32", 4, "int32", is_float=False)
INT64 = DType("INT64", 8, "int64", is_float=False)

ALL_DTYPES = (FP16, BF16, FP32, FP64, INT32, INT64)

_BY_NAME = {d.name: d for d in ALL_DTYPES}

# Promotion lattice position: higher rank wins in mixed-type arithmetic.
_PROMOTION_RANK = {
    "INT32": 0,
    "INT64": 1,
    "FP16": 2,
    "BF16": 2,
    "FP32": 3,
    "FP64": 4,
}


def dtype_by_name(name: str) -> DType:
    """Look up a datatype by its canonical name.

    Raises:
        DTypeError: if ``name`` is not a known datatype.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        raise DTypeError(f"unknown dtype {name!r}; known: {sorted(_BY_NAME)}") from None


def promote(a: DType, b: DType) -> DType:
    """Return the result datatype of an arithmetic op between ``a`` and ``b``.

    This mirrors the paper's mixed-precision handling: "CoCoNet finds the
    largest element type" (Section 5.2). FP16 op FP32 promotes to FP32;
    equal-rank types resolve to the left operand.
    """
    ra, rb = _PROMOTION_RANK[a.name], _PROMOTION_RANK[b.name]
    if ra == rb:
        return a
    return a if ra > rb else b


def largest_itemsize(*dtypes: DType) -> int:
    """Return the largest item size among ``dtypes`` in bytes.

    Used by codegen to compute how many elements fit in a protocol's pack
    (Section 5.2: "based on the pack type of the protocol calculates how
    many elements can be loaded at once").
    """
    if not dtypes:
        raise DTypeError("largest_itemsize requires at least one dtype")
    return max(d.itemsize for d in dtypes)
