"""Tests for the code generator: differential execution against the
interpreter across schedules and protocols, plus LoC accounting."""

import numpy as np
import pytest

from repro.core import FP32
from repro.core.codegen import CodeGenerator, count_loc
from repro.core.codegen import device as dev
from repro.core.transforms import (
    AllReduceFuse,
    ARSplitRSAG,
    ComputationFuse,
    Schedule,
)
from repro.errors import CodegenError
from repro.runtime import Executor
from repro.workloads.adam import AdamWorkload
from repro.workloads.attention import AttentionWorkload
from repro.workloads.pipeline import PipelineWorkload
from tests.conftest import attention_inputs, build_attention_program


@pytest.fixture
def rng():
    return np.random.RandomState(21)


def assert_generated_matches(sched, inputs, protocol="Simple", rtol=1e-6):
    ref = Executor().run(sched.program, inputs)
    gen = CodeGenerator(protocol).generate(sched)
    got = gen.run(inputs)
    for out in sched.program.outputs:
        np.testing.assert_allclose(
            got.output(out.name), ref.output(out.name), rtol=rtol, atol=1e-9
        )
    for t in sched.program.inputs:
        if hasattr(t, "updated_by") and t.updated_by is not None:
            np.testing.assert_allclose(
                got.tensor_state(t.name), ref.tensor_state(t.name),
                rtol=rtol, atol=1e-9,
            )
    return gen


class TestDeviceLibrary:
    def test_ring_reduce_scatter_matches_sum(self, rng):
        n = 4
        vals = {r: rng.randn(8).astype(np.float32) for r in range(n)}
        out = dev.ring_reduce_scatter(vals, list(range(n)), 0)
        total = np.sum([vals[r].astype(np.float64) for r in range(n)], axis=0)
        for i in range(n):
            np.testing.assert_allclose(
                out[i], total[i * 2 : (i + 1) * 2], rtol=1e-6
            )

    def test_ring_all_gather_roundtrip(self, rng):
        n = 4
        full = rng.randn(8).astype(np.float64)
        slices = {r: full[r * 2 : (r + 1) * 2] for r in range(n)}
        out = dev.ring_all_gather(slices, list(range(n)), 0)
        for r in range(n):
            np.testing.assert_array_equal(out[r], full)

    def test_pack_stats(self):
        assert dev.pack_stats(100, 16) == (6, 4)

    def test_slice_bounds(self):
        assert dev.slice_bounds(8, 1, 4) == (2, 4)


class TestDifferentialExecution:
    @pytest.mark.parametrize("protocol", ["LL", "LL128", "Simple"])
    def test_attention_all_protocols(self, rng, protocol):
        inputs = attention_inputs(rng)
        prog, h = build_attention_program(seed=5)
        sched = Schedule(prog)
        rs, ag = sched.split(h["allreduce"])
        results = sched.reorder(ag, h["sum_b"], h["drop"], h["out"])
        sched.fuse(rs, *results, policy=AllReduceFuse)
        assert_generated_matches(sched, inputs, protocol)

    @pytest.mark.parametrize(
        "schedule", ["megatron", "mm_ar_c", "gshard", "coconet"]
    )
    def test_attention_all_schedules(self, rng, schedule):
        wl = AttentionWorkload.build(4, 8, 16, 4, dtype=FP32, dropout_seed=3)
        inputs = attention_inputs(rng, 4, 8, 16)
        sched = getattr(wl, f"schedule_{schedule}")()
        assert_generated_matches(sched, inputs)

    @pytest.mark.parametrize("schedule", ["ar_opt", "gshard", "fused"])
    def test_adam_all_schedules(self, rng, schedule):
        wl = AdamWorkload.build(32, 4, grad_dtype=FP32)
        inputs = dict(
            g=rng.randn(4, 32) * 0.1, p=rng.randn(32),
            m=rng.randn(32) * 0.01, v=np.abs(rng.randn(32)) * 0.01,
            lr=0.01, t=2.0,
        )
        sched = getattr(wl, f"schedule_{schedule}")()
        assert_generated_matches(sched, inputs)

    @pytest.mark.parametrize(
        "schedule", ["megatron", "ar_c_p2p_ag", "gshard", "coconet"]
    )
    def test_pipeline_all_schedules(self, rng, schedule):
        wl = PipelineWorkload.build(
            2, 8, 16, world_size=8, num_groups=2, dtype=FP32, dropout_seed=4
        )
        inputs = {
            "in": rng.randn(4, 2, 8, 16),
            "b": rng.randn(16),
            "r": rng.randn(2, 8, 16),
        }
        sched = getattr(wl, f"schedule_{schedule}")()
        assert_generated_matches(sched, inputs)

    def test_generated_overlap_runs_producer_in_chunk_order(self, rng):
        wl = AttentionWorkload.build(4, 8, 16, 4, dtype=FP32)
        sched = wl.schedule_coconet()
        gen = CodeGenerator("Simple").generate(sched)
        # the orchestrator encodes Figure 9's ring chunk order
        assert "(_i + _step) % NCHUNKS" in gen.source
        assert "_flags" in gen.source


class TestLoCAccounting:
    def test_count_loc_ignores_blanks_and_comments(self):
        src = "a = 1\n\n# comment\nb = 2\n   # indented comment\n"
        assert count_loc(src) == 2

    def test_fused_generates_more_code_than_unfused(self):
        # Table 3's key relationship
        wl1 = AdamWorkload.build(32, 4, grad_dtype=FP32)
        unfused = CodeGenerator().generate(wl1.schedule_ar_opt())
        wl2 = AdamWorkload.build(32, 4, grad_dtype=FP32)
        fused = CodeGenerator().generate(wl2.schedule_fused())
        assert fused.loc() > 0 and unfused.loc() > 0
        assert fused.kernel_loc is not None

    def test_overlap_generates_most_code(self):
        wl = AttentionWorkload.build(4, 8, 16, 4, dtype=FP32)
        locs = {}
        for name in ("megatron", "mm_ar_c", "coconet"):
            wl2 = AttentionWorkload.build(4, 8, 16, 4, dtype=FP32)
            sched = getattr(wl2, f"schedule_{name}")()
            locs[name] = CodeGenerator().generate(sched).loc()
        assert locs["coconet"] > locs["mm_ar_c"]

    def test_generated_loc_exceeds_dsl_loc(self):
        # "lines of generated code ... are significantly more than the
        # implementation in CoCoNet" (Table 3)
        wl = AdamWorkload.build(32, 4, grad_dtype=FP32)
        sched = wl.schedule_fused()
        gen = CodeGenerator().generate(sched)
        assert gen.loc() > sched.dsl_line_count()

    def test_kernel_sources_partition_named_kernels(self):
        wl = AdamWorkload.build(32, 4, grad_dtype=FP32)
        sched = wl.schedule_fused()
        gen = CodeGenerator().generate(sched)
        plan_names = {k.name for k in sched.plan().kernels}
        assert plan_names <= set(gen.kernel_sources)


class TestValidation:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(CodegenError):
            CodeGenerator("LL256")

    def test_generated_module_is_importable_source(self):
        wl = AdamWorkload.build(32, 4, grad_dtype=FP32)
        gen = CodeGenerator().generate(wl.schedule_ar_opt())
        compile(gen.source, "<check>", "exec")  # no syntax errors
