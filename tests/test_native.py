"""The native compiled codegen target and its content-hash kernel cache.

Three layers of coverage:

* **Numerics** — the C prelude's half<->double conversions are checked
  bit-for-bit against numpy over the *entire* fp16 space (and a sweep
  of doubles for the rounding direction), because the native target's
  bit-identity claim rests on them.
* **Cache** — cold compile, in-process memo hit, disk hit with zero
  compiles, and a corrupt ``.so`` being deleted and recompiled once,
  all against an isolated ``REPRO_KERNEL_CACHE``.
* **Golden artifacts** — the committed ``tests/golden/*.repro.json``
  execute on the native backend: the elementwise-only fused-Adam
  artifact must match the lowered interpreter's SHA-256 digest exactly;
  the GEMM-bearing MoE artifact is held to the documented BLAS
  tolerance (see EXPERIMENTS.md, "Native codegen").
"""

import ctypes
import hashlib
import os

import numpy as np
import pytest

from repro.core import artifact
from repro.core.codegen import CodeGenerator, native
from repro.errors import CodegenError
from repro.runtime import Executor

GOLDEN = os.path.join(os.path.dirname(__file__), "golden")

needs_cc = pytest.mark.skipif(
    not native.available(), reason="no C compiler on PATH"
)


@pytest.fixture
def kernel_cache(tmp_path, monkeypatch):
    """An isolated on-disk kernel cache (and a clean in-process memo)."""
    cache = tmp_path / "kernels"
    monkeypatch.setenv("REPRO_KERNEL_CACHE", str(cache))
    saved = dict(native._MEMO)
    native._MEMO.clear()
    yield str(cache)
    native._MEMO.clear()
    native._MEMO.update(saved)


def _digest(result) -> str:
    h = hashlib.sha256()
    for name in result.output_names:
        arr = result.output(name)
        h.update(name.encode())
        h.update(str(arr.dtype).encode())
        h.update(arr.tobytes())
    states = getattr(result, "_tensor_states", {})
    for name in sorted(states):
        h.update(name.encode())
        h.update(states[name].tobytes())
    return h.hexdigest()


_CONV_HARNESS = (
    native.PRELUDE
    + r"""
void conv_h2d(char** A, double* S) {
    const uint16_t* in = (const uint16_t*)A[0];
    double* out = (double*)A[1];
    (void)S;
    for (long long i = 0; i < 65536; ++i) out[i] = repro_h2d(in[i]);
}
void conv_d2h(char** A, double* S) {
    const double* in = (const double*)A[0];
    uint16_t* out = (uint16_t*)A[1];
    long long n = (long long)S[0];
    for (long long i = 0; i < n; ++i) out[i] = repro_d2h(in[i]);
}
"""
)


@needs_cc
class TestHalfConversions:
    """repro_h2d / repro_d2h vs numpy, exhaustively."""

    def test_h2d_all_65536_bit_patterns(self, kernel_cache):
        k = native.load_kernels(_CONV_HARNESS)
        bits = np.arange(65536, dtype=np.uint16)
        out = np.empty(65536, dtype=np.float64)
        k.call("conv_h2d", (bits, out))
        ref = bits.view(np.float16).astype(np.float64)
        nan = np.isnan(ref)
        np.testing.assert_array_equal(out[~nan], ref[~nan])
        assert np.isnan(out[nan]).all()

    def test_d2h_matches_numpy_direct_rounding(self, kernel_cache):
        k = native.load_kernels(_CONV_HARNESS)
        rng = np.random.RandomState(7)
        # every fp16 regime: normals, subnormals, overflow, underflow,
        # halfway cases (the double-rounding trap), zeros, infinities
        vals = np.concatenate(
            [
                rng.standard_normal(20000),
                rng.standard_normal(20000) * 1e-4,
                rng.standard_normal(5000) * 1e-8,   # half-subnormal
                rng.standard_normal(5000) * 1e-12,  # underflow to 0
                rng.standard_normal(5000) * 1e5,    # overflow to inf
                np.arange(65536, dtype=np.uint16)
                .view(np.float16).astype(np.float64),  # exact halves
                np.float64(2049) / 2048.0 * np.float64([1.0, -1.0]),
                np.array([0.0, -0.0, np.inf, -np.inf, 65504.0, 65520.0,
                          -65520.0, 5.96e-8, 2.98e-8, 6.10352e-5]),
            ]
        )
        vals = vals[~np.isnan(vals)]
        out = np.empty(len(vals), dtype=np.uint16)
        k.call("conv_d2h", (vals, out), (float(len(vals)),))
        with np.errstate(over="ignore"):
            ref = vals.astype(np.float16).view(np.uint16)
        np.testing.assert_array_equal(out, ref)


@needs_cc
class TestKernelCache:
    def test_cold_compile_then_memo_then_disk_hit(self, kernel_cache):
        src = native.PRELUDE + "\nvoid noop_a(char** A, double* S) {}\n"
        before = native.metrics.snapshot()

        native.load_kernels(src)  # cold: compiles
        after1 = native.metrics.snapshot()
        assert (
            after1.get("native.cache.compiles", 0)
            == before.get("native.cache.compiles", 0) + 1
        )
        assert native.cold_compile_allowance(src) == 0.0

        native.load_kernels(src)  # warm: in-process memo
        after2 = native.metrics.snapshot()
        assert after2.get("native.cache.compiles", 0) == after1.get(
            "native.cache.compiles", 0
        )
        assert (
            after2.get("native.cache.memo_hits", 0)
            == after1.get("native.cache.memo_hits", 0) + 1
        )

        native._MEMO.clear()  # fresh process analogue: disk hit
        native.load_kernels(src)
        after3 = native.metrics.snapshot()
        assert after3.get("native.cache.compiles", 0) == after1.get(
            "native.cache.compiles", 0
        ), "warm-cache load must perform zero compiles"
        assert (
            after3.get("native.cache.disk_hits", 0)
            == after2.get("native.cache.disk_hits", 0) + 1
        )

    def test_corrupt_entry_recompiled(self, kernel_cache):
        src = native.PRELUDE + "\nvoid noop_b(char** A, double* S) {}\n"
        # plant a corrupt entry *before* any load, as a crashed or
        # truncated earlier writer would have left it (corrupting after
        # a load is invisible: dlopen returns the cached handle for an
        # already-open pathname)
        path = os.path.join(
            native.cache_dir(), native.source_key(src) + ".so"
        )
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as f:
            f.write(b"not a shared object")
        before = native.metrics.snapshot()
        k2 = native.load_kernels(src)
        after = native.metrics.snapshot()
        assert (
            after.get("native.cache.recompiles", 0)
            == before.get("native.cache.recompiles", 0) + 1
        )
        k2.call("noop_b", (np.zeros(1),))

    def test_cold_compile_allowance_nonzero_then_zero(self, kernel_cache):
        src = native.PRELUDE + "\nvoid noop_c(char** A, double* S) {}\n"
        assert native.cold_compile_allowance(src) > 0.0
        native.load_kernels(src)
        assert native.cold_compile_allowance(src) == 0.0

    def test_observer_receives_cache_outcomes(self, kernel_cache):
        src = native.PRELUDE + "\nvoid noop_d(char** A, double* S) {}\n"
        seen = []

        class Obs:
            def record_compile(self, name, seconds, status):
                seen.append((name, status))

        native.load_kernels(src, observer=Obs())
        native._MEMO.clear()
        native.load_kernels(src, observer=Obs())
        assert [s for _, s in seen] == ["compile", "hit"]

    def test_source_key_covers_source_and_toolchain(self, kernel_cache):
        a = native.source_key(native.PRELUDE + "/* a */")
        b = native.source_key(native.PRELUDE + "/* b */")
        assert a != b
        assert a == native.source_key(native.PRELUDE + "/* a */")


class TestTargetDispatch:
    def test_unknown_target_rejected(self):
        with pytest.raises(CodegenError):
            CodeGenerator(target="cuda")

    def test_native_target_accepted(self):
        gen = CodeGenerator(target="native")
        assert gen.target == "native"

    @needs_cc
    def test_module_memoized_by_content_hash(self, kernel_cache):
        art = artifact.load(
            os.path.join(GOLDEN, "adam_fused.repro.json")
        )
        gen = CodeGenerator("Simple", target="native")
        g1 = gen.generate(art)
        g2 = CodeGenerator("Simple", target="native").generate(art)
        assert g1 is g2, "native modules memoize on artifact content_hash"
        assert g1.c_source is not None
        assert g1.target == "native"

    @needs_cc
    def test_generated_module_embeds_c_dispatch(self, kernel_cache):
        art = artifact.load(
            os.path.join(GOLDEN, "adam_fused.repro.json")
        )
        gen = CodeGenerator("Simple", target="native").generate(art)
        assert "_ensure_native(comm)" in gen.source
        assert "_K.call(" in gen.source
        assert "repro_bind_blas" in gen.c_source


class TestTimeoutAllowance:
    def test_scaled_default_timeout_gains_allowance(self):
        from repro.runtime.spmd import (
            DEFAULT_TIMEOUT,
            SpmdLayout,
            scaled_default_timeout,
        )

        layout = SpmdLayout(nranks=2)
        assert scaled_default_timeout(layout, 0.0) == DEFAULT_TIMEOUT
        assert (
            scaled_default_timeout(layout, 0.0, compile_allowance_s=45.0)
            == DEFAULT_TIMEOUT + 45.0
        )
        # negative allowances never shrink the deadline
        assert (
            scaled_default_timeout(layout, 0.0, compile_allowance_s=-5.0)
            == DEFAULT_TIMEOUT
        )


@needs_cc
class TestGoldenArtifactsNative:
    """Committed goldens on the native backend vs the lowered oracle."""

    def _run_both(self, name, timeout=240.0):
        from repro.cli import _seeded_inputs

        art = artifact.load(os.path.join(GOLDEN, name))
        inputs = _seeded_inputs(art.program, seed=0)
        ex = Executor()
        low = ex.run_lowered(art, inputs, allow_downcast=True)
        nat = ex.run_spmd(
            art, inputs, allow_downcast=True, timeout=timeout,
            codegen_target="native",
        )
        return low, nat

    def test_adam_fused_bit_identical(self):
        # elementwise-only kernels: the compiled path must reproduce
        # the lowered interpreter bit-for-bit, digest included
        low, nat = self._run_both("adam_fused.repro.json")
        assert _digest(nat) == _digest(low)

    def test_moe_overlapped_within_blas_tolerance(self):
        # GEMM-bearing: BLAS reassociates the K-dim accumulation, so
        # the contract is the documented fp16 tolerance, not bitwise
        low, nat = self._run_both("moe_overlapped.repro.json")
        for name in low.output_names:
            a = low.output(name).astype(np.float64)
            b = nat.output(name).astype(np.float64)
            np.testing.assert_allclose(
                b, a, rtol=1e-2, atol=1e-3, err_msg=name
            )


@needs_cc
class TestBlasBinding:
    def test_gemm_matches_numpy_f64(self, kernel_cache):
        # a dgemm through the injected pointer (or the tiled fallback)
        src = native.PRELUDE + r"""
void gg(char** A, double* S) {
    (void)S;
    repro_gemm_f64((const double*)A[0], (const double*)A[1],
                   (double*)A[2], 7LL, 5LL, 11LL);
}
"""
        k = native.load_kernels(src)
        rng = np.random.RandomState(3)
        a = rng.standard_normal((7, 11))
        b = rng.standard_normal((11, 5))
        out = np.empty((7, 5))
        k.call("gg", (a, b, out))
        np.testing.assert_allclose(out, a @ b, rtol=1e-12, atol=1e-14)

    def test_bind_blas_symbol_exported(self, kernel_cache):
        src = native.PRELUDE + "\nvoid noop_e(char** A, double* S) {}\n"
        k = native.load_kernels(src)
        assert hasattr(k._lib, "repro_bind_blas")
        assert isinstance(k._lib.repro_bind_blas, ctypes._CFuncPtr)
