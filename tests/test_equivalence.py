"""Semantics preservation: every transformed schedule must compute the
same values as the original program. This is the paper's core claim
("semantics preserving transformations") enforced end to end, including
hypothesis property tests over randomized programs and inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FP32,
    RANK,
    AllReduce,
    Binary,
    Dropout,
    Execute,
    Local,
    ReLU,
    Replicated,
    Sqrt,
    Tanh,
    Tensor,
    Update,
    world,
)
from repro.core.transforms import (
    AllReduceFuse,
    ARSplitReduceBroadcast,
    ARSplitRSAG,
    ComputationFuse,
    Schedule,
)
from repro.runtime import Executor
from tests.conftest import attention_inputs, build_attention_program
from repro.workloads.adam import AdamWorkload, adam_reference
from repro.workloads.lamb import LambWorkload, lamb_reference
from repro.workloads.pipeline import PipelineWorkload


def assert_same_outputs(prog_a, prog_b, inputs, rtol=1e-6):
    ra = Executor().run(prog_a, inputs)
    rb = Executor().run(prog_b, inputs)
    a_out = ra.output(prog_a.outputs[0].name)
    b_out = rb.output(prog_b.outputs[0].name)
    np.testing.assert_allclose(a_out, b_out, rtol=rtol, atol=1e-7)


class TestAttentionEquivalence:
    """Figure 4's transformation chain on Figure 3's program."""

    def test_split_preserves_semantics(self):
        rng = np.random.RandomState(0)
        inputs = attention_inputs(rng)
        prog, h = build_attention_program()
        sched = Schedule(prog)
        sched.split(h["allreduce"], ARSplitRSAG)
        assert_same_outputs(prog, sched.program, inputs)

    def test_split_reduce_broadcast_preserves_semantics(self):
        rng = np.random.RandomState(1)
        inputs = attention_inputs(rng)
        prog, h = build_attention_program()
        sched = Schedule(prog)
        sched.split(h["allreduce"], ARSplitReduceBroadcast)
        assert_same_outputs(prog, sched.program, inputs)

    def test_split_reorder_preserves_semantics(self):
        rng = np.random.RandomState(2)
        inputs = attention_inputs(rng)
        prog, h = build_attention_program()
        sched = Schedule(prog)
        _, ag = sched.split(h["allreduce"])
        sched.reorder(ag, h["sum_b"], h["drop"], h["out"])
        assert_same_outputs(prog, sched.program, inputs)

    def test_full_figure4_chain_preserves_semantics(self):
        rng = np.random.RandomState(3)
        inputs = attention_inputs(rng)
        prog, h = build_attention_program()
        sched = Schedule(prog)
        rs, ag = sched.split(h["allreduce"])
        results = sched.reorder(ag, h["sum_b"], h["drop"], h["out"])
        fused = sched.fuse(rs, *results, policy=AllReduceFuse)
        sched.overlap(h["layer"], fused)
        assert_same_outputs(prog, sched.program, inputs)

    def test_dropout_mask_identical_across_schedules(self):
        # the sliced dropout draws exactly the original mask
        rng = np.random.RandomState(4)
        inputs = attention_inputs(rng)
        inputs["r"] = np.zeros_like(inputs["r"])  # isolate dropout output
        prog, h = build_attention_program(seed=1234)
        ref = Executor().run(prog, inputs)
        prog2, h2 = build_attention_program(seed=1234)
        sched = Schedule(prog2)
        _, ag = sched.split(h2["allreduce"])
        sched.reorder(ag, h2["sum_b"], h2["drop"], h2["out"])
        got = Executor().run(sched.program, inputs)
        np.testing.assert_array_equal(
            ref.output("out"),
            got.output(sched.program.outputs[0].name),
        )


class TestOptimizerEquivalence:
    """Figure 6's Adam (and LAMB) against their references, per schedule."""

    @pytest.fixture
    def state(self):
        rng = np.random.RandomState(5)
        n, N = 4, 32
        return {
            "inputs": dict(
                g=rng.randn(n, N) * 0.1,
                p=rng.randn(N),
                m=rng.randn(N) * 0.01,
                v=np.abs(rng.randn(N)) * 0.01,
                lr=0.01,
                t=2.0,
            ),
            "n": n,
            "N": N,
        }

    @pytest.mark.parametrize("schedule", ["ar_opt", "gshard", "fused"])
    def test_adam_schedules_match_reference(self, state, schedule):
        wl = AdamWorkload.build(state["N"], state["n"], grad_dtype=FP32)
        sched = getattr(wl, f"schedule_{schedule}")()
        res = Executor().run(sched.program, state["inputs"])
        p, m, v = adam_reference(
            state["inputs"]["g"], state["inputs"]["p"],
            state["inputs"]["m"], state["inputs"]["v"], 0.01, 2.0,
        )
        np.testing.assert_allclose(res.tensor_state("p"), p, rtol=1e-5)
        np.testing.assert_allclose(res.tensor_state("v"), v, rtol=1e-5)
        np.testing.assert_allclose(res.tensor_state("m"), m, rtol=1e-5)

    @pytest.mark.parametrize("schedule", ["ar_opt", "gshard", "fused"])
    def test_lamb_schedules_match_reference(self, state, schedule):
        wl = LambWorkload.build(state["N"], state["n"], grad_dtype=FP32)
        sched = getattr(wl, f"schedule_{schedule}")()
        res = Executor().run(sched.program, state["inputs"])
        p, m, v = lamb_reference(
            state["inputs"]["g"], state["inputs"]["p"],
            state["inputs"]["m"], state["inputs"]["v"], 0.01, 2.0,
        )
        np.testing.assert_allclose(res.tensor_state("p"), p, rtol=1e-5)

    def test_gshard_slices_optimizer_state(self, state):
        # after asSlice, m and v are declared sliced (memory win of §6.1.2)
        wl = AdamWorkload.build(state["N"], state["n"], grad_dtype=FP32)
        sched = wl.schedule_gshard()
        decls = {t.name: t for t in sched.program.inputs}
        assert decls["m"].layout.is_sliced
        assert decls["v"].layout.is_sliced
        assert decls["p"].layout.is_replicated


class TestPipelineEquivalence:
    """Figure 8's pipeline schedules."""

    @pytest.fixture
    def inputs(self):
        rng = np.random.RandomState(6)
        return {
            "in": rng.randn(4, 2, 8, 16),  # local: (group, B, S, H)
            "b": rng.randn(16),
            "r": rng.randn(2, 8, 16),
        }

    @pytest.mark.parametrize(
        "schedule", ["megatron", "ar_c_p2p_ag", "gshard", "coconet"]
    )
    def test_pipeline_schedules_agree(self, inputs, schedule):
        base = PipelineWorkload.build(
            2, 8, 16, world_size=8, num_groups=2, dtype=FP32, dropout_seed=5
        )
        ref = Executor().run(base.program, inputs)
        ref_out = ref.output(base.program.outputs[0].name)
        wl = PipelineWorkload.build(
            2, 8, 16, world_size=8, num_groups=2, dtype=FP32, dropout_seed=5
        )
        sched = getattr(wl, f"schedule_{schedule}")()
        got = Executor().run(sched.program, inputs)
        got_out = got.output(sched.program.outputs[0].name)
        np.testing.assert_allclose(got_out, ref_out, rtol=1e-6)

    def test_coconet_sends_slices_not_full(self, inputs):
        wl = PipelineWorkload.build(
            2, 8, 16, world_size=8, num_groups=2, dtype=FP32
        )
        sched = wl.schedule_coconet()
        from repro.core import ops

        send = next(
            e for e in sched.program.operations if isinstance(e, ops.Send)
        )
        assert send.layout.is_sliced
        # a quarter of the bytes per rank vs the replicated megatron send
        assert send.per_rank_bytes() * 4 == send.num_elements * 4


class TestRandomizedPrograms:
    """Property: split+reorder on random pointwise chains is semantics
    preserving."""

    @given(
        seed=st.integers(0, 10_000),
        depth=st.integers(1, 5),
        n=st.sampled_from([2, 4]),
        per=st.sampled_from([2, 3]),
    )
    @settings(max_examples=25, deadline=None)
    def test_split_reorder_random_chain(self, seed, depth, n, per):
        rng = np.random.RandomState(seed)
        W = world(n)
        N = n * per
        g = Tensor(FP32, (N,), Local, W, RANK, name="g")
        r = Tensor(FP32, (N,), Replicated, W, name="r")
        ar = AllReduce("+", g, name="ar")
        cur = ar
        chain = []
        op_pool = ["+", "*", "-", "relu", "tanh", "drop", "sqrtabs"]
        for i in range(depth):
            kind = op_pool[rng.randint(len(op_pool))]
            if kind in ("+", "*", "-"):
                cur = Binary(kind, cur, r, name=f"b{i}")
            elif kind == "relu":
                cur = ReLU(cur)
            elif kind == "tanh":
                cur = Tanh(cur)
            elif kind == "drop":
                cur = Dropout(cur, 0.3, seed=seed + i, name=f"d{i}")
            else:
                cur = Sqrt(Binary("*", cur, cur, name=f"sq{i}"))
            chain.append(cur)
            chain.extend(
                x for x in (cur.inputs[0],) if not x.is_leaf and x not in chain
            )
        prog = Execute("rand", [g, r], [cur])
        inputs = {"g": rng.randn(n, N), "r": rng.randn(N)}
        ref = Executor().run(prog, inputs).output(cur.name)

        sched = Schedule(prog)
        region = [e for e in sched.program.operations if e is not ar]
        _, ag = sched.split(ar)
        sched.reorder(ag, *region)
        got = Executor().run(sched.program, inputs)
        got_out = got.output(sched.program.outputs[0].name)
        np.testing.assert_allclose(got_out, ref, rtol=1e-5, atol=1e-7)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_update_chain_equivalence(self, seed):
        rng = np.random.RandomState(seed)
        n, N = 4, 8
        W = world(n)
        g = Tensor(FP32, (N,), Local, W, RANK, name="g")
        p = Tensor(FP32, (N,), Replicated, W, name="p")
        ar = AllReduce("+", g, name="ar")
        delta = Binary("*", ar, 0.1, name="delta")
        new_p = Binary("-", p, delta, name="new_p")
        upd = Update(p, new_p, name="upd")
        prog = Execute("sgd", [g, p], [upd])
        inputs = {"g": rng.randn(n, N), "p": rng.randn(N)}
        ref = Executor().run(prog, inputs).tensor_state("p")

        prog2 = Execute("sgd", [g, p], [upd])
        sched = Schedule(prog2)
        _, ag = sched.split(ar)
        sched.reorder(ag, delta, new_p, upd)
        got = Executor().run(sched.program, inputs).tensor_state("p")
        np.testing.assert_allclose(got, ref, rtol=1e-6)
