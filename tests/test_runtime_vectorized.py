"""The rank-major vectorized runtime against the reference oracle.

Property tests that every vectorized collective and the vectorized
executor are *bit-identical* (``np.array_equal``) to the retained
dict-of-ranks reference backend, plus the bugfix-sweep regressions:
NCCL-matching Reduce semantics, tensor/op context in divisibility
errors, and the lossy-downcast policy of ``SimWorld.place_input``.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FP16,
    FP32,
    RANK,
    AllReduce,
    Execute,
    Local,
    Reduce,
    Replicated,
    Tensor,
    world,
)
from repro.core.process_group import ProcessGroup
from repro.errors import ExecutionError
from repro.runtime import Executor, SimWorld, collectives
from repro.runtime.world import (
    gather_axis,
    rank_invariant,
    replicate,
    scatter_axis,
    slice_of,
)


def _pair(rng, group, shape, dtype=np.float32):
    """The same random values in both representations."""
    data = rng.randn(group.size, *shape).astype(dtype)
    as_dict = {r: data[i].copy() for i, r in enumerate(group)}
    return as_dict, data.copy()


def assert_backends_equal(dict_out, stacked_out, group):
    for i, r in enumerate(group):
        np.testing.assert_array_equal(
            dict_out[r], np.asarray(stacked_out[i])
        )


class TestCollectiveParity:
    """Every collective: dict backend == stacked backend, bitwise."""

    @given(
        n=st.integers(2, 8),
        per=st.integers(1, 4),
        op=st.sampled_from(["+", "*", "max", "min"]),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_allreduce(self, n, per, op, seed):
        rng = np.random.RandomState(seed)
        g = world(n)
        d, s = _pair(rng, g, (n * per,))
        ref = collectives.allreduce(d, g, op, np.float32)
        vec = collectives.allreduce(s, g, op, np.float32)
        assert_backends_equal(ref, vec, g)

    @given(
        n=st.integers(2, 8),
        per=st.integers(1, 4),
        dim=st.integers(0, 1),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_reducescatter_allgather(self, n, per, dim, seed):
        rng = np.random.RandomState(seed)
        g = world(n)
        d, s = _pair(rng, g, (n * per, n * per))
        ref_rs = collectives.reducescatter(d, g, "+", dim, np.float32)
        vec_rs = collectives.reducescatter(s, g, "+", dim, np.float32)
        assert_backends_equal(ref_rs, vec_rs, g)
        ref_ag = collectives.allgather(ref_rs, g, dim)
        vec_ag = collectives.allgather(vec_rs, g, dim)
        assert_backends_equal(ref_ag, vec_ag, g)

    @given(
        n=st.integers(1, 8),
        per=st.integers(1, 3),
        dim=st.integers(0, 1),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_alltoall(self, n, per, dim, seed):
        rng = np.random.RandomState(seed)
        g = world(n)
        d, s = _pair(rng, g, (n * per, n * per))
        ref = collectives.alltoall(d, g, dim)
        vec = collectives.alltoall(s, g, dim)
        assert_backends_equal(ref, vec, g)

    @given(
        n=st.integers(2, 6),
        root=st.integers(0, 5),
        op=st.sampled_from(["+", "max"]),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_reduce_broadcast(self, n, root, op, seed):
        root = root % n
        rng = np.random.RandomState(seed)
        g = world(n)
        d, s = _pair(rng, g, (6,))
        ref = collectives.reduce(d, g, op, root, np.float32)
        vec = collectives.reduce(s, g, op, root, np.float32)
        assert_backends_equal(ref, vec, g)
        ref_bc = collectives.broadcast(ref, g, root)
        vec_bc = collectives.broadcast(vec, g, root)
        assert_backends_equal(ref_bc, vec_bc, g)

    def test_subgroup_collectives(self):
        rng = np.random.RandomState(9)
        g = ProcessGroup(4, 4, 8)
        d, s = _pair(rng, g, (8,))
        ref = collectives.allreduce(d, g, "+", np.float32)
        vec = collectives.allreduce(s, g, "+", np.float32)
        assert_backends_equal(ref, vec, g)
        ref = collectives.alltoall(d, g, 0)
        vec = collectives.alltoall(s, g, 0)
        assert_backends_equal(ref, vec, g)

    def test_vectorized_allreduce_is_rank_invariant_view(self):
        rng = np.random.RandomState(3)
        g = world(4)
        _, s = _pair(rng, g, (8,))
        out = collectives.allreduce(s, g, "+", np.float32)
        assert rank_invariant(out)


class TestHierarchicalAllToAll:
    """intra ∘ inter == flat for every divisor node size, both backends.

    Group sizes 4–16 include non-power-of-two grids (6 = 2×3, 12 = 3×4,
    15 = 3×5) — the satellite's property over every divisor.
    """

    @pytest.mark.parametrize("n", list(range(4, 17)))
    def test_every_divisor_composes_to_flat(self, n):
        rng = np.random.RandomState(100 + n)
        g = world(n)
        d, s = _pair(rng, g, (2 * n, 3))
        flat_ref = collectives.alltoall(d, g, 0)
        flat_vec = collectives.alltoall(s, g, 0)
        assert_backends_equal(flat_ref, flat_vec, g)
        for m in range(1, n + 1):
            if n % m != 0:
                continue
            intra_ref = collectives.alltoall_intra(d, g, 0, m)
            inter_ref = collectives.alltoall_inter(intra_ref, g, 0, m)
            assert_backends_equal(flat_ref, inter_ref, g)
            intra_vec = collectives.alltoall_intra(s, g, 0, m)
            inter_vec = collectives.alltoall_inter(intra_vec, g, 0, m)
            assert_backends_equal(flat_ref, inter_vec, g)
            assert_backends_equal(intra_ref, intra_vec, g)

    def test_divisor_property_along_dim1(self):
        n = 6
        rng = np.random.RandomState(61)
        g = world(n)
        d, s = _pair(rng, g, (2, 2 * n))
        flat = collectives.alltoall(s, g, 1)
        for m in (1, 2, 3, 6):
            intra = collectives.alltoall_intra(s, g, 1, m)
            inter = collectives.alltoall_inter(intra, g, 1, m)
            np.testing.assert_array_equal(
                np.asarray(flat), np.asarray(inter)
            )
            ref = collectives.alltoall_inter(
                collectives.alltoall_intra(d, g, 1, m), g, 1, m
            )
            assert_backends_equal(ref, inter, g)


class TestStackedViews:
    """The reshape/axis-move primitives behind the vectorized backend."""

    def test_scatter_matches_slice_of(self):
        rng = np.random.RandomState(0)
        a = rng.randn(12, 5)
        stacked = scatter_axis(a, 0, 4)
        for i in range(4):
            np.testing.assert_array_equal(stacked[i], slice_of(a, 0, i, 4))

    def test_gather_inverts_scatter(self):
        rng = np.random.RandomState(1)
        for dim in (0, 1, 2):
            a = rng.randn(4, 6, 8)
            np.testing.assert_array_equal(
                gather_axis(scatter_axis(a, dim, 2), dim), a
            )

    def test_replicate_is_stride_zero(self):
        base = np.arange(6.0)
        r = replicate(base, 5)
        assert r.shape == (5, 6)
        assert rank_invariant(r)
        assert not rank_invariant(np.zeros((5, 6)))


class TestResultWritability:
    """Internal stride-0 views must not leak read-only results."""

    def test_outputs_and_states_are_writable(self):
        rng = np.random.RandomState(2)
        W = world(4)
        g = Tensor(FP32, (8,), Local, W, RANK, name="g")
        ar = AllReduce("+", g, name="ar")
        prog = Execute("p", [g], [ar])
        res = Executor().run(prog, {"g": rng.randn(4, 8)})
        out = res.output("ar")
        assert out.flags.writeable
        out += 1.0  # the old always-writable contract
        state = res.tensor_state("g")
        assert state.flags.writeable

    def test_leaf_output_does_not_alias_tensor_state(self):
        # a Local input tensor listed directly as a program output:
        # mutating the returned output must not corrupt tensor_state
        rng = np.random.RandomState(3)
        W = world(4)
        a = Tensor(FP32, (8,), Local, W, RANK, name="a")
        prog = Execute("p", [a], [a])
        av = rng.randn(4, 8).astype(np.float32)
        res = Executor().run(prog, {"a": av})
        out = res.output("a")
        out += 100.0
        np.testing.assert_array_equal(res.tensor_state("a"), av)


class TestReduceSemantics:
    """Post-reduce reads on non-root ranks see the original data."""

    @pytest.mark.parametrize("reference", [False, True])
    def test_non_root_ranks_keep_input(self, reference):
        rng = np.random.RandomState(7)
        W = world(4)
        a = Tensor(FP32, (4,), Local, W, RANK, name="a")
        red = Reduce("+", a, root=2, name="red")
        prog = Execute("p", [a], [red])
        av = rng.randn(4, 4).astype(np.float32)
        out = Executor(reference=reference).run(prog, {"a": av}).output("red")
        total = np.sum(av.astype(np.float64), axis=0).astype(np.float32)
        np.testing.assert_array_equal(out[2], total)
        for r in (0, 1, 3):
            np.testing.assert_array_equal(out[r], av[r])

    @pytest.mark.parametrize("root", [-1, 4])
    def test_invalid_root_rejected_on_both_backends(self, root):
        from repro.errors import GroupError

        rng = np.random.RandomState(5)
        g = world(4)
        d, s = _pair(rng, g, (4,))
        for vals in (d, s):
            with pytest.raises(GroupError):
                collectives.reduce(vals, g, "+", root, np.float32)
            with pytest.raises(GroupError):
                collectives.broadcast(vals, g, root)

    def test_reduce_then_broadcast_still_equals_allreduce(self):
        rng = np.random.RandomState(8)
        g = world(4)
        d, s = _pair(rng, g, (8,))
        ar = collectives.allreduce(s, g, "+", np.float32)
        red = collectives.reduce(s, g, "+", 0, np.float32)
        bc = collectives.broadcast(red, g, 0)
        np.testing.assert_array_equal(np.asarray(ar), np.asarray(bc))


class TestErrorContext:
    """Divisibility errors carry the tensor/op name."""

    def test_slice_of_context(self):
        with pytest.raises(ExecutionError, match=r"in grad_w"):
            slice_of(np.zeros(10), 0, 0, 4, context="grad_w")

    def test_scatter_axis_context(self):
        with pytest.raises(ExecutionError, match=r"in grad_w"):
            scatter_axis(np.zeros(10), 0, 4, context="grad_w")

    @pytest.mark.parametrize("as_dict", [True, False])
    def test_alltoall_context_both_backends(self, as_dict):
        g = world(4)
        if as_dict:
            vals = {r: np.zeros(6, np.float32) for r in g}
        else:
            vals = np.zeros((4, 6), np.float32)
        with pytest.raises(ExecutionError, match=r"in a2a_dispatch"):
            collectives.alltoall(vals, g, 0, context="a2a_dispatch")

    @pytest.mark.parametrize("as_dict", [True, False])
    def test_reducescatter_context_both_backends(self, as_dict):
        g = world(4)
        if as_dict:
            vals = {r: np.zeros(6, np.float32) for r in g}
        else:
            vals = np.zeros((4, 6), np.float32)
        with pytest.raises(ExecutionError, match=r"in rs_g"):
            collectives.reducescatter(
                vals, g, "+", 0, np.float32, context="rs_g"
            )


class TestDowncastPolicy:
    """``place_input`` polices value-changing lossy downcasts."""

    def _tensor(self, dtype=FP16):
        return Tensor(dtype, (8,), Replicated, world(2), name="p")

    def test_default_warns_on_lossy_fp16(self):
        w = SimWorld(2)
        with pytest.warns(RuntimeWarning, match="lossy downcast"):
            w.place_input(self._tensor(), np.random.RandomState(0).randn(8))

    def test_false_raises(self):
        w = SimWorld(2)
        with pytest.raises(ExecutionError, match="lossy downcast"):
            w.place_input(
                self._tensor(),
                np.random.RandomState(0).randn(8),
                allow_downcast=False,
            )

    def test_true_is_silent(self):
        w = SimWorld(2, reference=True)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            w.place_input(
                self._tensor(),
                np.random.RandomState(0).randn(8),
                allow_downcast=True,
            )

    def test_fp32_placement_stays_silent(self):
        # fp64 -> fp32 is the simulator's standard working precision.
        w = SimWorld(2)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            w.place_input(
                self._tensor(FP32), np.random.RandomState(0).randn(8)
            )

    def test_exactly_representable_values_stay_silent(self):
        w = SimWorld(2)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            w.place_input(self._tensor(), np.arange(8, dtype=np.float64))

    def test_executor_threads_the_flag(self):
        W = world(2)
        p = Tensor(FP16, (8,), Replicated, W, name="p")
        prog = Execute("p", [p], [p + 0.0])
        with pytest.raises(ExecutionError, match="lossy downcast"):
            Executor().run(
                prog,
                {"p": np.random.RandomState(0).randn(8)},
                allow_downcast=False,
            )


def _assert_program_parity(program, inputs):
    vec = Executor().run(program, inputs, allow_downcast=True)
    ref = Executor(reference=True).run(program, inputs, allow_downcast=True)
    for name in vec.output_names:
        np.testing.assert_array_equal(
            vec.output(name), ref.output(name), err_msg=name
        )
    for t in program.inputs:
        if isinstance(t, Tensor):
            np.testing.assert_array_equal(
                vec.tensor_state(t.name),
                ref.tensor_state(t.name),
                err_msg=f"state {t.name}",
            )


class TestExecutorBackendParity:
    """Both backends run every schedule unchanged, bit-identically."""

    @pytest.fixture
    def rng(self):
        return np.random.RandomState(0xBEEF)

    def test_adam_all_schedules(self, rng):
        from repro.workloads.adam import AdamWorkload

        wl = AdamWorkload.build(64, 4)
        inputs = dict(
            g=rng.randn(4, 64) * 0.1, p=rng.randn(64),
            m=rng.randn(64) * 0.01, v=np.abs(rng.randn(64)) * 0.01,
            lr=0.01, t=3.0,
        )
        _assert_program_parity(wl.program, inputs)
        for sched in wl.schedules().values():
            _assert_program_parity(sched.program, inputs)

    def test_lamb_all_schedules(self, rng):
        from repro.workloads.lamb import LambWorkload

        wl = LambWorkload.build(64, 4)
        inputs = dict(
            g=rng.randn(4, 64) * 0.1, p=rng.randn(64),
            m=rng.randn(64) * 0.01, v=np.abs(rng.randn(64)) * 0.01,
            lr=0.01, t=3.0,
        )
        _assert_program_parity(wl.program, inputs)
        for sched in wl.schedules().values():
            _assert_program_parity(sched.program, inputs)

    def test_attention_figure4_chain(self, rng):
        from repro.core.transforms import AllReduceFuse, Schedule
        from tests.conftest import attention_inputs, build_attention_program

        inputs = attention_inputs(rng)
        prog, h = build_attention_program()
        _assert_program_parity(prog, inputs)
        prog2, h2 = build_attention_program()
        sched = Schedule(prog2)
        rs, ag = sched.split(h2["allreduce"])
        results = sched.reorder(ag, h2["sum_b"], h2["drop"], h2["out"])
        sched.fuse(rs, *results, policy=AllReduceFuse)
        _assert_program_parity(sched.program, inputs)

    def test_moe_all_schedules(self, rng):
        from repro.workloads.moe import MoEWorkload

        wl = MoEWorkload.build(3, 6, 8, world_size=4, dtype=FP32)
        inputs = {
            "x": rng.randn(4, 4, 3, 6),
            "w1": rng.randn(4, 6, 8),
            "w2": rng.randn(4, 8, 6),
        }
        _assert_program_parity(wl.program, inputs)
        for sched in wl.schedules().items():
            _assert_program_parity(sched[1].program, inputs)
        _assert_program_parity(
            wl.schedule_hierarchical(node_size=2).program, inputs
        )

    def test_pipeline_all_schedules(self, rng):
        from repro.workloads.pipeline import PipelineWorkload

        wl = PipelineWorkload.build(
            2, 8, 16, world_size=8, num_groups=2, dtype=FP32, dropout_seed=5
        )
        inputs = {
            "in": rng.randn(4, 2, 8, 16),
            "b": rng.randn(16),
            "r": rng.randn(2, 8, 16),
        }
        _assert_program_parity(wl.program, inputs)
        for sched in wl.schedules().values():
            _assert_program_parity(sched.program, inputs)

    def test_tuned_schedules_parity(self, rng):
        # The autotuner's winning schedule (and every candidate it
        # enumerated) runs identically on both backends.
        from repro.cluster import Cluster
        from repro.core.autotuner import Autotuner
        from repro.workloads.attention import AttentionWorkload

        wl = AttentionWorkload.build(4, 8, 16, 4, dtype=FP32, dropout_seed=6)
        result = Autotuner(Cluster(1)).tune(wl.program)
        inputs = {
            "w": rng.randn(16, 16), "b": rng.randn(16),
            "in": rng.randn(4, 8, 16), "r": rng.randn(4, 8, 16),
        }
        for cand in result.candidates:
            _assert_program_parity(cand.schedule.program, inputs)

    @given(
        seed=st.integers(0, 10_000),
        n=st.sampled_from([2, 4]),
        per=st.sampled_from([2, 3]),
    )
    @settings(max_examples=20, deadline=None)
    def test_random_allreduce_chain_parity(self, seed, n, per):
        from repro.core import Dropout, ReLU, Sqrt, Tanh
        from repro.core.ops import Binary

        rng = np.random.RandomState(seed)
        W = world(n)
        N = n * per
        g = Tensor(FP32, (N,), Local, W, RANK, name="g")
        r = Tensor(FP32, (N,), Replicated, W, name="r")
        cur = AllReduce("+", g, name="ar")
        for i in range(rng.randint(1, 5)):
            kind = ["+", "*", "relu", "tanh", "drop", "sqrtabs"][
                rng.randint(6)
            ]
            if kind in ("+", "*"):
                cur = Binary(kind, cur, r, name=f"b{i}")
            elif kind == "relu":
                cur = ReLU(cur)
            elif kind == "tanh":
                cur = Tanh(cur)
            elif kind == "drop":
                cur = Dropout(cur, 0.3, seed=seed + i, name=f"d{i}")
            else:
                cur = Sqrt(Binary("*", cur, cur, name=f"sq{i}"))
        prog = Execute("rand", [g, r], [cur])
        inputs = {"g": rng.randn(n, N), "r": rng.randn(N)}
        _assert_program_parity(prog, inputs)
