"""Tests for the hardware model (cluster/gpu/links/node/topology)."""

import pytest

from repro.cluster import DGX2, IB_EDR, NVLINK_V100, TESLA_V100, Cluster
from repro.core.dtypes import FP16, FP32
from repro.errors import CoCoNetError


class TestV100:
    def test_paper_parameters(self):
        assert TESLA_V100.memory_bytes == 32 * 1024**3
        assert TESLA_V100.num_sms == 80
        assert TESLA_V100.hbm_bandwidth == 900e9

    def test_peak_flops_by_precision(self):
        assert TESLA_V100.peak_flops(FP16) == pytest.approx(112e12)
        assert TESLA_V100.peak_flops(FP32) == pytest.approx(15.7e12)

    def test_matmul_time_math_bound(self):
        # huge flops, tiny data -> math bound
        t = TESLA_V100.matmul_time(10**12, 10**6, FP16, efficiency=1.0)
        assert t == pytest.approx(10**12 / 112e12)

    def test_matmul_time_memory_bound(self):
        t = TESLA_V100.matmul_time(10**6, 9 * 10**9, FP16)
        assert t == pytest.approx(0.01, rel=0.01)  # 9 GB / 900 GB/s


class TestDGX2:
    def test_nvlink_aggregate(self):
        # 6 NVLinks x 25 GB/s = 150 GB/s per GPU into the fabric
        assert DGX2.gpu_fabric_bandwidth == pytest.approx(150e9)

    def test_ib_aggregate(self):
        # 8 x 100 Gb/s EDR = 100 GB/s per node
        assert DGX2.node_network_bandwidth == pytest.approx(100e9)

    def test_link_latencies_ordered(self):
        assert NVLINK_V100.latency < IB_EDR.latency


class TestCluster:
    def test_paper_testbed_size(self):
        cl = Cluster(16)
        assert cl.num_ranks == 256

    def test_node_of(self):
        cl = Cluster(2)
        assert cl.node_of(0) == 0
        assert cl.node_of(15) == 0
        assert cl.node_of(16) == 1

    def test_node_of_out_of_range(self):
        with pytest.raises(CoCoNetError):
            Cluster(1).node_of(16)

    def test_same_node(self):
        cl = Cluster(2)
        assert cl.same_node(3, 12)
        assert not cl.same_node(15, 16)

    def test_edge_properties(self):
        cl = Cluster(2)
        assert cl.edge_bandwidth(0, 1) == pytest.approx(150e9)
        assert cl.edge_bandwidth(15, 16) == pytest.approx(12.5e9)
        assert cl.edge_latency(0, 1) < cl.edge_latency(15, 16)

    def test_spans_nodes(self):
        assert not Cluster(1).spans_nodes()
        assert Cluster(2).spans_nodes()

    def test_zero_nodes_rejected(self):
        with pytest.raises(CoCoNetError):
            Cluster(0)

    def test_describe(self):
        text = Cluster(16).describe()
        assert "DGX-2" in text and "150 GB/s" in text
