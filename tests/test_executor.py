"""Tests for the numeric multi-rank executor."""

import numpy as np
import pytest

from repro.core import (
    FP16,
    FP32,
    GROUP,
    RANK,
    AllGather,
    AllReduce,
    Binary,
    Broadcast,
    Cast,
    Conv2D,
    Dropout,
    Execute,
    GroupRank,
    Local,
    MatMul,
    Norm,
    Reduce,
    ReduceScatter,
    ReduceTensor,
    Replicated,
    Scalar,
    Send,
    Slice,
    Sliced,
    Sqrt,
    Tanh,
    Tensor,
    Update,
    split_world,
    world,
)
from repro.errors import ExecutionError
from repro.runtime import Executor


@pytest.fixture
def rng():
    return np.random.RandomState(11)


def run_single(expr_builder, inputs, n=4):
    """Helper: build a one-output program and run it."""
    prog, out_name = expr_builder
    return Executor().run(prog, inputs).output(out_name)


class TestLeafPlacement:
    def test_replicated_input(self, rng):
        W = world(4)
        a = Tensor(FP32, (8,), Replicated, W, name="a")
        prog = Execute("p", [a], [a + 0.0])
        out = Executor().run(prog, {"a": np.arange(8.0)})
        np.testing.assert_array_equal(
            out.output(prog.outputs[0].name), np.arange(8.0)
        )

    def test_sliced_input_global_array(self, rng):
        W = world(4)
        a = Tensor(FP32, (8,), Sliced(0), W, RANK, name="a")
        ag = AllGather(a, name="ag")
        prog = Execute("p", [a], [ag])
        out = Executor().run(prog, {"a": np.arange(8.0)})
        np.testing.assert_array_equal(out.output("ag"), np.arange(8.0))

    def test_local_input_needs_leading_rank_axis(self, rng):
        W = world(4)
        a = Tensor(FP32, (8,), Local, W, RANK, name="a")
        prog = Execute("p", [a], [AllReduce("+", a, name="ar")])
        with pytest.raises(ExecutionError, match="local"):
            Executor().run(prog, {"a": np.arange(8.0)})

    def test_missing_input_raises(self):
        W = world(4)
        a = Tensor(FP32, (8,), Replicated, W, name="a")
        prog = Execute("p", [a], [a + 1.0])
        with pytest.raises(ExecutionError, match="missing input"):
            Executor().run(prog, {})

    def test_unknown_input_raises(self):
        W = world(4)
        a = Tensor(FP32, (8,), Replicated, W, name="a")
        prog = Execute("p", [a], [a + 1.0])
        with pytest.raises(ExecutionError, match="unknown inputs"):
            Executor().run(prog, {"a": np.zeros(8), "zzz": np.zeros(8)})

    def test_wrong_shape_raises(self):
        W = world(4)
        a = Tensor(FP32, (8,), Replicated, W, name="a")
        prog = Execute("p", [a], [a + 1.0])
        with pytest.raises(ExecutionError, match="expected shape"):
            Executor().run(prog, {"a": np.zeros(9)})


class TestComputeOps:
    def test_matmul(self, rng):
        W = world(2)
        a = Tensor(FP32, (4, 6), Replicated, W, name="a")
        b = Tensor(FP32, (6, 3), Replicated, W, name="b")
        prog = Execute("p", [a, b], [MatMul(a, b, name="mm")])
        av, bv = rng.randn(4, 6), rng.randn(6, 3)
        out = Executor().run(prog, {"a": av, "b": bv}).output("mm")
        np.testing.assert_allclose(out, av @ bv, rtol=1e-6)

    def test_distributed_matmul_partial_sums(self, rng):
        # sliced-K matmul + AllReduce equals the full matmul
        W = world(4)
        a = Tensor(FP32, (4, 8), Sliced(1), W, RANK, name="a")
        b = Tensor(FP32, (8, 3), Sliced(0), W, RANK, name="b")
        mm = MatMul(a, b, name="mm")
        prog = Execute("p", [a, b], [AllReduce("+", mm, name="ar")])
        av, bv = rng.randn(4, 8), rng.randn(8, 3)
        out = Executor().run(prog, {"a": av, "b": bv}).output("ar")
        np.testing.assert_allclose(out, av @ bv, rtol=1e-5)

    def test_binary_ops(self, rng):
        W = world(2)
        a = Tensor(FP32, (6,), Replicated, W, name="a")
        b = Tensor(FP32, (6,), Replicated, W, name="b")
        av, bv = rng.randn(6), np.abs(rng.randn(6)) + 0.5
        cases = {
            "+": av + bv, "-": av - bv, "*": av * bv, "/": av / bv,
            "max": np.maximum(av, bv), "min": np.minimum(av, bv),
        }
        for op, expected in cases.items():
            prog = Execute("p", [a, b], [Binary(op, a, b, name="o")])
            got = Executor().run(prog, {"a": av, "b": bv}).output("o")
            np.testing.assert_allclose(got, expected, rtol=1e-6)

    def test_unary_ops(self, rng):
        W = world(2)
        a = Tensor(FP32, (6,), Replicated, W, name="a")
        av = np.abs(rng.randn(6)) + 0.1
        prog = Execute("p", [a], [Sqrt(a)])
        got = Executor().run(prog, {"a": av})
        np.testing.assert_allclose(
            got.output(prog.outputs[0].name), np.sqrt(av), rtol=1e-6
        )
        prog2 = Execute("p", [a], [Tanh(a)])
        got2 = Executor().run(prog2, {"a": av})
        np.testing.assert_allclose(
            got2.output(prog2.outputs[0].name), np.tanh(av), rtol=1e-6
        )

    def test_cast(self, rng):
        W = world(2)
        a = Tensor(FP32, (6,), Replicated, W, name="a")
        prog = Execute("p", [a], [Cast(FP16, a, name="c")])
        got = Executor().run(prog, {"a": rng.randn(6)}).output("c")
        assert got.dtype == np.float16

    def test_conv2d_matches_direct(self, rng):
        W = world(2)
        x = Tensor(FP32, (1, 2, 5, 5), Replicated, W, name="x")
        k = Tensor(FP32, (3, 2, 3, 3), Replicated, W, name="k")
        prog = Execute("p", [x, k], [Conv2D(x, k, padding=1, name="c")])
        xv, kv = rng.randn(1, 2, 5, 5), rng.randn(3, 2, 3, 3)
        got = Executor().run(prog, {"x": xv, "k": kv}).output("c")
        assert got.shape == (1, 3, 5, 5)
        # centre value check against a manual window
        window = xv[0, :, 1:4, 1:4]
        expected = np.sum(window * kv[1])
        np.testing.assert_allclose(got[0, 1, 2, 2], expected, rtol=1e-5)

    def test_norm_sliced_is_global(self, rng):
        W = world(4)
        a = Tensor(FP32, (8,), Sliced(0), W, RANK, name="a")
        prog = Execute("p", [a], [Norm(a, name="n")])
        av = rng.randn(8)
        got = Executor().run(prog, {"a": av}).output("n")
        np.testing.assert_allclose(got, np.linalg.norm(av), rtol=1e-6)

    def test_reducetensor_max_sliced(self, rng):
        W = world(4)
        a = Tensor(FP32, (8,), Sliced(0), W, RANK, name="a")
        prog = Execute("p", [a], [ReduceTensor("max", a, name="n")])
        av = rng.randn(8)
        got = Executor().run(prog, {"a": av}).output("n")
        np.testing.assert_allclose(got, av.max(), rtol=1e-6)

    def test_dropout_scaling(self, rng):
        W = world(2)
        a = Tensor(FP32, (1000,), Replicated, W, name="a")
        prog = Execute("p", [a], [Dropout(a, 0.5, seed=3, name="d")])
        got = Executor().run(prog, {"a": np.ones(1000)}).output("d")
        kept = got[got != 0]
        np.testing.assert_allclose(kept, 2.0)

    def test_slice_takes_rank_portion(self, rng):
        W = world(4)
        a = Tensor(FP32, (8,), Replicated, W, name="a")
        sl = Slice(a, 0, name="sl")
        prog = Execute("p", [a], [AllGather(sl, name="ag")])
        av = rng.randn(8)
        got = Executor().run(prog, {"a": av}).output("ag")
        np.testing.assert_array_equal(got, av.astype(np.float32))


class TestUpdateSemantics:
    def test_update_writes_storage(self, rng):
        W = world(2)
        p = Tensor(FP32, (4,), Replicated, W, name="p")
        u = Update(p, p * 2.0, name="u")
        res = Executor().run(Execute("p", [p], [u]), {"p": np.ones(4)})
        np.testing.assert_array_equal(res.tensor_state("p"), 2 * np.ones(4))

    def test_leaf_reads_snapshot_not_updated_value(self, rng):
        # DFG edges to a leaf see its value at program start
        W = world(2)
        p = Tensor(FP32, (4,), Replicated, W, name="p")
        u = Update(p, p * 2.0, name="u")
        later = Binary("+", p, 0.0, name="later")  # reads original p
        prog = Execute("p", [p], [later], effects=[u])
        res = Executor().run(prog, {"p": np.ones(4)})
        np.testing.assert_array_equal(res.output("later"), np.ones(4))
        np.testing.assert_array_equal(res.tensor_state("p"), 2 * np.ones(4))

    def test_chained_updates_compose(self, rng):
        W = world(2)
        p = Tensor(FP32, (4,), Replicated, W, name="p")
        u1 = Update(p, p + 1.0, name="u1")
        u2 = Update(p, u1 * 3.0, name="u2")
        res = Executor().run(Execute("p", [p], [u2]), {"p": np.zeros(4)})
        np.testing.assert_array_equal(res.tensor_state("p"), 3 * np.ones(4))


class TestCommOps:
    def test_reduce_and_broadcast(self, rng):
        W = world(4)
        a = Tensor(FP32, (4,), Local, W, RANK, name="a")
        red = Reduce("+", a, root=2, name="red")
        bc = Broadcast(red, root=2, name="bc")
        prog = Execute("p", [a], [bc])
        av = rng.randn(4, 4)
        got = Executor().run(prog, {"a": av}).output("bc")
        np.testing.assert_allclose(got, av.sum(axis=0), rtol=1e-6)

    def test_send_moves_to_next_group(self, rng):
        g0, g1 = split_world(4, 2)
        a = Tensor(FP32, (4,), Replicated, g0, name="a")
        s = Send(a, GroupRank(GROUP + 1, RANK), name="s")
        prog = Execute("p", [a], [s])
        av = rng.randn(4)
        res = Executor().run(prog, {"a": av})
        np.testing.assert_array_equal(res.output("s"), av.astype(np.float32))
        assert s.group is not g0 and s.group.start == 2

    def test_send_sliced_stays_sliced(self, rng):
        g0, g1 = split_world(4, 2)
        a = Tensor(FP32, (4,), Sliced(0), g0, RANK, name="a")
        s = Send(a, GroupRank(GROUP + 1, RANK), name="s")
        ag = AllGather(s, name="ag")
        prog = Execute("p", [a], [ag])
        av = rng.randn(4)
        got = Executor().run(prog, {"a": av}).output("ag")
        np.testing.assert_array_equal(got, av.astype(np.float32))

    def test_scalar_input(self, rng):
        W = world(2)
        a = Tensor(FP32, (4,), Replicated, W, name="a")
        s = Scalar(FP32, name="lr", group=W)
        prog = Execute("p", [a, s], [Binary("*", a, s, name="o")])
        got = Executor().run(prog, {"a": np.ones(4), "lr": 0.5}).output("o")
        np.testing.assert_array_equal(got, 0.5 * np.ones(4))

    def test_local_output_stacks_ranks(self, rng):
        W = world(3)
        a = Tensor(FP32, (4,), Local, W, RANK, name="a")
        o = Binary("*", a, 2.0, name="o")
        prog = Execute("p", [a], [o])
        av = rng.randn(3, 4)
        got = Executor().run(prog, {"a": av}).output("o")
        assert got.shape == (3, 4)
        np.testing.assert_allclose(got, 2 * av, rtol=1e-6)

    def test_missing_output_name_raises(self):
        W = world(2)
        a = Tensor(FP32, (4,), Replicated, W, name="a")
        prog = Execute("p", [a], [a + 1.0])
        res = Executor().run(prog, {"a": np.zeros(4)})
        with pytest.raises(ExecutionError, match="no output named"):
            res.output("nope")


class TestReferenceBackend:
    """`Executor(reference=True)` keeps the per-rank dict semantics."""

    def test_reduce_non_root_keeps_input(self, rng):
        # regression: reduce used to zero-fill non-root ranks; NCCL (and
        # now this runtime) leaves non-root buffers unmodified, so a
        # post-reduce read on a non-root rank sees the original data
        W = world(4)
        a = Tensor(FP32, (4,), Local, W, RANK, name="a")
        red = Reduce("+", a, root=1, name="red")
        prog = Execute("p", [a], [red])
        av = rng.randn(4, 4).astype(np.float32)
        for reference in (True, False):
            out = Executor(reference=reference).run(
                prog, {"a": av}
            ).output("red")
            np.testing.assert_array_equal(out[0], av[0])
            np.testing.assert_array_equal(out[3], av[3])

    def test_update_and_snapshot_semantics_match_default(self, rng):
        W = world(2)
        p = Tensor(FP32, (4,), Replicated, W, name="p")
        u = Update(p, p * 2.0, name="u")
        later = Binary("+", p, 0.0, name="later")
        prog = Execute("p", [p], [later], effects=[u])
        pv = rng.randn(4)
        ref = Executor(reference=True).run(prog, {"p": pv})
        vec = Executor().run(prog, {"p": pv})
        np.testing.assert_array_equal(ref.output("later"), vec.output("later"))
        np.testing.assert_array_equal(
            ref.tensor_state("p"), vec.tensor_state("p")
        )

    def test_allow_downcast_threads_through_run(self, rng):
        W = world(2)
        p = Tensor(FP16, (4,), Replicated, W, name="p")
        prog = Execute("p", [p], [p + 0.0])
        for reference in (True, False):
            with pytest.raises(ExecutionError, match="lossy downcast"):
                Executor(reference=reference).run(
                    prog, {"p": rng.randn(4)}, allow_downcast=False
                )
