"""The public API stays importable and coherent: everything the README
and the examples use must be exported where documented."""

import importlib

import pytest

import repro
from repro import errors


class TestPackageLayout:
    SUBPACKAGES = [
        "repro.core",
        "repro.core.transforms",
        "repro.core.codegen",
        "repro.cluster",
        "repro.nccl",
        "repro.perf",
        "repro.runtime",
        "repro.scattered",
        "repro.workloads",
        "repro.baselines",
        "repro.frontend",
    ]

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_subpackage_imports(self, name):
        assert importlib.import_module(name) is not None

    def test_version(self):
        assert repro.__version__


class TestCoreExports:
    def test_all_names_resolve(self):
        core = importlib.import_module("repro.core")
        for name in core.__all__:
            assert hasattr(core, name), name

    def test_paper_vocabulary_present(self):
        # the paper's Table-1 vocabulary is the public surface
        core = importlib.import_module("repro.core")
        for name in (
            "AllReduce", "AllGather", "ReduceScatter", "Reduce",
            "Broadcast", "Send", "MatMul", "Conv2D", "Dropout", "Tanh",
            "ReLU", "Norm", "ReduceTensor", "Sqrt", "Pow", "Update",
            "Tensor", "Scalar", "Execute", "Sliced", "Replicated",
            "Local", "RANK", "GROUP", "GroupRank",
        ):
            assert name in core.__all__, name

    def test_transform_policies_present(self):
        t = importlib.import_module("repro.core.transforms")
        for name in (
            "Schedule", "ARSplitRSAG", "ARSplitReduceBroadcast",
            "ComputationFuse", "AllReduceFuse", "SendFuse",
        ):
            assert hasattr(t, name), name


class TestErrorHierarchy:
    def test_all_errors_derive_from_base(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if (
                isinstance(obj, type)
                and issubclass(obj, Exception)
                and obj is not errors.CoCoNetError
            ):
                assert issubclass(obj, errors.CoCoNetError), name

    def test_oom_is_execution_error(self):
        assert issubclass(errors.OutOfMemoryError, errors.ExecutionError)

    def test_catching_base_catches_all(self):
        from repro.core import FP16, Replicated, Tensor, world

        with pytest.raises(errors.CoCoNetError):
            Tensor(FP16, (7,), __import__(
                "repro.core.layout", fromlist=["Sliced"]
            ).Sliced(0), world(4), None)


class TestWorkloadsSurface:
    def test_workload_classes_exported(self):
        w = importlib.import_module("repro.workloads")
        for name in (
            "AdamWorkload", "LambWorkload", "AttentionWorkload",
            "PipelineWorkload", "ModelConfig", "BERT_336M", "GPT3_175B",
        ):
            assert hasattr(w, name), name

    def test_baselines_exported(self):
        b = importlib.import_module("repro.baselines")
        for name in (
            "FUSED_ADAM", "FUSED_LAMB", "NVBertStrategy",
            "PyTorchDDPStrategy", "ZeROStrategy", "CoCoNetStrategy",
        ):
            assert hasattr(b, name), name
