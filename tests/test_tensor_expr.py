"""Tests for expression leaves and operator sugar."""

import pytest

from repro.core import (
    FP16,
    FP32,
    RANK,
    Binary,
    Const,
    Local,
    Replicated,
    Scalar,
    Sliced,
    Tensor,
    world,
)
from repro.errors import LayoutError, ShapeError


@pytest.fixture
def W():
    return world(4)


class TestTensorDeclaration:
    def test_paper_style_declaration(self, W):
        w = Tensor(FP16, (16, 16), Sliced(0), W, RANK, name="w")
        assert w.shape == (16, 16)
        assert w.layout.is_sliced
        assert w.dtype is FP16

    def test_replicated_rejects_rank(self, W):
        # "it does not have a rank identifier" (§2.1)
        with pytest.raises(LayoutError, match="does not take a rank"):
            Tensor(FP16, (4,), Replicated, W, RANK)

    def test_sliced_requires_rank(self, W):
        # "A local tensor requires RANK to identify the values"
        with pytest.raises(LayoutError, match="requires the RANK"):
            Tensor(FP16, (4,), Sliced(0), W)

    def test_local_requires_rank(self, W):
        with pytest.raises(LayoutError):
            Tensor(FP16, (4,), Local, W)

    def test_indivisible_slice_rejected_at_declaration(self, W):
        with pytest.raises(LayoutError):
            Tensor(FP16, (6,), Sliced(0), W, RANK)

    def test_non_positive_shape_rejected(self, W):
        with pytest.raises(ShapeError):
            Tensor(FP16, (0, 4), Replicated, W)

    def test_auto_names_unique(self, W):
        a = Tensor(FP16, (4,), Replicated, W)
        b = Tensor(FP16, (4,), Replicated, W)
        assert a.name != b.name


class TestShapes:
    def test_per_rank_shape_sliced(self, W):
        t = Tensor(FP16, (8, 16), Sliced(1), W, RANK)
        assert t.per_rank_shape() == (8, 4)

    def test_per_rank_shape_replicated(self, W):
        t = Tensor(FP16, (8, 16), Replicated, W)
        assert t.per_rank_shape() == (8, 16)

    def test_num_elements(self, W):
        t = Tensor(FP16, (8, 16), Replicated, W)
        assert t.num_elements == 128

    def test_per_rank_bytes_accounts_for_slice_and_dtype(self, W):
        t16 = Tensor(FP16, (64,), Sliced(0), W, RANK)
        t32 = Tensor(FP32, (64,), Replicated, W)
        assert t16.per_rank_bytes() == 16 * 2
        assert t32.per_rank_bytes() == 64 * 4


class TestScalarAndConst:
    def test_scalar_is_zero_dim_replicated(self, W):
        s = Scalar(FP32, name="lr", group=W)
        assert s.shape == ()
        assert s.layout.is_replicated

    def test_scalar_requires_group(self):
        with pytest.raises(LayoutError):
            Scalar(FP32, name="lr", group=None)

    def test_const_value(self, W):
        c = Const(0.1, W)
        assert c.value == 0.1
        assert c.shape == ()

    def test_const_signature(self, W):
        assert "0.1" in Const(0.1, W).signature()


class TestOperatorSugar:
    def test_add_builds_binary(self, W):
        a = Tensor(FP32, (4,), Replicated, W)
        b = Tensor(FP32, (4,), Replicated, W)
        expr = a + b
        assert isinstance(expr, Binary) and expr.op == "+"
        assert expr.inputs == (a, b)

    def test_scalar_lift(self, W):
        a = Tensor(FP32, (4,), Replicated, W)
        expr = a * 0.5
        assert isinstance(expr.inputs[1], Const)
        assert expr.inputs[1].value == 0.5

    def test_reflected_ops(self, W):
        a = Tensor(FP32, (4,), Replicated, W)
        expr = 1.0 - a
        assert expr.op == "-"
        assert isinstance(expr.inputs[0], Const)

    def test_division(self, W):
        a = Tensor(FP32, (4,), Replicated, W)
        b = Tensor(FP32, (4,), Replicated, W)
        assert (a / b).op == "/"

    def test_negation(self, W):
        a = Tensor(FP32, (4,), Replicated, W)
        expr = -a
        assert expr.op == "*"

    def test_hash_is_identity(self, W):
        a = Tensor(FP32, (4,), Replicated, W)
        b = Tensor(FP32, (4,), Replicated, W)
        assert len({a, b}) == 2

    def test_signature_format(self, W):
        t = Tensor(FP16, (8, 4), Sliced(1), W, RANK, name="x")
        assert t.signature() == "x(FP16, [8,4], Sliced(1))"
