"""Tests for the autotuner (§3.5 and the schedule findings of §6)."""

import pytest

from repro.cluster import Cluster
from repro.core.autotuner import Autotuner, _fuse_pointwise_regions
from repro.core.transforms import Schedule
from repro.workloads.adam import AdamWorkload
from repro.workloads.attention import AttentionWorkload
from repro.workloads.pipeline import PipelineWorkload
from tests.conftest import build_attention_program


class TestPointwiseFusionPrepass:
    def test_connected_ops_form_one_block(self):
        wl = AdamWorkload.build(2**16, 16)
        sched = Schedule(wl.program)
        blocks = _fuse_pointwise_regions(sched)
        # all of Adam's pointwise ops are def-use connected
        assert len(blocks) == 1
        assert len(blocks[0].members) == len(wl.compute_ops)

    def test_prepass_skips_single_op(self):
        prog, h = build_attention_program()
        sched = Schedule(prog)
        # the attention epilogue has 3 connected pointwise ops
        blocks = _fuse_pointwise_regions(sched)
        assert len(blocks) == 1 and len(blocks[0].members) == 3


class TestSearch:
    def test_explores_multiple_schedules(self):
        wl = AttentionWorkload.build(8, 1024, 3072, 16)
        result = Autotuner(Cluster(1)).tune(wl.program)
        assert len(result.candidates) >= 5
        names = [c.name for c in result.candidates]
        assert "default" in names

    def test_attention_best_is_overlap(self):
        # §6.2.1: "The autotuner returned this [ol(MM,fuse(RS-C-AG))] as
        # the best schedule"
        wl = AttentionWorkload.build(8, 1024, 3072, 16)
        result = Autotuner(Cluster(1)).tune(wl.program)
        assert "overlap" in result.best.name
        assert "split" in result.best.name

    def test_adam_small_prefers_ar_opt(self):
        # Figure 10a: "AR-Adam runs best till 2^16"
        wl = AdamWorkload.build(2**12, 256)
        result = Autotuner(Cluster(16)).tune(wl.program)
        assert result.best.name == "fused-compute"

    def test_adam_large_prefers_distributed(self):
        # Figure 10a: "fuse(RS-A-AG) runs best after 2^17". The
        # plan-signature dedup (which no longer skips order-dependent
        # move scripts) surfaces exactly that schedule: split + reorder
        # + arfuse = the fused FusedAllReduce update.
        wl = AdamWorkload.build(2**28, 256)
        result = Autotuner(Cluster(16)).tune(wl.program)
        assert "split" in result.best.name
        assert "arfuse" in result.best.name

    def test_crossover_exists(self):
        # there must be a size where the best schedule flips — "There is
        # no schedule that performs best for all sizes" (§6.1.1)
        small = Autotuner(Cluster(16)).tune(
            AdamWorkload.build(2**12, 256).program
        )
        large = Autotuner(Cluster(16)).tune(
            AdamWorkload.build(2**28, 256).program
        )
        assert small.best.name != large.best.name

    def test_pipeline_best_overlaps_comm(self):
        wl = PipelineWorkload.build(
            2, 2048, 12288, world_size=32, num_groups=2
        )
        result = Autotuner(Cluster(2)).tune(wl.program)
        assert "split" in result.best.name

    def test_candidates_timed_consistently(self):
        wl = AttentionWorkload.build(8, 1024, 3072, 16)
        result = Autotuner(Cluster(1)).tune(wl.program)
        best_time = min(c.time for c in result.candidates)
        assert result.best.time == best_time

    def test_report_format(self):
        wl = AttentionWorkload.build(8, 1024, 3072, 16)
        result = Autotuner(Cluster(1)).tune(wl.program)
        text = result.report()
        assert "explored" in text and "best" in text

    def test_elapsed_recorded(self):
        wl = AttentionWorkload.build(8, 1024, 3072, 16)
        result = Autotuner(Cluster(1)).tune(wl.program)
        assert result.elapsed_seconds > 0

    def test_candidate_schedules_are_executable_programs(self):
        # every candidate is a standalone valid program (Figure 4 note)
        wl = AttentionWorkload.build(4, 8, 16, 4)
        result = Autotuner(Cluster(1)).tune(wl.program)
        for c in result.candidates:
            assert c.schedule.program.operations  # validates the DFG
