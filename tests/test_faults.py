"""Fault injection, graceful degradation, and elastic recovery.

Three layers of coverage over :mod:`repro.runtime.faults`:

* the plan itself — immutable, picklable, seeded, and deterministic
  (the same ``FaultPlan.scenario(seed)`` must reproduce the same
  failure forever);
* the degraded backend — stragglers and stalled publishes survive
  bit-identically via soft-retry escalation, dead ranks tear the run
  down with a structured ``SpmdWorkerError`` (no leaked ``/dev/shm``
  segments, producer threads joined, peers aborting rather than
  timing out);
* elastic recovery — ``run_spmd(elastic=True)`` re-lowers for the
  surviving world size and its outputs are bit-identical to running
  the re-lowered program directly.

Plus the prediction side: DES ``Engine(slowdown=...)`` straggler
factors (heap ≡ reference under slowdowns) and degraded cluster links.
"""

import os
import pickle
import sys

import numpy as np
import pytest

from repro.cluster.links import IB_EDR, NVLINK_V100, Link
from repro.core import (
    FP32, RANK, AllReduce, Binary, Execute, MatMul, Replicated, Sliced,
    world,
)
from repro.core.tensor import Tensor
from repro.core.transforms import Schedule
from repro.errors import CoCoNetError
from repro.observe import Tracer
from repro.observe.events import InstantEvent
from repro.perf.engine import Engine, Task
from repro.runtime import Executor, FaultPlan, SpmdWorkerError
from repro.runtime.faults import Die, DropChunk, SlowRank, StallPublish
from repro.runtime.spmd import (
    DEFAULT_TIMEOUT,
    build_layout,
    scaled_default_timeout,
)
from repro.workloads.adam import AdamWorkload
from repro.workloads.moe import MoEWorkload


@pytest.fixture
def rng():
    return np.random.RandomState(0xFA17)


def adam_inputs(rng, n, N=56):
    return dict(
        g=rng.randn(n, N) * 0.1,
        p=rng.randn(N),
        m=rng.randn(N) * 0.01,
        v=np.abs(rng.randn(N)) * 0.01,
        lr=0.01,
        t=3.0,
    )


def moe_inputs(rng, ws, capacity=2, model_dim=4, ffn_dim=6):
    return {
        "x": rng.randn(ws, ws, capacity, model_dim),
        "w1": rng.randn(ws, model_dim, ffn_dim),
        "w2": rng.randn(ws, ffn_dim, model_dim),
    }


def overlap_schedule(num_ranks, batch=4, seq=8, hidden=64):
    """The bench_spmd mm→AllReduce chunked-overlap pipeline."""
    W = world(num_ranks)
    w = Tensor(FP32, (hidden, hidden), Sliced(0), W, RANK, name="w")
    x = Tensor(FP32, (batch, seq, hidden), Sliced(2), W, RANK, name="x")
    b = Tensor(FP32, (hidden,), Replicated, W, name="b")
    mm = MatMul(x, w, name="mm")
    ar = AllReduce("+", mm, name="ar")
    out = Binary("+", ar, b, name="out")
    prog = Execute("overlap_faults", [w, x, b], [out])
    sched = Schedule(prog)
    sched.overlap(mm, ar)
    return sched


def overlap_inputs(rng, batch=4, seq=8, hidden=64):
    return {
        "w": rng.randn(hidden, hidden),
        "x": rng.randn(batch, seq, hidden),
        "b": rng.randn(hidden),
    }


def _shm_spmd_segments():
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return []
    return [f for f in os.listdir("/dev/shm") if f.startswith("spmd_")]


def assert_outputs_equal(a, b):
    """Every program output of two runs, bit-for-bit."""
    assert sorted(a._outputs) == sorted(b._outputs)
    for name in a._outputs:
        np.testing.assert_array_equal(
            a.output(name), b.output(name), err_msg=name
        )


class TestFaultPlan:
    """The plan is immutable data: builders, queries, determinism."""

    def test_builders_compose_and_do_not_mutate(self):
        base = FaultPlan(seed=7)
        plan = base.slow_rank(2, 3.0).die(5, at_site="g").stall_publish(
            "g0x4", 0.01
        ).drop_chunk("g", 1, rank=0)
        assert base.events == ()
        kinds = [type(e) for e in plan.events]
        assert kinds == [SlowRank, Die, StallPublish, DropChunk]
        assert plan.seed == 7

    def test_builder_validation(self):
        with pytest.raises(ValueError, match="factor"):
            FaultPlan().slow_rank(0, 0.5)
        with pytest.raises(ValueError, match="after"):
            FaultPlan().die(0, after=0)
        with pytest.raises(ValueError, match="delay"):
            FaultPlan().stall_publish("g", -1.0)

    def test_dead_ranks_and_without_deaths(self):
        plan = (
            FaultPlan().die(3).slow_rank(1, 2.0).die(0, after=2).die(3)
        )
        assert plan.dead_ranks() == (3, 0)
        survivors = plan.without_deaths()
        assert survivors.dead_ranks() == ()
        assert [type(e) for e in survivors.events] == [SlowRank]

    def test_resource_slowdowns_mapping(self):
        plan = FaultPlan().slow_rank(3, 2.5).slow_rank(1, 1.5)
        slow = plan.resource_slowdowns()
        assert slow["gpu:3"] == 2.5
        assert slow["gpu:1"] == 1.5
        # collectives run at the slowest member's pace
        assert slow["fabric:"] == 2.5
        assert slow["ib:"] == 2.5
        assert FaultPlan().die(2).resource_slowdowns() == {}

    def test_for_rank_is_none_when_inert(self):
        plan = FaultPlan().slow_rank(1, 2.0).die(2, at_site="g")
        assert plan.for_rank(0) is None
        assert plan.for_rank(1).wire_factor == 2.0
        assert plan.for_rank(2).armed()

    def test_rank_view_counters(self):
        plan = FaultPlan().die(0, at_site="g", after=2).drop_chunk("g", 1)
        view = plan.for_rank(0)
        assert not view.should_die("g0x4")   # first matching publish
        assert not view.should_die("p0>1")   # p2p does not match "g"
        assert view.should_die("g0x4")       # second one lands
        assert view.drop("g0x4", 1) is not None
        assert view.drop("g0x4", 1) is None  # consumed once

    def test_publish_delay_sums_matching_stalls(self):
        plan = (
            FaultPlan()
            .stall_publish("g", 0.01)
            .stall_publish("g0x4", 0.02, seq=1)
        )
        view = plan.for_rank(0)
        assert view.publish_delay("g0x4", 1) == pytest.approx(0.03)
        assert view.publish_delay("g0x4", 0) == pytest.approx(0.01)
        assert view.publish_delay("p0>1", 1) == 0.0

    def test_plans_pickle_roundtrip(self):
        plan = FaultPlan(seed=3).slow_rank(1, 2.0).die(2).drop_chunk("g", 0)
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_scenario_is_deterministic_and_cycles_kinds(self):
        for seed in range(8):
            a = FaultPlan.scenario(seed, 8)
            b = FaultPlan.scenario(seed, 8)
            assert a == b
            assert a.seed == seed
            assert len(a.events) == 1
        kinds = [type(FaultPlan.scenario(s, 8).events[0]) for s in range(4)]
        assert kinds == [SlowRank, StallPublish, DropChunk, Die]
        for seed in range(8):
            for e in FaultPlan.scenario(seed, 4).events:
                assert 0 <= e.rank < 4

    def test_describe_mentions_every_event(self):
        plan = FaultPlan(seed=9).slow_rank(2, 3.0).die(1, at_site="g")
        text = plan.describe()
        assert "seed=9" in text
        assert "slow_rank" in text and "die" in text
        assert "no faults" in FaultPlan().describe()


class TestScaledTimeout:
    def test_zero_wire_is_flat_default(self):
        wl = AdamWorkload.build(64, 4)
        layout = build_layout(wl.program)
        assert scaled_default_timeout(layout, 0.0) == DEFAULT_TIMEOUT

    def test_grows_with_wire_cost(self):
        wl = AdamWorkload.build(64, 4)
        layout = build_layout(wl.program)
        slow = scaled_default_timeout(layout, 0.5)
        slower = scaled_default_timeout(layout, 1.0)
        assert DEFAULT_TIMEOUT < slow < slower


class TestDegradedRuns:
    """Stalls, stragglers, and dropped chunks survive bit-identically."""

    def test_stall_publish_survives_via_soft_retries(self, rng):
        wl = AdamWorkload.build(56, 4)
        inputs = adam_inputs(rng, 4)
        ex = Executor()
        oracle = ex.run_lowered(wl.schedule_fused(), inputs,
                                allow_downcast=True)
        tracer = Tracer()
        res = ex.run_spmd(
            wl.schedule_fused(), inputs, allow_downcast=True,
            fault_plan=FaultPlan(seed=1).stall_publish("g", 0.05, rank=0),
            soft_timeout=0.005, timeout=30.0, tracer=tracer,
        )
        assert_outputs_equal(res, oracle)
        stalls = [
            e for e in tracer.events
            if isinstance(e, InstantEvent) and e.cat == "stall"
        ]
        assert stalls, "peers should have recorded soft-retry escalations"
        armed = [
            e for e in tracer.events
            if isinstance(e, InstantEvent) and e.name.startswith("armed:")
        ]
        assert armed, "the injecting rank should record its armed plan"

    def test_straggler_survives_bit_identical(self, rng):
        wl = AdamWorkload.build(56, 4)
        inputs = adam_inputs(rng, 4)
        ex = Executor()
        oracle = ex.run_lowered(wl.program, inputs, allow_downcast=True)
        res = ex.run_spmd(
            wl.program, inputs, allow_downcast=True,
            fault_plan=FaultPlan().slow_rank(2, 3.0),
            wire_s_per_mb=0.05, timeout=30.0,
        )
        assert_outputs_equal(res, oracle)

    def test_drop_chunk_redelivers_on_overlap_pipeline(self, rng):
        sched = overlap_schedule(4)
        inputs = overlap_inputs(rng)
        ex = Executor()
        oracle = ex.run_lowered(sched, inputs, allow_downcast=True)
        tracer = Tracer()
        res = ex.run_spmd(
            sched, inputs, allow_downcast=True,
            fault_plan=FaultPlan().drop_chunk("g", 1, rank=0,
                                              redeliver=0.05),
            soft_timeout=0.01, timeout=30.0, tracer=tracer,
        )
        assert_outputs_equal(res, oracle)
        names = {
            e.name for e in tracer.events if isinstance(e, InstantEvent)
        }
        assert any(n.startswith("drop_chunk") for n in names)
        assert "redeliver" in names

    def test_hard_timeout_reports_soft_retry_escalation(self, rng):
        wl = AdamWorkload.build(56, 4)
        inputs = adam_inputs(rng, 4)
        with pytest.raises(SpmdWorkerError) as err:
            Executor().run_spmd(
                wl.program, inputs, allow_downcast=True,
                fault_plan=FaultPlan().stall_publish("g", 3.0, rank=0),
                soft_timeout=0.1, timeout=0.8,
            )
        assert "soft retries" in str(err.value)
        assert err.value.dead_ranks == []


class TestDeadRanks:
    """Graceful degradation: clean teardown, structured errors."""

    @pytest.mark.skipif(
        sys.platform != "linux", reason="/dev/shm inspection is Linux-only"
    )
    def test_die_on_first_publish(self, rng):
        wl = AdamWorkload.build(56, 4)
        before = set(_shm_spmd_segments())
        with pytest.raises(SpmdWorkerError) as err:
            Executor().run_spmd(
                wl.program, adam_inputs(rng, 4), allow_downcast=True,
                fault_plan=FaultPlan().die(1, at_site="g"),
                soft_timeout=0.5, timeout=20.0,
            )
        assert err.value.dead_ranks == [1]
        assert "died" in str(err.value)
        # survivors abort on the peer flag, they do not time out
        assert "timed out" not in str(err.value)
        assert set(_shm_spmd_segments()) == before

    @pytest.mark.skipif(
        sys.platform != "linux", reason="/dev/shm inspection is Linux-only"
    )
    def test_die_mid_chunked_publish_on_producer_stream(self, rng):
        """A rank killed inside publish_chunks — mid-overlap, on the
        producer stream thread — must not wedge survivors' consumer
        loops or leak their producer threads."""
        sched = overlap_schedule(4)
        before = set(_shm_spmd_segments())
        tracer = Tracer()
        with pytest.raises(SpmdWorkerError) as err:
            Executor().run_spmd(
                sched, overlap_inputs(rng), allow_downcast=True,
                fault_plan=FaultPlan().die(2, at_site="g", after=2),
                soft_timeout=0.5, timeout=20.0, tracer=tracer,
            )
        assert err.value.dead_ranks == [2]
        assert "timed out" not in str(err.value)
        assert set(_shm_spmd_segments()) == before
        instants = [
            e for e in tracer.events if isinstance(e, InstantEvent)
        ]
        # the dying rank's last ring record is the injected kill ...
        assert any(e.name == "die" and e.pid == "rank2" for e in instants)
        # ... and no survivor left its producer thread unjoined
        assert not any(e.name == "stream-leak" for e in instants)

    def test_without_elastic_the_error_propagates(self, rng):
        wl = AdamWorkload.build(56, 4)
        with pytest.raises(SpmdWorkerError):
            Executor().run_spmd(
                wl.program, adam_inputs(rng, 4), allow_downcast=True,
                fault_plan=FaultPlan().die(0, at_site="g"),
                soft_timeout=0.5, timeout=20.0,
            )


class TestElasticRecovery:
    """die → re-lower for the survivors → bit-identical re-execution."""

    def _adam_relower(self, rng_seed, N=56):
        def relower(ws):
            wl = AdamWorkload.build(N, ws)
            return wl.program, adam_inputs(
                np.random.RandomState(rng_seed), ws, N
            )
        return relower

    def test_adam_original_8_ranks(self):
        plan = FaultPlan(seed=11).die(3, at_site="g")
        relower = self._adam_relower(5)
        res = Executor().run_spmd(
            AdamWorkload.build(56, 8).program,
            adam_inputs(np.random.RandomState(5), 8),
            allow_downcast=True, fault_plan=plan,
            soft_timeout=0.5, timeout=30.0,
            elastic=True, relower=relower,
        )
        assert res.elastic["failed_ranks"] == [3]
        assert res.elastic["original_world"] == 8
        assert res.elastic["world_size"] == 7
        assert res.elastic["attempted"] == [7]
        assert res.elastic["recovery_seconds"] > 0
        assert "died" in res.elastic["cause"]
        # bit-identical to running the re-lowered program directly
        sched7, inputs7 = relower(7)
        direct = Executor().run_spmd(
            sched7, inputs7, allow_downcast=True, timeout=30.0
        )
        assert_outputs_equal(res, direct)

    def test_adam_fused_8_ranks(self):
        def relower(ws):
            wl = AdamWorkload.build(56, ws)
            return wl.schedule_fused(), adam_inputs(
                np.random.RandomState(6), ws
            )
        res = Executor().run_spmd(
            AdamWorkload.build(56, 8).schedule_fused(),
            adam_inputs(np.random.RandomState(6), 8),
            allow_downcast=True,
            fault_plan=FaultPlan(seed=12).die(5, at_site="g", after=1),
            soft_timeout=0.5, timeout=30.0,
            elastic=True, relower=relower,
        )
        assert res.elastic["world_size"] == 7
        sched7, inputs7 = relower(7)
        oracle = Executor().run_lowered(
            sched7, inputs7, allow_downcast=True
        )
        assert_outputs_equal(res, oracle)

    def test_moe_original_8_ranks(self):
        def relower(ws):
            wl = MoEWorkload.build(2, 4, 6, world_size=ws, dtype=FP32)
            return wl.program, moe_inputs(np.random.RandomState(7), ws)
        res = Executor().run_spmd(
            MoEWorkload.build(2, 4, 6, world_size=8, dtype=FP32).program,
            moe_inputs(np.random.RandomState(7), 8),
            allow_downcast=True,
            fault_plan=FaultPlan(seed=13).die(2),
            soft_timeout=0.5, timeout=30.0,
            elastic=True, relower=relower,
        )
        assert res.elastic["world_size"] == 7
        sched7, inputs7 = relower(7)
        oracle = Executor().run_lowered(
            sched7, inputs7, allow_downcast=True
        )
        assert_outputs_equal(res, oracle)

    def test_moe_overlapped_8_ranks(self):
        def relower(ws):
            wl = MoEWorkload.build(2, 4, 6, world_size=ws, dtype=FP32)
            return wl.schedule_overlapped(), moe_inputs(
                np.random.RandomState(8), ws
            )
        res = Executor().run_spmd(
            MoEWorkload.build(
                2, 4, 6, world_size=8, dtype=FP32
            ).schedule_overlapped(),
            moe_inputs(np.random.RandomState(8), 8),
            allow_downcast=True,
            fault_plan=FaultPlan(seed=14).die(6, after=2),
            soft_timeout=0.5, timeout=30.0,
            elastic=True, relower=relower,
        )
        assert res.elastic["world_size"] == 7
        sched7, inputs7 = relower(7)
        oracle = Executor().run_lowered(
            sched7, inputs7, allow_downcast=True
        )
        assert_outputs_equal(res, oracle)

    def test_elastic_without_relower_explains_itself(self, rng):
        wl = AdamWorkload.build(56, 4)
        with pytest.raises(SpmdWorkerError, match="needs relower"):
            Executor().run_spmd(
                wl.program, adam_inputs(rng, 4), allow_downcast=True,
                fault_plan=FaultPlan().die(1, at_site="g"),
                soft_timeout=0.5, timeout=20.0, elastic=True,
            )

    def test_descent_skips_unbuildable_world_sizes(self):
        # the fused schedule's RS/AG split needs N divisible by the
        # world size: killing two of 8 ranks leaves 6 survivors, but
        # 56 % 6 != 0 and 56 % 5 != 0, so the descent must land on 4
        def relower(ws):
            wl = AdamWorkload.build(56, ws)
            return wl.schedule_fused(), adam_inputs(
                np.random.RandomState(9), ws
            )
        res = Executor().run_spmd(
            AdamWorkload.build(56, 8).schedule_fused(),
            adam_inputs(np.random.RandomState(9), 8),
            allow_downcast=True,
            fault_plan=FaultPlan().die(1, at_site="g").die(2, at_site="g"),
            soft_timeout=0.5, timeout=30.0,
            elastic=True, relower=relower,
        )
        assert res.elastic["failed_ranks"] == [1, 2]
        assert res.elastic["attempted"] == [6, 5, 4]
        assert res.elastic["world_size"] == 4


class TestEngineSlowdown:
    """Straggler-aware prediction in the DES cost engine."""

    @staticmethod
    def _tasks(rng, n=40, resources=("gpu:0", "gpu:1", "gpu:2", "fabric:0")):
        tasks = []
        for i in range(n):
            deps = tuple(
                f"t{j}" for j in rng.choice(i, size=min(i, 2), replace=False)
            ) if i else ()
            tasks.append(Task(
                f"t{i}", resources[int(rng.randint(len(resources)))],
                float(rng.random_sample() + 0.1), deps,
            ))
        return tasks

    def test_exact_match_stretches_duration(self):
        t = [Task("a", "gpu:1", 2.0), Task("b", "gpu:2", 2.0, ("a",))]
        tl = Engine(slowdown={"gpu:1": 3.0}).run(t)
        assert tl.end("a") == pytest.approx(6.0)
        assert tl.end("b") == pytest.approx(8.0)

    def test_family_match_and_no_bare_prefix(self):
        t = [Task("a", "gpu:1", 1.0), Task("b", "gpu:10", 1.0)]
        tl = Engine(slowdown={"gpu:": 2.0}).run(t)
        assert tl.end("a") == pytest.approx(2.0)
        assert tl.end("b") == pytest.approx(2.0)
        # a bare resource name matches exactly, never as a prefix
        tl = Engine(slowdown={"gpu:1": 2.0}).run(t)
        assert tl.end("a") == pytest.approx(2.0)
        assert tl.end("b") == pytest.approx(1.0)

    def test_factors_multiply(self):
        t = [Task("a", "gpu:1", 1.0)]
        tl = Engine(slowdown={"gpu:1": 2.0, "gpu:": 3.0}).run(t)
        assert tl.end("a") == pytest.approx(6.0)

    def test_invalid_factor_rejected(self):
        with pytest.raises(CoCoNetError, match="slowdown factor"):
            Engine(slowdown={"gpu:0": 0.0})

    def test_heap_and_reference_bit_identical_under_slowdown(self):
        rng = np.random.RandomState(0x51)
        slow = {"gpu:1": 2.5, "fabric:": 1.7}
        for _ in range(5):
            tasks = self._tasks(rng)
            fast = Engine(slowdown=slow).run(tasks)
            ref = Engine(reference=True, slowdown=slow).run(tasks)
            assert fast.spans == ref.spans
            assert fast.resources == ref.resources

    def test_fault_plan_feeds_the_engine(self):
        plan = FaultPlan().slow_rank(1, 2.0)
        tasks = [
            Task("k0", "gpu:0", 1.0),
            Task("k1", "gpu:1", 1.0),
            Task("ar", "fabric:0", 1.0, ("k0", "k1")),
        ]
        clean = Engine().run(tasks)
        faulty = Engine(slowdown=plan.resource_slowdowns()).run(tasks)
        assert faulty.makespan > clean.makespan
        assert faulty.end("k1") == pytest.approx(2.0)
        assert faulty.end("k0") == pytest.approx(1.0)


class TestDegradedLinks:
    def test_slowdown_reduces_effective_bandwidth(self):
        link = NVLINK_V100.degraded(2.0)
        assert link.effective_bandwidth == NVLINK_V100.bandwidth / 2.0
        assert link.bandwidth == NVLINK_V100.bandwidth  # nominal kept
        assert link.transfer_time(1 << 20) > NVLINK_V100.transfer_time(
            1 << 20
        )

    def test_degradation_composes(self):
        assert IB_EDR.degraded(2.0).degraded(3.0).slowdown == 6.0
        assert IB_EDR.contended(4).slowdown == 4.0

    def test_validation(self):
        with pytest.raises(ValueError, match=">= 1"):
            NVLINK_V100.degraded(0.5)
        with pytest.raises(ValueError, match="flow count"):
            NVLINK_V100.contended(0)
        with pytest.raises(ValueError, match="slowdown"):
            Link(name="bad", bandwidth=1e9, latency=1e-6, slowdown=0.1)


class TestRingTagging:
    """merge_rank_traces tags unhealthy rings instead of skipping them."""

    def test_statuses_are_tagged_and_metered(self, tmp_path):
        from repro.observe.metrics import MetricsRegistry
        from repro.observe.ring import (
            KIND_FAULT, KIND_PUBLISH, TraceRing, merge_rank_traces,
        )

        # rank0: healthy ring with a publish span and a fault instant
        ring = TraceRing.create(str(tmp_path / "rank0.ring"))
        ring.append(KIND_PUBLISH, 1000, 500, nbytes=64, site="g0x4")
        ring.append(KIND_FAULT, 1600, 0, site="g0x4", name="die")
        ring.close()
        # rank1: valid but never written
        TraceRing.create(str(tmp_path / "rank1.ring")).close()
        # rank2: garbage bytes
        (tmp_path / "rank2.ring").write_bytes(b"not a ring at all")
        # rank3: wrapped — capacity 4, six appends
        ring = TraceRing.create(str(tmp_path / "rank3.ring"), capacity=4)
        for i in range(6):
            ring.append(KIND_PUBLISH, 1000 + i, 10, site="g0x4")
        ring.close()

        metrics = MetricsRegistry()
        events = merge_rank_traces(str(tmp_path), metrics=metrics)
        instants = {
            (e.pid, e.name) for e in events if isinstance(e, InstantEvent)
        }
        assert ("rank0", "die") in instants
        assert ("rank1", "ring-empty") in instants
        assert ("rank2", "ring-corrupt") in instants
        assert ("rank3", "ring-truncated") in instants
        assert metrics.get("spmd.rank1.ring_empty") == 1
        assert metrics.get("spmd.rank2.ring_corrupt") == 1
        assert metrics.get("spmd.rank3.ring_truncated") == 1
        assert metrics.get("spmd.events_dropped") == 2
        # the healthy and truncated ranks still contribute their spans
        assert metrics.get("spmd.rank0.bytes_published") == 64
        assert metrics.get("spmd.rank3.events") == 4

    def test_fault_instants_land_on_the_faults_track(self, tmp_path):
        from repro.observe.ring import (
            KIND_STALL, TraceRing, merge_rank_traces,
        )

        ring = TraceRing.create(str(tmp_path / "rank0.ring"))
        ring.append(KIND_STALL, 2000, 0, seq=3, site="g0x4",
                    name="soft-retry")
        ring.close()
        events = merge_rank_traces(str(tmp_path))
        (ev,) = [e for e in events if isinstance(e, InstantEvent)]
        assert ev.tid == "faults"
        assert ev.cat == "stall"
        assert ev.args["seq"] == 3
