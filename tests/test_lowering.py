"""The shared lowering IR and the three backends that consume it.

Structural tests of :func:`repro.core.lower.lower`, differential
property tests ``run_lowered`` ≡ DFG ``Executor.run`` ≡
``Executor(reference=True)`` (bit-identical outputs *and* tensor states)
across every workload's original / named / autotuned schedules, the
chunk-by-chunk instruction trace, the cost model's consumption of the
stream, and the §5.4 bucket metadata wiring.
"""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core import FP32
from repro.core.autotuner import Autotuner
from repro.core.lower import (
    ChunkLoop,
    CollectiveStep,
    Launch,
    LoweredProgram,
    PackScattered,
    fused_pack_info,
    lower,
)
from repro.core.tensor import Tensor
from repro.core.transforms import KernelKind, Schedule
from repro.errors import CoCoNetError, ExecutionError
from repro.perf import Engine, ProgramCostModel
from repro.runtime import Executor
from repro.scattered.bucketing import bucket_memory_overhead
from repro.workloads.adam import AdamWorkload
from repro.workloads.attention import AttentionWorkload
from repro.workloads.lamb import LambWorkload
from repro.workloads.moe import MoEWorkload
from repro.workloads.pipeline import PipelineWorkload


@pytest.fixture
def rng():
    return np.random.RandomState(0x10E7)


def optimizer_inputs(rng, n=4, N=64):
    return dict(
        g=rng.randn(n, N) * 0.1,
        p=rng.randn(N),
        m=rng.randn(N) * 0.01,
        v=np.abs(rng.randn(N)) * 0.01,
        lr=0.01,
        t=3.0,
    )


def assert_triple_parity(sched, inputs):
    """run_lowered ≡ DFG run ≡ reference run, bit-for-bit."""
    program = sched.program if isinstance(sched, Schedule) else sched
    low = Executor().run_lowered(sched, inputs, allow_downcast=True)
    dfg = Executor().run(program, inputs, allow_downcast=True)
    ref = Executor(reference=True).run(program, inputs, allow_downcast=True)
    for o in program.outputs:
        np.testing.assert_array_equal(
            low.output(o.name), dfg.output(o.name), err_msg=o.name
        )
        np.testing.assert_array_equal(
            low.output(o.name), ref.output(o.name), err_msg=o.name
        )
    for t in program.inputs:
        if isinstance(t, Tensor):
            np.testing.assert_array_equal(
                low.tensor_state(t.name),
                dfg.tensor_state(t.name),
                err_msg=f"state {t.name}",
            )
            np.testing.assert_array_equal(
                low.tensor_state(t.name),
                ref.tensor_state(t.name),
                err_msg=f"state {t.name}",
            )


class TestLoweringStructure:
    def test_default_plan_is_all_launches(self):
        wl = AttentionWorkload.build(4, 8, 16, 4, dtype=FP32)
        lowered = Schedule(wl.program).lowered()
        assert all(isinstance(i, Launch) for i in lowered.instructions)
        assert len(lowered.instructions) == len(wl.program.operations)

    def test_launches_cover_every_operation_once(self):
        wl = MoEWorkload.build(3, 6, 8, world_size=4, dtype=FP32)
        for sched in wl.schedules().values():
            lowered = sched.lowered()
            covered = [
                e for launch in lowered.launches() for e in launch.exprs
            ]
            assert len(covered) == len(set(map(id, covered)))
            assert len(covered) == len(sched.program.operations)

    def test_deps_reference_only_kernels(self):
        wl = AttentionWorkload.build(4, 8, 16, 4, dtype=FP32)
        lowered = wl.schedule_gshard().lowered()
        names = {k.name for k in lowered.plan.kernels}
        for launch in lowered.launches():
            assert set(launch.deps) <= names - {launch.name}

    def test_streams_and_resources_assigned(self):
        wl = AttentionWorkload.build(4, 8, 16, 4, dtype=FP32)
        lowered = wl.schedule_megatron().lowered(cluster=Cluster(1))
        comm = [
            i for i in lowered.instructions
            if isinstance(i, CollectiveStep)
        ]
        assert comm and all(
            i.resource.startswith("fabric:") for i in comm
        )
        compute = [
            i for i in lowered.instructions
            if isinstance(i, Launch) and not isinstance(i, CollectiveStep)
        ]
        assert compute and all(
            i.resource == i.stream == "gpu:0" for i in compute
        )

    def test_attention_overlap_lowered_to_ring_chunk_loop(self):
        wl = AttentionWorkload.build(4, 8, 16, 4, dtype=FP32)
        lowered = wl.schedule_coconet().lowered()
        loops = lowered.chunk_loops()
        assert len(loops) == 1
        loop = loops[0]
        assert loop.ring
        assert loop.num_chunks == 4
        producer, consumer = loop.entries
        assert producer.instr.kernel.kind is KernelKind.GEMM
        assert producer.mode == "publish"
        # 2-D chunks over the GEMM M rows (seq = 8, 4 chunks of 2)
        assert producer.chunk_dim == 1
        assert producer.bounds == ((0, 2), (2, 4), (4, 6), (6, 8))
        assert consumer.mode == "whole"
        assert consumer.upstream == producer.name

    def test_moe_overlap_chunks_the_compute_chain(self):
        wl = MoEWorkload.build(3, 6, 8, world_size=4, dtype=FP32)
        lowered = wl.schedule_overlapped().lowered()
        (loop,) = lowered.chunk_loops()
        assert not loop.ring
        modes = {e.name: e.mode for e in loop.entries}
        kinds = {
            e.name: e.instr.kernel.kind for e in loop.entries
        }
        # dispatch exchange and both GEMMs release chunks; the ReLU
        # genuinely computes chunk-by-chunk; the fused combine is atomic
        assert modes["dispatch"] == "publish"
        compute = [
            n for n, m in modes.items()
            if m == "compute"
        ]
        assert compute and all(
            kinds[n] is KernelKind.ELEMENTWISE for n in compute
        )
        fused = [
            n for n, k in kinds.items()
            if k is KernelKind.FUSED_COLLECTIVE
        ]
        assert fused and all(modes[n] == "whole" for n in fused)

    def test_pack_scattered_precedes_fused_collective(self):
        wl = AdamWorkload.build(64, 4, grad_dtype=FP32)
        lowered = wl.schedule_fused().lowered()
        instrs = lowered.instructions
        packs = [i for i in instrs if isinstance(i, PackScattered)]
        assert len(packs) == 1
        pack = packs[0]
        target = next(
            i for i in instrs
            if isinstance(i, CollectiveStep) and i.name == pack.target
        )
        assert instrs.index(pack) == instrs.index(target) - 1
        assert target.pack is pack
        # 12 · ⌈N / 2^10⌉ over the exchange anchor's per-rank elements
        assert pack.metadata_bytes == bucket_memory_overhead(
            pack.num_elements
        )
        assert pack.num_buckets == -(-pack.num_elements // 1024)

    def test_interleaved_overlap_groups_merge_into_one_loop(self, rng):
        # two overlap groups whose lowered regions interleave (each
        # group's span pulls in the other's members) must become ONE
        # chunk loop — a kernel belongs to exactly one loop, the cost
        # model must not see duplicate tasks, and the executor must run
        # every kernel exactly once
        wl = MoEWorkload.build(3, 6, 8, world_size=4, dtype=FP32)
        sched = Schedule(wl.program)
        sched.overlap(wl.dispatch, wl.act)
        sched.overlap(wl.gemm1, wl.combine)
        lowered = sched.lowered()
        loops = lowered.chunk_loops()
        assert len(loops) == 1
        covered = [e for la in lowered.launches() for e in la.exprs]
        assert len(covered) == len(set(map(id, covered)))
        assert len(covered) == len(sched.program.operations)
        # no duplicate task names in the DES graph
        pcm = ProgramCostModel(Cluster(1))
        assert pcm.time(sched) > 0.0
        inputs = {
            "x": rng.randn(4, 4, 3, 6),
            "w1": rng.randn(4, 6, 8),
            "w2": rng.randn(4, 8, 6),
        }
        assert_triple_parity(sched, inputs)

    def test_interposed_kernel_joins_the_loop(self, rng):
        # overlap(mm, ar); split(ar): the plan group holds {mm, ag} with
        # the rs interposed on the dependency path — the lowering pulls
        # it into the loop (old codegen/cost silently mis-handled this)
        wl = AttentionWorkload.build(4, 8, 16, 4, dtype=FP32)
        sched = Schedule(wl.program)
        sched.overlap(wl.matmul, wl.allreduce)
        sched.split(wl.allreduce)
        (loop,) = sched.lowered().chunk_loops()
        kinds = [e.instr.kernel.kind for e in loop.entries]
        assert KernelKind.COLLECTIVE in kinds  # rs and ag joined
        assert len(loop.entries) == 3
        # the describe annotation still finds the (superset) loop
        text = sched.plan().describe(sched.lowered())
        assert "chunks" in text
        inputs = {
            "w": rng.randn(16, 16), "b": rng.randn(16),
            "in": rng.randn(4, 8, 16), "r": rng.randn(4, 8, 16),
        }
        assert_triple_parity(sched, inputs)

    def test_lower_accepts_program_and_is_idempotent(self):
        wl = AdamWorkload.build(32, 4, grad_dtype=FP32)
        lowered = lower(wl.program)
        assert isinstance(lowered, LoweredProgram)
        assert lower(lowered) is lowered
        with pytest.raises(CoCoNetError, match="cannot lower"):
            lower(42)

    def test_schedule_lowered_is_cached_per_version(self):
        wl = AttentionWorkload.build(4, 8, 16, 4, dtype=FP32)
        sched = Schedule(wl.program)
        first = sched.lowered()
        assert sched.lowered() is first
        sched.split(wl.allreduce)
        assert sched.lowered() is not first

    def test_describe_lists_streams_and_chunks(self):
        wl = AttentionWorkload.build(4, 8, 16, 4, dtype=FP32)
        lowered = wl.schedule_coconet().lowered()
        text = lowered.describe()
        assert "gpu:0" in text and "chunks" in text


class TestPlanAnnotations:
    def test_plan_describe_with_lowering_shows_streams_and_chunks(self):
        wl = AttentionWorkload.build(4, 8, 16, 4, dtype=FP32)
        sched = wl.schedule_coconet()
        text = sched.plan().describe(sched.lowered())
        assert "@ gpu:0" in text
        assert "4 chunks, ring" in text
        # the lowering-free rendering stays unchanged
        plain = sched.plan().describe()
        assert "@ gpu:0" not in plain and "overlap:" in plain

    def test_kernel_repr_names_overlap_group(self):
        wl = AttentionWorkload.build(4, 8, 16, 4, dtype=FP32)
        sched = wl.schedule_coconet()
        plan = sched.plan()
        member = next(k for k in plan.kernels if k.overlap_group)
        assert f"in {member.overlap_group}" in repr(member)
        loner = next(
            k for k in plan.kernels if k.overlap_group is None
        )
        assert "in " not in repr(loner)


class TestRunLoweredParity:
    """run_lowered ≡ DFG run ≡ reference run on every schedule family."""

    def test_adam_all_schedules(self, rng):
        wl = AdamWorkload.build(64, 4)
        inputs = optimizer_inputs(rng)
        assert_triple_parity(wl.program, inputs)
        for sched in wl.schedules().values():
            assert_triple_parity(sched, inputs)

    def test_lamb_all_schedules(self, rng):
        wl = LambWorkload.build(64, 4)
        inputs = optimizer_inputs(rng)
        assert_triple_parity(wl.program, inputs)
        for sched in wl.schedules().values():
            assert_triple_parity(sched, inputs)

    def test_attention_all_schedules(self, rng):
        wl = AttentionWorkload.build(4, 8, 16, 4, dtype=FP32, dropout_seed=7)
        inputs = {
            "w": rng.randn(16, 16), "b": rng.randn(16),
            "in": rng.randn(4, 8, 16), "r": rng.randn(4, 8, 16),
        }
        assert_triple_parity(wl.program, inputs)
        for sched in wl.schedules().values():
            assert_triple_parity(sched, inputs)

    def test_moe_all_schedules(self, rng):
        wl = MoEWorkload.build(3, 6, 8, world_size=4, dtype=FP32)
        inputs = {
            "x": rng.randn(4, 4, 3, 6),
            "w1": rng.randn(4, 6, 8),
            "w2": rng.randn(4, 8, 6),
        }
        assert_triple_parity(wl.program, inputs)
        for sched in wl.schedules().values():
            assert_triple_parity(sched, inputs)
        assert_triple_parity(
            wl.schedule_hierarchical(node_size=2), inputs
        )

    def test_pipeline_all_schedules(self, rng):
        wl = PipelineWorkload.build(
            2, 8, 16, world_size=8, num_groups=2, dtype=FP32, dropout_seed=5
        )
        inputs = {
            "in": rng.randn(4, 2, 8, 16),
            "b": rng.randn(16),
            "r": rng.randn(2, 8, 16),
        }
        assert_triple_parity(wl.program, inputs)
        for sched in wl.schedules().values():
            assert_triple_parity(sched, inputs)

    def test_autotuned_schedules_parity(self, rng):
        # every candidate the autotuner enumerated, incl. the winner
        wl = AttentionWorkload.build(4, 8, 16, 4, dtype=FP32, dropout_seed=6)
        result = Autotuner(Cluster(1)).tune(wl.program)
        inputs = {
            "w": rng.randn(16, 16), "b": rng.randn(16),
            "in": rng.randn(4, 8, 16), "r": rng.randn(4, 8, 16),
        }
        for cand in result.candidates:
            assert_triple_parity(cand.schedule, inputs)


class TestChunkTrace:
    def test_attention_overlap_executes_chunk_by_chunk(self, rng):
        from repro.observe import Tracer

        wl = AttentionWorkload.build(4, 8, 16, 4, dtype=FP32)
        sched = wl.schedule_coconet()
        inputs = {
            "w": rng.randn(16, 16), "b": rng.randn(16),
            "in": rng.randn(4, 8, 16), "r": rng.randn(4, 8, 16),
        }
        tracer = Tracer()
        Executor().run_lowered(
            sched, inputs, allow_downcast=True, tracer=tracer
        )
        (loop,) = sched.lowered().chunk_loops()
        mm = loop.entries[0].name
        chunk_spans = tracer.spans(cat="chunk")
        # the GEMM released each of its chunks individually, in order
        assert [
            (e.args["member"], e.args["step"], e.args["chunk"])
            for e in chunk_spans
        ] == [(mm, c, c) for c in range(loop.num_chunks)]
        assert [e.name for e in chunk_spans] == [
            f"{mm}#c{c}" for c in range(loop.num_chunks)
        ]
        # ... all before the fused collective consumed them
        (whole,) = tracer.spans(cat="whole")
        assert all(e.end <= whole.ts + 1e-9 for e in chunk_spans)
        (envelope,) = tracer.spans(cat="chunkloop")
        assert envelope.name == loop.name
        assert envelope.args == {
            "num_chunks": loop.num_chunks, "ring": True
        }

    def test_legacy_trace_shim_matches_structured_events(self, rng):
        """The pre-observe tuple protocol (``trace=[]``) still works,
        alongside and identical in content to the structured events."""
        from repro.observe import Tracer

        wl = AttentionWorkload.build(4, 8, 16, 4, dtype=FP32)
        sched = wl.schedule_coconet()
        inputs = {
            "w": rng.randn(16, 16), "b": rng.randn(16),
            "in": rng.randn(4, 8, 16), "r": rng.randn(4, 8, 16),
        }
        trace = []
        tracer = Tracer()
        Executor().run_lowered(
            sched, inputs, allow_downcast=True, trace=trace,
            tracer=tracer,
        )
        (loop,) = sched.lowered().chunk_loops()
        mm = loop.entries[0].name
        chunk_events = [e for e in trace if e[0] == "chunk"]
        assert [e[1:] for e in chunk_events] == [
            (mm, c, c) for c in range(loop.num_chunks)
        ]
        whole_at = trace.index(
            next(e for e in trace if e[0] == "whole")
        )
        assert all(trace.index(e) < whole_at for e in chunk_events)
        assert ("chunkloop", loop.name, loop.num_chunks, True) in trace
        # same stream of work, one record per structured span
        assert len(chunk_events) == len(tracer.spans(cat="chunk"))
        assert [e[1] for e in trace if e[0] == "launch"] == [
            e.name for e in tracer.spans(cat="launch")
        ]

    def test_moe_pipeline_interleaves_producer_and_consumer_chunks(
        self, rng
    ):
        from repro.observe import Tracer

        wl = MoEWorkload.build(3, 6, 8, world_size=4, dtype=FP32)
        sched = wl.schedule_overlapped()
        inputs = {
            "x": rng.randn(4, 4, 3, 6),
            "w1": rng.randn(4, 6, 8),
            "w2": rng.randn(4, 8, 6),
        }
        tracer = Tracer()
        Executor().run_lowered(
            sched, inputs, allow_downcast=True, tracer=tracer
        )
        (loop,) = sched.lowered().chunk_loops()
        compute_entry = next(
            e for e in loop.entries if e.mode == "compute"
        )
        gemm = compute_entry.group_deps[0]
        events = [
            (e.args["member"], e.args["chunk"])
            for e in tracer.spans(cat="chunk")
        ]
        # chunk c of the ReLU runs after chunk c of its GEMM producer,
        # and before the producer's *next* chunk completes the buffer —
        # the chunk-synchronized pipeline, not whole-kernel execution
        for c in range(loop.num_chunks):
            assert events.index((compute_entry.name, c)) > events.index(
                (gemm, c)
            )
        assert events.index((compute_entry.name, 0)) < events.index(
            (gemm, loop.num_chunks - 1)
        )

    def test_reference_backend_rejects_run_lowered(self, rng):
        wl = AdamWorkload.build(32, 4, grad_dtype=FP32)
        with pytest.raises(ExecutionError, match="vectorized"):
            Executor(reference=True).run_lowered(
                wl.program, optimizer_inputs(rng, N=32)
            )


class TestCostFromLowering:
    def test_time_equals_engine_run_of_lowered_tasks(self):
        wl = AttentionWorkload.build(4, 64, 256, 16)
        pcm = ProgramCostModel(Cluster(1))
        for sched in wl.schedules().values():
            lowered = sched.lowered(cluster=pcm.cluster)
            tasks = pcm._build_tasks(lowered)
            assert pcm.time(sched) == pytest.approx(
                Engine().run(tasks).makespan
            )

    def test_chunk_tasks_follow_the_lowered_loop(self):
        wl = AttentionWorkload.build(4, 64, 256, 16)
        sched = wl.schedule_coconet()
        pcm = ProgramCostModel(Cluster(1))
        lowered = sched.lowered(cluster=pcm.cluster)
        (loop,) = lowered.chunk_loops()
        tasks = pcm._build_tasks(lowered)
        for entry in loop.entries:
            chunk_tasks = [
                t for t in tasks
                if t.name.startswith(f"{entry.name}#c")
            ]
            assert len(chunk_tasks) == loop.num_chunks

    def test_overlap_chunks_override_threads_through_lowering(self):
        wl = AttentionWorkload.build(4, 64, 256, 16)
        sched = wl.schedule_coconet()
        pcm = ProgramCostModel(Cluster(1), overlap_chunks=2)
        (loop,) = pcm._lowered_of(sched).chunk_loops()
        assert loop.num_chunks == 2

    def test_fused_pack_info_formula(self):
        wl = AdamWorkload.build(4096, 4, grad_dtype=FP32)
        sched = wl.schedule_fused()
        kernel = next(
            k for k in sched.plan().kernels
            if k.kind is KernelKind.FUSED_COLLECTIVE
        )
        pack = fused_pack_info(kernel)
        assert pack is not None
        assert pack.num_elements == 4096
        assert pack.num_buckets == 4
        assert pack.metadata_bytes == 48

    def test_scattered_metadata_is_costed(self):
        # the bucket table is read by the fused kernel: with the §5.4
        # metadata charged, the fused collective can only get slower —
        # and strictly slower once the kernel is compute-bound (a slow
        # fused-compute parameterization makes the extra HBM traffic
        # observable rather than hidden under the exchange time)
        from repro.perf.kernel_cost import CostParams

        wl = AdamWorkload.build(2**22, 64, grad_dtype=FP32)
        sched = wl.schedule_fused()
        kernel = next(
            k for k in sched.plan().kernels
            if k.kind is KernelKind.FUSED_COLLECTIVE
        )
        slow = CostParams(peak_fraction=0.0005)
        with_meta = ProgramCostModel(
            Cluster(4), fused_compute_params=slow
        )._kernel_cost(kernel)
        without = ProgramCostModel(
            Cluster(4), fused_compute_params=slow,
            scattered_metadata=False,
        )._kernel_cost(kernel)
        assert with_meta.duration > without.duration
        # default parameters: never cheaper with the metadata charged
        t_on = ProgramCostModel(Cluster(4)).time(sched)
        t_off = ProgramCostModel(
            Cluster(4), scattered_metadata=False
        ).time(sched)
        assert t_on >= t_off


class TestSignatureOnLoweredIR:
    def test_same_schedule_same_signature(self):
        tuner = Autotuner(Cluster(1))
        a = AttentionWorkload.build(4, 8, 16, 4, dtype=FP32)
        b = AttentionWorkload.build(4, 8, 16, 4, dtype=FP32)
        assert tuner._plan_signature(a.schedule_coconet()) == (
            tuner._plan_signature(b.schedule_coconet())
        )

    def test_overlap_changes_signature(self):
        tuner = Autotuner(Cluster(1))
        wl = AttentionWorkload.build(4, 8, 16, 4, dtype=FP32)
        fused_only = AttentionWorkload.build(4, 8, 16, 4, dtype=FP32)
        sched = fused_only.schedule_coconet()
        # same kernels, no overlap group vs with one: the chunk-loop
        # layout keeps them apart
        sig_overlap = tuner._plan_signature(sched)
        plain = wl.schedule_gshard()
        assert tuner._plan_signature(plain) != sig_overlap
