"""The CI benchmark-regression gate (benchmarks/check_regression.py).

Verifies the property the CI wiring relies on: an injected perf
regression in a fresh ``BENCH_*.json`` makes the gate exit non-zero,
while reports within tolerance pass; ``--update-baselines`` records
intentional shifts.
"""

import json
import os
import sys

import pytest

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                 "benchmarks"),
)
import check_regression as cr  # noqa: E402


def write(path, payload):
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as f:
        json.dump(payload, f)
    return path


@pytest.fixture
def env(tmp_path):
    baselines = tmp_path / "baselines"
    fresh = tmp_path / "BENCH_x.json"
    write(
        str(baselines / "BENCH_x.json"),
        {
            "tolerance": 0.10,
            "checks": [
                {"path": "equal_outputs", "equals": True},
                {"path": "acceptance.speedup", "min": 2.0},
                {"path": "overhead", "max": 1.2},
            ],
        },
    )
    return baselines, fresh


def run_main(fresh, baselines, *extra):
    return cr.main([str(fresh), "--baselines", str(baselines), *extra])


class TestGate:
    def test_passes_within_tolerance(self, env):
        baselines, fresh = env
        write(
            str(fresh),
            {"equal_outputs": True,
             "acceptance": {"speedup": 1.85},  # >= 2.0 * 0.9
             "overhead": 1.3},                 # <= 1.2 * 1.1
        )
        assert run_main(fresh, baselines) == 0

    def test_fails_on_injected_speedup_regression(self, env):
        baselines, fresh = env
        write(
            str(fresh),
            {"equal_outputs": True,
             "acceptance": {"speedup": 1.5},   # < 2.0 * 0.9 → regression
             "overhead": 1.0},
        )
        assert run_main(fresh, baselines) == 1

    def test_fails_on_overhead_cap(self, env):
        baselines, fresh = env
        write(
            str(fresh),
            {"equal_outputs": True,
             "acceptance": {"speedup": 3.0},
             "overhead": 1.4},                 # > 1.2 * 1.1 → regression
        )
        assert run_main(fresh, baselines) == 1

    def test_fails_on_equals_mismatch(self, env):
        baselines, fresh = env
        write(
            str(fresh),
            {"equal_outputs": False,           # numerics diverged
             "acceptance": {"speedup": 3.0},
             "overhead": 1.0},
        )
        assert run_main(fresh, baselines) == 1

    def test_fails_on_missing_metric_path(self, env):
        baselines, fresh = env
        write(str(fresh), {"equal_outputs": True, "overhead": 1.0})
        assert run_main(fresh, baselines) == 1

    def test_fails_on_missing_baseline_or_report(self, env, tmp_path):
        baselines, fresh = env
        write(
            str(tmp_path / "BENCH_unknown.json"),
            {"equal_outputs": True},
        )
        assert cr.main(
            [str(tmp_path / "BENCH_unknown.json"),
             "--baselines", str(baselines)]
        ) == 1
        assert cr.main(
            [str(tmp_path / "BENCH_never_written.json"),
             "--baselines", str(baselines)]
        ) == 1

    def test_tolerance_override(self, env):
        baselines, fresh = env
        write(
            str(fresh),
            {"equal_outputs": True,
             "acceptance": {"speedup": 1.5},
             "overhead": 1.0},
        )
        # 50% tolerance turns the 2.0 floor into 1.0
        assert run_main(fresh, baselines, "--tolerance", "0.5") == 0


class TestMalformedInputs:
    """Broken JSON and unrefreshable baselines fail with a message,
    not a traceback."""

    def test_malformed_fresh_report(self, env, capsys):
        baselines, fresh = env
        with open(str(fresh), "w") as f:
            f.write("{not json")
        assert run_main(fresh, baselines) == 1
        assert "not valid JSON" in capsys.readouterr().out

    def test_malformed_baseline(self, env, capsys):
        baselines, fresh = env
        write(str(fresh), {"equal_outputs": True})
        with open(str(baselines / "BENCH_x.json"), "w") as f:
            f.write("]")
        assert run_main(fresh, baselines) == 1
        assert "not valid JSON" in capsys.readouterr().out

    def test_missing_baseline_explains_how_to_create_one(
        self, env, tmp_path, capsys
    ):
        baselines, _ = env
        fresh = write(
            str(tmp_path / "BENCH_new.json"), {"equal_outputs": True}
        )
        assert cr.main([fresh, "--baselines", str(baselines)]) == 1
        out = capsys.readouterr().out
        assert "no committed baseline" in out
        assert "commit one" in out

    def test_update_with_unresolvable_path_fails_cleanly(
        self, env, capsys
    ):
        baselines, fresh = env
        # the fresh report lacks acceptance.speedup, so refreshing the
        # floor from it must fail as a gate message, not a GateError
        write(str(fresh), {"equal_outputs": True, "overhead": 1.0})
        assert run_main(fresh, baselines, "--update-baselines") == 1
        assert "cannot refresh baseline" in capsys.readouterr().out


class TestRatioChecks:
    def test_ratio_floor(self, tmp_path):
        baselines = tmp_path / "baselines"
        write(
            str(baselines / "BENCH_r.json"),
            {"tolerance": 0.0,
             "checks": [{"path_num": "a", "path_den": "b", "min": 1.5}]},
        )
        fresh = write(str(tmp_path / "BENCH_r.json"), {"a": 3.0, "b": 1.0})
        assert cr.main([fresh, "--baselines", str(baselines)]) == 0
        fresh = write(str(tmp_path / "BENCH_r.json"), {"a": 1.0, "b": 1.0})
        assert cr.main([fresh, "--baselines", str(baselines)]) == 1


class TestByteCaps:
    """max_bytes: a hard, tolerance-free cap on deterministic sizes."""

    @pytest.fixture
    def size_env(self, tmp_path):
        baselines = tmp_path / "baselines"
        write(
            str(baselines / "BENCH_sz.json"),
            {"tolerance": 0.50,  # must NOT soften the byte cap
             "checks": [{"path": "sizes.adam_bytes",
                         "max_bytes": 1000}]},
        )
        return baselines, tmp_path / "BENCH_sz.json"

    def test_at_the_cap_passes(self, size_env):
        baselines, fresh = size_env
        write(str(fresh), {"sizes": {"adam_bytes": 1000}})
        assert run_main(fresh, baselines) == 0

    def test_one_byte_over_fails_despite_tolerance(self, size_env, capsys):
        baselines, fresh = size_env
        write(str(fresh), {"sizes": {"adam_bytes": 1001}})
        assert run_main(fresh, baselines) == 1
        assert "GREW" in capsys.readouterr().out

    def test_update_snaps_cap_to_fresh_size(self, size_env):
        baselines, fresh = size_env
        write(str(fresh), {"sizes": {"adam_bytes": 1234}})
        assert run_main(fresh, baselines, "--update-baselines") == 0
        with open(baselines / "BENCH_sz.json") as f:
            updated = json.load(f)
        # exact, no margin: serialized sizes are deterministic
        assert updated["checks"][0]["max_bytes"] == 1234
        assert run_main(fresh, baselines) == 0


class TestUpdateBaselines:
    def test_update_rewrites_floors_from_fresh(self, env):
        baselines, fresh = env
        write(
            str(fresh),
            {"equal_outputs": True,
             "acceptance": {"speedup": 4.0},
             "overhead": 0.9},
        )
        assert run_main(fresh, baselines, "--update-baselines") == 0
        with open(baselines / "BENCH_x.json") as f:
            updated = json.load(f)
        by_path = {c.get("path"): c for c in updated["checks"]}
        assert by_path["acceptance.speedup"]["min"] == pytest.approx(
            4.0 * cr.UPDATE_FLOOR_MARGIN
        )
        assert by_path["overhead"]["max"] == pytest.approx(
            0.9 * cr.UPDATE_CAP_MARGIN
        )
        assert by_path["equal_outputs"]["equals"] is True
        # and the refreshed baseline gates the same fresh report green
        assert run_main(fresh, baselines) == 0


class TestCommittedBaselines:
    """The baselines shipped in the repo stay well-formed."""

    def test_baseline_files_parse_and_have_checks(self):
        assert os.path.isdir(cr.BASELINE_DIR)
        names = [f for f in os.listdir(cr.BASELINE_DIR)
                 if f.endswith(".json")]
        assert {
            "BENCH_runtime.json", "BENCH_lowering.json",
            "BENCH_tuner.json", "BENCH_moe.json", "BENCH_spmd.json",
            "BENCH_faults.json", "BENCH_artifact.json",
        } <= set(names)
        for name in names:
            with open(os.path.join(cr.BASELINE_DIR, name)) as f:
                baseline = json.load(f)
            assert baseline["checks"], name
            for check in baseline["checks"]:
                assert (
                    "path" in check
                    or ("path_num" in check and "path_den" in check)
                ), (name, check)
                assert (
                    "min" in check or "max" in check
                    or "max_bytes" in check or "equals" in check
                ), (name, check)
