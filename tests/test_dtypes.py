"""Tests for repro.core.dtypes."""

import numpy as np
import pytest

from repro.core.dtypes import (
    ALL_DTYPES,
    BF16,
    FP16,
    FP32,
    FP64,
    INT32,
    INT64,
    dtype_by_name,
    largest_itemsize,
    promote,
)
from repro.errors import DTypeError


class TestDTypeBasics:
    def test_fp16_itemsize(self):
        assert FP16.itemsize == 2

    def test_fp32_itemsize(self):
        assert FP32.itemsize == 4

    def test_fp64_itemsize(self):
        assert FP64.itemsize == 8

    def test_int_types_not_float(self):
        assert not INT32.is_float
        assert not INT64.is_float

    def test_float_types_are_float(self):
        assert FP16.is_float and FP32.is_float

    def test_numpy_mapping(self):
        assert FP16.to_numpy() == np.dtype("float16")
        assert FP32.to_numpy() == np.dtype("float32")
        assert INT32.to_numpy() == np.dtype("int32")

    def test_bf16_simulated_as_fp32(self):
        # numpy has no bfloat16; we store in float32 but keep 2-byte size
        assert BF16.itemsize == 2
        assert BF16.to_numpy() == np.dtype("float32")

    def test_repr_is_name(self):
        assert repr(FP16) == "FP16"


class TestLookup:
    def test_by_name(self):
        assert dtype_by_name("FP16") is FP16
        assert dtype_by_name("INT64") is INT64

    def test_unknown_name_raises(self):
        with pytest.raises(DTypeError, match="unknown dtype"):
            dtype_by_name("FP8")

    def test_all_dtypes_registered(self):
        for d in ALL_DTYPES:
            assert dtype_by_name(d.name) is d


class TestPromotion:
    def test_fp16_fp32_promotes_to_fp32(self):
        assert promote(FP16, FP32) is FP32
        assert promote(FP32, FP16) is FP32

    def test_same_type_identity(self):
        assert promote(FP16, FP16) is FP16

    def test_int_float_promotes_to_float(self):
        assert promote(INT32, FP16) is FP16
        assert promote(FP32, INT64) is FP32

    def test_equal_rank_prefers_left(self):
        assert promote(FP16, BF16) is FP16
        assert promote(BF16, FP16) is BF16

    def test_fp64_wins(self):
        for d in (FP16, FP32, INT32):
            assert promote(d, FP64) is FP64


class TestLargestItemsize:
    def test_mixed_precision_pack_rule(self):
        # §5.2: codegen uses the largest element type for pack math
        assert largest_itemsize(FP16, FP32) == 4
        assert largest_itemsize(FP16, FP16) == 2
        assert largest_itemsize(FP16, FP32, FP64) == 8

    def test_empty_raises(self):
        with pytest.raises(DTypeError):
            largest_itemsize()
