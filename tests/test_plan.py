"""Tests for execution-plan structures (Kernel, ExecutionPlan, blocks)."""

import pytest

from repro.core import (
    FP16,
    FP32,
    RANK,
    AllReduce,
    Binary,
    Conv2D,
    Local,
    MatMul,
    Replicated,
    Send,
    Sliced,
    Tensor,
    world,
)
from repro.core.ops import GROUP, GroupRank
from repro.core.transforms import (
    ComputationFuse,
    KernelKind,
    Schedule,
)
from repro.core.transforms.plan import (
    ExecutionPlan,
    FusedBlock,
    FusePolicy,
    Kernel,
    singleton_kind,
)
from tests.conftest import build_attention_program


@pytest.fixture
def W():
    return world(4)


class TestSingletonKind:
    def test_matmul_is_gemm(self, W):
        a = Tensor(FP16, (8, 16), Replicated, W)
        b = Tensor(FP16, (16, 4), Replicated, W)
        assert singleton_kind(MatMul(a, b)) is KernelKind.GEMM

    def test_conv_is_conv(self, W):
        x = Tensor(FP32, (1, 2, 8, 8), Replicated, W)
        k = Tensor(FP32, (2, 2, 3, 3), Replicated, W)
        assert singleton_kind(Conv2D(x, k)) is KernelKind.CONV

    def test_allreduce_is_collective(self, W):
        x = Tensor(FP16, (8,), Local, W, RANK)
        assert singleton_kind(AllReduce("+", x)) is KernelKind.COLLECTIVE

    def test_send_is_p2p(self):
        from repro.core import split_world

        g0, _ = split_world(8, 2)
        x = Tensor(FP16, (8,), Replicated, g0)
        s = Send(x, GroupRank(GROUP + 1, RANK))
        assert singleton_kind(s) is KernelKind.P2P

    def test_binary_is_elementwise(self, W):
        a = Tensor(FP16, (8,), Replicated, W)
        assert singleton_kind(a + a) is KernelKind.ELEMENTWISE


class TestKernel:
    def test_output_is_last_expr(self, W):
        a = Tensor(FP16, (8,), Replicated, W)
        x = a + 1.0
        y = x * 2.0
        k = Kernel("k", KernelKind.FUSED_ELEMENTWISE, (x, y))
        assert k.output is y

    def test_comm_bytes_counts_comm_inputs(self, W):
        x = Tensor(FP16, (8,), Local, W, RANK)
        ar = AllReduce("+", x)
        k = Kernel("k", KernelKind.COLLECTIVE, (ar,))
        assert k.comm_bytes() == 8 * 2

    def test_comm_bytes_zero_for_compute(self, W):
        a = Tensor(FP16, (8,), Replicated, W)
        k = Kernel("k", KernelKind.ELEMENTWISE, (a + 1.0,))
        assert k.comm_bytes() == 0


class TestExecutionPlan:
    def test_default_plan_one_kernel_per_op(self):
        prog, _ = build_attention_program()
        plan = Schedule(prog).plan()
        assert len(plan.kernels) == len(prog.operations)

    def test_kernel_of_lookup(self):
        prog, h = build_attention_program()
        plan = Schedule(prog).plan()
        k = plan.kernel_of(h["layer"])
        assert k is not None and k.kind is KernelKind.GEMM
        assert plan.kernel_of(h["w"]) is None

    def test_num_launches_drops_with_fusion(self):
        prog, h = build_attention_program()
        sched = Schedule(prog)
        before = sched.plan().num_launches
        sched.fuse(h["sum_b"], h["drop"], h["out"], policy=ComputationFuse)
        assert sched.plan().num_launches == before - 2

    def test_describe_lists_kernels_and_overlaps(self):
        prog, h = build_attention_program()
        sched = Schedule(prog)
        sched.overlap(h["layer"], h["allreduce"])
        text = sched.plan().describe()
        assert "gemm" in text and "overlap:" in text

    def test_plan_kernels_cover_all_ops_once(self):
        prog, h = build_attention_program()
        sched = Schedule(prog)
        sched.fuse(h["sum_b"], h["drop"], policy=ComputationFuse)
        plan = sched.plan()
        covered = [e for k in plan.kernels for e in k.exprs]
        assert len(covered) == len(set(map(id, covered)))
        assert len(covered) == len(sched.program.operations)


class TestFusedBlock:
    def test_kernel_kind_by_policy(self, W):
        a = Tensor(FP16, (8,), Replicated, W)
        x = a + 1.0
        y = x * 2.0
        assert FusedBlock(
            FusePolicy.COMPUTATION, [x, y]
        ).kernel_kind() is KernelKind.FUSED_ELEMENTWISE
        assert FusedBlock(
            FusePolicy.ALLREDUCE, [x, y]
        ).kernel_kind() is KernelKind.FUSED_COLLECTIVE
        assert FusedBlock(
            FusePolicy.SEND, [x, y]
        ).kernel_kind() is KernelKind.FUSED_P2P

    def test_block_names_unique(self, W):
        a = Tensor(FP16, (8,), Replicated, W)
        x = a + 1.0
        b1 = FusedBlock(FusePolicy.COMPUTATION, [x])
        b2 = FusedBlock(FusePolicy.COMPUTATION, [x])
        assert b1.name != b2.name

    def test_repr(self, W):
        a = Tensor(FP16, (8,), Replicated, W, name="a")
        x = Binary("+", a, 1.0, name="x")
        block = FusedBlock(FusePolicy.COMPUTATION, [x])
        assert "x" in repr(block)
