"""Tests for distribution layouts (Section 2.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.layout import (
    Layout,
    LayoutKind,
    Local,
    Replicated,
    Sliced,
    normalize_dim,
    slice_shape,
    unsliced_shape,
)
from repro.errors import LayoutError


class TestLayoutConstruction:
    def test_sliced_carries_dim(self):
        layout = Sliced(2)
        assert layout.is_sliced and layout.dim == 2

    def test_replicated_flags(self):
        assert Replicated.is_replicated
        assert not Replicated.is_sliced and not Replicated.is_local

    def test_local_flags(self):
        assert Local.is_local

    def test_sliced_requires_dim(self):
        with pytest.raises(LayoutError):
            Layout(LayoutKind.SLICED)

    def test_non_sliced_rejects_dim(self):
        with pytest.raises(LayoutError):
            Layout(LayoutKind.REPLICATED, dim=0)

    def test_negative_slice_dim_rejected(self):
        with pytest.raises(LayoutError):
            Sliced(-1)

    def test_reprs(self):
        assert repr(Sliced(1)) == "Sliced(1)"
        assert repr(Replicated) == "Replicated"
        assert repr(Local) == "Local"

    def test_layout_equality(self):
        assert Sliced(0) == Sliced(0)
        assert Sliced(0) != Sliced(1)
        assert Replicated != Local


class TestNormalizeDim:
    def test_positive(self):
        assert normalize_dim(1, 3) == 1

    def test_negative(self):
        assert normalize_dim(-1, 3) == 2

    def test_out_of_range(self):
        with pytest.raises(LayoutError):
            normalize_dim(3, 3)


class TestSliceShape:
    def test_sliced_divides_dimension(self):
        assert slice_shape((8, 1024, 16), Sliced(2), 4) == (8, 1024, 4)

    def test_replicated_keeps_shape(self):
        assert slice_shape((8, 16), Replicated, 4) == (8, 16)

    def test_local_keeps_shape(self):
        assert slice_shape((8, 16), Local, 4) == (8, 16)

    def test_indivisible_raises(self):
        with pytest.raises(LayoutError, match="not divisible"):
            slice_shape((10,), Sliced(0), 4)

    def test_unsliced_roundtrip(self):
        per_rank = slice_shape((8, 16), Sliced(1), 4)
        assert unsliced_shape(per_rank, Sliced(1), 4) == (8, 16)

    @given(
        dims=st.lists(st.integers(1, 8), min_size=1, max_size=4),
        dim=st.integers(0, 3),
        parts=st.integers(1, 8),
    )
    def test_slice_unslice_roundtrip_property(self, dims, dim, parts):
        dim = dim % len(dims)
        shape = tuple(d * parts if i == dim else d for i, d in enumerate(dims))
        layout = Sliced(dim)
        per_rank = slice_shape(shape, layout, parts)
        assert per_rank[dim] * parts == shape[dim]
        assert unsliced_shape(per_rank, layout, parts) == shape
