"""A full Megatron MLP block: column-parallel GEMM, row-parallel GEMM,
AllReduce, epilogue — stressing the transform machinery on a program
with two distributed MatMuls and verifying the whole pipeline.
"""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core import (
    FP32,
    RANK,
    AllReduce,
    Binary,
    Dropout,
    Execute,
    MatMul,
    ReLU,
    Replicated,
    Sliced,
    Tensor,
    world,
)
from repro.core.autotuner import Autotuner
from repro.core.codegen import CodeGenerator
from repro.core.transforms import (
    AllReduceFuse,
    ARSplitRSAG,
    ComputationFuse,
    Schedule,
)
from repro.perf import ProgramCostModel
from repro.runtime import Executor


def build_mlp(n=4, B=2, S=8, H=16, seed=17):
    """Megatron MLP: [B,S,H] -> 4H (column parallel) -> H (row parallel).

    w1 is Sliced(1) so the first GEMM's output is sliced along the last
    dim without any communication; w2 is Sliced(0) so the second GEMM
    contracts over the sliced dim and produces local partial sums that
    the AllReduce combines.
    """
    W = world(n)
    x = Tensor(FP32, (B, S, H), Replicated, W, name="x")
    w1 = Tensor(FP32, (H, 4 * H), Sliced(1), W, RANK, name="w1")
    w2 = Tensor(FP32, (4 * H, H), Sliced(0), W, RANK, name="w2")
    b2 = Tensor(FP32, (H,), Replicated, W, name="b2")
    r = Tensor(FP32, (B, S, H), Replicated, W, name="r")

    h1 = MatMul(x, w1, name="h1")          # Sliced(2): [B,S,4H/n]
    act = ReLU(h1)
    h2 = MatMul(act, w2, name="h2")        # Local partial sums
    total = AllReduce("+", h2, name="total")
    sum_b = Binary("+", total, b2, name="sum_b")
    drop = Dropout(sum_b, 0.1, seed=seed, name="drop")
    out = Binary("+", drop, r, name="out")
    prog = Execute("mlp", [x, w1, w2, b2, r], [out])
    return prog, dict(
        h1=h1, act=act, h2=h2, total=total, sum_b=sum_b, drop=drop, out=out
    )


def reference_mlp(inputs, seed):
    from repro.runtime.rng import dropout_mask

    x, w1, w2, b2, r = (
        inputs["x"], inputs["w1"], inputs["w2"], inputs["b2"], inputs["r"]
    )
    h1 = np.maximum(x @ w1, 0.0)
    h2 = h1 @ w2
    mask = dropout_mask(seed, 0.1, h2.shape)
    return (h2 + b2) * mask + r


@pytest.fixture
def inputs():
    rng = np.random.RandomState(8)
    B, S, H = 2, 8, 16
    return {
        "x": rng.randn(B, S, H),
        "w1": rng.randn(H, 4 * H),
        "w2": rng.randn(4 * H, H),
        "b2": rng.randn(H),
        "r": rng.randn(B, S, H),
    }


class TestTwoGemmMLP:
    def test_layout_chain(self):
        prog, h = build_mlp()
        assert h["h1"].layout == Sliced(2)
        assert h["act"].layout == Sliced(2)
        assert h["h2"].layout.is_local
        assert h["total"].layout.is_replicated

    def test_forward_matches_reference(self, inputs):
        prog, h = build_mlp(seed=23)
        got = Executor().run(prog, inputs).output("out")
        expected = reference_mlp(inputs, seed=23)
        np.testing.assert_allclose(got, expected, rtol=1e-4, atol=1e-6)

    def test_transformed_matches_original(self, inputs):
        prog, h = build_mlp(seed=29)
        ref = Executor().run(prog, inputs).output("out")
        prog2, h2 = build_mlp(seed=29)
        sched = Schedule(prog2)
        rs, ag = sched.split(h2["total"], ARSplitRSAG)
        results = sched.reorder(ag, h2["sum_b"], h2["drop"], h2["out"])
        fused = sched.fuse(rs, *results, policy=AllReduceFuse)
        sched.overlap(h2["h2"], fused)
        got = Executor().run(sched.program, inputs)
        np.testing.assert_allclose(
            got.output(sched.program.outputs[0].name), ref, rtol=1e-5,
            atol=1e-7,
        )

    def test_generated_code_matches(self, inputs):
        prog, h = build_mlp(seed=31)
        sched = Schedule(prog)
        rs, ag = sched.split(h["total"], ARSplitRSAG)
        results = sched.reorder(ag, h["sum_b"], h["drop"], h["out"])
        sched.fuse(rs, *results, policy=AllReduceFuse)
        ref = Executor().run(sched.program, inputs)
        gen = CodeGenerator("LL128").generate(sched)
        got = gen.run(inputs)
        name = sched.program.outputs[0].name
        np.testing.assert_allclose(
            got.output(name), ref.output(name), rtol=1e-5, atol=1e-7
        )

    def test_autotuner_handles_two_gemms(self):
        prog, _ = build_mlp(n=16, B=8, S=1024, H=3072)
        result = Autotuner(Cluster(1)).tune(prog)
        assert len(result.candidates) >= 4
        assert result.best.time <= min(c.time for c in result.candidates)

    def test_best_schedule_overlaps_row_parallel_gemm(self):
        # the AR only depends on the second GEMM; overlap should pair them
        prog, _ = build_mlp(n=16, B=8, S=1024, H=3072)
        result = Autotuner(Cluster(1)).tune(prog)
        assert "overlap" in result.best.name

    def test_cost_model_ranks_fused_below_default(self):
        prog, h = build_mlp(n=16, B=8, S=1024, H=3072)
        t_default = ProgramCostModel(Cluster(1)).time(Schedule(prog))
        prog2, h2 = build_mlp(n=16, B=8, S=1024, H=3072)
        sched = Schedule(prog2)
        sched.fuse(
            h2["sum_b"], h2["drop"], h2["out"], policy=ComputationFuse
        )
        t_fused = ProgramCostModel(Cluster(1)).time(sched)
        assert t_fused < t_default
