"""Tests for the fast autotuner stack: incremental search, plan-
signature dedup, memoized cost evaluation, and lower-bound pruning.

The invariant everything here guards: the optimizations change how fast
the search runs, never what it returns. ``Autotuner(baseline=True)``
(root replay + unmemoized costs + O(n²) reference engine, same
candidate space) is the executable specification.
"""

import pytest

from repro.cluster import Cluster
from repro.core.autotuner import Autotuner
from repro.core.transforms import Schedule
from repro.perf import Engine, ProgramCostModel
from repro.workloads.adam import AdamWorkload
from repro.workloads.attention import AttentionWorkload
from repro.workloads.lamb import LambWorkload
from repro.workloads.moe import MoEWorkload


def _suite():
    return [
        (AdamWorkload.build(2**18, 16), Cluster(1)),
        (LambWorkload.build(2**18, 16), Cluster(1)),
        (AttentionWorkload.build(4, 256, 1024, 16), Cluster(1)),
        (MoEWorkload.build(128, 512, 2048, 32), Cluster(2)),
    ]


class TestMemoizedCostModel:
    def test_cached_matches_uncached_bitwise_on_all_workloads(self):
        # memoization returns the stored float, so agreement must be
        # exact, not approximate
        for wl, cluster in _suite():
            cached = ProgramCostModel(cluster, memoize=True)
            uncached = ProgramCostModel(cluster, memoize=False)
            for name, sched in wl.schedules().items():
                assert cached.time(sched) == uncached.time(sched), (
                    wl.program.name, name
                )

    def test_cached_matches_uncached_across_tuned_candidates(self):
        wl = MoEWorkload.build(128, 512, 2048, 16)
        result = Autotuner(Cluster(1), prune=False).tune(wl.program)
        cached = ProgramCostModel(Cluster(1), memoize=True)
        uncached = ProgramCostModel(Cluster(1), memoize=False)
        for c in result.candidates:
            assert cached.time(c.schedule) == uncached.time(c.schedule)
            assert cached.time(c.schedule) == c.time

    def test_memo_is_populated(self):
        wl, cluster = _suite()[0]
        pcm = ProgramCostModel(cluster)
        pcm.time(wl.schedule_fused())
        assert pcm._collective_memo or pcm._ring_sweep_memo

    def test_evaluate_prunes_with_cutoff(self):
        wl, cluster = _suite()[0]
        pcm = ProgramCostModel(cluster)
        sched = wl.schedule_gshard()
        exact = pcm.evaluate(sched)
        assert not exact.pruned
        # an impossible cutoff forces the lower-bound exit
        pruned = pcm.evaluate(sched, cutoff=exact.time / 1e6)
        assert pruned.pruned
        assert pruned.time <= exact.time  # a true lower bound

    def test_evaluate_without_cutoff_matches_time(self):
        wl, cluster = _suite()[2]
        pcm = ProgramCostModel(cluster)
        sched = wl.schedule_coconet()
        assert pcm.evaluate(sched).time == pcm.time(sched)


class TestIncrementalMatchesBaseline:
    @pytest.mark.parametrize("idx", range(4))
    def test_same_candidates_same_times(self, idx):
        wl, cluster = _suite()[idx]
        base = Autotuner(cluster, baseline=True).tune(wl.program)
        fast = Autotuner(cluster, prune=False).tune(wl.program)
        assert [c.name for c in base.candidates] == [
            c.name for c in fast.candidates
        ]
        for cb, cf in zip(base.candidates, fast.candidates):
            assert cb.time == cf.time, cb.name
        assert base.best.name == fast.best.name
        assert base.best.time == fast.best.time

    @pytest.mark.parametrize("idx", range(4))
    def test_pruning_preserves_the_best(self, idx):
        wl, cluster = _suite()[idx]
        pruned = Autotuner(cluster).tune(wl.program)
        unpruned = Autotuner(cluster, prune=False).tune(wl.program)
        assert pruned.best.name == unpruned.best.name
        assert pruned.best.time == unpruned.best.time
        # a pruned candidate records a lower bound, never an
        # overestimate below the winner
        for c in pruned.candidates:
            if c.pruned:
                assert c.time >= pruned.best.time

    def test_best_is_never_a_pruned_candidate(self):
        wl, cluster = _suite()[3]
        result = Autotuner(cluster).tune(wl.program)
        assert not result.best.pruned


class TestPlanSignatureDedup:
    """Regression for the historical ``tuple(sorted(script))`` key,
    which treated move scripts as order-insensitive and silently
    skipped order-dependent schedules."""

    ORDER_A = (
        ("split", "avg"), ("reorder", "ag_avg"), ("arfuse", "rs_avg"),
    )
    ORDER_B = (
        ("split", "avg"), ("arfuse", "rs_avg"), ("reorder", "ag_avg"),
    )

    def test_orderings_collide_under_the_old_key(self):
        assert tuple(sorted(self.ORDER_A)) == tuple(sorted(self.ORDER_B))

    def test_orderings_produce_different_plans(self):
        tuner = Autotuner(Cluster(1))
        prog = AdamWorkload.build(2**18, 16).program
        sig_a = tuner._plan_signature(tuner._replay(prog, self.ORDER_A))
        sig_b = tuner._plan_signature(tuner._replay(prog, self.ORDER_B))
        assert sig_a != sig_b

    def test_both_orderings_are_explored(self):
        wl = AdamWorkload.build(2**18, 16)
        result = Autotuner(Cluster(1)).tune(wl.program)
        names = [c.name for c in result.candidates]
        assert "split(avg) ; reorder(ag_avg) ; arfuse(rs_avg)" in names
        assert "split(avg) ; arfuse(rs_avg) ; reorder(ag_avg)" in names

    def test_order_dependent_schedules_time_differently(self):
        # the two orderings are not cosmetic: they cost differently,
        # so skipping one silently changed tuning results
        wl = AdamWorkload.build(2**22, 16)
        result = Autotuner(Cluster(1), prune=False).tune(wl.program)
        by_name = {c.name: c.time for c in result.candidates}
        t_a = by_name["split(avg) ; reorder(ag_avg) ; arfuse(rs_avg)"]
        t_b = by_name["split(avg) ; arfuse(rs_avg) ; reorder(ag_avg)"]
        assert t_a != t_b

    def test_signature_is_replay_path_independent(self):
        # fork-per-move and root replay create different numbers of
        # auto-named intermediates; the structural signature must not
        # see the difference
        tuner = Autotuner(Cluster(1))
        prog = AdamWorkload.build(2**18, 16).program
        replayed = tuner._replay(prog, self.ORDER_A)
        sched = tuner._fresh(prog)
        for m in self.ORDER_A:
            child = sched.fork()
            tuner._apply(child, m)
            sched = child
        assert tuner._plan_signature(sched) == (
            tuner._plan_signature(replayed)
        )


class TestScheduleFork:
    def test_fork_isolates_parent_from_child_moves(self):
        tuner = Autotuner(Cluster(1))
        prog = AdamWorkload.build(2**18, 16).program
        parent = tuner._fresh(prog)
        sig_before = tuner._plan_signature(parent)
        child = parent.fork()
        tuner._apply(child, ("split", "avg"))
        assert tuner._plan_signature(parent) == sig_before
        assert tuner._plan_signature(child) != sig_before
        assert len(parent.steps) < len(child.steps)

    def test_fork_clones_blocks(self):
        wl = AttentionWorkload.build(4, 256, 1024, 16)
        sched = Schedule(wl.program)
        from repro.core.transforms import ComputationFuse

        sched.fuse(*wl.compute_ops, policy=ComputationFuse)
        forked = sched.fork()
        assert len(forked._blocks) == len(sched._blocks)
        assert forked._blocks[0] is not sched._blocks[0]
        assert forked._blocks[0].members == sched._blocks[0].members

    def test_forked_schedule_times_identically(self):
        wl = MoEWorkload.build(128, 512, 2048, 16)
        sched = wl.schedule_overlapped()
        pcm = ProgramCostModel(Cluster(1))
        assert pcm.time(sched.fork()) == pcm.time(sched)


class TestBaselineMode:
    def test_baseline_uses_reference_engine_and_no_memo(self):
        tuner = Autotuner(Cluster(1), baseline=True)
        cost = tuner._factory(Cluster(1))
        assert cost.engine.reference
        assert not cost.memoize
        assert not tuner.prune

    def test_default_uses_heap_engine_and_memo(self):
        tuner = Autotuner(Cluster(1))
        cost = tuner._factory(Cluster(1))
        assert not cost.engine.reference
        assert cost.memoize
