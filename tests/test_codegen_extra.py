"""Additional code-generation coverage: library collectives, Conv2D,
mixed precision, AR-form fused collectives, and emitted-source details."""

import numpy as np
import pytest

from repro.core import (
    FP16,
    FP32,
    RANK,
    AllReduce,
    Binary,
    Broadcast,
    Cast,
    Conv2D,
    Execute,
    Local,
    Norm,
    Reduce,
    ReduceTensor,
    Replicated,
    Sliced,
    Tensor,
    world,
)
from repro.core.codegen import CodeGenerator
from repro.core.transforms import (
    AllReduceFuse,
    ComputationFuse,
    Schedule,
)
from repro.runtime import Executor


@pytest.fixture
def rng():
    return np.random.RandomState(55)


def roundtrip(prog_or_sched, inputs, protocol="Simple", rtol=1e-6):
    sched = (
        prog_or_sched
        if isinstance(prog_or_sched, Schedule)
        else Schedule(prog_or_sched)
    )
    ref = Executor().run(sched.program, inputs)
    gen = CodeGenerator(protocol).generate(sched)
    got = gen.run(inputs)
    for o in sched.program.outputs:
        np.testing.assert_allclose(
            got.output(o.name), ref.output(o.name), rtol=rtol, atol=1e-9
        )
    return gen


class TestLibraryCollectives:
    def test_reduce_and_broadcast(self, rng):
        W = world(4)
        x = Tensor(FP32, (8,), Local, W, RANK, name="x")
        red = Reduce("+", x, root=1, name="red")
        bc = Broadcast(red, root=1, name="bc")
        prog = Execute("p", [x], [bc])
        roundtrip(prog, {"x": rng.randn(4, 8)})

    def test_reducescatter_standalone(self, rng):
        from repro.core import ReduceScatter, AllGather

        W = world(4)
        x = Tensor(FP32, (8,), Local, W, RANK, name="x")
        rs = ReduceScatter("+", x, name="rs")
        ag = AllGather(rs, name="ag")
        prog = Execute("p", [x], [ag])
        gen = roundtrip(prog, {"x": rng.randn(4, 8)})
        assert "lib.reducescatter" in gen.source
        assert "lib.allgather" in gen.source

    def test_max_allreduce(self, rng):
        W = world(4)
        x = Tensor(FP32, (8,), Local, W, RANK, name="x")
        ar = AllReduce("max", x, name="ar")
        prog = Execute("p", [x], [ar])
        roundtrip(prog, {"x": rng.randn(4, 8)})


class TestComputeCodegen:
    def test_conv2d(self, rng):
        W = world(2)
        x = Tensor(FP32, (1, 2, 6, 6), Replicated, W, name="x")
        k = Tensor(FP32, (3, 2, 3, 3), Replicated, W, name="k")
        conv = Conv2D(x, k, padding=1, name="conv")
        prog = Execute("p", [x, k], [conv])
        gen = roundtrip(prog, {"x": rng.randn(1, 2, 6, 6),
                               "k": rng.randn(3, 2, 3, 3)})
        assert "dev.conv2d" in gen.source

    def test_mixed_precision_cast_chain(self, rng):
        W = world(2)
        x = Tensor(FP32, (16,), Replicated, W, name="x")
        half = Cast(FP16, x, name="half")
        back = Cast(FP32, half, name="back")
        y = Binary("*", back, 2.0, name="y")
        prog = Execute("p", [x], [y])
        gen = roundtrip(prog, {"x": rng.randn(16)}, rtol=1e-3)
        assert "astype(np.float16)" in gen.source

    def test_norm_and_reducetensor_non_cross(self, rng):
        W = world(2)
        x = Tensor(FP32, (16,), Replicated, W, name="x")
        n = Norm(x, name="n")
        rt = ReduceTensor("max", x, name="rt")
        prog = Execute("p", [x], [Binary("+", n, rt, name="out")])
        roundtrip(prog, {"x": rng.randn(16)})

    def test_cross_rank_norm_in_fused_block(self, rng):
        W = world(4)
        from repro.core import ReduceScatter

        x = Tensor(FP32, (8,), Local, W, RANK, name="x")
        rs = ReduceScatter("+", x, name="rs")
        n = Norm(rs, name="n")
        scaled = Binary("*", rs, n, name="scaled")
        from repro.core import AllGather

        ag = AllGather(scaled, name="ag")
        prog = Execute("p", [x], [ag])
        sched = Schedule(prog)
        sched.fuse(n, scaled, policy=ComputationFuse)
        gen = roundtrip(sched, {"x": rng.randn(4, 8)})
        assert "AllReduce reusing the established connections" in gen.source


class TestFusedARForm:
    def test_allreduce_plus_compute_fusion(self, rng):
        """AllReduceFuse over a plain AR (no split): the AR branch of
        the fused-collective emitter."""
        W = world(4)
        x = Tensor(FP32, (8,), Local, W, RANK, name="x")
        ar = AllReduce("+", x, name="ar")
        y = Binary("*", ar, 3.0, name="y")
        z = Binary("+", y, 1.0, name="z")
        prog = Execute("p", [x], [z])
        sched = Schedule(prog)
        sched.fuse(ar, y, z, policy=AllReduceFuse)
        gen = roundtrip(sched, {"x": rng.randn(4, 8)})
        assert "lib.allreduce" in gen.source


class TestEmittedSource:
    def test_protocol_constant_embedded(self):
        W = world(2)
        x = Tensor(FP32, (8,), Local, W, RANK, name="x")
        prog = Execute("p", [x], [AllReduce("+", x, name="ar")])
        for proto, pack in (("LL", 8), ("LL128", 16), ("Simple", 16)):
            gen = CodeGenerator(proto).generate(prog)
            assert f'PROTOCOL = "{proto}"' in gen.source
            assert f"PACK_BYTES = {pack}" in gen.source

    def test_groups_emitted_as_constants(self):
        from repro.core import split_world, Send
        from repro.core.ops import GROUP, GroupRank

        g0, g1 = split_world(8, 2)
        x = Tensor(FP32, (8,), Replicated, g0, name="x")
        s = Send(x, GroupRank(GROUP + 1, RANK), name="s")
        prog = Execute("p", [x], [s])
        gen = CodeGenerator().generate(prog)
        assert "G0_4 = ProcessGroup(0, 4, 8)" in gen.source
        assert "G4_4 = ProcessGroup(4, 4, 8)" in gen.source

    def test_docstrings_name_fused_ops(self, rng):
        prog_inputs = {"x": rng.randn(4, 8)}
        W = world(4)
        x = Tensor(FP32, (8,), Local, W, RANK, name="x")
        ar = AllReduce("+", x, name="ar")
        a = Binary("+", ar, 1.0, name="a")
        b = Binary("*", a, 2.0, name="b")
        prog = Execute("p", [x], [b])
        sched = Schedule(prog)
        sched.fuse(a, b, policy=ComputationFuse)
        gen = CodeGenerator().generate(sched)
        fused_src = next(
            s for name, s in gen.kernel_sources.items()
            if "computationfuse" in name
        )
        assert "a, b" in fused_src

    def test_schedule_lines_recorded(self):
        prog_w = world(4)
        x = Tensor(FP32, (8,), Local, prog_w, RANK, name="x")
        ar = AllReduce("+", x, name="ar")
        prog = Execute("p", [x], [ar])
        sched = Schedule(prog)
        gen = CodeGenerator().generate(sched)
        assert gen.schedule_lines == 0
