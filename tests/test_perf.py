"""Tests for the discrete-event engine and the program cost model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.core import (
    FP16,
    RANK,
    AllReduce,
    Execute,
    MatMul,
    Sliced,
    Tensor,
    world,
)
from repro.core.transforms import AllReduceFuse, ComputationFuse, Schedule
from repro.errors import CoCoNetError
from repro.perf import Engine, ProgramCostModel, Task
from repro.perf.kernel_cost import (
    APEX_FUSED_OPTIMIZER,
    DEFAULT,
    FUSED_REGISTER_PRESSURE,
    gemm_time,
    pointwise_time,
)
from tests.conftest import build_attention_program


class TestEngine:
    def test_sequential_chain(self):
        tasks = [
            Task("a", "r1", 1.0),
            Task("b", "r1", 2.0, ("a",)),
            Task("c", "r1", 3.0, ("b",)),
        ]
        tl = Engine().run(tasks)
        assert tl.makespan == pytest.approx(6.0)
        assert tl.start("b") == pytest.approx(1.0)

    def test_parallel_resources(self):
        tasks = [Task("a", "r1", 5.0), Task("b", "r2", 3.0)]
        tl = Engine().run(tasks)
        assert tl.makespan == pytest.approx(5.0)

    def test_resource_serialization(self):
        tasks = [Task("a", "r1", 2.0), Task("b", "r1", 2.0)]
        tl = Engine().run(tasks)
        assert tl.makespan == pytest.approx(4.0)

    def test_dependency_across_resources(self):
        tasks = [
            Task("a", "compute", 2.0),
            Task("b", "network", 4.0, ("a",)),
        ]
        tl = Engine().run(tasks)
        assert tl.start("b") == pytest.approx(2.0)
        assert tl.makespan == pytest.approx(6.0)

    def test_pipeline_overlap(self):
        # classic 2-stage pipeline: makespan = first + max stage sum
        tasks = []
        for i in range(4):
            deps = (f"p{i-1}",) if i else ()
            tasks.append(Task(f"p{i}", "compute", 1.0, deps))
            tasks.append(Task(f"c{i}", "network", 2.0, (f"p{i}",)))
        tl = Engine().run(tasks)
        assert tl.makespan == pytest.approx(1.0 + 4 * 2.0)

    def test_cycle_detected(self):
        tasks = [Task("a", "r", 1.0, ("b",)), Task("b", "r", 1.0, ("a",))]
        with pytest.raises(CoCoNetError, match="cycle"):
            Engine().run(tasks)

    def test_unknown_dep_rejected(self):
        with pytest.raises(CoCoNetError, match="unknown task"):
            Engine().run([Task("a", "r", 1.0, ("ghost",))])

    def test_duplicate_names_rejected(self):
        with pytest.raises(CoCoNetError, match="duplicate"):
            Engine().run([Task("a", "r", 1.0), Task("a", "r", 1.0)])

    def test_negative_duration_rejected(self):
        with pytest.raises(CoCoNetError):
            Task("a", "r", -1.0)

    def test_busy_time(self):
        tasks = [Task("a", "net:0", 2.0), Task("b", "net:1", 3.0)]
        tl = Engine().run(tasks)
        assert tl.busy_time("net:", tasks) == pytest.approx(5.0)

    def test_busy_time_skips_unscheduled_tasks(self):
        # a task list mentioning work the timeline never saw must not
        # raise — missing names are filtered before subscripting
        tasks = [Task("a", "net:0", 2.0)]
        tl = Engine().run(tasks)
        extra = tasks + [Task("ghost", "net:1", 9.0)]
        assert tl.busy_time("net:", extra) == pytest.approx(2.0)

    def test_utilization_from_recorded_resources(self):
        tasks = [
            Task("a", "gpu:0", 2.0),
            Task("b", "net:0", 3.0, ("a",)),
        ]
        tl = Engine().run(tasks)
        # makespan 5: gpu busy 2, net busy 3
        assert tl.utilization("gpu:0") == pytest.approx(2.0 / 5.0)
        assert tl.utilization("net:") == pytest.approx(3.0 / 5.0)
        assert tl.utilization("nowhere") == 0.0

    def test_utilization_exact_name_does_not_prefix_match(self):
        # "gpu:1" must not absorb gpu:10..gpu:15; only a ":"-terminated
        # query means a whole family
        tasks = [
            Task("a", "gpu:1", 2.0),
            Task("b", "gpu:10", 3.0),
        ]
        tl = Engine().run(tasks)
        assert tl.utilization("gpu:1") == pytest.approx(2.0 / 3.0)
        # a family query averages over its members, staying in [0, 1]
        assert tl.utilization("gpu:") == pytest.approx(
            (2.0 / 3.0 + 3.0 / 3.0) / 2
        )

    def test_utilization_empty_timeline(self):
        from repro.perf.engine import Timeline

        assert Timeline().utilization("gpu:") == 0.0


def _random_task_graph(draw) -> list:
    """Random DAG: deps only point at earlier tasks, so it is acyclic.

    Durations are drawn from a tiny integer set to force start-time
    ties, the case where the heap's (start, submission order) key must
    reproduce the reference scan's first-in-input-order tie-breaking.
    """
    n = draw(st.integers(1, 24))
    n_resources = draw(st.integers(1, 4))
    tasks = []
    for i in range(n):
        resource = f"r{draw(st.integers(0, n_resources - 1))}"
        duration = float(draw(st.sampled_from([0, 1, 1, 2, 3])))
        if i == 0:
            deps = ()
        else:
            k = draw(st.integers(0, min(3, i)))
            deps = tuple(
                f"t{j}"
                for j in sorted(
                    draw(
                        st.sets(
                            st.integers(0, i - 1), min_size=k, max_size=k
                        )
                    )
                )
            )
        tasks.append(Task(f"t{i}", resource, duration, deps))
    return tasks


class TestEngineEquivalence:
    """The heap scheduler is a drop-in for the O(n²) reference."""

    @given(data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_heap_matches_reference_on_random_graphs(self, data):
        tasks = _random_task_graph(data.draw)
        heap_tl = Engine().run(tasks)
        ref_tl = Engine()._reference_run(tasks)
        assert heap_tl.spans == ref_tl.spans
        assert heap_tl.resources == ref_tl.resources

    def test_reference_flag_routes_run(self):
        tasks = [Task("a", "r", 1.0), Task("b", "r", 2.0, ("a",))]
        assert Engine(reference=True).run(tasks).spans == (
            Engine().run(tasks).spans
        )

    def test_heap_detects_cycle(self):
        tasks = [Task("a", "r", 1.0, ("b",)), Task("b", "r", 1.0, ("a",))]
        with pytest.raises(CoCoNetError, match="cycle"):
            Engine().run(tasks)
        with pytest.raises(CoCoNetError, match="cycle"):
            Engine()._reference_run(tasks)

    def test_equivalence_on_cost_model_task_graphs(self):
        # the graphs that matter: chunked overlap pipelines from the
        # program cost model, where stale heap keys actually occur
        from repro.workloads.moe import MoEWorkload

        wl = MoEWorkload.build(256, 512, 2048, 16)
        pcm = ProgramCostModel(Cluster(1))
        for sched in wl.schedules().values():
            lowered = sched.lowered(cluster=pcm.cluster)
            tasks = pcm._build_tasks(lowered)
            assert Engine().run(tasks).spans == (
                Engine()._reference_run(tasks).spans
            )


class TestKernelCost:
    def test_pointwise_scales_with_bytes(self):
        t1 = pointwise_time(1e6)
        t2 = pointwise_time(1e9)
        assert t2 > t1 * 100

    def test_launch_floor(self):
        assert pointwise_time(0) == pytest.approx(4e-6)

    def test_apex_setup_hurts_small(self):
        small = 2**12 * 28
        assert pointwise_time(small, params=APEX_FUSED_OPTIMIZER) > (
            pointwise_time(small, params=DEFAULT)
        )

    def test_apex_wins_at_large(self):
        # "its benefit shows up for larger tensors" (§6.1.1)
        from repro.perf.kernel_cost import GENERATED_OPTIMIZER

        big = 2**30 * 28
        assert pointwise_time(big, params=APEX_FUSED_OPTIMIZER) < (
            pointwise_time(big, params=GENERATED_OPTIMIZER)
        )

    def test_register_pressure_hurts_small(self):
        small = 2**14
        assert pointwise_time(small, params=FUSED_REGISTER_PRESSURE) > (
            pointwise_time(small, params=DEFAULT)
        )

    def test_gemm_roofline(self):
        math_bound = gemm_time(10**13, 10**6, efficiency=1.0)
        assert math_bound == pytest.approx(10**13 / 112e12, rel=0.01)


def _mm_ar_program(B=8):
    W = world(16)
    M, K, N = B * 1024, 768, 3072
    a = Tensor(FP16, (M, K * 16), Sliced(1), W, RANK, name="a")
    w = Tensor(FP16, (K * 16, N), Sliced(0), W, RANK, name="w")
    layer = MatMul(a, w, name="layer")
    s = AllReduce("+", layer, name="sum")
    return Execute("mm_ar", [a, w], [s]), layer, s


class TestProgramCost:
    def test_sequential_is_sum_of_kernels(self):
        prog, layer, s = _mm_ar_program()
        pcm = ProgramCostModel(Cluster(1))
        total = pcm.time(prog)
        parts = pcm.kernel_breakdown(prog)
        assert total == pytest.approx(sum(parts.values()), rel=0.01)

    def test_overlap_beats_sequential(self):
        prog, layer, s = _mm_ar_program()
        pcm = ProgramCostModel(Cluster(1))
        t_seq = pcm.time(prog)
        prog2, layer2, s2 = _mm_ar_program()
        sched = Schedule(prog2)
        sched.overlap(layer2, s2)
        t_ovl = ProgramCostModel(Cluster(1)).time(sched)
        assert t_ovl < t_seq

    def test_overlap_bounded_below_by_components(self):
        # overlap cannot beat the slower of the two kernels
        prog, layer, s = _mm_ar_program()
        pcm = ProgramCostModel(Cluster(1))
        parts = pcm.kernel_breakdown(prog)
        prog2, layer2, s2 = _mm_ar_program()
        sched = Schedule(prog2)
        sched.overlap(layer2, s2)
        t_ovl = ProgramCostModel(Cluster(1)).time(sched)
        assert t_ovl >= max(parts.values())

    def test_overlap_hides_most_of_matmul(self):
        # Figure 1: "hide more than 80% of the execution time of MatMul"
        prog, layer, s = _mm_ar_program()
        pcm = ProgramCostModel(Cluster(1))
        parts = pcm.kernel_breakdown(prog)
        prog2, layer2, s2 = _mm_ar_program()
        sched = Schedule(prog2)
        sched.overlap(layer2, s2)
        t_ovl = ProgramCostModel(Cluster(1)).time(sched)
        hidden = 1 - (t_ovl - parts["sum"]) / parts["layer"]
        assert hidden > 0.8

    def test_fused_compute_reduces_time(self):
        prog, h = build_attention_program(n=4, batch=4, seq=64, hidden=256)
        pcm = ProgramCostModel(Cluster(1))
        t_unfused = pcm.time(prog)
        sched = Schedule(prog)
        sched.fuse(h["sum_b"], h["drop"], h["out"], policy=ComputationFuse)
        t_fused = ProgramCostModel(Cluster(1)).time(sched)
        assert t_fused < t_unfused

    def test_fused_collective_fewer_launches(self):
        prog, h = build_attention_program(n=4, batch=4, seq=64, hidden=256)
        sched = Schedule(prog)
        rs, ag = sched.split(h["allreduce"])
        results = sched.reorder(ag, h["sum_b"], h["drop"], h["out"])
        before = len(sched.plan().kernels)
        sched.fuse(rs, *results, policy=AllReduceFuse)
        after = len(sched.plan().kernels)
        assert after < before

    def test_breakdown_has_all_kernels(self):
        prog, h = build_attention_program()
        pcm = ProgramCostModel(Cluster(1))
        parts = pcm.kernel_breakdown(prog)
        assert set(parts) == {k.name for k in Schedule(prog).plan().kernels}

    def test_slice_kernel_is_free(self):
        prog, h = build_attention_program()
        sched = Schedule(prog)
        _, ag = sched.split(h["allreduce"])
        sched.reorder(ag, h["sum_b"], h["drop"], h["out"])
        parts = ProgramCostModel(Cluster(1)).kernel_breakdown(sched)
        slice_costs = [v for k, v in parts.items() if k.startswith("slice")]
        assert slice_costs and all(v == 0.0 for v in slice_costs)
