"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    FP32,
    RANK,
    AllReduce,
    Binary,
    Dropout,
    Execute,
    MatMul,
    Replicated,
    Sliced,
    Tensor,
    world,
)


@pytest.fixture
def rng():
    return np.random.RandomState(0xC0C0)


@pytest.fixture
def small_world():
    return world(4)


def build_attention_program(
    n=4, batch=4, seq=8, hidden=16, seed=42, dtype=FP32
):
    """Figure 3's program at test scale; returns (program, handles)."""
    W = world(n)
    w = Tensor(dtype, (hidden, hidden), Sliced(0), W, RANK, name="w")
    b = Tensor(dtype, (hidden,), Replicated, W, name="b")
    in_ = Tensor(dtype, (batch, seq, hidden), Sliced(2), W, RANK, name="in")
    r = Tensor(dtype, (batch, seq, hidden), Replicated, W, name="r")
    layer = MatMul(in_, w, name="layer")
    s = AllReduce("+", layer, name="sum")
    sum_b = Binary("+", s, b, name="sum_b")
    drop = Dropout(sum_b, 0.1, seed=seed, name="drop")
    out = Binary("+", drop, r, name="out")
    prog = Execute("attn", [w, in_, b, r], [out])
    handles = dict(
        layer=layer, allreduce=s, sum_b=sum_b, drop=drop, out=out,
        w=w, b=b, in_=in_, r=r,
    )
    return prog, handles


def attention_inputs(rng, batch=4, seq=8, hidden=16):
    return {
        "w": rng.randn(hidden, hidden),
        "b": rng.randn(hidden),
        "in": rng.randn(batch, seq, hidden),
        "r": rng.randn(batch, seq, hidden),
    }


@pytest.fixture
def attention_program():
    return build_attention_program()
