"""Tests for DFG traversal and rewriting."""

import pytest

from repro.core import (
    FP32,
    RANK,
    AllReduce,
    Binary,
    Dropout,
    Local,
    Replicated,
    Sliced,
    Tensor,
    Update,
    world,
)
from repro.core import dfg
from repro.errors import TransformError


@pytest.fixture
def W():
    return world(4)


def chain(W):
    a = Tensor(FP32, (8,), Local, W, RANK, name="a")
    ar = AllReduce("+", a, name="ar")
    b = Binary("*", ar, ar, name="sq")
    c = Binary("+", b, 1.0, name="plus1")
    return a, ar, b, c


class TestTopological:
    def test_inputs_before_users(self, W):
        a, ar, b, c = chain(W)
        order = dfg.topological([c])
        assert order.index(a) < order.index(ar) < order.index(b)
        assert order.index(b) < order.index(c)

    def test_shared_nodes_visited_once(self, W):
        a, ar, b, c = chain(W)
        order = dfg.topological([c, b])
        assert len([e for e in order if e is ar]) == 1

    def test_reachable(self, W):
        a, ar, b, c = chain(W)
        assert ar in dfg.reachable([b])
        assert c not in dfg.reachable([b])


class TestUsersMap:
    def test_users(self, W):
        a, ar, b, c = chain(W)
        users = dfg.users_map([c])
        assert users[ar] == [b, b]  # both operands of sq
        assert users[b] == [c]
        assert users[c] == []

    def test_is_on_path(self, W):
        a, ar, b, c = chain(W)
        assert dfg.is_on_path(ar, c)
        assert not dfg.is_on_path(c, ar)


class TestCloneAndRewrite:
    def test_clone_preserves_dropout_seed(self, W):
        x = Tensor(FP32, (8,), Replicated, W, name="x")
        d = Dropout(x, 0.5, seed=123, name="d")
        clone = dfg.clone_with_inputs(d, (x,))
        assert clone.seed == 123
        assert clone.prob == 0.5

    def test_clone_reinfers_layout(self, W):
        # a clone with a sliced input becomes sliced
        x = Tensor(FP32, (8,), Replicated, W, name="x")
        d = Dropout(x, 0.5, name="d")
        xs = Tensor(FP32, (8,), Sliced(0), W, RANK, name="xs")
        clone = dfg.clone_with_inputs(d, (xs,))
        assert clone.layout == Sliced(0)

    def test_clone_leaf_rejects_inputs(self, W):
        x = Tensor(FP32, (8,), Replicated, W)
        with pytest.raises(TransformError):
            dfg.clone_with_inputs(x, (x,))

    def test_rewrite_substitutes_downstream(self, W):
        a, ar, b, c = chain(W)
        replacement = Binary("*", ar, 2.0, name="dbl")
        (new_c,), memo = dfg.rewrite([c], {b: replacement})
        assert memo[b] is replacement
        assert new_c is not c
        assert new_c.inputs[0] is replacement

    def test_rewrite_shares_untouched_nodes(self, W):
        a, ar, b, c = chain(W)
        (new_c,), memo = dfg.rewrite([c], {})
        assert new_c is c

    def test_rewrite_update_target_via_leaf_map(self, W):
        p = Tensor(FP32, (8,), Replicated, W, name="p")
        u = Update(p, p * 0.5, name="u")
        p2 = Tensor(FP32, (8,), Sliced(0), W, RANK, name="p")
        # remap the target; the value expression reads the new tensor too
        (new_u,), memo = dfg.rewrite([u], {p: p2}, leaf_map={p: p2})
        assert new_u.target is p2


class TestRegionAnalysis:
    def test_region_live_outs_external_use(self, W):
        a, ar, b, c = chain(W)
        outs = dfg.region_live_outs([b], [c])
        assert outs == [b]

    def test_region_live_outs_program_output(self, W):
        a, ar, b, c = chain(W)
        outs = dfg.region_live_outs([b, c], [c])
        assert outs == [c]

    def test_region_live_outs_updates_always_live(self, W):
        p = Tensor(FP32, (8,), Replicated, W, name="p")
        u = Update(p, p * 0.5, name="u")
        out = Binary("+", u, 1.0, name="out")
        live = dfg.region_live_outs([u, out], [out])
        assert u in live and out in live

    def test_external_inputs(self, W):
        a, ar, b, c = chain(W)
        ext = dfg.external_inputs([b, c])
        assert ar in ext
        assert b not in ext

    def test_input_leaves_excludes_consts(self, W):
        a, ar, b, c = chain(W)
        leaves = dfg.input_leaves([c])
        assert leaves == [a]
