"""Tests for the PyTorch-style integration layer (§5.5)."""

import numpy as np
import pytest

from repro.core import FP32
from repro.errors import CoCoNetError
from repro.frontend.integration import DistributedModule
from repro.runtime import Executor
from repro.workloads.adam import AdamWorkload, adam_reference


@pytest.fixture
def rng():
    return np.random.RandomState(31)


@pytest.fixture
def module():
    return DistributedModule()


class TestRegistration:
    def test_register_and_call(self, module, rng):
        wl = AdamWorkload.build(32, 4, grad_dtype=FP32)
        fn = module.register(wl.schedule_fused(), name="adam_step")
        inputs = dict(
            g=rng.randn(4, 32) * 0.1, p=rng.randn(32),
            m=rng.randn(32) * 0.01, v=np.abs(rng.randn(32)) * 0.01,
            lr=0.01, t=1.0,
        )
        result = fn(inputs)
        p_ref, _, _ = adam_reference(
            inputs["g"], inputs["p"], inputs["m"], inputs["v"], 0.01, 1.0
        )
        np.testing.assert_allclose(
            result.tensor_state("p"), p_ref, rtol=1e-5
        )

    def test_attribute_access(self, module):
        wl = AdamWorkload.build(32, 4, grad_dtype=FP32)
        module.register(wl.schedule_ar_opt(), name="my_adam")
        assert module.my_adam.name == "my_adam"

    def test_unknown_attribute(self, module):
        with pytest.raises(AttributeError, match="no registered"):
            module.nothing

    def test_duplicate_name_rejected(self, module):
        wl = AdamWorkload.build(32, 4, grad_dtype=FP32)
        module.register(wl.schedule_ar_opt(), name="dup")
        wl2 = AdamWorkload.build(32, 4, grad_dtype=FP32)
        with pytest.raises(CoCoNetError, match="already registered"):
            module.register(wl2.schedule_ar_opt(), name="dup")

    def test_plain_program_registrable(self, module):
        wl = AdamWorkload.build(32, 4, grad_dtype=FP32)
        fn = module.register(wl.program, name="plain")
        assert fn.compiled.loc() > 0

    def test_invocation_counter(self, module, rng):
        wl = AdamWorkload.build(32, 4, grad_dtype=FP32)
        fn = module.register(wl.schedule_ar_opt(), name="counted")
        inputs = dict(
            g=rng.randn(4, 32), p=rng.randn(32), m=rng.randn(32),
            v=np.abs(rng.randn(32)), lr=0.01, t=1.0,
        )
        fn(inputs)
        fn(inputs)
        assert fn.invocations == 2


class TestScatteredArguments:
    def test_scattered_gradients_roundtrip(self, module, rng):
        """Scattered per-layer tensors flow through the compiled fused
        schedule without the user flattening them (§5.4 + §5.5)."""
        wl = AdamWorkload.build(32, 4, grad_dtype=FP32)
        fn = module.register(wl.schedule_fused(), name="scattered_adam")
        layer_params = [rng.randn(8), rng.randn(24)]
        table = fn.prepare_scattered("p", layer_params)
        assert table.total_elements == 32
        inputs = dict(
            g=rng.randn(4, 32) * 0.1,
            p=None,  # provided through the bucket table
            m=rng.randn(32) * 0.01, v=np.abs(rng.randn(32)) * 0.01,
            lr=0.01, t=1.0,
        )
        flat_before = table.gather_flat().copy()
        result = fn(inputs)
        # per-layer tensors received the updated values in place
        updated = np.concatenate(
            [t.reshape(-1) for t in layer_params]
        )
        np.testing.assert_allclose(
            updated, result.tensor_state("p").astype(np.float64), rtol=1e-6
        )
        assert not np.allclose(updated, flat_before)

    def test_bucket_table_lookup(self, module, rng):
        wl = AdamWorkload.build(32, 4, grad_dtype=FP32)
        fn = module.register(wl.schedule_ar_opt(), name="lookup")
        fn.prepare_scattered("p", [rng.randn(32)])
        assert fn.bucket_table("p").total_elements == 32
        with pytest.raises(CoCoNetError):
            fn.bucket_table("q")

    def test_init_process_group(self, module):
        module.init_process_group()
        assert module.nccl_initialized
