"""End-to-end integration tests: the full toolchain composed.

Each test exercises a realistic path a downstream user takes:
autotune → compile → register → execute, across the three parallelism
styles, verifying numerics at every hand-off.
"""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core import FP32
from repro.core.autotuner import Autotuner
from repro.core.codegen import CodeGenerator
from repro.core.transforms import Schedule
from repro.frontend.integration import DistributedModule
from repro.perf import ProgramCostModel
from repro.runtime import Executor
from repro.workloads.adam import AdamWorkload, adam_reference
from repro.workloads.attention import AttentionWorkload
from repro.workloads.pipeline import PipelineWorkload


@pytest.fixture
def rng():
    return np.random.RandomState(77)


class TestAutotuneCompileExecute:
    def test_attention_tuned_schedule_compiles_and_matches(self, rng):
        wl = AttentionWorkload.build(4, 8, 16, 4, dtype=FP32, dropout_seed=1)
        result = Autotuner(Cluster(1)).tune(wl.program)
        inputs = {
            "w": rng.randn(16, 16), "b": rng.randn(16),
            "in": rng.randn(4, 8, 16), "r": rng.randn(4, 8, 16),
        }
        ref = Executor().run(wl.program, inputs)
        ref_out = ref.output(wl.program.outputs[0].name)
        gen = CodeGenerator().generate(result.best.schedule)
        got = gen.run(inputs)
        out_name = result.best.schedule.program.outputs[0].name
        np.testing.assert_allclose(
            got.output(out_name), ref_out, rtol=1e-6
        )

    def test_every_tuned_candidate_is_executable(self, rng):
        wl = AttentionWorkload.build(4, 8, 16, 4, dtype=FP32, dropout_seed=2)
        result = Autotuner(Cluster(1)).tune(wl.program)
        inputs = {
            "w": rng.randn(16, 16), "b": rng.randn(16),
            "in": rng.randn(4, 8, 16), "r": rng.randn(4, 8, 16),
        }
        ref = Executor().run(wl.program, inputs)
        ref_out = ref.output(wl.program.outputs[0].name)
        for cand in result.candidates:
            res = Executor().run(cand.schedule.program, inputs)
            out = res.output(cand.schedule.program.outputs[0].name)
            np.testing.assert_allclose(out, ref_out, rtol=1e-6,
                                       err_msg=cand.name)

    def test_adam_tuned_schedule_runs_through_frontend(self, rng):
        wl = AdamWorkload.build(32, 4, grad_dtype=FP32)
        result = Autotuner(Cluster(16)).tune(wl.program)
        dist = DistributedModule()
        fn = dist.register(result.best.schedule, name="tuned_adam")
        inputs = dict(
            g=rng.randn(4, 32) * 0.1, p=rng.randn(32),
            m=rng.randn(32) * 0.01, v=np.abs(rng.randn(32)) * 0.01,
            lr=0.01, t=1.0,
        )
        got = fn(inputs)
        p_ref, m_ref, v_ref = adam_reference(
            inputs["g"], inputs["p"], inputs["m"], inputs["v"], 0.01, 1.0
        )
        np.testing.assert_allclose(got.tensor_state("p"), p_ref, rtol=1e-5)

    def test_pipeline_tuned_schedule_correct(self, rng):
        wl = PipelineWorkload.build(
            2, 8, 16, world_size=8, num_groups=2, dtype=FP32, dropout_seed=3
        )
        result = Autotuner(Cluster(2)).tune(wl.program)
        inputs = {
            "in": rng.randn(4, 2, 8, 16), "b": rng.randn(16),
            "r": rng.randn(2, 8, 16),
        }
        ref = Executor().run(wl.program, inputs)
        ref_out = ref.output(wl.program.outputs[0].name)
        best_prog = result.best.schedule.program
        got = Executor().run(best_prog, inputs)
        np.testing.assert_allclose(
            got.output(best_prog.outputs[0].name), ref_out, rtol=1e-6
        )


class TestMultiStepTraining:
    def test_three_steps_match_reference_exactly(self, rng):
        """State (p, m, v) threads correctly across compiled steps."""
        n, N = 4, 48
        wl = AdamWorkload.build(N, n, grad_dtype=FP32)
        dist = DistributedModule()
        fn = dist.register(wl.schedule_fused(), name="adam3")
        p = rng.randn(N)
        m = np.zeros(N)
        v = np.zeros(N)
        rp, rm, rv = p.copy(), m.copy(), v.copy()
        for step in range(1, 4):
            g = rng.randn(n, N) * 0.1
            res = fn(dict(g=g, p=p, m=m, v=v, lr=0.005, t=float(step)))
            p = res.tensor_state("p")
            m = res.tensor_state("m")
            v = res.tensor_state("v")
            rp, rm, rv = adam_reference(g, rp, rm, rv, 0.005, float(step))
        np.testing.assert_allclose(p, rp, rtol=1e-4)
        np.testing.assert_allclose(m, rm, rtol=1e-4)
        np.testing.assert_allclose(v, rv, rtol=1e-4)

    def test_interpreter_and_compiled_agree_across_steps(self, rng):
        n, N = 4, 32
        wl = AdamWorkload.build(N, n, grad_dtype=FP32)
        sched = wl.schedule_gshard()
        gen = CodeGenerator("LL").generate(sched)
        state_i = dict(p=rng.randn(N), m=np.zeros(N), v=np.zeros(N))
        state_c = {k: val.copy() for k, val in state_i.items()}
        for step in range(1, 3):
            g = rng.randn(n, N) * 0.1
            r_i = Executor().run(
                sched.program,
                dict(g=g, lr=0.01, t=float(step), **state_i),
            )
            r_c = gen.run(dict(g=g, lr=0.01, t=float(step), **state_c))
            for k in state_i:
                state_i[k] = r_i.tensor_state(k)
                state_c[k] = r_c.tensor_state(k)
                # ring reduction accumulates in rotating order vs the
                # reference's rank order; fp32 rounding can differ in
                # the last bit
                np.testing.assert_allclose(
                    state_i[k], state_c[k], rtol=1e-5, atol=1e-6
                )


class TestCostModelConsistency:
    def test_better_schedules_are_not_worse_at_scale(self):
        """The autotuner's ranking is self-consistent: its best schedule
        never loses to the default at the tuned size."""
        for exp in (12, 24):
            wl = AdamWorkload.build(2**exp, 256)
            result = Autotuner(Cluster(16)).tune(wl.program)
            default = next(
                c for c in result.candidates if c.name == "default"
            )
            assert result.best.time <= default.time

    def test_breakdown_sums_bound_makespan(self):
        wl = AttentionWorkload.build(8, 1024, 3072, 16)
        sched = wl.schedule_coconet()
        pcm = ProgramCostModel(Cluster(1))
        total = pcm.time(sched)
        parts = pcm.kernel_breakdown(sched)
        # overlap means the makespan is below the sum but at least the max
        assert max(parts.values()) <= total <= sum(parts.values()) * 1.05

    def test_schedules_rank_consistently_across_sizes(self):
        """CoCoNet >= GShard >= Megatron at every model-parallel size."""
        for batch in (4, 8, 16):
            times = {}
            for name in ("megatron", "gshard", "coconet"):
                wl = AttentionWorkload.build(batch, 1024, 3072, 16)
                sched = getattr(wl, f"schedule_{name}")()
                times[name] = ProgramCostModel(Cluster(1)).time(sched)
            assert times["coconet"] < times["gshard"] < times["megatron"]
