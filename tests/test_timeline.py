"""Tests for timeline rendering, utilization and critical path."""

import pytest

from repro.cluster import Cluster
from repro.core import FP16, RANK, AllReduce, Execute, MatMul, Sliced, Tensor, world
from repro.core.transforms import Schedule
from repro.perf import Engine, ProgramCostModel, Task
from repro.perf.timeline import critical_path, render_gantt, resource_utilization


@pytest.fixture
def simple_timeline():
    tasks = [
        Task("produce", "compute", 2.0),
        Task("consume", "network", 3.0, ("produce",)),
        Task("other", "compute", 1.0, ("produce",)),
    ]
    return Engine().run(tasks), tasks


class TestGantt:
    def test_renders_all_resources(self, simple_timeline):
        tl, tasks = simple_timeline
        text = render_gantt(tl, tasks)
        assert "compute" in text and "network" in text

    def test_header_has_makespan(self, simple_timeline):
        tl, tasks = simple_timeline
        assert "makespan" in render_gantt(tl, tasks)

    def test_empty_timeline(self):
        from repro.perf.engine import Timeline

        assert "empty" in render_gantt(Timeline(), [])

    def test_max_rows(self, simple_timeline):
        tl, tasks = simple_timeline
        text = render_gantt(tl, tasks, max_rows=1)
        assert text.count("|") == 2  # one row only

    def test_width_respected(self, simple_timeline):
        tl, tasks = simple_timeline
        for line in render_gantt(tl, tasks, width=40).splitlines()[1:]:
            assert len(line.split("|")[1]) == 40


class TestUtilization:
    def test_busy_fractions(self, simple_timeline):
        tl, tasks = simple_timeline
        util = resource_utilization(tl, tasks)
        # makespan 5.0: compute busy 3.0, network busy 3.0
        assert util["compute"] == pytest.approx(3.0 / 5.0)
        assert util["network"] == pytest.approx(3.0 / 5.0)

    def test_overlap_uses_resources_simultaneously(self):
        """§3.4's goal measured: overlapping raises joint utilization."""
        def build():
            W = world(16)
            a = Tensor(FP16, (16384, 12288), Sliced(1), W, RANK, name="a")
            w = Tensor(FP16, (12288, 3072), Sliced(0), W, RANK, name="w")
            mm = MatMul(a, w, name="mm")
            ar = AllReduce("+", mm, name="ar")
            return Execute("p", [a, w], [ar]), mm, ar

        cluster = Cluster(1)
        prog, mm, ar = build()
        pcm = ProgramCostModel(cluster)
        tl_seq, tasks_seq = pcm.timeline(prog)
        util_seq = resource_utilization(tl_seq, tasks_seq)

        prog2, mm2, ar2 = build()
        sched = Schedule(prog2)
        sched.overlap(mm2, ar2)
        tl_ovl, tasks_ovl = ProgramCostModel(cluster).timeline(sched)
        util_ovl = resource_utilization(tl_ovl, tasks_ovl)
        fabric_seq = max(
            v for k, v in util_seq.items() if k.startswith("fabric")
        )
        fabric_ovl = max(
            v for k, v in util_ovl.items() if k.startswith("fabric")
        )
        assert fabric_ovl > fabric_seq


class TestCriticalPath:
    def test_follows_dependency_chain(self, simple_timeline):
        tl, tasks = simple_timeline
        path = critical_path(tl, tasks)
        assert path == ["produce", "consume"]

    def test_resource_serialization_in_path(self):
        tasks = [
            Task("a", "r", 2.0),
            Task("b", "r", 3.0),
        ]
        tl = Engine().run(tasks)
        path = critical_path(tl, tasks)
        assert path == ["a", "b"]

    def test_empty(self):
        from repro.perf.engine import Timeline

        assert critical_path(Timeline(), []) == []

    def test_path_spans_makespan(self, simple_timeline):
        tl, tasks = simple_timeline
        path = critical_path(tl, tasks)
        assert tl.end(path[-1]) == pytest.approx(tl.makespan)
        assert tl.start(path[0]) == pytest.approx(0.0)
