"""Tests for shape/layout inference — the static type checking of §2.2."""

import pytest

from repro.core import (
    FP16,
    FP32,
    RANK,
    AllGather,
    AllReduce,
    Binary,
    Broadcast,
    Conv2D,
    Dropout,
    Local,
    MatMul,
    Norm,
    Reduce,
    ReduceScatter,
    ReduceTensor,
    Replicated,
    Scalar,
    Slice,
    Sliced,
    Tensor,
    Update,
    world,
)
from repro.core.inference import broadcast_shapes, covers_dim
from repro.errors import LayoutError, ShapeError


@pytest.fixture
def W():
    return world(4)


class TestBroadcastShapes:
    def test_equal(self):
        assert broadcast_shapes((4, 8), (4, 8)) == (4, 8)

    def test_trailing_alignment(self):
        assert broadcast_shapes((2, 8, 16), (16,)) == (2, 8, 16)

    def test_ones_expand(self):
        assert broadcast_shapes((4, 1), (1, 8)) == (4, 8)

    def test_scalar(self):
        assert broadcast_shapes((4, 8), ()) == (4, 8)

    def test_mismatch_raises(self):
        with pytest.raises(ShapeError):
            broadcast_shapes((4, 8), (3, 8))


class TestCoversDim:
    def test_full_rank_covers(self):
        assert covers_dim((4, 8, 16), 3, 1)

    def test_trailing_bias_does_not_cover_middle(self):
        # b[H] aligned to the last dim does not span dim 1 of [B,S,H]
        assert not covers_dim((16,), 3, 1)

    def test_trailing_bias_covers_last(self):
        assert covers_dim((16,), 3, 2)

    def test_size_one_does_not_cover(self):
        assert not covers_dim((4, 1, 16), 3, 1)


class TestMatMulInference:
    def test_megatron_row_parallel_produces_local(self, W):
        # Figure 3: in Sliced(2) x w Sliced(0) -> Local partial sums
        a = Tensor(FP16, (4, 8, 16), Sliced(2), W, RANK)
        w = Tensor(FP16, (16, 16), Sliced(0), W, RANK)
        assert MatMul(a, w).layout.is_local

    def test_replicated_matmul_stays_replicated(self, W):
        a = Tensor(FP16, (8, 16), Replicated, W)
        w = Tensor(FP16, (16, 4), Replicated, W)
        assert MatMul(a, w).layout.is_replicated

    def test_column_parallel_slices_output(self, W):
        # Megatron column parallelism: replicated x Sliced(1) weight
        a = Tensor(FP16, (8, 16), Replicated, W)
        w = Tensor(FP16, (16, 8), Sliced(1), W, RANK)
        out = MatMul(a, w)
        assert out.layout == Sliced(1)

    def test_batch_sliced_input(self, W):
        a = Tensor(FP16, (8, 4, 16), Sliced(0), W, RANK)
        w = Tensor(FP16, (16, 4), Replicated, W)
        assert MatMul(a, w).layout == Sliced(0)

    def test_contraction_sliced_input_needs_row_sliced_weight(self, W):
        a = Tensor(FP16, (8, 16), Sliced(1), W, RANK)
        w = Tensor(FP16, (16, 4), Replicated, W)
        with pytest.raises(LayoutError, match="Sliced\\(0\\)"):
            MatMul(a, w)

    def test_row_sliced_weight_needs_contraction_sliced_input(self, W):
        a = Tensor(FP16, (8, 16), Replicated, W)
        w = Tensor(FP16, (16, 4), Sliced(0), W, RANK)
        with pytest.raises(LayoutError):
            MatMul(a, w)

    def test_shape_inference(self, W):
        a = Tensor(FP16, (2, 8, 16), Replicated, W)
        w = Tensor(FP16, (16, 4), Replicated, W)
        assert MatMul(a, w).shape == (2, 8, 4)

    def test_contraction_mismatch(self, W):
        a = Tensor(FP16, (8, 16), Replicated, W)
        w = Tensor(FP16, (8, 4), Replicated, W)
        with pytest.raises(ShapeError, match="contraction"):
            MatMul(a, w)

    def test_mixed_dtype_promotes(self, W):
        a = Tensor(FP16, (8, 16), Replicated, W)
        w = Tensor(FP32, (16, 4), Replicated, W)
        assert MatMul(a, w).dtype is FP32

    def test_different_groups_rejected(self):
        from repro.core import split_world

        g0, g1 = split_world(8, 2)
        a = Tensor(FP16, (8, 16), Replicated, g0)
        w = Tensor(FP16, (16, 4), Replicated, g1)
        with pytest.raises(LayoutError, match="different groups"):
            MatMul(a, w)


class TestPointwiseInference:
    def test_local_plus_replicated_is_local(self, W):
        a = Tensor(FP16, (8,), Local, W, RANK)
        b = Tensor(FP16, (8,), Replicated, W)
        assert (a + b).layout.is_local

    def test_replicated_plus_replicated(self, W):
        a = Tensor(FP16, (8,), Replicated, W)
        b = Tensor(FP16, (8,), Replicated, W)
        assert (a + b).layout.is_replicated

    def test_sliced_same_dim_ok(self, W):
        a = Tensor(FP16, (8,), Sliced(0), W, RANK)
        b = Tensor(FP16, (8,), Sliced(0), W, RANK)
        assert (a + b).layout == Sliced(0)

    def test_sliced_different_dims_rejected(self, W):
        a = Tensor(FP16, (8, 8), Sliced(0), W, RANK)
        b = Tensor(FP16, (8, 8), Sliced(1), W, RANK)
        with pytest.raises(LayoutError, match="different dims"):
            a + b

    def test_sliced_plus_covering_replicated_requires_slice(self, W):
        # the static check that forces reorder to insert Slice()
        a = Tensor(FP16, (4, 8, 16), Sliced(1), W, RANK)
        r = Tensor(FP16, (4, 8, 16), Replicated, W)
        with pytest.raises(LayoutError, match="apply Slice"):
            a + r

    def test_sliced_plus_trailing_bias_ok(self, W):
        # b[H] broadcast does not span the sliced S dimension
        a = Tensor(FP16, (4, 8, 16), Sliced(1), W, RANK)
        b = Tensor(FP16, (16,), Replicated, W)
        assert (a + b).layout == Sliced(1)

    def test_sliced_plus_local_rejected(self, W):
        a = Tensor(FP16, (8,), Sliced(0), W, RANK)
        b = Tensor(FP16, (8,), Local, W, RANK)
        with pytest.raises(LayoutError):
            a + b

    def test_scalar_operand_keeps_layout(self, W):
        a = Tensor(FP16, (8,), Sliced(0), W, RANK)
        s = Scalar(FP32, name="lr", group=W)
        assert (a * s).layout == Sliced(0)


class TestCommInference:
    def test_allreduce_local_to_replicated(self, W):
        x = Tensor(FP16, (8,), Local, W, RANK)
        assert AllReduce("+", x).layout.is_replicated

    def test_allreduce_rejects_sliced(self, W):
        x = Tensor(FP16, (8,), Sliced(0), W, RANK)
        with pytest.raises(LayoutError):
            AllReduce("+", x)

    def test_reducescatter_layout(self, W):
        x = Tensor(FP16, (8,), Local, W, RANK)
        rs = ReduceScatter("+", x)
        assert rs.layout == Sliced(0)
        assert rs.per_rank_shape() == (2,)

    def test_allgather_restores_replicated(self, W):
        x = Tensor(FP16, (8,), Local, W, RANK)
        rs = ReduceScatter("+", x)
        ag = AllGather(rs)
        assert ag.layout.is_replicated
        assert ag.shape == (8,)

    def test_allgather_rejects_replicated(self, W):
        x = Tensor(FP16, (8,), Replicated, W)
        with pytest.raises(LayoutError):
            AllGather(x)

    def test_broadcast_replicates(self, W):
        x = Tensor(FP16, (8,), Local, W, RANK)
        assert Broadcast(x, root=0).layout.is_replicated

    def test_reduce_is_rooted(self, W):
        x = Tensor(FP16, (8,), Local, W, RANK)
        red = Reduce("+", x, root=1)
        assert red.root == 1

    def test_unknown_reduction_rejected(self, W):
        x = Tensor(FP16, (8,), Local, W, RANK)
        with pytest.raises(ValueError, match="unknown reduction"):
            AllReduce("avg", x)


class TestMiscOps:
    def test_slice_of_replicated(self, W):
        r = Tensor(FP16, (4, 8, 16), Replicated, W)
        s = Slice(r, 1)
        assert s.layout == Sliced(1)
        assert s.per_rank_shape() == (4, 2, 16)

    def test_slice_rejects_sliced(self, W):
        x = Tensor(FP16, (8,), Sliced(0), W, RANK)
        with pytest.raises(LayoutError):
            Slice(x, 0)

    def test_norm_of_sliced_crosses_ranks(self, W):
        x = Tensor(FP16, (8,), Sliced(0), W, RANK)
        n = Norm(x)
        assert n.crosses_ranks
        assert n.layout.is_replicated
        assert n.shape == ()

    def test_norm_of_replicated_is_rank_local(self, W):
        x = Tensor(FP16, (8,), Replicated, W)
        assert not Norm(x).crosses_ranks

    def test_reducetensor_of_local_is_local(self, W):
        x = Tensor(FP16, (8,), Local, W, RANK)
        assert ReduceTensor("max", x).layout.is_local

    def test_update_requires_tensor_target(self, W):
        a = Tensor(FP32, (8,), Replicated, W)
        b = Tensor(FP32, (8,), Replicated, W)
        value = a + b
        with pytest.raises(TypeError):
            Update(value, a)

    def test_update_shape_mismatch(self, W):
        a = Tensor(FP32, (8,), Replicated, W)
        b = Tensor(FP32, (4,), Replicated, W)
        with pytest.raises(ShapeError):
            Update(a, b)

    def test_update_records_target(self, W):
        a = Tensor(FP32, (8,), Replicated, W)
        u = Update(a, a * 2.0)
        assert u.target is a
        assert a.updated_by is u

    def test_dropout_prob_validation(self, W):
        x = Tensor(FP32, (8,), Replicated, W)
        with pytest.raises(ValueError):
            Dropout(x, 1.0)
        with pytest.raises(ValueError):
            Dropout(x, -0.1)

    def test_conv2d_shape(self, W):
        x = Tensor(FP32, (2, 3, 8, 8), Replicated, W)
        k = Tensor(FP32, (4, 3, 3, 3), Replicated, W)
        out = Conv2D(x, k, stride=1, padding=1)
        assert out.shape == (2, 4, 8, 8)

    def test_conv2d_channel_mismatch(self, W):
        x = Tensor(FP32, (2, 3, 8, 8), Replicated, W)
        k = Tensor(FP32, (4, 5, 3, 3), Replicated, W)
        with pytest.raises(ShapeError):
            Conv2D(x, k)
