"""The MoE expert-MLP workload: schedule equivalence, plan shape, and
the autotuner finding the overlapped schedule (acceptance criteria of
the AllToAll subsystem)."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core import FP32
from repro.core.autotuner import Autotuner
from repro.core.transforms.plan import KernelKind
from repro.perf import ProgramCostModel
from repro.runtime import Executor
from repro.workloads.moe import MoEWorkload, moe_reference


@pytest.fixture
def rng():
    return np.random.RandomState(0x30E)


def _inputs(rng, n, C, M, F):
    return {
        "x": rng.randn(n, n, C, M),
        "w1": rng.randn(n, M, F),
        "w2": rng.randn(n, F, M),
    }


class TestBuild:
    def test_program_shape(self):
        wl = MoEWorkload.build(4, 8, 16, world_size=4)
        assert wl.experts == 4
        assert wl.program.name == "moe"
        comm = [e.comm_kind for e in wl.program.comm_ops]
        assert comm == ["alltoall", "alltoall"]

    def test_dsl_renders_alltoall(self):
        wl = MoEWorkload.build(4, 8, 16, world_size=4)
        text = wl.program.pretty()
        assert "AllToAll(x, dim=0)" in text
        assert "AllToAll(expert_out, dim=0)" in text

    def test_three_schedules_exposed(self):
        wl = MoEWorkload.build(4, 8, 16, world_size=4)
        names = set(wl.schedules())
        assert {"GShard-Eq", "fused", "overlapped"} <= names


class TestEquivalence:
    @pytest.mark.parametrize("n", [2, 4])
    def test_all_schedules_match_reference(self, rng, n):
        C, M, F = 3, 6, 8
        wl = MoEWorkload.build(C, M, F, world_size=n, dtype=FP32)
        inputs = _inputs(rng, n, C, M, F)
        ref = moe_reference(inputs["x"], inputs["w1"], inputs["w2"])
        for name, sched in wl.schedules().items():
            res = Executor().run(sched.program, inputs)
            got = res.output(sched.program.outputs[0].name)
            np.testing.assert_allclose(ref, got, rtol=1e-4, atol=1e-6, err_msg=name)

    def test_hierarchical_schedule_matches(self, rng):
        n, C, M, F = 4, 3, 6, 8
        wl = MoEWorkload.build(C, M, F, world_size=n, dtype=FP32)
        inputs = _inputs(rng, n, C, M, F)
        ref = moe_reference(inputs["x"], inputs["w1"], inputs["w2"])
        sched = wl.schedule_hierarchical(node_size=2)
        res = Executor().run(sched.program, inputs)
        got = res.output(sched.program.outputs[0].name)
        np.testing.assert_allclose(ref, got, rtol=1e-4, atol=1e-6)

    def test_generated_code_matches(self, rng):
        from repro.core.codegen import CodeGenerator

        n, C, M, F = 4, 3, 6, 8
        wl = MoEWorkload.build(C, M, F, world_size=n, dtype=FP32)
        inputs = _inputs(rng, n, C, M, F)
        ref = moe_reference(inputs["x"], inputs["w1"], inputs["w2"])
        for name, sched in wl.schedules().items():
            gen = CodeGenerator().generate(sched)
            got = gen.run(inputs).output(sched.program.outputs[0].name)
            np.testing.assert_allclose(ref, got, rtol=1e-4, atol=1e-6, err_msg=name)

    def test_reference_rejects_bad_expert_count(self, rng):
        with pytest.raises(ValueError):
            moe_reference(
                rng.randn(3, 4, 2, 6), rng.randn(3, 6, 8), rng.randn(3, 8, 6)
            )


class TestPlans:
    def test_gshard_kernel_count(self):
        wl = MoEWorkload.build(64, 128, 512, world_size=16)
        plan = wl.schedule_gshard().plan()
        # a2a, gemm, relu, gemm, a2a, scale — the siloed baseline
        assert plan.num_launches == 6

    def test_fused_kernel_count(self):
        wl = MoEWorkload.build(64, 128, 512, world_size=16)
        plan = wl.schedule_fused().plan()
        assert plan.num_launches == 5
        kinds = [k.kind for k in plan.kernels]
        assert KernelKind.FUSED_COLLECTIVE in kinds

    def test_overlapped_group_spans_pipeline(self):
        wl = MoEWorkload.build(64, 128, 512, world_size=16)
        plan = wl.schedule_overlapped().plan()
        assert len(plan.overlap_groups) == 1
        assert len(plan.overlap_groups[0]) == 5  # a2a, mm, relu, mm, fused

    def test_hierarchical_plan_has_four_exchanges(self):
        wl = MoEWorkload.build(64, 128, 512, world_size=16)
        plan = wl.schedule_hierarchical(node_size=4).plan()
        comm = [
            k for k in plan.kernels if k.kind is KernelKind.COLLECTIVE
        ]
        assert len(comm) == 4


class TestSimulatedPerformance:
    @pytest.fixture(scope="class")
    def cluster(self):
        return Cluster(1)

    @pytest.fixture(scope="class")
    def wl(self):
        return MoEWorkload.build(512, 1024, 4096, world_size=16)

    def test_overlapped_fastest(self, cluster, wl):
        pcm = ProgramCostModel(cluster)
        times = {n: pcm.time(s) for n, s in wl.schedules().items()}
        assert times["overlapped"] < times["fused"] < times["GShard-Eq"]

    def test_autotuner_returns_overlapped_strictly_better(self, cluster, wl):
        # acceptance: the autotuner, run on the MoE program over the
        # default simulated cluster, returns the overlapped schedule
        # with simulated time strictly better than GShard-Eq
        result = Autotuner(cluster).tune(wl.program)
        assert "overlap" in result.best.name
        gshard = ProgramCostModel(cluster).time(wl.schedule_gshard())
        assert result.best.time < gshard
        assert len(result.candidates) >= 4

    def test_autotuner_candidates_include_fusion_path(self, cluster, wl):
        result = Autotuner(cluster).tune(wl.program)
        names = [c.name for c in result.candidates]
        assert any("a2areorder" in n for n in names)
        assert any("a2afuse" in n for n in names)

    def test_a2asplit_explored_across_nodes(self):
        cluster = Cluster(4)
        wl = MoEWorkload.build(64, 256, 1024, world_size=cluster.num_ranks)
        result = Autotuner(cluster).tune(wl.program)
        names = [c.name for c in result.candidates]
        assert any("a2asplit" in n for n in names)
