"""Tests for the counter-based RNG: the property that makes Dropout
reorderable (its mask is keyed on global element indices)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import rng


class TestGlobalIndices:
    def test_unsliced_is_arange(self):
        idx = rng.global_indices((2, 3))
        np.testing.assert_array_equal(
            idx, np.arange(6, dtype=np.uint64).reshape(2, 3)
        )

    def test_sliced_indices_are_global(self):
        full = rng.global_indices((4, 6))
        part = rng.global_indices((4, 6), slice_dim=0, slice_index=1,
                                  num_slices=2)
        np.testing.assert_array_equal(part, full[2:4])

    def test_sliced_along_inner_dim(self):
        full = rng.global_indices((4, 6))
        part = rng.global_indices((4, 6), slice_dim=1, slice_index=2,
                                  num_slices=3)
        np.testing.assert_array_equal(part, full[:, 4:6])

    def test_scalar_shape(self):
        assert rng.global_indices(()).shape == ()


class TestUniform:
    def test_deterministic(self):
        idx = rng.global_indices((8,))
        a = rng.uniform(42, idx)
        b = rng.uniform(42, idx)
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_values(self):
        idx = rng.global_indices((64,))
        assert not np.array_equal(rng.uniform(1, idx), rng.uniform(2, idx))

    def test_in_unit_interval(self):
        idx = rng.global_indices((1000,))
        u = rng.uniform(7, idx)
        assert np.all(u >= 0.0) and np.all(u < 1.0)

    def test_roughly_uniform(self):
        idx = rng.global_indices((20000,))
        u = rng.uniform(3, idx)
        assert abs(u.mean() - 0.5) < 0.02
        assert abs(np.quantile(u, 0.25) - 0.25) < 0.02


class TestDropoutMask:
    def test_mask_values_are_zero_or_scaled(self):
        mask = rng.dropout_mask(5, 0.25, (128,))
        unique = set(np.unique(mask))
        assert unique <= {0.0, 1.0 / 0.75}

    def test_drop_rate_close_to_prob(self):
        mask = rng.dropout_mask(5, 0.3, (50000,))
        rate = float(np.mean(mask == 0.0))
        assert abs(rate - 0.3) < 0.01

    def test_slicing_invariance(self):
        # THE property: slices of the full mask equal sliced masks
        full = rng.dropout_mask(9, 0.5, (8, 6))
        for i in range(4):
            part = rng.dropout_mask(
                9, 0.5, (8, 6), slice_dim=0, slice_index=i, num_slices=4
            )
            np.testing.assert_array_equal(part, full[i * 2 : (i + 1) * 2])

    @given(
        seed=st.integers(0, 10_000),
        rows=st.integers(1, 4),
        parts=st.integers(1, 4),
        dim=st.integers(0, 1),
        prob=st.floats(0.0, 0.9),
    )
    @settings(max_examples=50, deadline=None)
    def test_slicing_invariance_property(self, seed, rows, parts, dim, prob):
        shape = (rows * parts, 3) if dim == 0 else (3, rows * parts)
        full = rng.dropout_mask(seed, prob, shape)
        pieces = [
            rng.dropout_mask(
                seed, prob, shape, slice_dim=dim, slice_index=i,
                num_slices=parts,
            )
            for i in range(parts)
        ]
        np.testing.assert_array_equal(np.concatenate(pieces, axis=dim), full)
