"""Tests for the Execute construct and Program queries."""

import pytest

from repro.core import (
    FP32,
    RANK,
    AllReduce,
    Execute,
    Local,
    Replicated,
    Scalar,
    Tensor,
    Update,
    world,
)
from repro.errors import CoCoNetError
from tests.conftest import build_attention_program


class TestValidation:
    def test_undeclared_input_rejected(self):
        W = world(4)
        a = Tensor(FP32, (8,), Local, W, RANK, name="a")
        ar = AllReduce("+", a)
        with pytest.raises(CoCoNetError, match="undeclared input"):
            Execute("p", [], [ar])

    def test_duplicate_input_names_rejected(self):
        W = world(4)
        a = Tensor(FP32, (8,), Replicated, W, name="x")
        b = Tensor(FP32, (8,), Replicated, W, name="x")
        with pytest.raises(CoCoNetError, match="duplicate"):
            Execute("p", [a, b], [a + b])

    def test_scalar_inputs_allowed(self):
        W = world(4)
        a = Tensor(FP32, (8,), Replicated, W, name="a")
        s = Scalar(FP32, name="lr", group=W)
        prog = Execute("p", [a, s], [a * s])
        assert len(prog.inputs) == 2


class TestQueries:
    def test_operations_in_topo_order(self):
        prog, h = build_attention_program()
        ops = prog.operations
        assert ops.index(h["layer"]) < ops.index(h["allreduce"])
        assert ops.index(h["allreduce"]) < ops.index(h["out"])

    def test_comm_and_compute_partition(self):
        prog, h = build_attention_program()
        assert prog.comm_ops == [h["allreduce"]]
        assert h["layer"] in prog.compute_ops

    def test_find_by_name(self):
        prog, h = build_attention_program()
        assert prog.find("sum") is h["allreduce"]
        assert prog.find("w") is h["w"]

    def test_find_missing_raises(self):
        prog, _ = build_attention_program()
        with pytest.raises(KeyError):
            prog.find("nothing")

    def test_updated_tensors(self):
        W = world(4)
        p = Tensor(FP32, (8,), Replicated, W, name="p")
        u = Update(p, p * 0.9, name="u")
        prog = Execute("decay", [p], [u])
        assert prog.updated_tensors() == [p]

    def test_effects_are_roots(self):
        W = world(4)
        p = Tensor(FP32, (8,), Replicated, W, name="p")
        u = Update(p, p * 0.9, name="u")
        side = Update(p, p * 0.5, name="side")
        prog = Execute("p", [p], [u], effects=[side])
        assert side in prog.operations


class TestPrinting:
    def test_pretty_contains_declarations_and_ops(self):
        prog, _ = build_attention_program()
        text = prog.pretty()
        assert "Tensor w(FP32" in text
        assert 'AllReduce("+", layer)' in text
        assert "Dropout(sum_b, 0.1)" in text
        assert "Execute attn(" in text

    def test_pretty_renders_infix_binary(self):
        prog, _ = build_attention_program()
        assert "drop + r" in prog.pretty()

    def test_dsl_line_count_counts_every_line(self):
        prog, _ = build_attention_program()
        assert prog.dsl_line_count() == len(prog.pretty().splitlines())

    def test_repr(self):
        prog, _ = build_attention_program()
        assert "Program('attn'" in repr(prog)
