"""Tests for the four transformations: split, reorder, fuse, overlap
(Section 3), plus asSlice/dead (Section 4)."""

import pytest

from repro.core import (
    FP32,
    RANK,
    AllGather,
    AllReduce,
    Binary,
    Dropout,
    Execute,
    Local,
    MatMul,
    ReduceScatter,
    Replicated,
    Slice,
    Sliced,
    Tensor,
    Update,
    world,
)
from repro.core import ops
from repro.core.transforms import (
    AllReduceFuse,
    ARSplitReduceBroadcast,
    ARSplitRSAG,
    ComputationFuse,
    KernelKind,
    Schedule,
    SendFuse,
)
from repro.errors import TransformError
from tests.conftest import build_attention_program


class TestSplit:
    def test_split_rs_ag_replaces_allreduce(self):
        prog, h = build_attention_program()
        sched = Schedule(prog)
        rs, ag = sched.split(h["allreduce"], ARSplitRSAG)
        assert isinstance(rs, ReduceScatter)
        assert isinstance(ag, AllGather)
        ops_now = sched.program.operations
        assert rs in ops_now and ag in ops_now
        assert not any(isinstance(e, AllReduce) for e in ops_now)

    def test_split_is_always_valid_for_allreduce(self):
        # §3.1: "this transformation is always valid"
        prog, h = build_attention_program()
        sched = Schedule(prog)
        rs, ag = sched.split(h["allreduce"])
        assert ag.inputs[0] is rs

    def test_split_choosing_divisible_dim(self):
        # batch=4 < world=4 divides; but with batch 2 dim0 fails -> dim1
        prog, h = build_attention_program(n=4, batch=2, seq=8)
        sched = Schedule(prog)
        rs, _ = sched.split(h["allreduce"])
        assert rs.layout == Sliced(1)

    def test_split_reduce_broadcast_policy(self):
        prog, h = build_attention_program()
        sched = Schedule(prog)
        red, bc = sched.split(h["allreduce"], ARSplitReduceBroadcast)
        assert isinstance(red, ops.Reduce)
        assert isinstance(bc, ops.Broadcast)

    def test_split_non_allreduce_rejected(self):
        prog, h = build_attention_program()
        sched = Schedule(prog)
        with pytest.raises(TransformError, match="expects an AllReduce"):
            sched.split(h["layer"])

    def test_split_records_step(self):
        prog, h = build_attention_program()
        sched = Schedule(prog)
        sched.split(h["allreduce"])
        assert any("split" in s for s in sched.steps)


class TestReorder:
    def test_reorder_slices_computations(self):
        prog, h = build_attention_program()
        sched = Schedule(prog)
        _, ag = sched.split(h["allreduce"])
        results = sched.reorder(ag, h["sum_b"], h["drop"], h["out"])
        sliced_ops, gather = results[:-1], results[-1]
        for e in sliced_ops:
            assert e.layout.is_sliced
        assert isinstance(gather, AllGather)
        assert sched.program.outputs[0] is gather

    def test_reorder_inserts_slice_for_covering_replicated(self):
        # "all tensors input to the computations are also sliced" (§3.2)
        prog, h = build_attention_program()
        sched = Schedule(prog)
        _, ag = sched.split(h["allreduce"])
        sched.reorder(ag, h["sum_b"], h["drop"], h["out"])
        slices = [e for e in sched.program.operations if isinstance(e, Slice)]
        assert len(slices) == 1  # Slice(r); the bias b needs none
        assert slices[0].inputs[0] is h["r"]

    def test_reorder_preserves_dropout_seed(self):
        prog, h = build_attention_program(seed=777)
        sched = Schedule(prog)
        _, ag = sched.split(h["allreduce"])
        sched.reorder(ag, h["sum_b"], h["drop"], h["out"])
        drop = next(
            e for e in sched.program.operations if isinstance(e, Dropout)
        )
        assert drop.seed == 777

    def test_reorder_requires_all_users_in_region(self):
        prog, h = build_attention_program()
        sched = Schedule(prog)
        _, ag = sched.split(h["allreduce"])
        with pytest.raises(TransformError, match="consumes"):
            sched.reorder(ag, h["drop"], h["out"])  # sum_b missing

    def test_reorder_rejects_matmul(self):
        # §3.2 validity: matrix ops cannot be sliced along the gather dim
        W = world(4)
        x = Tensor(FP32, (8, 16), Local, W, RANK, name="x")
        w2 = Tensor(FP32, (16, 16), Replicated, W, name="w2")
        ar = AllReduce("+", x, name="ar")
        mm = MatMul(ar, w2, name="mm")
        prog = Execute("p", [x, w2], [mm])
        sched = Schedule(prog)
        _, ag = sched.split(ar)
        with pytest.raises(TransformError, match="sliceable|MatMul|matrix"):
            sched.reorder(ag, mm)

    def test_reorder_non_allgather_rejected(self):
        prog, h = build_attention_program()
        sched = Schedule(prog)
        with pytest.raises(TransformError, match="expects an AllGather"):
            sched.reorder(h["allreduce"], h["drop"])

    def test_reorder_update_creates_writeback_gather(self):
        W = world(4)
        g = Tensor(FP32, (8,), Local, W, RANK, name="g")
        p = Tensor(FP32, (8,), Replicated, W, name="p")
        ar = AllReduce("+", g, name="ar")
        new_p = Binary("-", p, ar, name="new_p")
        upd = Update(p, new_p, name="upd")
        prog = Execute("sgd", [g, p], [upd])
        sched = Schedule(prog)
        _, ag = sched.split(ar)
        results = sched.reorder(ag, new_p, upd)
        gather = results[-1]
        assert isinstance(gather, AllGather)
        assert gather.writeback is p


class TestFuse:
    def test_computation_fuse_creates_block(self):
        prog, h = build_attention_program()
        sched = Schedule(prog)
        block = sched.fuse(
            h["sum_b"], h["drop"], h["out"], policy=ComputationFuse
        )
        kinds = [k.kind for k in sched.plan().kernels]
        assert KernelKind.FUSED_ELEMENTWISE in kinds
        assert len(block.members) == 3

    def test_fuse_requires_two_ops(self):
        prog, h = build_attention_program()
        sched = Schedule(prog)
        with pytest.raises(TransformError, match="at least two"):
            sched.fuse(h["drop"], policy=ComputationFuse)

    def test_computation_fuse_rejects_comm(self):
        prog, h = build_attention_program()
        sched = Schedule(prog)
        with pytest.raises(TransformError, match="communication"):
            sched.fuse(h["allreduce"], h["sum_b"], policy=ComputationFuse)

    def test_computation_fuse_rejects_matmul(self):
        prog, h = build_attention_program()
        sched = Schedule(prog)
        with pytest.raises(TransformError, match="library kernels"):
            sched.fuse(h["layer"], h["sum_b"], policy=ComputationFuse)

    def test_convexity_violation_rejected(self):
        # fusing a with c when b = f(a) and c = g(b) must fail: b would
        # have to run inside the fused kernel
        W = world(4)
        x = Tensor(FP32, (8,), Replicated, W, name="x")
        a = Binary("+", x, 1.0, name="a")
        b = AllReduce("+", Binary("*", a, a, name="b_in"), name="b")
        c = Binary("+", b, a, name="c")
        prog = Execute("p", [x], [c])
        sched = Schedule(prog)
        with pytest.raises(TransformError, match="middle of the fused"):
            sched.fuse(a, c, policy=ComputationFuse)

    def test_allreduce_fuse_requires_gather(self):
        prog, h = build_attention_program()
        sched = Schedule(prog)
        rs, ag = sched.split(h["allreduce"])
        with pytest.raises(TransformError, match="AllGather"):
            sched.fuse(rs, h["sum_b"], policy=AllReduceFuse)

    def test_allreduce_fuse_full_pipeline(self):
        prog, h = build_attention_program()
        sched = Schedule(prog)
        rs, ag = sched.split(h["allreduce"])
        results = sched.reorder(ag, h["sum_b"], h["drop"], h["out"])
        block = sched.fuse(rs, *results, policy=AllReduceFuse)
        plan = sched.plan()
        fused = [k for k in plan.kernels if k.kind is KernelKind.FUSED_COLLECTIVE]
        assert len(fused) == 1
        assert len(fused[0].exprs) == len(block.members)

    def test_double_fuse_rejected(self):
        prog, h = build_attention_program()
        sched = Schedule(prog)
        sched.fuse(h["sum_b"], h["drop"], policy=ComputationFuse)
        with pytest.raises(TransformError, match="already belongs"):
            sched.fuse(h["drop"], h["out"], policy=ComputationFuse)

    def test_fusing_a_block_dissolves_it(self):
        prog, h = build_attention_program()
        sched = Schedule(prog)
        b1 = sched.fuse(h["sum_b"], h["drop"], policy=ComputationFuse)
        b2 = sched.fuse(b1, h["out"], policy=ComputationFuse)
        assert len(b2.members) == 3
        assert len(sched._blocks) == 1

    def test_unfuse(self):
        prog, h = build_attention_program()
        sched = Schedule(prog)
        b1 = sched.fuse(h["sum_b"], h["drop"], policy=ComputationFuse)
        members = sched.unfuse(b1)
        assert len(members) == 2
        assert all(
            k.kind is not KernelKind.FUSED_ELEMENTWISE
            for k in sched.plan().kernels
        )


class TestOverlap:
    def test_overlap_requires_producer_consumer(self):
        prog, h = build_attention_program()
        sched = Schedule(prog)
        with pytest.raises(TransformError, match="producer-consumer"):
            sched.overlap(h["out"], h["layer"])  # wrong direction

    def test_overlap_marks_plan(self):
        prog, h = build_attention_program()
        sched = Schedule(prog)
        sched.overlap(h["layer"], h["allreduce"])
        plan = sched.plan()
        assert plan.overlap_groups == [["layer", "sum"]]

    def test_overlap_requires_two_items(self):
        prog, h = build_attention_program()
        sched = Schedule(prog)
        with pytest.raises(TransformError, match="at least two"):
            sched.overlap(h["layer"])

    def test_overlap_survives_later_rewrites(self):
        prog, h = build_attention_program()
        sched = Schedule(prog)
        sched.overlap(h["layer"], h["allreduce"])
        # the AllReduce is subsequently split; the overlap group follows
        rs, ag = sched.split(h["allreduce"])
        assert len(sched.plan().overlap_groups) == 1


class TestAsSliceAndDead:
    def _reordered_sgd(self):
        W = world(4)
        g = Tensor(FP32, (8,), Local, W, RANK, name="g")
        p = Tensor(FP32, (8,), Replicated, W, name="p")
        m = Tensor(FP32, (8,), Replicated, W, name="m")
        ar = AllReduce("+", g, name="ar")
        m_upd = Update(m, m * 0.9 + ar, name="m_")
        p_upd = Update(p, p - m_upd, name="p_")
        prog = Execute("sgd_m", [g, p, m], [p_upd])
        sched = Schedule(prog)
        comps = sched.fuse(*[e for e in prog.operations if e is not ar],
                           policy=ComputationFuse)
        _, ag = sched.split(ar)
        results = sched.reorder(ag, comps)
        gathers = [r for r in results if isinstance(r, AllGather)]
        return sched, m, gathers

    def test_as_slice_changes_input_layout(self):
        sched, m, gathers = self._reordered_sgd()
        new_m = sched.as_slice(m, dim=0)
        assert new_m.layout == Sliced(0)
        names = [t.name for t in sched.program.inputs]
        m_decl = sched.program.inputs[names.index("m")]
        assert m_decl.layout == Sliced(0)

    def test_as_slice_collapses_slice_ops(self):
        sched, m, gathers = self._reordered_sgd()
        before = [
            e for e in sched.program.operations
            if isinstance(e, Slice) and e.inputs[0].name == "m"
        ]
        assert before
        sched.as_slice(m, dim=0)
        after = [
            e for e in sched.program.operations
            if isinstance(e, Slice) and e.inputs[0].name == "m"
        ]
        assert not after

    def test_dead_removes_effect_gather(self):
        sched, m, gathers = self._reordered_sgd()
        ag_m = next(
            g for g in gathers
            if sched.resolve(g).writeback is not None
            and sched.resolve(g).writeback.name == "m"
        )
        sched.as_slice(m, dim=0)
        sched.dead(ag_m)
        names = [e.name for e in sched.program.operations]
        assert sched.resolve(ag_m).name not in names

    def test_dead_rejects_program_output(self):
        prog, h = build_attention_program()
        sched = Schedule(prog)
        with pytest.raises(TransformError, match="program output"):
            sched.dead(h["out"])

    def test_dead_rejects_consumed_op(self):
        prog, h = build_attention_program()
        sched = Schedule(prog)
        with pytest.raises(TransformError, match="consumed|reachable"):
            sched.dead(h["drop"])

    def test_as_slice_requires_replicated(self):
        prog, h = build_attention_program()
        sched = Schedule(prog)
        with pytest.raises(TransformError, match="replicated"):
            sched.as_slice(h["w"])


class TestScheduleBookkeeping:
    def test_describe_lists_steps(self):
        prog, h = build_attention_program()
        sched = Schedule(prog)
        sched.split(h["allreduce"])
        text = sched.describe()
        assert "split" in text

    def test_default_schedule_describe(self):
        prog, _ = build_attention_program()
        assert "default" in Schedule(prog).describe()

    def test_dsl_line_count_includes_steps(self):
        prog, h = build_attention_program()
        sched = Schedule(prog)
        base = sched.dsl_line_count()
        sched.split(h["allreduce"])
        assert sched.dsl_line_count() == base + 1

    def test_resolve_chases_chains(self):
        prog, h = build_attention_program()
        sched = Schedule(prog)
        _, ag = sched.split(h["allreduce"])
        sched.reorder(ag, h["sum_b"], h["drop"], h["out"])
        # the original AllReduce handle resolves to a current node
        current = sched.resolve(h["allreduce"])
        assert current in set(sched.program.operations) | set(
            sched.program.inputs
        ) or current.name.startswith("rs_")
