"""The public-API docstring examples actually run.

Every module whose docs carry ``>>>`` examples is executed here with
:mod:`doctest`, so the examples in the serving/artifact/autotuner/
metrics docs are code the suite guarantees, not prose that can rot.
(CI's docs job additionally runs ``pytest --doctest-modules`` over the
same list.)
"""

import doctest

import pytest

import repro.cluster.topology
import repro.core.artifact
import repro.core.autotuner
import repro.observe.metrics
import repro.serve.cache
import repro.serve.service

MODULES = [
    repro.cluster.topology,
    repro.core.artifact,
    repro.core.autotuner,
    repro.observe.metrics,
    repro.serve.cache,
    repro.serve.service,
]


@pytest.mark.parametrize("module", MODULES, ids=[m.__name__ for m in MODULES])
def test_module_doctests(module):
    failures, tests = doctest.testmod(module, verbose=False)
    assert tests > 0, f"{module.__name__} lost its docstring examples"
    assert failures == 0
