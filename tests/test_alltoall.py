"""AllToAll: reference collective, step simulator, cost model, and the
split / reorder / fuse / overlap transformations applied to it."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.core import (
    FP16,
    FP32,
    RANK,
    AllToAll,
    AllToAllPhase,
    Binary,
    Const,
    Dropout,
    Execute,
    Local,
    MatMul,
    Replicated,
    Sliced,
    Tensor,
    Unary,
    world,
)
from repro.core.layout import exchange_chunk_shape
from repro.core.process_group import ProcessGroup
from repro.core.transforms import (
    A2ASplitHierarchical,
    AllToAllFuse,
    ARSplitRSAG,
    Schedule,
)
from repro.errors import LayoutError, ShapeError, TransformError
from repro.nccl import (
    LL,
    LL128,
    SIMPLE,
    all_to_all_steps,
    build_ring,
    choose_config,
    collective_time,
    simulate_alltoall,
)
from repro.nccl.algorithms import num_steps
from repro.nccl.cost_model import (
    CALL_SETUP_OVERHEAD,
    IMPLEMENTATION_EFFICIENCY,
    PER_CHANNEL_BANDWIDTH,
    p2p_time,
)
from repro.runtime import Executor, collectives


@pytest.fixture
def rng():
    return np.random.RandomState(0xA2A)


def _values(rng, n, shape):
    return {r: rng.randn(*shape).astype(np.float32) for r in range(n)}


class TestReferenceCollective:
    def test_chunk_routing(self):
        # rank i's output block j is source j's chunk i
        n = 4
        vals = {
            r: np.arange(n * 2, dtype=np.float32) + 100 * r for r in range(n)
        }
        out = collectives.alltoall(vals, world(n), 0)
        for i in range(n):
            for j in range(n):
                np.testing.assert_array_equal(
                    out[i][j * 2 : (j + 1) * 2],
                    vals[j][i * 2 : (i + 1) * 2],
                )

    def test_involution_when_chunks_equal_ranks(self, rng):
        # dispatch followed by combine restores token ownership
        n = 4
        vals = _values(rng, n, (n, 3))
        once = collectives.alltoall(vals, world(n), 0)
        twice = collectives.alltoall(once, world(n), 0)
        for r in range(n):
            np.testing.assert_array_equal(twice[r], vals[r])

    def test_single_rank_is_identity(self, rng):
        vals = _values(rng, 1, (4,))
        out = collectives.alltoall(vals, world(1), 0)
        np.testing.assert_array_equal(out[0], vals[0])

    def test_along_inner_dim(self, rng):
        n = 2
        vals = _values(rng, n, (3, 2 * n))
        out = collectives.alltoall(vals, world(n), 1)
        np.testing.assert_array_equal(out[0][:, :2], vals[0][:, :2])
        np.testing.assert_array_equal(out[0][:, 2:], vals[1][:, :2])

    def test_subgroup(self, rng):
        g = ProcessGroup(4, 4, 8)
        vals = {r: rng.randn(8).astype(np.float32) for r in g}
        out = collectives.alltoall(vals, g, 0)
        assert set(out) == set(g.ranks)
        np.testing.assert_array_equal(out[5][2:4], vals[5][2:4])

    def test_total_content_preserved(self, rng):
        n = 4
        vals = _values(rng, n, (n * 2, 3))
        out = collectives.alltoall(vals, world(n), 0)
        before = np.sort(np.concatenate([vals[r].ravel() for r in range(n)]))
        after = np.sort(np.concatenate([out[r].ravel() for r in range(n)]))
        np.testing.assert_array_equal(before, after)


class TestStepSimulatorEquivalence:
    """The step-by-step pairwise simulator matches the reference across
    world sizes and uneven chunk shapes (satellite requirement)."""

    @pytest.mark.parametrize("n", [2, 4, 8])
    @pytest.mark.parametrize(
        "shape_fn",
        [
            lambda n: (n, 5),          # one chunk row per rank
            lambda n: (3 * n, 7),      # odd trailing extent
            lambda n: (n * 2, 3, 2),   # 3-d buffer
            lambda n: (n * 5,),        # flat, odd chunk count
        ],
    )
    def test_matches_reference(self, rng, n, shape_fn):
        shape = shape_fn(n)
        vals = _values(rng, n, shape)
        ref = collectives.alltoall(vals, world(n), 0)
        sim = simulate_alltoall([vals[r] for r in range(n)], 0)
        for r in range(n):
            np.testing.assert_array_equal(ref[r], sim[r])

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_matches_reference_inner_dim(self, rng, n):
        vals = _values(rng, n, (3, 2 * n))
        ref = collectives.alltoall(vals, world(n), 1)
        sim = simulate_alltoall([vals[r] for r in range(n)], 1)
        for r in range(n):
            np.testing.assert_array_equal(ref[r], sim[r])

    def test_indivisible_raises(self, rng):
        with pytest.raises(ValueError):
            simulate_alltoall([rng.randn(5) for _ in range(2)], 0)

    @given(n=st.integers(2, 8), per=st.integers(1, 4), seed=st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_equivalence_property(self, n, per, seed):
        r = np.random.RandomState(seed)
        vals = [r.randn(n * per).astype(np.float32) for _ in range(n)]
        ref = collectives.alltoall(
            {i: v for i, v in enumerate(vals)}, world(n), 0
        )
        sim = simulate_alltoall(vals, 0)
        for i in range(n):
            np.testing.assert_array_equal(ref[i], sim[i])


class TestStepSchedule:
    @pytest.mark.parametrize("n", [2, 3, 4, 8])
    def test_counts(self, n):
        steps = all_to_all_steps(n)
        assert len(steps) == n * (n - 1)
        assert num_steps("alltoall", n) == n - 1

    def test_one_send_per_rank_per_step(self):
        n = 4
        steps = all_to_all_steps(n)
        for t in range(n - 1):
            senders = [s.src for s in steps if s.index == t]
            receivers = [s.dst for s in steps if s.index == t]
            assert sorted(senders) == list(range(n))
            assert sorted(receivers) == list(range(n))

    def test_every_chunk_delivered_once(self):
        n = 5
        delivered = {(s.src, s.dst) for s in all_to_all_steps(n)}
        expected = {(i, j) for i in range(n) for j in range(n) if i != j}
        assert delivered == expected

    def test_chunk_is_destination_index(self):
        for s in all_to_all_steps(6):
            assert s.chunk == s.dst


class TestHierarchicalPhases:
    @pytest.mark.parametrize("n,m", [(4, 2), (8, 2), (8, 4), (8, 8), (4, 4)])
    def test_composition_equals_flat(self, rng, n, m):
        vals = _values(rng, n, (n * 2, 3))
        flat = collectives.alltoall(vals, world(n), 0)
        intra = collectives.alltoall_intra(vals, world(n), 0, m)
        inter = collectives.alltoall_inter(intra, world(n), 0, m)
        for r in range(n):
            np.testing.assert_array_equal(flat[r], inter[r])

    def test_single_node_inter_is_identity_permutation(self, rng):
        # with one node the inter phase has nothing to exchange
        n = 4
        vals = _values(rng, n, (n,))
        intra = collectives.alltoall_intra(vals, world(n), 0, n)
        flat = collectives.alltoall(vals, world(n), 0)
        for r in range(n):
            np.testing.assert_array_equal(intra[r], flat[r])

    def test_indivisible_node_size_raises(self, rng):
        vals = _values(rng, 4, (4,))
        with pytest.raises(ValueError):
            collectives.alltoall_intra(vals, world(4), 0, 3)


class TestOpConstruction:
    def test_basic(self):
        W = world(4)
        x = Tensor(FP16, (8, 3), Local, W, RANK, name="x")
        a = AllToAll(x, 0)
        assert a.layout.is_local
        assert a.shape == x.shape
        assert a.comm_kind == "alltoall"
        assert a.dim == 0

    def test_negative_dim_normalized(self):
        W = world(4)
        x = Tensor(FP16, (3, 8), Local, W, RANK, name="x")
        assert AllToAll(x, -1).dim == 1

    def test_replicated_input_rejected(self):
        W = world(4)
        x = Tensor(FP16, (8,), Replicated, W, name="x")
        with pytest.raises(LayoutError):
            AllToAll(x, 0)

    def test_sliced_input_rejected(self):
        W = world(4)
        x = Tensor(FP16, (8,), Sliced(0), W, RANK, name="x")
        with pytest.raises(LayoutError):
            AllToAll(x, 0)

    def test_indivisible_dim_rejected(self):
        W = world(4)
        x = Tensor(FP16, (6,), Local, W, RANK, name="x")
        with pytest.raises(ShapeError):
            AllToAll(x, 0)

    def test_phase_validation(self):
        W = world(4)
        x = Tensor(FP16, (8,), Local, W, RANK, name="x")
        with pytest.raises(ValueError):
            AllToAllPhase(x, 0, "diagonal", 2)
        with pytest.raises(LayoutError):
            AllToAllPhase(x, 0, "intra", 3)
        with pytest.raises(LayoutError):
            AllToAllPhase(x, 0, "intra", 0)
        p = AllToAllPhase(x, 0, "inter", 2)
        assert p.comm_kind == "alltoall_inter"
        # an oversized node size clamps to the group: one-level exchange
        assert AllToAllPhase(x, 0, "intra", 16).node_size == 4

    def test_exchange_chunk_shape(self):
        assert exchange_chunk_shape((8, 3), 0, 4) == (2, 3)
        with pytest.raises(LayoutError):
            exchange_chunk_shape((6, 3), 0, 4)

    def test_pretty_render(self):
        W = world(4)
        x = Tensor(FP16, (8,), Local, W, RANK, name="x")
        a = AllToAll(x, 0, name="exchange")
        prog = Execute("p", [x], [a])
        assert "AllToAll(x, dim=0)" in prog.pretty()


def _exchange_program(n=4, dtype=FP32):
    W = world(n)
    x = Tensor(dtype, (n * 2, 3), Local, W, RANK, name="x")
    a2a = AllToAll(x, 0, name="exchange")
    scaled = Binary("*", a2a, Const(0.5, W, dtype), name="scaled")
    shifted = Unary("tanh", scaled, name="shifted")
    prog = Execute("ex", [x], [shifted])
    return prog, x, a2a, scaled, shifted


class TestTransforms:
    def test_split_equivalence(self, rng):
        prog, x, a2a, _, _ = _exchange_program()
        inputs = {"x": rng.randn(4, 8, 3)}
        ref = Executor().run(prog, inputs).output("shifted")
        sched = Schedule(prog)
        intra, inter = sched.split(a2a, A2ASplitHierarchical, node_size=2)
        assert intra.phase == "intra" and inter.phase == "inter"
        got = Executor().run(sched.program, inputs).output("shifted")
        np.testing.assert_allclose(ref, got, rtol=1e-6)

    def test_split_records_step(self):
        prog, _, a2a, _, _ = _exchange_program()
        sched = Schedule(prog)
        sched.split(a2a, A2ASplitHierarchical, node_size=2)
        assert "A2ASplitHierarchical" in sched.describe()

    def test_split_wrong_policy_rejected(self):
        prog, _, a2a, _, _ = _exchange_program()
        sched = Schedule(prog)
        with pytest.raises(TransformError):
            sched.split(a2a, ARSplitRSAG)

    def test_ar_split_policy_on_allreduce_still_works(self):
        from repro.core import AllReduce

        W = world(4)
        g = Tensor(FP32, (8,), Local, W, RANK, name="g")
        ar = AllReduce("+", g, name="ar")
        prog = Execute("p", [g], [ar])
        sched = Schedule(prog)
        with pytest.raises(TransformError):
            sched.split(ar, A2ASplitHierarchical)

    def test_split_rejects_fused_exchange(self):
        # splitting a fused exchange would strand the intra phase
        # outside the block
        prog, x, a2a, scaled, shifted = _exchange_program()
        sched = Schedule(prog)
        results = sched.reorder(a2a, scaled, shifted)
        block = sched.fuse(*results, policy=AllToAllFuse)
        fused_a2a = next(m for m in block.members if isinstance(m, AllToAll))
        with pytest.raises(TransformError):
            sched.split(fused_a2a, A2ASplitHierarchical, node_size=2)

    def test_multinode_search_never_splits_a_fused_exchange(self):
        # the 4-node search must not reach the invalid state where a
        # fused exchange is split (intra phase stranded outside the
        # block); every candidate's plan must remain derivable
        from repro.core.autotuner import Autotuner
        from repro.workloads.moe import MoEWorkload

        result = Autotuner(Cluster(4)).tune(
            MoEWorkload.build(2, 4, 8, world_size=64, dtype=FP32).program
        )
        for c in result.candidates:
            assert c.schedule.plan().kernels  # plan derivable
            fused = {m[1] for m in c.moves if m[0] == "a2afuse"}
            split = {m[1] for m in c.moves if m[0] == "a2asplit"}
            assert not (fused & split), c.name

    def test_reorder_equivalence(self, rng):
        prog, x, a2a, scaled, shifted = _exchange_program()
        inputs = {"x": rng.randn(4, 8, 3)}
        ref = Executor().run(prog, inputs).output("shifted")
        sched = Schedule(prog)
        results = sched.reorder(a2a, scaled, shifted)
        # computations moved before the exchange; one new AllToAll
        new_ops = sched.program.operations
        kinds = [type(e).__name__ for e in new_ops]
        assert kinds.index("Binary") < kinds.index("AllToAll")
        out_name = sched.program.outputs[0].name
        got = Executor().run(sched.program, inputs).output(out_name)
        np.testing.assert_allclose(ref, got, rtol=1e-6)

    def test_reorder_rejects_positioned_partner(self):
        n = 4
        W = world(n)
        x = Tensor(FP32, (n * 2, 3), Local, W, RANK, name="x")
        y = Tensor(FP32, (n * 2, 3), Local, W, RANK, name="y")
        a2a = AllToAll(x, 0, name="exchange")
        out = Binary("+", a2a, y, name="out")
        prog = Execute("p", [x, y], [out])
        sched = Schedule(prog)
        with pytest.raises(TransformError):
            sched.reorder(a2a, out)

    def test_reorder_rejects_rank_growing_partner(self):
        # a broadcast partner that grows the output rank would shift
        # the exchanged axis; the transform must refuse rather than
        # rebuild an AllToAll over the wrong dimension
        n = 4
        W = world(n)
        x = Tensor(FP32, (n, 8), Local, W, RANK, name="x")
        b = Tensor(FP32, (2, 1, 1), Replicated, W, name="b")
        a2a = AllToAll(x, 1, name="exchange")
        out = Binary("*", a2a, b, name="out")
        prog = Execute("p", [x, b], [out])
        sched = Schedule(prog)
        with pytest.raises(TransformError):
            sched.reorder(a2a, out)

    def test_reorder_rejects_fused_exchange(self):
        # moving an AllToAll out of a fused block would leave the block
        # without its communication op
        prog, x, a2a, scaled, shifted = _exchange_program()
        sched = Schedule(prog)
        results = sched.reorder(a2a, scaled, shifted)
        block = sched.fuse(*results, policy=AllToAllFuse)
        fused_a2a = next(m for m in block.members if isinstance(m, AllToAll))
        with pytest.raises(TransformError):
            sched.reorder(fused_a2a)

    def test_reorder_rejects_unrelated_region_op(self, rng):
        # an op that never consumes the exchange must not be wrapped in
        # a spurious AllToAll (it would permute unrelated values)
        n = 4
        W = world(n)
        x = Tensor(FP32, (n * 2, 3), Local, W, RANK, name="x")
        y = Tensor(FP32, (n * 2, 3), Local, W, RANK, name="y")
        a2a = AllToAll(x, 0, name="exchange")
        out = Binary("*", a2a, Const(0.5, W, FP32), name="out")
        unrel = Unary("tanh", y, name="unrel")
        prog = Execute("p", [x, y], [out, unrel])
        sched = Schedule(prog)
        with pytest.raises(TransformError):
            sched.reorder(a2a, out, unrel)

    def test_autotuner_survives_fuse_then_reorder_program(self):
        # x -> ReLU -> AllToAll -> scale: the search must not crash when
        # a2afuse runs before a2areorder would (the move is simply not
        # offered for a fused exchange)
        from repro.core.autotuner import Autotuner

        n = 4
        W = world(n)
        x = Tensor(FP32, (n * 2, 3), Local, W, RANK, name="x")
        act = Unary("relu", x, name="act")
        a2a = AllToAll(act, 0, name="exchange")
        out = Binary("*", a2a, Const(0.5, W, FP32), name="out")
        prog = Execute("p", [x], [out])
        result = Autotuner(Cluster(1)).tune(prog)
        assert result.candidates

    def test_reorder_rejects_per_rank_scalar_partner(self):
        # Norm of a Local tensor is 0-d but differs per rank: moving it
        # across the exchange would scale chunks by the source rank's
        # norm instead of the destination's
        from repro.core import Norm

        n = 4
        W = world(n)
        x = Tensor(FP32, (n * 2, 3), Local, W, RANK, name="x")
        y = Tensor(FP32, (5,), Local, W, RANK, name="y")
        a2a = AllToAll(x, 0, name="exchange")
        out = Binary("*", a2a, Norm(y, name="nrm"), name="out")
        prog = Execute("p", [x, y], [out])
        sched = Schedule(prog)
        with pytest.raises(TransformError):
            sched.reorder(a2a, out)

    def test_reorder_allows_replicated_scalar_partner(self, rng):
        # ...but a replicated 0-d value is the same everywhere: commutes
        from repro.core import Scalar

        n = 4
        W = world(n)
        x = Tensor(FP32, (n * 2, 3), Local, W, RANK, name="x")
        s = Scalar(FP32, name="s", group=W)
        a2a = AllToAll(x, 0, name="exchange")
        out = Binary("*", a2a, s, name="out")
        prog = Execute("p", [x, s], [out])
        inputs = {"x": rng.randn(n, n * 2, 3), "s": 0.5}
        ref = Executor().run(prog, inputs).output("out")
        sched = Schedule(prog)
        sched.reorder(a2a, out)
        out_name = sched.program.outputs[0].name
        got = Executor().run(sched.program, inputs).output(out_name)
        np.testing.assert_allclose(ref, got, rtol=1e-6)

    def test_reorder_rejects_dropout(self):
        n = 4
        W = world(n)
        x = Tensor(FP32, (n * 2, 3), Local, W, RANK, name="x")
        a2a = AllToAll(x, 0, name="exchange")
        d = Dropout(a2a, 0.5, name="drop")
        prog = Execute("p", [x], [d])
        sched = Schedule(prog)
        with pytest.raises(TransformError):
            sched.reorder(a2a, d)

    def test_reorder_allows_bias_off_exchange_dim(self, rng):
        # a replicated bias broadcast along the non-exchanged dim commutes
        n = 4
        W = world(n)
        x = Tensor(FP32, (n * 2, 3), Local, W, RANK, name="x")
        b = Tensor(FP32, (3,), Replicated, W, name="b")
        a2a = AllToAll(x, 0, name="exchange")
        out = Binary("+", a2a, b, name="out")
        prog = Execute("p", [x, b], [out])
        inputs = {"x": rng.randn(n, n * 2, 3), "b": rng.randn(3)}
        ref = Executor().run(prog, inputs).output("out")
        sched = Schedule(prog)
        sched.reorder(a2a, out)
        out_name = sched.program.outputs[0].name
        got = Executor().run(sched.program, inputs).output(out_name)
        np.testing.assert_allclose(ref, got, rtol=1e-6)

    def test_fuse_policy(self):
        prog, x, a2a, scaled, shifted = _exchange_program()
        sched = Schedule(prog)
        results = sched.reorder(a2a, scaled, shifted)
        new_a2a = results[-1]
        block = sched.fuse(*results, policy=AllToAllFuse)
        plan = sched.plan()
        assert plan.num_launches == 1
        assert plan.kernels[0].kind.value == "fused_collective"

    def test_fuse_rejects_two_exchanges(self):
        n = 4
        W = world(n)
        x = Tensor(FP32, (n * 2, 3), Local, W, RANK, name="x")
        a = AllToAll(x, 0, name="a")
        b = AllToAll(a, 0, name="b")
        prog = Execute("p", [x], [b])
        sched = Schedule(prog)
        with pytest.raises(TransformError):
            sched.fuse(a, b, policy=AllToAllFuse)

    def test_fuse_rejects_matmul(self):
        n = 4
        W = world(n)
        x = Tensor(FP32, (n, 8), Local, W, RANK, name="x")
        w = Tensor(FP32, (8, 8), Local, W, RANK, name="w")
        a = AllToAll(x, 0, name="a")
        mm = MatMul(a, w, name="mm")
        prog = Execute("p", [x, w], [mm])
        sched = Schedule(prog)
        with pytest.raises(TransformError):
            sched.fuse(a, mm, policy=AllToAllFuse)

    def test_overlap_chain_with_alltoall(self):
        prog, x, a2a, scaled, shifted = _exchange_program()
        sched = Schedule(prog)
        sched.overlap(a2a, scaled)
        plan = sched.plan()
        assert len(plan.overlap_groups) == 1

    def test_autotuner_reorders_join_region(self, rng):
        # b = ReLU(a2a) + Tanh(a2a): a join must not defeat the region
        # discovery, whatever order the consumers are visited in
        n = 4
        W = world(n)
        x = Tensor(FP32, (n * 2, 3), Local, W, RANK, name="x")
        a2a = AllToAll(x, 0, name="exchange")
        f1 = Unary("relu", a2a, name="f1")
        f2 = Unary("tanh", a2a, name="f2")
        b = Binary("+", f1, f2, name="b")
        prog = Execute("p", [x], [b])
        from repro.core.autotuner import Autotuner

        result = Autotuner(Cluster(1)).tune(prog)
        names = [c.name for c in result.candidates]
        assert any("a2areorder" in nm for nm in names), names
        # and the reordered candidate computes the same numbers
        inputs = {"x": rng.randn(n, n * 2, 3)}
        ref = Executor().run(prog, inputs).output("b")
        cand = next(
            c for c in result.candidates if "a2areorder" in c.name
        )
        out_name = cand.schedule.program.outputs[0].name
        got = Executor().run(cand.schedule.program, inputs).output(out_name)
        np.testing.assert_allclose(ref, got, rtol=1e-6)

    def test_autotuner_reorders_partial_region(self, rng):
        # ReLU(a2a) feeding a MatMul: the non-commuting MatMul bounds
        # the region but must not empty it
        n = 4
        W = world(n)
        x = Tensor(FP32, (n, 8), Local, W, RANK, name="x")
        w = Tensor(FP32, (8, 8), Local, W, RANK, name="w")
        a2a = AllToAll(x, 0, name="exchange")
        act = Unary("relu", a2a, name="act")
        mm = MatMul(act, w, name="mm")
        prog = Execute("p", [x, w], [mm])
        from repro.core.autotuner import Autotuner

        result = Autotuner(Cluster(1)).tune(prog)
        names = [c.name for c in result.candidates]
        assert any("a2areorder" in nm for nm in names), names
        inputs = {"x": rng.randn(n, n, 8), "w": rng.randn(n, 8, 8)}
        ref = Executor().run(prog, inputs).output("mm")
        cand = next(c for c in result.candidates if "a2areorder" in c.name)
        out_name = cand.schedule.program.outputs[0].name
        got = Executor().run(cand.schedule.program, inputs).output(out_name)
        np.testing.assert_allclose(ref, got, rtol=1e-6)

    def test_autotuner_can_fuse_both_exchanges(self, rng):
        # gating scale before dispatch AND averaging before combine:
        # one search path must fuse each exchange with its producer
        n = 4
        W = world(n)
        x = Tensor(FP32, (n * 2, 3), Local, W, RANK, name="x")
        gated = Binary("*", x, Const(0.5, W, FP32), name="gated")
        disp = AllToAll(gated, 0, name="disp")
        scaled = Binary("*", disp, Const(0.25, W, FP32), name="scaled")
        comb = AllToAll(scaled, 0, name="comb")
        prog = Execute("p", [x], [comb])
        from repro.core.autotuner import Autotuner

        result = Autotuner(Cluster(1)).tune(prog)
        assert any(
            c.name.count("a2afuse") == 2 for c in result.candidates
        ), [c.name for c in result.candidates]
        inputs = {"x": rng.randn(n, n * 2, 3)}
        ref = Executor().run(prog, inputs).output("comb")
        cand = next(
            c for c in result.candidates if c.name.count("a2afuse") == 2
        )
        out_name = cand.schedule.program.outputs[0].name
        got = Executor().run(cand.schedule.program, inputs).output(out_name)
        np.testing.assert_allclose(ref, got, rtol=1e-6)

    def test_codegen_library_alltoall(self, rng):
        prog, x, a2a, _, _ = _exchange_program()
        from repro.core.codegen import CodeGenerator

        gen = CodeGenerator().generate(Schedule(prog))
        inputs = {"x": rng.randn(4, 8, 3)}
        ref = Executor().run(prog, inputs).output("shifted")
        got = gen.run(inputs).output("shifted")
        np.testing.assert_allclose(ref, got, rtol=1e-6)

    def test_codegen_fused_and_hierarchical(self, rng):
        from repro.core.codegen import CodeGenerator

        prog, x, a2a, scaled, shifted = _exchange_program()
        inputs = {"x": rng.randn(4, 8, 3)}
        ref = Executor().run(prog, inputs).output("shifted")

        sched = Schedule(prog)
        results = sched.reorder(a2a, scaled, shifted)
        sched.fuse(*results, policy=AllToAllFuse)
        gen = CodeGenerator().generate(sched)
        out_name = sched.program.outputs[0].name
        np.testing.assert_allclose(
            ref, gen.run(inputs).output(out_name), rtol=1e-6
        )

        prog2, x2, a2a2, _, _ = _exchange_program()
        sched2 = Schedule(prog2)
        sched2.split(a2a2, A2ASplitHierarchical, node_size=2)
        gen2 = CodeGenerator().generate(sched2)
        np.testing.assert_allclose(
            ref, gen2.run(inputs).output("shifted"), rtol=1e-6
        )


class TestCostModel:
    @given(
        e1=st.integers(10, 28),
        delta=st.integers(1, 4),
        nodes=st.sampled_from([1, 2, 4]),
        proto=st.sampled_from([LL, LL128, SIMPLE]),
    )
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_bytes(self, e1, delta, nodes, proto):
        cluster = Cluster(nodes)
        ring = build_ring(cluster, world(cluster.num_ranks))
        t1 = collective_time("alltoall", 2**e1, cluster, ring, proto, 8)
        t2 = collective_time(
            "alltoall", 2 ** (e1 + delta), cluster, ring, proto, 8
        )
        assert t2 >= t1

    @given(
        e=st.integers(10, 28),
        proto=st.sampled_from([LL, LL128, SIMPLE]),
        phase=st.sampled_from(["alltoall_intra", "alltoall_inter"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_phases_monotone_in_bytes(self, e, proto, phase):
        cluster = Cluster(4)
        ring = build_ring(cluster, world(cluster.num_ranks))
        t1 = collective_time(phase, 2**e, cluster, ring, proto, 8)
        t2 = collective_time(phase, 2 ** (e + 2), cluster, ring, proto, 8)
        assert t2 >= t1

    def test_reduces_to_p2p_at_n2(self):
        """At n=2 the AllToAll is a single pairwise exchange of half the
        buffer: one fabric hop plus half the bytes at fabric bandwidth."""
        cluster = Cluster(1)
        ring = build_ring(cluster, ProcessGroup(0, 2, 16))
        nbytes = 2**24
        channels = 16
        t = collective_time(
            "alltoall", nbytes, cluster, ring, SIMPLE, channels,
            include_setup=False,
        )
        bw = min(
            cluster.node.gpu_fabric_bandwidth,
            channels * PER_CHANNEL_BANDWIDTH,
        ) * SIMPLE.bw_efficiency * IMPLEMENTATION_EFFICIENCY
        expected = SIMPLE.hop_latency_intra + 0.5 * nbytes / bw
        assert t == pytest.approx(expected, rel=1e-9)
        # and it is comparable to a p2p send of half the buffer
        p2p = p2p_time(nbytes // 2, cluster, intra_node=True,
                       include_setup=False)
        assert 0.2 * p2p <= t <= 5 * p2p

    def test_matches_wire_bytes_single_node(self):
        # single node: (n-1)/n of the buffer at fabric bandwidth
        cluster = Cluster(1)
        n = cluster.num_ranks
        ring = build_ring(cluster, world(n))
        nbytes = 2**26
        t = collective_time(
            "alltoall", nbytes, cluster, ring, SIMPLE, 16,
            include_setup=False,
        )
        bw = min(
            cluster.node.gpu_fabric_bandwidth,
            16 * PER_CHANNEL_BANDWIDTH,
        ) * SIMPLE.bw_efficiency * IMPLEMENTATION_EFFICIENCY
        expected = (
            (n - 1) * SIMPLE.hop_latency_intra
            + (n - 1) / n * nbytes / bw
        )
        assert t == pytest.approx(expected, rel=1e-9)

    def test_zero_bytes_costs_setup_only(self):
        cluster = Cluster(1)
        ring = build_ring(cluster, world(16))
        t = collective_time("alltoall", 0, cluster, ring, SIMPLE, 8)
        assert t == pytest.approx(CALL_SETUP_OVERHEAD)

    def test_choose_config_supports_alltoall(self):
        cluster = Cluster(2)
        cfg, t = choose_config(
            "alltoall", 2**20, cluster, world(cluster.num_ranks)
        )
        assert t > 0
        assert cfg.algorithm.value == "ring"

    def test_hierarchical_beats_flat_small_multinode(self):
        # fewer inter-node messages win while latency dominates
        cluster = Cluster(4)
        ring = build_ring(cluster, world(cluster.num_ranks))
        nbytes = 2**18

        def best(kind):
            return min(
                collective_time(kind, nbytes, cluster, ring, p, c)
                for p in (LL, LL128, SIMPLE)
                for c in (8, 16, 32)
            )

        assert best("alltoall_intra") + best("alltoall_inter") < best(
            "alltoall"
        )

    def test_flat_beats_hierarchical_large_multinode(self):
        # the flat exchange moves less data over the fast fabric
        cluster = Cluster(4)
        ring = build_ring(cluster, world(cluster.num_ranks))
        nbytes = 2**30

        def best(kind):
            return min(
                collective_time(kind, nbytes, cluster, ring, p, c)
                for p in (LL, LL128, SIMPLE)
                for c in (8, 16, 32)
            )

        assert best("alltoall") < best("alltoall_intra") + best(
            "alltoall_inter"
        )

    def test_misaligned_hierarchy_gets_no_fabric_discount(self):
        # a group offset across node boundaries cannot realize the
        # intra phase on NVSwitch; it must not undercut the flat price
        cluster = Cluster(2)
        offset = build_ring(cluster, ProcessGroup(8, 16, 32))
        nbytes = 2**24
        flat = collective_time("alltoall", nbytes, cluster, offset, SIMPLE, 16)
        intra = collective_time(
            "alltoall_intra", nbytes, cluster, offset, SIMPLE, 16,
            node_size=16,
        )
        inter = collective_time(
            "alltoall_inter", nbytes, cluster, offset, SIMPLE, 16,
            node_size=16,
        )
        assert intra + inter >= flat

    def test_sub_node_decomposition_priced_as_fabric(self):
        # node_size smaller than the physical node: both phases ride
        # NVSwitch, so the pair costs ~two fabric passes, not NIC rates
        cluster = Cluster(1)
        ring = build_ring(cluster, world(16))
        nbytes = 2**24
        flat = collective_time("alltoall", nbytes, cluster, ring, SIMPLE, 16)
        hier = collective_time(
            "alltoall_intra", nbytes, cluster, ring, SIMPLE, 16, node_size=4
        ) + collective_time(
            "alltoall_inter", nbytes, cluster, ring, SIMPLE, 16, node_size=4
        )
        assert hier < 2.2 * flat  # NIC pricing would be ~10x

    def test_uneven_placement_counts_max_co_resident_senders(self):
        # ranks 12..27 on 16-GPU nodes put 12 ranks on one node: the
        # NIC share must divide by 12, not the ceil-average 8
        cluster = Cluster(4)
        from repro.nccl.cost_model import _ring_node_grid

        ring = build_ring(cluster, ProcessGroup(12, 16, 64))
        k, m = _ring_node_grid(cluster, ring)
        assert (k, m) == (2, 12)

    def test_degenerate_decomposition_never_undercuts_flat_multinode(self):
        # node_size=1 makes intra an identity and inter the flat
        # pairwise exchange, so it cannot be priced faster than flat:
        # NIC shares divide by physical co-residency, not logical m
        cluster = Cluster(2)
        ring = build_ring(cluster, world(32))
        nbytes = 2**24
        flat = collective_time("alltoall", nbytes, cluster, ring, SIMPLE, 16)
        for ns in (1, 2, 8):
            hier = collective_time(
                "alltoall_intra", nbytes, cluster, ring, SIMPLE, 16,
                node_size=ns,
            ) + collective_time(
                "alltoall_inter", nbytes, cluster, ring, SIMPLE, 16,
                node_size=ns,
            )
            assert hier >= 0.95 * flat, ns

    def test_single_node_hierarchy_adds_only_overhead(self):
        cluster = Cluster(1)
        ring = build_ring(cluster, world(16))
        nbytes = 2**22
        flat = collective_time("alltoall", nbytes, cluster, ring, SIMPLE, 8)
        intra = collective_time(
            "alltoall_intra", nbytes, cluster, ring, SIMPLE, 8
        )
        inter = collective_time(
            "alltoall_inter", nbytes, cluster, ring, SIMPLE, 8
        )
        assert inter == pytest.approx(CALL_SETUP_OVERHEAD)
        assert intra + inter == pytest.approx(
            flat + CALL_SETUP_OVERHEAD, rel=1e-6
        )
