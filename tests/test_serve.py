"""Tuning-as-a-service: schedule cache + async serving layer.

Covers the PR 10 surface end to end:

* ``ScheduleCache`` round trips, corrupt/truncated/tampered records
  (deleted + counted, never raised), key-field mismatches, eviction,
  and concurrent cross-process writers of the same pair;
* the ``Autotuner(schedule_cache=...)`` hook: cold tune writes a
  record, warm tune is a cache hit with the same winner, and the
  artifact-backed cached candidate executes bit-identically to the
  freshly searched schedule (also via the ``repro-run`` CLI digest);
* ``TuningService``: memory/disk/tuned/coalesced sources, in-flight
  coalescing under a concurrent burst, request validation, counters,
  and the ``repro-serve`` CLI.

Service tests inject a ``ThreadPoolExecutor`` pool so no worker
processes spawn (the tuner is pure Python, so a thread pool exercises
the identical code path); one integration test uses the real default
spawn ``ProcessPoolExecutor``.
"""

import asyncio
import json
import os
import subprocess
import sys

import pytest
from concurrent.futures import ThreadPoolExecutor

from repro.cli import _digest, _seeded_inputs
from repro.cli import main as run_cli_main
from repro.cluster import Cluster
from repro.core.autotuner import Autotuner
from repro.observe.metrics import MetricsRegistry
from repro.runtime.executor import Executor
from repro.serve import (
    CachedSchedule,
    ScheduleCache,
    ScheduleCacheError,
    ServeError,
    TuneRequest,
    TuningService,
    request_key,
)
from repro.serve.cli import main as serve_cli_main
from repro.workloads.adam import AdamWorkload

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def tune_into(cache, num_elements=64, world_size=4, nodes=1, depth=2):
    """Cold-tune a small Adam program through the cache hook."""
    program = AdamWorkload.build(num_elements, world_size).program
    return Autotuner(
        Cluster(nodes), max_depth=depth, schedule_cache=cache
    ).tune(program)


@pytest.fixture(scope="module")
def record_text(tmp_path_factory):
    """JSON text of one valid cache record (tuned once per module)."""
    cache = ScheduleCache(str(tmp_path_factory.mktemp("seedcache")))
    result = tune_into(cache)
    with open(cache.record_path(*result.cache_key)) as f:
        return f.read()


def install(cache, text):
    """Drop valid record ``text`` into ``cache``; returns (key, path)."""
    doc = json.loads(text)
    key = (doc["structural_hash"], doc["topology"])
    os.makedirs(cache.path, exist_ok=True)
    path = cache.record_path(*key)
    with open(path, "w") as f:
        f.write(text)
    return key, path


def thread_service(cache, **kw):
    """A TuningService whose misses tune on threads (no spawn cost)."""
    kw.setdefault("max_depth", 2)
    return TuningService(cache, pool=ThreadPoolExecutor(2), **kw)


class TestScheduleCache:
    def test_roundtrip_and_counters(self, tmp_path, record_text):
        cache = ScheduleCache(str(tmp_path))
        key, _ = install(cache, record_text)
        rec = cache.get(*key)
        assert isinstance(rec, CachedSchedule)
        assert (rec.structural_hash, rec.topology) == key
        assert rec.artifact.program is not None
        assert rec.predicted_time > 0
        assert cache.metrics.get("serve.cache.hits") == 1
        assert len(cache) == 1

    def test_missing_record_is_a_counted_miss(self, tmp_path):
        cache = ScheduleCache(str(tmp_path))
        assert cache.get("no-such-hash", "DGX-2x16/nodes1") is None
        assert cache.metrics.get("serve.cache.misses") == 1
        assert cache.metrics.get("serve.cache.corrupt") == 0

    @pytest.mark.parametrize(
        "mangle",
        [
            lambda text: "not json at all {",
            lambda text: text[: len(text) // 2],  # truncated writer crash
            lambda text: "{}",
            lambda text: json.dumps(
                {**json.loads(text), "format": "something-else"}
            ),
            lambda text: json.dumps(
                {**json.loads(text), "schema_version": 999}
            ),
        ],
        ids=["garbage", "truncated", "empty-doc", "bad-format", "bad-schema"],
    )
    def test_corrupt_record_deleted_and_missed(
        self, tmp_path, record_text, mangle
    ):
        cache = ScheduleCache(str(tmp_path))
        key, path = install(cache, record_text)
        with open(path, "w") as f:
            f.write(mangle(record_text))
        assert cache.get(*key) is None
        assert not os.path.exists(path), "corrupt record must be deleted"
        assert cache.metrics.get("serve.cache.corrupt") == 1
        assert cache.metrics.get("serve.cache.misses") == 1
        # and the miss is clean: a re-put serves again
        install(cache, record_text)
        assert cache.get(*key) is not None

    def test_tampered_artifact_payload_is_corrupt(
        self, tmp_path, record_text
    ):
        # flip a byte inside the embedded artifact: content-hash
        # verification must catch it and read as a miss, not serve it
        cache = ScheduleCache(str(tmp_path))
        doc = json.loads(record_text)
        doc["artifact"]["payload"]["program"] = dict(
            doc["artifact"]["payload"]["program"], name="evil"
        )
        key, path = install(cache, json.dumps(doc))
        assert cache.get(*key) is None
        assert cache.metrics.get("serve.cache.corrupt") == 1
        assert not os.path.exists(path)

    def test_key_field_mismatch_is_corrupt(self, tmp_path, record_text):
        # a record renamed onto the wrong key must not be served
        cache = ScheduleCache(str(tmp_path))
        doc = json.loads(record_text)
        other = ("f" * 64, doc["topology"])
        path = cache.record_path(*other)
        os.makedirs(cache.path, exist_ok=True)
        with open(path, "w") as f:
            f.write(record_text)
        assert cache.get(*other) is None
        assert cache.metrics.get("serve.cache.corrupt") == 1

    def test_eviction_keeps_newest(self, tmp_path, record_text):
        cache = ScheduleCache(str(tmp_path), max_entries=2)
        doc = json.loads(record_text)
        keys = []
        for i in range(4):
            fake = dict(doc, structural_hash="%064x" % i)
            rec = CachedSchedule.from_json(fake)
            path = cache.put(rec)
            os.utime(path, (1_000_000 + i, 1_000_000 + i))
            keys.append((fake["structural_hash"], fake["topology"]))
        assert len(cache) == 2
        assert cache.metrics.get("serve.cache.evictions") == 2
        assert cache.get(*keys[0]) is None  # oldest gone
        assert cache.get(*keys[3]) is not None  # newest kept
        with pytest.raises(ScheduleCacheError):
            ScheduleCache(str(tmp_path), max_entries=0)

    def test_clear_and_stats(self, tmp_path, record_text):
        cache = ScheduleCache(str(tmp_path))
        install(cache, record_text)
        stats = cache.stats()
        assert stats["serve.cache.entries"] == 1
        assert stats["serve.cache.bytes"] > 0
        assert cache.clear() == 1
        assert len(cache) == 0
        assert cache.clear() == 0

    def test_concurrent_cross_process_writers(self, tmp_path):
        # two fresh interpreters race to tune the same signature into
        # one directory: both must succeed, and the survivor must be a
        # loadable record for the request's key.
        script = (
            "import sys\n"
            "from repro.cluster import Cluster\n"
            "from repro.core.autotuner import Autotuner\n"
            "from repro.serve import ScheduleCache\n"
            "from repro.workloads.adam import AdamWorkload\n"
            "cache = ScheduleCache(sys.argv[1])\n"
            "program = AdamWorkload.build(64, 4).program\n"
            "r = Autotuner(Cluster(1), max_depth=2,"
            " schedule_cache=cache).tune(program)\n"
            "print(r.best.name, r.best.time)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(tmp_path)],
                env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                text=True,
            )
            for _ in range(2)
        ]
        outs = [p.communicate() for p in procs]
        assert all(p.returncode == 0 for p in procs), outs
        # deterministic search: both report the same winner
        assert outs[0][0] == outs[1][0]
        cache = ScheduleCache(str(tmp_path))
        assert len(cache) == 1
        key = request_key(
            TuneRequest.make("adam", num_elements=64, world_size=4)
        )
        assert cache.get(*key) is not None


class TestAutotunerCacheHook:
    def test_cold_then_warm(self, tmp_path):
        cache = ScheduleCache(str(tmp_path))
        cold = tune_into(cache)
        assert not cold.cached
        assert cold.cache_key is not None
        assert len(cache) == 1
        warm = tune_into(cache)
        assert warm.cached
        assert warm.cache_key == cold.cache_key
        assert warm.best.name == cold.best.name
        assert warm.best.time == cold.best.time
        # the hit came back as an Artifact-backed candidate (the tuned
        # schedule's own structural hash, not the request key's)
        assert warm.best.schedule.structural_hash.startswith("sha256:")

    def test_topology_splits_records(self, tmp_path):
        cache = ScheduleCache(str(tmp_path))
        one = tune_into(cache, nodes=1)
        two = tune_into(cache, nodes=2)
        assert one.cache_key != two.cache_key
        assert len(cache) == 2
        assert not two.cached  # different topology missed the nodes1 record

    def test_cached_candidate_executes_identically(self, tmp_path):
        cache = ScheduleCache(str(tmp_path))
        fresh = tune_into(cache)
        served = tune_into(cache)
        assert served.cached
        program = AdamWorkload.build(64, 4).program
        ex = Executor()
        inputs = _seeded_inputs(program, seed=3)
        a = ex.run_lowered(
            fresh.best.schedule, inputs, allow_downcast=True
        )
        b = ex.run_lowered(
            served.best.schedule, inputs, allow_downcast=True
        )
        assert _digest(a) == _digest(b)


def run_service(coro):
    return asyncio.run(coro)


class TestTuningService:
    def test_sources_tuned_then_memory_then_disk(self, tmp_path):
        req = TuneRequest.make("adam", num_elements=64, world_size=4)

        async def first_process():
            async with thread_service(ScheduleCache(str(tmp_path))) as svc:
                miss = await svc.submit(req)
                hit = await svc.submit(req)
                return miss, hit, svc.stats()

        miss, hit, stats = run_service(first_process())
        assert miss.source == "tuned" and not miss.hit
        assert hit.source == "memory" and hit.hit
        assert hit.schedule_name == miss.schedule_name
        assert hit.artifact.content_hash == miss.artifact.content_hash
        assert stats["serve.tunes"] == 1
        assert stats["serve.hits.memory"] == 1

        async def second_process():
            async with thread_service(ScheduleCache(str(tmp_path))) as svc:
                return await svc.submit(req), await svc.submit(req)

        disk, mem = run_service(second_process())
        assert disk.source == "disk"
        assert mem.source == "memory"
        assert disk.schedule_name == miss.schedule_name

    def test_burst_coalesces_to_one_tune(self, tmp_path):
        req = TuneRequest.make("adam", num_elements=64, world_size=4)

        async def burst():
            async with thread_service(ScheduleCache(str(tmp_path))) as svc:
                results = await svc.submit_many([req] * 6)
                return results, svc.metrics

        results, metrics = run_service(burst())
        sources = sorted(r.source for r in results)
        assert sources.count("tuned") == 1
        assert sources.count("coalesced") == 5
        assert metrics.get("serve.tunes") == 1
        assert metrics.get("serve.coalesced") == 5
        assert metrics.get("serve.misses") == 6
        # every rider got the same schedule
        assert len({r.schedule_name for r in results}) == 1

    def test_distinct_requests_do_not_coalesce(self, tmp_path):
        reqs = [
            TuneRequest.make("adam", num_elements=n, world_size=4)
            for n in (64, 128)
        ]

        async def go():
            async with thread_service(ScheduleCache(str(tmp_path))) as svc:
                await svc.submit_many(reqs)
                return svc.metrics

        metrics = run_service(go())
        assert metrics.get("serve.tunes") == 2
        assert metrics.get("serve.coalesced") == 0

    def test_shared_metrics_registry(self, tmp_path):
        reg = MetricsRegistry()
        cache = ScheduleCache(str(tmp_path))
        svc = thread_service(cache, metrics=reg)
        assert cache.metrics is reg  # cache counters join the service's
        svc.close()

    def test_closed_service_rejects(self, tmp_path):
        svc = thread_service(ScheduleCache(str(tmp_path)))
        svc.close()
        req = TuneRequest.make("adam", num_elements=64, world_size=4)
        with pytest.raises(ServeError):
            run_service(svc.submit(req))
        svc.close()  # idempotent

    def test_default_process_pool_integration(self, tmp_path):
        # the real spawn-context ProcessPoolExecutor path, once
        req = TuneRequest.make("adam", num_elements=64, world_size=4)

        async def go():
            async with TuningService(
                ScheduleCache(str(tmp_path)),
                max_workers=1, max_depth=2,
            ) as svc:
                return await svc.submit(req)

        res = run_service(go())
        assert res.source == "tuned"
        assert ScheduleCache(str(tmp_path)).get(
            res.structural_hash, res.topology
        ) is not None


class TestTuneRequest:
    def test_validation(self):
        with pytest.raises(ServeError):
            TuneRequest.make("nope", num_elements=64, world_size=4)
        with pytest.raises(ServeError):
            TuneRequest.make("adam", num_elements=64)  # missing param
        with pytest.raises(ServeError):
            TuneRequest.make(
                "adam", num_elements=64, world_size=4, bogus=1
            )
        with pytest.raises(Exception):
            TuneRequest.make(
                "adam", num_elements=64, world_size=4, dtype="FP13"
            )
        with pytest.raises(ServeError):
            TuneRequest.make(
                "adam", num_elements=64, world_size=4, nodes=0
            )

    def test_spec_roundtrip_and_hashability(self):
        req = TuneRequest.make(
            "moe", capacity=3, model_dim=6, ffn_dim=8, world_size=4
        )
        assert TuneRequest.from_spec(req.spec()) == req
        assert len({req, TuneRequest.from_spec(req.spec())}) == 1
        assert "moe" in req.describe()

    def test_every_workload_builds(self):
        reqs = [
            TuneRequest.make("adam", num_elements=64, world_size=4),
            TuneRequest.make("lamb", num_elements=64, world_size=4),
            TuneRequest.make(
                "moe", capacity=3, model_dim=6, ffn_dim=8, world_size=4
            ),
            TuneRequest.make(
                "attention", batch=2, seq=4, hidden=8, world_size=4
            ),
        ]
        keys = {request_key(r) for r in reqs}
        assert len(keys) == len(reqs)  # distinct programs, distinct keys

    def test_request_key_stable_across_processes(self):
        req = TuneRequest.make("adam", num_elements=64, world_size=4)
        script = (
            "from repro.serve import TuneRequest, request_key\n"
            "req = TuneRequest.from_spec("
            + json.dumps(req.spec())
            + ")\n"
            "print(*request_key(req))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        out = subprocess.run(
            [sys.executable, "-c", script], env=env,
            capture_output=True, text=True, check=True,
        ).stdout.split()
        assert tuple(out) == request_key(req)


class TestServeCLI:
    def test_tune_then_hit_then_stats_clear(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        argv = [
            "--cache", cache_dir, "tune",
            "--workload", "adam",
            "--set", "num_elements=64", "--set", "world_size=4",
            "--max-depth", "2", "--workers", "1",
            "--save", str(tmp_path / "served.json"),
        ]
        assert serve_cli_main(argv) == 0
        out = capsys.readouterr().out
        assert "source:     tuned" in out
        assert os.path.exists(tmp_path / "served.json")

        assert serve_cli_main(argv[:-2]) == 0  # same request, no --save
        assert "source:     disk" in capsys.readouterr().out

        assert serve_cli_main(["--cache", cache_dir, "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries:   1" in out

        assert serve_cli_main(["--cache", cache_dir, "clear"]) == 0
        assert "removed 1" in capsys.readouterr().out

    def test_replay(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        reqs = [
            TuneRequest.make("adam", num_elements=64, world_size=4).spec()
        ] * 3
        path = tmp_path / "reqs.json"
        path.write_text(json.dumps(reqs))
        assert serve_cli_main(
            ["--cache", cache_dir, "replay", str(path),
             "--max-depth", "2", "--workers", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "served 3 requests" in out
        assert "tuner invocations: 1" in out

    def test_errors_exit_1(self, tmp_path, capsys):
        assert serve_cli_main(
            ["tune", "--workload", "bogus", "--set", "x=1"]
        ) == 1
        assert "error:" in capsys.readouterr().err
        assert serve_cli_main(
            ["tune", "--workload", "adam", "--set", "num_elements"]
        ) == 1
        assert serve_cli_main(
            ["replay", str(tmp_path / "missing.json")]
        ) == 1

    def test_cli_digest_identity(self, tmp_path, capsys):
        """The served artifact reproduces the freshly tuned digest
        through the public ``repro-run`` CLI."""
        cache_dir = str(tmp_path / "cache")
        served_path = str(tmp_path / "served.json")
        assert serve_cli_main(
            ["--cache", cache_dir, "tune", "--workload", "adam",
             "--set", "num_elements=64", "--set", "world_size=4",
             "--max-depth", "2", "--workers", "1",
             "--save", served_path]
        ) == 0
        capsys.readouterr()

        fresh = Autotuner(Cluster(1), max_depth=2).tune(
            AdamWorkload.build(64, 4).program
        )
        from repro.core.artifact import Artifact

        fresh_path = str(tmp_path / "fresh.json")
        Artifact.from_lowered(
            fresh.best.schedule.lowered(cluster=Cluster(1))
        ).save(fresh_path)

        digests = []
        for path in (served_path, fresh_path):
            assert run_cli_main(["run", path, "--seed", "5"]) == 0
            out = capsys.readouterr().out
            digests.append(
                [ln for ln in out.splitlines() if "digest" in ln]
            )
        assert digests[0] == digests[1]
