"""Tests for reordering computations with a Broadcast (§3.2 names
"an AllGather or a Broadcast")."""

import numpy as np
import pytest

from repro.core import (
    FP32,
    RANK,
    AllReduce,
    Binary,
    Broadcast,
    Dropout,
    Execute,
    Local,
    Reduce,
    Replicated,
    Tensor,
    world,
)
from repro.core import ops
from repro.core.transforms import ARSplitReduceBroadcast, Schedule
from repro.errors import TransformError
from repro.runtime import Executor


def build_program(n=4, N=16, seed=3):
    W = world(n)
    g = Tensor(FP32, (N,), Local, W, RANK, name="g")
    r = Tensor(FP32, (N,), Replicated, W, name="r")
    ar = AllReduce("+", g, name="ar")
    scaled = Binary("*", ar, 0.5, name="scaled")
    shifted = Binary("+", scaled, r, name="shifted")
    prog = Execute("p", [g, r], [shifted])
    return prog, ar, scaled, shifted


class TestBroadcastReorder:
    def test_computation_moves_before_broadcast(self):
        prog, ar, scaled, shifted = build_program()
        sched = Schedule(prog)
        red, bc = sched.split(ar, ARSplitReduceBroadcast)
        results = sched.reorder(bc, scaled, shifted)
        assert isinstance(results[-1], ops.Broadcast)
        # the final op is now a Broadcast of the computed value
        assert isinstance(sched.program.outputs[0], ops.Broadcast)
        # computations consume the Reduce output directly
        ops_now = sched.program.operations
        kinds = [type(e).__name__ for e in ops_now]
        assert kinds.count("Broadcast") == 1

    def test_semantics_preserved(self):
        rng = np.random.RandomState(0)
        n, N = 4, 16
        inputs = {"g": rng.randn(n, N), "r": rng.randn(N)}
        prog, ar, scaled, shifted = build_program()
        ref = Executor().run(prog, inputs).output("shifted")

        prog2, ar2, scaled2, shifted2 = build_program()
        sched = Schedule(prog2)
        red, bc = sched.split(ar2, ARSplitReduceBroadcast)
        sched.reorder(bc, scaled2, shifted2)
        got = Executor().run(sched.program, inputs)
        out = got.output(sched.program.outputs[0].name)
        np.testing.assert_allclose(out, ref, rtol=1e-6)

    def test_semantics_preserved_with_dropout(self):
        rng = np.random.RandomState(1)
        n, N = 4, 32
        W = world(n)
        g = Tensor(FP32, (N,), Local, W, RANK, name="g")
        ar = AllReduce("+", g, name="ar")
        d = Dropout(ar, 0.4, seed=99, name="d")
        prog = Execute("p", [g], [d])
        inputs = {"g": rng.randn(n, N)}
        ref = Executor().run(prog, inputs).output("d")

        g2 = Tensor(FP32, (N,), Local, W, RANK, name="g")
        ar2 = AllReduce("+", g2, name="ar")
        d2 = Dropout(ar2, 0.4, seed=99, name="d")
        prog2 = Execute("p", [g2], [d2])
        sched = Schedule(prog2)
        red, bc = sched.split(ar2, ARSplitReduceBroadcast)
        sched.reorder(bc, d2)
        got = Executor().run(sched.program, inputs)
        np.testing.assert_allclose(
            got.output(sched.program.outputs[0].name), ref, rtol=1e-6
        )

    def test_rejects_non_replicated_operand(self):
        n, N = 4, 16
        W = world(n)
        g = Tensor(FP32, (N,), Local, W, RANK, name="g")
        other = Tensor(FP32, (N,), Local, W, RANK, name="other")
        ar = AllReduce("+", g, name="ar")
        mixed = Binary("+", ar, other, name="mixed")
        prog = Execute("p", [g, other], [mixed])
        sched = Schedule(prog)
        red, bc = sched.split(ar, ARSplitReduceBroadcast)
        with pytest.raises(TransformError, match="non-replicated"):
            sched.reorder(bc, mixed)

    def test_rejects_external_consumer(self):
        prog, ar, scaled, shifted = build_program()
        sched = Schedule(prog)
        red, bc = sched.split(ar, ARSplitReduceBroadcast)
        with pytest.raises(TransformError, match="consumes"):
            sched.reorder(bc, shifted)  # 'scaled' consumes bc too

    def test_fewer_broadcast_bytes_not_more(self):
        # reorder keeps a single broadcast of the same size; the win is
        # that only the root computes (n-1 ranks idle -> power/locality)
        prog, ar, scaled, shifted = build_program()
        sched = Schedule(prog)
        red, bc = sched.split(ar, ARSplitReduceBroadcast)
        sched.reorder(bc, scaled, shifted)
        bcasts = [
            e for e in sched.program.operations
            if isinstance(e, ops.Broadcast)
        ]
        assert len(bcasts) == 1
        assert bcasts[0].per_rank_bytes() == shifted.per_rank_bytes()
